#!/usr/bin/env bash
# Continuous perf gate: run the bench_engine microbenchmark suite and diff
# it against the checked-in BENCH_engine.json baseline. Shared verbatim by
# CI (.github/workflows/ci.yml) and local runs, mirroring scripts/check.sh.
#
# To absorb machine-speed differences between the machine that recorded the
# baseline and the one running the gate, every rate is normalized by the
# suite's calib_spin rate (a fixed ALU workload) before comparison; the
# gate therefore checks the *shape* of the performance profile, not the
# silicon. A normalized rate more than TOLERANCE below baseline fails.
#
# Entries may carry "direction": "lower" (smaller value is better, e.g.
# events_per_message), "raw": true (a property of the simulated schedule,
# compared without calib_spin normalization), and "tolerance": F (per-entry
# override of the global tolerance — the span_capture_overhead_* ratios pin
# their baseline at 1.0 and gate at tight absolute bounds this way). In
# every case the printed ratio is oriented so >1 means improved and
# <1-TOLERANCE fails.
#
# An entry may also carry "min": V, a hard lower bound on the value itself
# (not relative to the baseline) — parallel_speedup_4shard uses it to
# demand a >= 2x sharded-engine speedup on any machine with enough cores.
# "min_cores": N waives the bound on machines with fewer than N hardware
# threads, where the measurement cannot physically exist.
#
# Usage: scripts/bench_gate.sh [--update] [--current PATH] [--quick]
#   --update        refresh BENCH_engine.json from this machine and exit
#   --current PATH  where to write the fresh results (default /tmp)
#   --quick         single fast repetition (smoke only, noisier)
# Env: BENCH_GATE_TOLERANCE  allowed fractional slowdown (default 0.15)
#      JOBS                  build parallelism (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TOL="${BENCH_GATE_TOLERANCE:-0.15}"
BASELINE=BENCH_engine.json
CURRENT="${TMPDIR:-/tmp}/BENCH_engine.current.json"
BENCH_FLAGS=()

UPDATE=0
while [ $# -gt 0 ]; do
  case "$1" in
    --update) UPDATE=1 ;;
    --current) CURRENT="$2"; shift ;;
    --quick) BENCH_FLAGS+=(--quick) ;;
    *) echo "usage: $0 [--update] [--current PATH] [--quick]" >&2; exit 2 ;;
  esac
  shift
done

if [ ! -x build/bench/bench_engine ]; then
  echo "== building bench_engine =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target bench_engine
fi

echo "== running engine benchmark suite =="
./build/bench/bench_engine --out "$CURRENT" ${BENCH_FLAGS[@]+"${BENCH_FLAGS[@]}"}

if [ "$UPDATE" = 1 ]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline $BASELINE updated"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "error: no baseline $BASELINE; record one with $0 --update" >&2
  exit 1
fi

echo "== comparing against $BASELINE (tolerance ${TOL}) =="
python3 - "$BASELINE" "$CURRENT" "$TOL" <<'PY'
import json, os, sys

baseline_path, current_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(baseline_path))
cur = json.load(open(current_path))

def entries(doc):
    return {b["name"]: b for b in doc["benchmarks"]}

base_e, cur_e = entries(base), entries(cur)
base_spin = float(base_e.get("calib_spin", {}).get("rate", 0.0))
cur_spin = float(cur_e.get("calib_spin", {}).get("rate", 0.0))
normalize = base_spin > 0 and cur_spin > 0
if not normalize:
    print("warning: calib_spin missing; comparing raw rates")

rows, failed = [], []
for name, be in base_e.items():
    if name == "calib_spin":
        continue
    ce = cur_e.get(name)
    b = float(be["rate"])
    if ce is None:
        rows.append((name, b, None, None, "MISSING"))
        failed.append(name)
        continue
    c = float(ce["rate"])
    raw = bool(be.get("raw") or ce.get("raw"))
    lower = be.get("direction", "higher") == "lower"
    tol_e = float(be.get("tolerance", tol))
    # Orient the ratio so >1 always means "improved".
    if lower:
        ratio = b / c if c > 0 else float("inf")
    elif normalize and not raw:
        ratio = (c / cur_spin) / (b / base_spin)
    else:
        ratio = c / b
    if ratio < 1.0 - tol_e:
        status = "REGRESSION"
        failed.append(name)
    elif ratio > 1.0 + tol_e:
        status = "ok (faster; consider --update)"
    else:
        status = "ok"
    # Hard lower bound on the value itself, independent of the baseline.
    min_v = be.get("min", ce.get("min"))
    if min_v is not None:
        need = int(be.get("min_cores", ce.get("min_cores", 0)))
        cores = os.cpu_count() or 1
        if cores < need:
            status += f" (min {float(min_v):g} waived: {cores} < {need} cores)"
        elif c < float(min_v):
            status = f"BELOW MIN {float(min_v):g}"
            if name not in failed:
                failed.append(name)
    rows.append((name, b, c, ratio, status))

def fmt(v):
    if v is None:
        return f"{'-':>14}"
    return f"{v:14.2f}" if v < 1000 else f"{v:14.0f}"

print(f"{'benchmark':<26} {'baseline':>14} {'current':>14} {'norm-ratio':>10}  status")
for name, b, c, ratio, status in rows:
    rs = f"{ratio:10.3f}" if ratio is not None else f"{'-':>10}"
    print(f"{name:<26} {fmt(b)} {fmt(c)} {rs}  {status}")

if failed:
    print(f"\nPERF GATE FAILED: {', '.join(failed)} "
          f"regressed more than {tol:.0%} vs {baseline_path}")
    sys.exit(1)
print("\nperf gate passed")
PY
