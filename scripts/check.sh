#!/usr/bin/env bash
# Full pre-merge check: build the default and the ASan+UBSan configuration,
# run the whole test suite in both, then run a small chaos matrix and verify
# its output is deterministic (two runs, identical bytes).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== configure + build (default) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== configure + build (ASan+UBSan) =="
cmake -B build-asan -S . -DVNET_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"

echo "== configure + build (tracing compiled out) =="
cmake -B build-notrace -S . -DVNET_TRACING=OFF >/dev/null
cmake --build build-notrace -j "$JOBS"

echo "== tests (default) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tests (ASan+UBSan) =="
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== tests (tracing compiled out) =="
# Includes the Trace.MacroCompileConfigIsZeroCost guard, which asserts the
# VNET_TRACE_* macros expand to nothing in this configuration.
ctest --test-dir build-notrace --output-on-failure -j "$JOBS" -R "Trace\.|Metrics\.|ObsIntegration\.|Attr\.|Sampler\.|Watchdog\."

echo "== chaos matrix (determinism check) =="
./build/bench/bench_chaos_matrix --seeds 2 | tee /tmp/chaos_matrix.1
./build/bench/bench_chaos_matrix --seeds 2 >/tmp/chaos_matrix.2
diff -u /tmp/chaos_matrix.1 /tmp/chaos_matrix.2
echo "chaos matrix deterministic"

echo "== chaos matrix (ASan) =="
./build-asan/bench/bench_chaos_matrix --seeds 1 >/dev/null

echo "ALL CHECKS PASSED"
