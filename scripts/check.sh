#!/usr/bin/env bash
# Pre-merge check, shared verbatim by local runs and the CI matrix.
#
#   scripts/check.sh            # all configs serially (local pre-merge)
#   scripts/check.sh default    # build + full tests + chaos determinism
#   scripts/check.sh asan       # ASan+UBSan build + full tests + chaos run
#   scripts/check.sh tsan       # TSan build + sharded tests + sharded chaos
#   scripts/check.sh notrace    # tracing-compiled-out build + obs tests
#
# The compiler comes from the usual CC/CXX environment (the CI matrix sets
# clang/clang++ on its clang legs). ccache is picked up automatically when
# installed.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CONFIG="${1:-all}"

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

do_default() {
  echo "== configure + build (default) =="
  cmake -B build -S . ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} >/dev/null
  cmake --build build -j "$JOBS"

  echo "== tests (default) =="
  ctest --test-dir build --output-on-failure -j "$JOBS"

  echo "== chaos matrix (determinism check) =="
  ./build/bench/bench_chaos_matrix --seeds 2 | tee /tmp/chaos_matrix.1
  ./build/bench/bench_chaos_matrix --seeds 2 >/tmp/chaos_matrix.2
  diff -u /tmp/chaos_matrix.1 /tmp/chaos_matrix.2
  echo "chaos matrix deterministic"
}

do_asan() {
  echo "== configure + build (ASan+UBSan) =="
  cmake -B build-asan -S . -DVNET_SANITIZE=ON \
    ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} >/dev/null
  cmake --build build-asan -j "$JOBS"

  echo "== tests (ASan+UBSan) =="
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== chaos matrix (ASan) =="
  ./build-asan/bench/bench_chaos_matrix --seeds 1 >/dev/null
}

do_tsan() {
  echo "== configure + build (TSan) =="
  cmake -B build-tsan -S . -DVNET_SANITIZE=TSAN \
    ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "== sharded-engine tests (TSan) =="
  # The Shard* suites exercise the worker-thread scheduler (threaded window
  # execution, cross-shard routing, the 1000-host smoke run) — the code
  # paths TSan exists to judge. The rest of the suite is single-threaded by
  # construction and already covered by the asan/default legs.
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "Shard"

  echo "== sharded chaos matrix (TSan) =="
  ./build-tsan/bench/bench_chaos_matrix --shards 2 --seeds 1 >/dev/null
}

do_notrace() {
  echo "== configure + build (tracing compiled out) =="
  cmake -B build-notrace -S . -DVNET_TRACING=OFF \
    ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} >/dev/null
  cmake --build build-notrace -j "$JOBS"

  echo "== tests (tracing compiled out) =="
  # Includes the Trace.MacroCompileConfigIsZeroCost guard, which asserts the
  # VNET_TRACE_* macros expand to nothing in this configuration.
  ctest --test-dir build-notrace --output-on-failure -j "$JOBS" \
    -R "Trace\.|Metrics\.|ObsIntegration\.|Attr\.|Sampler\.|Watchdog\.|EventQueue\.|Span\.|Tail\.|SpanIntegration\."
}

case "$CONFIG" in
  default) do_default ;;
  asan) do_asan ;;
  tsan) do_tsan ;;
  notrace) do_notrace ;;
  all)
    do_default
    do_asan
    do_tsan
    do_notrace
    ;;
  *)
    echo "usage: $0 [default|asan|tsan|notrace|all]" >&2
    exit 2
    ;;
esac

echo "ALL CHECKS PASSED ($CONFIG)"
