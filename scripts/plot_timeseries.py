#!/usr/bin/env python3
"""Regenerate bandwidth-vs-size curves from a sampler time-series CSV.

Input is the CSV written by `bench_fig4_bandwidth --csv PATH` (or any
obs::Sampler export that includes the `apps.bandwidth.*` gauges): one row
per sampling window, counters as in-window deltas, gauges as end-of-window
levels.  The workload annotates each window with two gauges —
`apps.bandwidth.msg_bytes` (current message size) and
`apps.bandwidth.phase` (0 idle, 1 streaming, 2 echo/RTT) — so the
Figure 4 curve can be rebuilt offline by grouping the per-window
`fabric.link.<label>.bytes_tx` deltas by message size over the streaming
phase.  No simulator changes needed to re-cut the data another way.

Link bytes include packet headers and acks, so the per-link rate sits
slightly above the application goodput printed by the bench; the shape of
the curve (and N_1/2) is what this reconstruction is for.

A second mode, --bands, renders per-window percentile bands from any
histogram the sampler exported (every histogram contributes `<name>.count`,
`.mean`, `.p50`, `.p99` and `.p999` columns, computed from the HDR-style
sub-bucketed sketch — ≤5% relative error through p99.9).  Run with a bare
`--bands` to list the histogram prefixes present in the CSV, then name one:

Usage:
    bench_fig4_bandwidth --csv /tmp/bw.csv
    scripts/plot_timeseries.py /tmp/bw.csv [--phase 1] [--plot out.png]
    scripts/plot_timeseries.py /tmp/bw.csv --bands                  # list
    scripts/plot_timeseries.py /tmp/bw.csv \
        --bands host.0.ep.1.attr.e2e --plot bands.png

Pure standard library; --plot uses matplotlib only if it is installed.
"""

import argparse
import csv
import re
import sys

PHASE_COL = "apps.bandwidth.phase"
SIZE_COL = "apps.bandwidth.msg_bytes"
LINK_RE = re.compile(r"^fabric\.link\..*\.bytes_tx$")


def load(path, phase):
    """Returns {msg_bytes: (sum_window_ns, {link: sum_bytes})}."""
    per_size = {}
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or PHASE_COL not in reader.fieldnames:
            sys.exit(f"{path}: no {PHASE_COL} column — was the CSV written "
                     "by bench_fig4_bandwidth --csv?")
        link_cols = [c for c in reader.fieldnames if LINK_RE.match(c)]
        if not link_cols:
            sys.exit(f"{path}: no fabric.link.*.bytes_tx columns")
        for row in reader:
            if int(float(row[PHASE_COL])) != phase:
                continue
            size = int(float(row[SIZE_COL]))
            if size == 0:
                continue
            ns, links = per_size.setdefault(size, [0, {}])
            per_size[size][0] += int(row["window_ns"])
            for c in link_cols:
                links[c] = links.get(c, 0) + int(float(row[c]))
    return per_size


def bands(path, prefix, plot):
    """Per-window percentile bands for one exported histogram."""
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        fields = reader.fieldnames or []
        prefixes = sorted(c[:-len(".p50")] for c in fields
                          if c.endswith(".p50"))
        if not prefix:
            if not prefixes:
                sys.exit(f"{path}: no histogram (*.p50) columns")
            print("histogram prefixes in this CSV:")
            for p in prefixes:
                print(f"  {p}")
            return
        if f"{prefix}.p50" not in fields:
            sys.exit(f"{path}: no columns for {prefix!r} "
                     f"(try a bare --bands to list prefixes)")
        rows = []
        for row in reader:
            count = int(float(row[f"{prefix}.count"]))
            if count == 0:
                continue  # empty window: quantiles would read as 0
            rows.append((int(row["window_end_ns"]), count,
                         float(row[f"{prefix}.mean"]),
                         float(row[f"{prefix}.p50"]),
                         float(row[f"{prefix}.p99"]),
                         float(row[f"{prefix}.p999"])))
    if not rows:
        sys.exit(f"no windows with samples for {prefix}")

    print(f"{'window_end_ms':>13} {'count':>7} {'mean':>12} {'p50':>12} "
          f"{'p99':>12} {'p99.9':>12}")
    for end_ns, count, mean, p50, p99, p999 in rows:
        print(f"{end_ns / 1e6:>13.3f} {count:>7} {mean:>12.1f} {p50:>12.1f} "
              f"{p99:>12.1f} {p999:>12.1f}")

    if plot:
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("--plot requires matplotlib, which is not installed")
        xs = [r[0] / 1e6 for r in rows]
        p50s, p99s, p999s = ([r[i] for r in rows] for i in (3, 4, 5))
        plt.fill_between(xs, p50s, p99s, alpha=0.3, label="p50–p99")
        plt.fill_between(xs, p99s, p999s, alpha=0.15, label="p99–p99.9")
        plt.plot(xs, p50s, label="p50")
        plt.plot(xs, p999s, lw=0.8, label="p99.9")
        plt.xlabel("window end (ms)")
        plt.ylabel(prefix)
        plt.title(f"percentile bands: {prefix}")
        plt.legend()
        plt.grid(True, alpha=0.3)
        plt.savefig(plot, dpi=120, bbox_inches="tight")
        print(f"wrote {plot}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("csv", help="sampler CSV from bench_fig4_bandwidth --csv")
    ap.add_argument("--phase", type=int, default=1,
                    help="workload phase to aggregate (default 1: streaming)")
    ap.add_argument("--plot", metavar="PNG",
                    help="also write a PNG (needs matplotlib)")
    ap.add_argument("--bands", metavar="PREFIX", nargs="?", const="",
                    default=None,
                    help="plot percentile bands for one histogram prefix "
                         "(bare --bands lists the prefixes in the CSV)")
    args = ap.parse_args()

    if args.bands is not None:
        bands(args.csv, args.bands, args.plot)
        return

    per_size = load(args.csv, args.phase)
    if not per_size:
        sys.exit("no windows matched the requested phase")

    # Per size: the busiest link carries the payload stream one hop, so its
    # rate is the per-hop wire bandwidth at that message size.
    print(f"{'bytes':>8} {'windows_ms':>11} {'peak_link':>22} {'MB/s':>8}")
    sizes, rates = [], []
    for size in sorted(per_size):
        ns, links = per_size[size]
        link, byts = max(links.items(), key=lambda kv: kv[1])
        mbps = byts / (ns * 1e-9) / 1e6 if ns else 0.0
        label = link[len("fabric.link."):-len(".bytes_tx")]
        print(f"{size:>8} {ns / 1e6:>11.2f} {label:>22} {mbps:>8.1f}")
        sizes.append(size)
        rates.append(mbps)

    if args.plot:
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("--plot requires matplotlib, which is not installed")
        plt.semilogx(sizes, rates, marker="o", base=2)
        plt.xlabel("message size (bytes)")
        plt.ylabel("peak link bandwidth (MB/s)")
        plt.title("Figure 4 reconstruction from sampler time series")
        plt.grid(True, which="both", alpha=0.3)
        plt.savefig(args.plot, dpi=120, bbox_inches="tight")
        print(f"wrote {args.plot}")


if __name__ == "__main__":
    main()
