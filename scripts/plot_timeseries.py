#!/usr/bin/env python3
"""Regenerate bandwidth-vs-size curves from a sampler time-series CSV.

Input is the CSV written by `bench_fig4_bandwidth --csv PATH` (or any
obs::Sampler export that includes the `apps.bandwidth.*` gauges): one row
per sampling window, counters as in-window deltas, gauges as end-of-window
levels.  The workload annotates each window with two gauges —
`apps.bandwidth.msg_bytes` (current message size) and
`apps.bandwidth.phase` (0 idle, 1 streaming, 2 echo/RTT) — so the
Figure 4 curve can be rebuilt offline by grouping the per-window
`fabric.link.<label>.bytes_tx` deltas by message size over the streaming
phase.  No simulator changes needed to re-cut the data another way.

Link bytes include packet headers and acks, so the per-link rate sits
slightly above the application goodput printed by the bench; the shape of
the curve (and N_1/2) is what this reconstruction is for.

Usage:
    bench_fig4_bandwidth --csv /tmp/bw.csv
    scripts/plot_timeseries.py /tmp/bw.csv [--phase 1] [--plot out.png]

Pure standard library; --plot uses matplotlib only if it is installed.
"""

import argparse
import csv
import re
import sys

PHASE_COL = "apps.bandwidth.phase"
SIZE_COL = "apps.bandwidth.msg_bytes"
LINK_RE = re.compile(r"^fabric\.link\..*\.bytes_tx$")


def load(path, phase):
    """Returns {msg_bytes: (sum_window_ns, {link: sum_bytes})}."""
    per_size = {}
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or PHASE_COL not in reader.fieldnames:
            sys.exit(f"{path}: no {PHASE_COL} column — was the CSV written "
                     "by bench_fig4_bandwidth --csv?")
        link_cols = [c for c in reader.fieldnames if LINK_RE.match(c)]
        if not link_cols:
            sys.exit(f"{path}: no fabric.link.*.bytes_tx columns")
        for row in reader:
            if int(float(row[PHASE_COL])) != phase:
                continue
            size = int(float(row[SIZE_COL]))
            if size == 0:
                continue
            ns, links = per_size.setdefault(size, [0, {}])
            per_size[size][0] += int(row["window_ns"])
            for c in link_cols:
                links[c] = links.get(c, 0) + int(float(row[c]))
    return per_size


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("csv", help="sampler CSV from bench_fig4_bandwidth --csv")
    ap.add_argument("--phase", type=int, default=1,
                    help="workload phase to aggregate (default 1: streaming)")
    ap.add_argument("--plot", metavar="PNG",
                    help="also write a PNG (needs matplotlib)")
    args = ap.parse_args()

    per_size = load(args.csv, args.phase)
    if not per_size:
        sys.exit("no windows matched the requested phase")

    # Per size: the busiest link carries the payload stream one hop, so its
    # rate is the per-hop wire bandwidth at that message size.
    print(f"{'bytes':>8} {'windows_ms':>11} {'peak_link':>22} {'MB/s':>8}")
    sizes, rates = [], []
    for size in sorted(per_size):
        ns, links = per_size[size]
        link, byts = max(links.items(), key=lambda kv: kv[1])
        mbps = byts / (ns * 1e-9) / 1e6 if ns else 0.0
        label = link[len("fabric.link."):-len(".bytes_tx")]
        print(f"{size:>8} {ns / 1e6:>11.2f} {label:>22} {mbps:>8.1f}")
        sizes.append(size)
        rates.append(mbps)

    if args.plot:
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("--plot requires matplotlib, which is not installed")
        plt.semilogx(sizes, rates, marker="o", base=2)
        plt.xlabel("message size (bytes)")
        plt.ylabel("peak link bandwidth (MB/s)")
        plt.title("Figure 4 reconstruction from sampler time series")
        plt.grid(True, which="both", alpha=0.3)
        plt.savefig(args.plot, dpi=120, bbox_inches="tight")
        print(f"wrote {args.plot}")


if __name__ == "__main__":
    main()
