#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/ledger.hpp"
#include "cluster/cluster.hpp"
#include "obs/watchdog.hpp"

namespace vnet::chaos {

/// A chaos scenario: a client/server request-reply workload plus a fault
/// timeline, run to quiescence and checked against the delivery ledger.
///
/// Node layout: 0 = controller (no traffic), 1 = server, 2 = replica,
/// 3..3+clients = client nodes. Clients send `requests_per_client` echo
/// requests to the server; with `failover` they re-issue returned (and, at
/// the deadline, still-unacknowledged) requests to the replica — the
/// fault_tolerance recipe of §3.2.
struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  int clients = 2;
  int requests_per_client = 30;
  std::uint32_t bulk_bytes = 0;  ///< per-request payload (0 = short message)
  /// Gap between successive sends: spreads the workload across the fault
  /// timeline so faults actually hit in-flight traffic.
  sim::Duration send_spacing = 200 * sim::us;
  bool failover = false;
  /// Use a 2-hosts-per-leaf / 2-spine fat-tree instead of a crossbar (for
  /// trunk faults); the server then sits on a different leaf from clients.
  bool fat_tree = false;
  /// Optional NicConfig/ClusterConfig adjustments before the cluster is
  /// built (e.g. a lower unbind limit).
  std::function<void(cluster::ClusterConfig&)> tweak;
  /// Fault timeline; receives the built cluster (for sizes) and a seeded
  /// Rng split off the engine (for chaos mode).
  std::function<FaultPlan(cluster::Cluster&, sim::Rng&)> plan;
  sim::Duration client_deadline = 60 * sim::ms;
  /// How long the controller waits after clients finish for the ledger to
  /// fully resolve before declaring the campaign over.
  sim::Duration resolve_grace = 100 * sim::ms;
};

struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;

  DeliveryLedger::Counts counts;
  /// Ledger violations plus end-of-run liveness violations (wedged send
  /// queues). Empty == the campaign upheld every invariant.
  std::vector<std::string> violations;

  // Application-level outcome.
  std::uint64_t requests_issued = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t returns_seen = 0;
  std::uint64_t reissued = 0;
  std::uint64_t unfinished = 0;  ///< client requests with no terminal state

  // Transport work, summed over all NICs.
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t channel_unbinds = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t returned_to_sender = 0;

  // Fabric losses.
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_fault = 0;

  sim::Time last_fault_at = 0;
  sim::Time resolved_at = 0;
  /// Quiescence (last message reaching a terminal state) minus the last
  /// fault action: how long the transport needed to dig itself out.
  sim::Duration recovery_time = 0;
  sim::Duration total_time = 0;

  std::vector<std::string> campaign_log;
  std::string link_stats;  ///< per-link drop table (campaign report)

  /// Stall-watchdog firings (obs/watchdog.hpp) observed during the run:
  /// which component stalled, when, and for how many windows. The checkers
  /// above judge *whether* delivery invariants held; the watchdog names the
  /// component that went quiet while a fault was in force.
  std::vector<obs::WatchdogEvent> watchdog_events;
  std::string watchdog_summary;  ///< rendered table ("" if nothing fired)
};

/// Builds, runs and checks one scenario. Deterministic for a fixed spec.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// The standard chaos matrix: link_flap, burst_loss, nic_reboot,
/// host_failover, trunk_flap, chaos.
std::vector<std::string> standard_scenario_names();
ScenarioSpec standard_scenario(const std::string& name, std::uint64_t seed);

/// One formatted table row / header for the bench report.
std::string result_table_header();
std::string result_table_row(const ScenarioResult& r);

}  // namespace vnet::chaos
