#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/json.hpp"
#include "chaos/ledger.hpp"
#include "cluster/cluster.hpp"
#include "obs/watchdog.hpp"

namespace vnet::chaos {

/// A chaos scenario: a client/server request-reply workload plus a fault
/// timeline, run to quiescence and checked against the delivery ledger.
///
/// Node layout: 0 = controller (no traffic), 1 = server, 2 = replica,
/// 3..3+clients = client nodes. Clients send `requests_per_client` echo
/// requests to the server; with `failover` they re-issue returned (and, at
/// the deadline, still-unacknowledged) requests to the replica — the
/// fault_tolerance recipe of §3.2.
struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  int clients = 2;
  int requests_per_client = 30;
  std::uint32_t bulk_bytes = 0;  ///< per-request payload (0 = short message)
  /// Gap between successive sends: spreads the workload across the fault
  /// timeline so faults actually hit in-flight traffic.
  sim::Duration send_spacing = 200 * sim::us;
  bool failover = false;
  /// Use a 2-hosts-per-leaf / 2-spine fat-tree instead of a crossbar (for
  /// trunk faults); the server then sits on a different leaf from clients.
  bool fat_tree = false;
  /// Optional NicConfig/ClusterConfig adjustments before the cluster is
  /// built (e.g. a lower unbind limit).
  std::function<void(cluster::ClusterConfig&)> tweak;
  /// Fault timeline; receives the built cluster (for sizes) and a seeded
  /// Rng split off the engine (for chaos mode).
  std::function<FaultPlan(cluster::Cluster&, sim::Rng&)> plan;
  sim::Duration client_deadline = 60 * sim::ms;
  /// How long the controller waits after clients finish for the ledger to
  /// fully resolve before declaring the campaign over.
  sim::Duration resolve_grace = 100 * sim::ms;
};

struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;

  DeliveryLedger::Counts counts;
  /// Ledger violations plus end-of-run liveness violations (wedged send
  /// queues). Empty == the campaign upheld every invariant.
  std::vector<std::string> violations;

  // Application-level outcome.
  std::uint64_t requests_issued = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t returns_seen = 0;
  std::uint64_t reissued = 0;
  std::uint64_t unfinished = 0;  ///< client requests with no terminal state

  // Transport work, summed over all NICs.
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t channel_unbinds = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t returned_to_sender = 0;

  // Fabric losses.
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_fault = 0;

  sim::Time last_fault_at = 0;
  sim::Time resolved_at = 0;
  /// Quiescence (last message reaching a terminal state) minus the last
  /// fault action: how long the transport needed to dig itself out.
  sim::Duration recovery_time = 0;
  sim::Duration total_time = 0;

  std::vector<std::string> campaign_log;
  std::string link_stats;  ///< per-link drop table (campaign report)

  /// Stall-watchdog firings (obs/watchdog.hpp) observed during the run:
  /// which component stalled, when, and for how many windows. The checkers
  /// above judge *whether* delivery invariants held; the watchdog names the
  /// component that went quiet while a fault was in force.
  std::vector<obs::WatchdogEvent> watchdog_events;
  std::string watchdog_summary;  ///< rendered table ("" if nothing fired)

  /// Deterministic-replay digest of the whole run (sim::Engine::
  /// replay_digest at quiescence) and the event count behind it. A fork()ed
  /// timeline must report the same digest as the straight-through run.
  std::uint64_t replay_digest = 0;
  std::uint64_t events_processed = 0;
};

/// A scenario split at its warmup boundary, for the fork server: the
/// constructor builds the cluster and workload and draws the spec's fault
/// plan (fixing the RNG history regardless of which plan is later applied);
/// warm() runs the timeline fault-free up to a checkpoint; finish() applies
/// a fault plan — the drawn one or a substitute, e.g. a bisection prefix —
/// and runs to quiescence. `warm(); fork(); finish()` in each child is
/// byte-equivalent to a straight-through `finish()` because fork() copies
/// the entire simulation state.
class ScenarioRun {
 public:
  explicit ScenarioRun(const ScenarioSpec& spec);
  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  /// The plan the spec's callback produced (empty if the spec has none).
  const FaultPlan& default_plan() const;

  /// Latest time safely before the earliest action of `plan`, clamped to
  /// be non-negative. warm() to this point keeps every fault ahead of the
  /// checkpoint, so a forked child replays the full fault timeline.
  sim::Time checkpoint_for(const FaultPlan& plan) const;

  /// Runs the workload fault-free up to absolute time `t`. May be called
  /// once, before finish().
  void warm(sim::Time t);

  /// Applies `plan` (actions earlier than now() fire immediately), runs to
  /// quiescence, drains trailing transport events, and judges the ledger.
  ScenarioResult finish(const FaultPlan& plan);
  ScenarioResult finish() { return finish(default_plan()); }

  sim::Engine& engine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Builds, runs and checks one scenario. Deterministic for a fixed spec.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Machine-readable verdict for one scenario run: invariant results, stall
/// flags, transport counters, and the replay digest. Canonical JSON — the
/// same bytes feed the fork-server pipe, the CI artifact, and the tests.
json::Value verdict_json(const ScenarioResult& r);
ScenarioResult verdict_from_json(const json::Value& v);

/// True when every delivery invariant held (no violations, no duplicates,
/// no silent losses, no orphans). The bisection predicate.
bool verdict_ok(const ScenarioResult& r);

/// The standard chaos matrix: link_flap, burst_loss, nic_reboot,
/// host_failover, trunk_flap, chaos.
std::vector<std::string> standard_scenario_names();
ScenarioSpec standard_scenario(const std::string& name, std::uint64_t seed);

/// One formatted table row / header for the bench report.
std::string result_table_header();
std::string result_table_row(const ScenarioResult& r);

}  // namespace vnet::chaos
