#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/json.hpp"
#include "myrinet/fabric.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace vnet::chaos {

/// One timed fault (or heal) to apply to a running cluster.
struct FaultAction {
  enum class Kind {
    kHostLink,    ///< connect/disconnect a host's cable (both directions)
    kTrunkLink,   ///< fail/restore a leaf<->spine trunk (switch port)
    kNicReboot,   ///< reboot a node's NIC mid-traffic
    kFaultRates,  ///< set the uniform drop/corrupt probabilities
    kBurstLoss,   ///< swap the Gilbert–Elliott burst-loss parameters
    kPoison,      ///< test-only: report a phantom delivery to the probe,
                  ///< planting a ledger orphan (bisector verification)
  };
  sim::Time at = 0;
  Kind kind = Kind::kHostLink;
  int node = -1;  ///< host (kHostLink, kNicReboot) or leaf (kTrunkLink)
  int port = -1;  ///< spine index (kTrunkLink)
  bool up = true;
  double drop = 0.0;
  double corrupt = 0.0;
  myrinet::GilbertElliottParams burst;
};

/// Knobs for the randomized "chaos mode" plan generator. All generated
/// faults heal before `end` (links back up, rates reset to zero), so a
/// correct transport must reach quiescence with every message resolved.
struct ChaosOptions {
  sim::Time start = 1 * sim::ms;
  sim::Time end = 20 * sim::ms;
  int events = 6;
  /// Hosts eligible for link flaps / NIC reboots: [first_node, nodes).
  int nodes = 2;
  int first_node = 0;
  /// Fat-tree trunk dimensions for trunk flaps; 0 disables them.
  int leaves = 0;
  int spines = 0;
  sim::Duration max_down = 2 * sim::ms;
  double max_drop = 0.05;
  double max_corrupt = 0.01;
  bool allow_reboot = true;
  bool allow_burst = true;
};

/// A scripted fault timeline: an ordered list of FaultActions built with a
/// fluent API, or generated randomly (deterministically, from a seeded Rng
/// split off the engine) by chaos_mode(). Executed by a chaos::Campaign.
class FaultPlan {
 public:
  FaultPlan& host_link(sim::Time at, int node, bool up);
  /// Down at `at`, back up `down_for` later.
  FaultPlan& host_flap(sim::Time at, int node, sim::Duration down_for);
  FaultPlan& trunk_link(sim::Time at, int leaf, int spine, bool up);
  FaultPlan& trunk_flap(sim::Time at, int leaf, int spine,
                        sim::Duration down_for);
  FaultPlan& nic_reboot(sim::Time at, int node);
  FaultPlan& fault_rates(sim::Time at, double drop, double corrupt);
  FaultPlan& burst_loss(sim::Time at,
                        const myrinet::GilbertElliottParams& burst);
  /// Burst loss on at `at`, off again `duration` later.
  FaultPlan& burst_episode(sim::Time at, sim::Duration duration,
                           const myrinet::GilbertElliottParams& burst);
  /// Test-only: at `at`, feed the installed MessageProbe a delivery for a
  /// message that was never injected. The ledger flags it as an orphan —
  /// a deliberately planted invariant break whose first-breaking time the
  /// bisector must recover.
  FaultPlan& poison(sim::Time at, int node = 1);

  /// Appends an already-built action verbatim — how the bisector and the
  /// JSON deserializer construct trimmed plans.
  FaultPlan& append(const FaultAction& a) {
    actions_.push_back(a);
    return *this;
  }

  /// Randomized self-healing fault timeline (see ChaosOptions).
  static FaultPlan chaos_mode(sim::Rng& rng, const ChaosOptions& opt);

  bool empty() const { return actions_.empty(); }
  std::size_t size() const { return actions_.size(); }
  /// Actions in insertion order; the Campaign sorts by time before running.
  const std::vector<FaultAction>& actions() const { return actions_; }

 private:
  std::vector<FaultAction> actions_;
};

/// One-line human-readable description, used in campaign logs.
std::string describe(const FaultAction& a);

/// JSON round-trip, used by fork-server verdicts and bisection repro
/// artifacts: a repro must carry its (trimmed) fault plan in a form a later
/// process can parse and re-run.
json::Value to_json(const FaultAction& a);
FaultAction action_from_json(const json::Value& v);
json::Value to_json(const FaultPlan& plan);
FaultPlan plan_from_json(const json::Value& v);

}  // namespace vnet::chaos
