#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "am/endpoint.hpp"
#include "am/probe.hpp"
#include "sim/engine.hpp"

namespace vnet::chaos {

using lanai::EpId;
using myrinet::NodeId;

/// Global message-accounting ledger: implements am::MessageProbe and records
/// every tracked message from injection to its terminal state. At campaign
/// end it checks the transport's end-to-end invariants (§3.2, §5.1):
///
///  * exactly-once — no message produces more than one handler invocation,
///    no matter how many times the fabric forced a retransmission;
///  * delivered-or-returned — no message vanishes silently: each is either
///    consumed at the destination or surfaced to the sender's
///    undeliverable handler. A message that is both delivered *and*
///    returned is legal (inherent ambiguity: the transport cannot know
///    whether a never-acked message died before or after delivery) and is
///    counted separately, not flagged.
///
/// Install with am::Endpoint::set_probe (see ProbeGuard).
///
/// Thread-safe: probe events may arrive concurrently from shard workers
/// (sim/shard.hpp), so every mutation takes an internal mutex, and the
/// aggregates are defined order-independently — resolved_at is the *minimum*
/// terminal-event time per message, and last_terminal_time() the maximum
/// resolved_at over all messages. On a serial run terminal events arrive in
/// time order, so both definitions coincide with the historical "first /
/// most recent event" readings exactly.
class DeliveryLedger : public am::MessageProbe {
 public:
  DeliveryLedger() = default;

  // --- am::MessageProbe ---
  void message_injected(NodeId src_node, EpId src_ep, std::uint64_t msg_id,
                        bool is_request, NodeId dst_node,
                        sim::Time at) override;
  void message_delivered(NodeId src_node, EpId src_ep, std::uint64_t msg_id,
                         bool is_request, NodeId at_node, EpId at_ep,
                         sim::Time at) override;
  void message_returned(NodeId src_node, EpId src_ep, std::uint64_t msg_id,
                        lanai::NackReason reason, sim::Time at) override;

  struct Counts {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;  ///< messages with >= 1 delivery
    std::uint64_t returned = 0;   ///< messages with >= 1 return
    std::uint64_t duplicate_deliveries = 0;  ///< extra handler invocations
    std::uint64_t delivered_and_returned = 0;  ///< legal ambiguity
    std::uint64_t unresolved = 0;  ///< injected, no terminal state yet
    std::uint64_t orphan_events = 0;  ///< delivery/return with no injection
  };
  Counts counts() const;

  std::uint64_t unresolved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return unresolved_;
  }
  bool fully_resolved() const { return unresolved() == 0; }
  /// Latest per-message resolution instant (delivery or return); the
  /// campaign's recovery-time measurement.
  sim::Time last_terminal_time() const;

  /// Invariant violations: duplicates, unresolved (silently lost)
  /// messages, and orphan events. Empty on a correct transport once the
  /// campaign has quiesced.
  std::vector<std::string> violations() const;

 private:
  struct Record {
    bool is_request = true;
    NodeId dst_node = myrinet::kInvalidNode;
    int delivered = 0;
    int returned = 0;
    sim::Time injected_at = 0;
    sim::Time resolved_at = -1;
  };
  using Key = std::tuple<NodeId, EpId, std::uint64_t>;

  void mark_terminal(Record& r, sim::Time at);

  mutable std::mutex mu_;
  std::map<Key, Record> records_;
  std::uint64_t unresolved_ = 0;
  std::uint64_t orphan_events_ = 0;
  std::vector<std::string> orphans_;
};

/// RAII installer for the process-wide endpoint probe.
class ProbeGuard {
 public:
  explicit ProbeGuard(am::MessageProbe* p) { am::Endpoint::set_probe(p); }
  ~ProbeGuard() { am::Endpoint::set_probe(nullptr); }
  ProbeGuard(const ProbeGuard&) = delete;
  ProbeGuard& operator=(const ProbeGuard&) = delete;
};

}  // namespace vnet::chaos
