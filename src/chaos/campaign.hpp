#pragma once

#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "cluster/cluster.hpp"
#include "sim/process.hpp"

namespace vnet::chaos {

/// Executes a FaultPlan against a running cluster: a sim::Process sleeps
/// until each action's time and applies it to the fabric / NICs, keeping a
/// log and the time of the last applied action (the chaos matrix measures
/// recovery as quiescence time minus that). Deterministic: the plan is
/// fixed up front and the engine orders everything.
///
/// The Campaign must stay alive until the cluster's engine stops running
/// (the runner process refers back to it).
class Campaign {
 public:
  Campaign(cluster::Cluster& cluster, FaultPlan plan);

  /// Spawns the runner process on the cluster's engine. Call once, before
  /// (or during) the run.
  void start();

  std::size_t applied() const { return applied_; }
  bool done() const { return applied_ == actions_.size(); }
  /// Time of the most recently applied action (0 if none yet).
  sim::Time last_action_time() const { return last_action_time_; }
  const std::vector<std::string>& log() const { return log_; }

 private:
  sim::Process runner();
  void apply(const FaultAction& a);

  cluster::Cluster* cluster_;
  std::vector<FaultAction> actions_;  // sorted by time
  std::size_t applied_ = 0;
  sim::Time last_action_time_ = 0;
  std::vector<std::string> log_;
  bool started_ = false;
};

}  // namespace vnet::chaos
