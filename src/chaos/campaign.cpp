#include "chaos/campaign.hpp"

#include <algorithm>
#include <cassert>

#include "am/endpoint.hpp"
#include "am/probe.hpp"
#include "lanai/nic.hpp"

namespace vnet::chaos {

Campaign::Campaign(cluster::Cluster& cluster, FaultPlan plan)
    : cluster_(&cluster), actions_(plan.actions()) {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
}

void Campaign::start() {
  assert(!started_);
  started_ = true;
  if (!actions_.empty()) cluster_->engine().spawn(runner());
}

sim::Process Campaign::runner() {
  sim::Engine& engine = cluster_->engine();
  for (const FaultAction& a : actions_) {
    if (a.at > engine.now()) co_await engine.delay(a.at - engine.now());
    apply(a);
    last_action_time_ = engine.now();
    log_.push_back(describe(a));
    VNET_TRACE_INSTANT(engine.tracer(), "chaos", log_.back(),
                       static_cast<int>(a.node >= 0 ? a.node : 0));
    ++applied_;
  }
}

void Campaign::apply(const FaultAction& a) {
  myrinet::Fabric& fabric = cluster_->fabric();
  switch (a.kind) {
    case FaultAction::Kind::kHostLink:
      if (a.node >= 0 && a.node < cluster_->size()) {
        fabric.set_host_link(a.node, a.up);
      }
      break;
    case FaultAction::Kind::kTrunkLink:
      fabric.set_trunk_link(a.node, a.port, a.up);
      break;
    case FaultAction::Kind::kNicReboot:
      if (a.node >= 0 && a.node < cluster_->size()) {
        cluster_->host(a.node).nic().reboot();
      }
      break;
    case FaultAction::Kind::kFaultRates:
      fabric.set_fault_rates(a.drop, a.corrupt);
      break;
    case FaultAction::Kind::kBurstLoss:
      fabric.set_burst_loss(a.burst);
      break;
    case FaultAction::Kind::kPoison:
      // Deliberate invariant break: a delivery for a message that was never
      // injected. The ledger records it as an orphan event, which fails the
      // scenario — exactly the planted violation the bisector test hunts.
      if (am::MessageProbe* p = am::Endpoint::probe()) {
        p->message_delivered(
            static_cast<myrinet::NodeId>(a.node < 0 ? 0 : a.node),
            /*src_ep=*/0xFFFF, /*msg_id=*/0xB0150DULL, /*is_request=*/true,
            /*at_node=*/0, /*at_ep=*/0, cluster_->engine().now());
      }
      break;
  }
}

}  // namespace vnet::chaos
