#include "chaos/ledger.hpp"

#include <cstdio>

namespace vnet::chaos {

namespace {

std::string key_str(NodeId node, EpId ep, std::uint64_t msg_id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(n%d ep%d msg%llu)", node, ep,
                static_cast<unsigned long long>(msg_id));
  return buf;
}

}  // namespace

void DeliveryLedger::message_injected(NodeId src_node, EpId src_ep,
                                      std::uint64_t msg_id, bool is_request,
                                      NodeId dst_node, sim::Time at) {
  std::lock_guard<std::mutex> lock(mu_);
  Record& r = records_[{src_node, src_ep, msg_id}];
  r.is_request = is_request;
  r.dst_node = dst_node;
  r.injected_at = at;
  ++unresolved_;
}

void DeliveryLedger::mark_terminal(Record& r, sim::Time at) {
  if (r.delivered + r.returned == 1) {  // first terminal event
    r.resolved_at = at;
    if (unresolved_ > 0) --unresolved_;
  } else if (at < r.resolved_at) {
    // Terminal events from different shards may arrive out of time order;
    // keep the earliest so the aggregate is arrival-order independent.
    r.resolved_at = at;
  }
}

void DeliveryLedger::message_delivered(NodeId src_node, EpId src_ep,
                                       std::uint64_t msg_id, bool /*is_req*/,
                                       NodeId at_node, EpId at_ep,
                                       sim::Time at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find({src_node, src_ep, msg_id});
  if (it == records_.end()) {
    ++orphan_events_;
    if (orphans_.size() < 16) {
      orphans_.push_back("delivery without injection " +
                         key_str(src_node, src_ep, msg_id) + " at node " +
                         std::to_string(at_node) + " ep " +
                         std::to_string(at_ep));
    }
    return;
  }
  ++it->second.delivered;
  mark_terminal(it->second, at);
}

void DeliveryLedger::message_returned(NodeId src_node, EpId src_ep,
                                      std::uint64_t msg_id,
                                      lanai::NackReason /*reason*/,
                                      sim::Time at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find({src_node, src_ep, msg_id});
  if (it == records_.end()) {
    ++orphan_events_;
    if (orphans_.size() < 16) {
      orphans_.push_back("return without injection " +
                         key_str(src_node, src_ep, msg_id));
    }
    return;
  }
  ++it->second.returned;
  mark_terminal(it->second, at);
}

sim::Time DeliveryLedger::last_terminal_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  sim::Time t = 0;
  for (const auto& [key, r] : records_) {
    if (r.resolved_at > t) t = r.resolved_at;
  }
  return t;
}

DeliveryLedger::Counts DeliveryLedger::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counts c;
  c.injected = records_.size();
  c.unresolved = unresolved_;
  c.orphan_events = orphan_events_;
  for (const auto& [key, r] : records_) {
    if (r.delivered > 0) ++c.delivered;
    if (r.returned > 0) ++c.returned;
    if (r.delivered > 1) {
      c.duplicate_deliveries += static_cast<std::uint64_t>(r.delivered - 1);
    }
    if (r.delivered > 0 && r.returned > 0) ++c.delivered_and_returned;
  }
  return c;
}

std::vector<std::string> DeliveryLedger::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, r] : records_) {
    const auto& [node, ep, msg_id] = key;
    if (r.delivered > 1) {
      out.push_back("duplicate delivery: " + key_str(node, ep, msg_id) +
                    " handled " + std::to_string(r.delivered) + " times");
    }
    if (r.delivered == 0 && r.returned == 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " injected at %.3f ms",
                    sim::to_msec(r.injected_at));
      out.push_back("silently lost: " + key_str(node, ep, msg_id) +
                    (r.is_request ? " request" : " reply") + " to node " +
                    std::to_string(r.dst_node) + buf);
    }
    if (out.size() >= 32) break;  // enough to diagnose
  }
  for (const auto& o : orphans_) out.push_back(o);
  return out;
}

}  // namespace vnet::chaos
