#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/json.hpp"
#include "chaos/scenario.hpp"

namespace vnet::chaos {

/// Fork-server chaos multiplication (ROADMAP item 5): warm a scenario's
/// cluster once to a checkpoint just before its first fault, then fork()
/// child timelines off that image — each applies a (possibly different)
/// fault plan and reports its verdict back over a pipe as canonical JSON.
///
/// fork() is the snapshot mechanism: the child inherits a copy-on-write
/// image of the entire simulation (event queue, coroutine frames, RNG
/// state), so a child that runs to completion is byte-equivalent to the
/// parent running straight through — a property the replay digest
/// (sim::Engine::replay_digest) asserts rather than assumes. Child crashes
/// (abort, sanitizer fault) are contained: the parent captures the exit
/// status and stderr and synthesizes a failed verdict; the matrix always
/// completes.

/// Whether this platform can fork children (false → callers fall back to
/// fresh in-process runs).
bool fork_available();

/// What came back from one child timeline.
struct ForkOutcome {
  ScenarioResult result;    ///< parsed verdict, or synthesized on crash
  bool crashed = false;     ///< child died or returned unparseable bytes
  std::string detail;       ///< e.g. "signal 6 (SIGABRT)", "exit 3"
  std::string stderr_tail;  ///< last captured child stderr (crash triage)
  std::string raw_json;     ///< verdict bytes as received (CI artifact)
};

class ForkServer {
 public:
  /// Builds the scenario and warms it, fault-free, to the checkpoint just
  /// before the earliest action of the spec's drawn plan (time 0 when the
  /// plan is empty or immediate).
  explicit ForkServer(const ScenarioSpec& spec);
  ~ForkServer();
  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  const ScenarioSpec& spec() const { return spec_; }
  const FaultPlan& default_plan() const;
  sim::Time checkpoint() const { return checkpoint_; }

  /// An in-flight child timeline. Outlives its ForkServer — collect() may
  /// run after the parent image is gone.
  struct Child {
    int pid = -1;
    int pipe_fd = -1;        ///< verdict stream (read side)
    std::FILE* err = nullptr;  ///< child stderr capture (tmpfile)
    std::string name;        ///< scenario name, for synthesized verdicts
    std::uint64_t seed = 0;
  };

  /// Forks a child off the warm image; the child applies `plan`, writes
  /// its verdict JSON to the pipe and _exit()s. The parent image stays at
  /// the checkpoint, reusable for further children (this is what makes
  /// bisection cheap: one warmup, ~log2(n) probes).
  Child start(const FaultPlan& plan);

  /// Reads the child's verdict to EOF, reaps it, and parses — or, if it
  /// crashed, synthesizes a failed verdict with the captured stderr.
  static ForkOutcome collect(Child& child);

  ForkOutcome run_child(const FaultPlan& plan) {
    Child c = start(plan);
    return collect(c);
  }

  /// Consumes the warm image in-process: the straight-through twin of a
  /// forked child, for digest-identity checks. May be called once; no
  /// start() is allowed afterwards.
  ScenarioResult run_inline(const FaultPlan& plan);
  ScenarioResult run_inline() { return run_inline(default_plan()); }

  /// Test-only: runs inside the child after fork, before the scenario
  /// resumes (the crash-containment test abort()s here).
  std::function<void()> child_hook;

 private:
  ScenarioSpec spec_;
  std::unique_ptr<ScenarioRun> run_;
  sim::Time checkpoint_ = 0;
  bool spent_ = false;
};

// ------------------------------------------------------------- the matrix

/// Runs every spec as its own warmed-then-forked timeline, up to `jobs`
/// children in flight at once (children of different cells run while the
/// parent warms the next cell). Outcomes are returned in spec order.
/// Falls back to serial in-process runs when fork() is unavailable.
std::vector<ForkOutcome> run_matrix(
    const std::vector<ScenarioSpec>& specs, int jobs,
    const std::function<void(std::size_t, const ForkOutcome&)>& on_done =
        nullptr);

// --------------------------------------------------------------- bisection

/// Where an invariant break was isolated to.
struct BisectReport {
  bool found = false;        ///< false: the full plan never failed
  std::string scenario;
  std::uint64_t seed = 0;
  sim::Time trigger_time = 0;  ///< time of the first breaking action
  FaultPlan minimal_plan;      ///< trimmed to the triggering actions
  std::size_t full_actions = 0;
  int probes = 0;              ///< forked (or fallback) probe runs used
  std::vector<std::string> log;
  ScenarioResult failing;      ///< verdict of the minimal repro run
};

/// Isolates the first invariant-breaking point of `plan` under `spec`:
/// binary-searches the smallest failing time-ordered prefix off one warm
/// image, then greedily drops earlier actions that are not needed for the
/// break. The result's minimal_plan re-fails by construction.
BisectReport bisect_invariant_break(const ScenarioSpec& spec,
                                    const FaultPlan& plan);

/// Convenience: bisects the plan the spec's own callback draws.
BisectReport bisect_invariant_break(const ScenarioSpec& spec);

/// The machine-readable repro artifact: seed, scenario, trigger time, and
/// the trimmed plan — everything needed to re-run the break.
json::Value repro_json(const BisectReport& r);

/// One-paragraph human rendering of the repro (stdout on CI failure).
std::string render_repro(const BisectReport& r);

}  // namespace vnet::chaos
