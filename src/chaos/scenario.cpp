#include "chaos/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "am/endpoint.hpp"
#include "lanai/nic.hpp"
#include "obs/metrics.hpp"

namespace vnet::chaos {

namespace {

// Client request status.
constexpr int kPending = 0;
constexpr int kReplied = 1;
constexpr int kReturnedFinal = 2;  // returned, no failover -> terminal

struct SharedState {
  am::Name server_name;
  am::Name replica_name;
  int published = 0;
  int clients_done = 0;
  bool stop = false;

  std::uint64_t issued = 0;
  std::uint64_t replies = 0;
  std::uint64_t returns = 0;
  std::uint64_t reissued = 0;
  std::uint64_t unfinished = 0;
};

cluster::ClusterConfig make_config(const ScenarioSpec& spec) {
  const int nodes = 3 + spec.clients;
  cluster::ClusterConfig cfg = cluster::NowConfig(nodes);
  cfg.seed = spec.seed;
  if (spec.fat_tree) {
    cfg.topology = cluster::ClusterConfig::Topology::kFatTree;
    cfg.hosts_per_leaf = 2;
    cfg.spines = 2;
  } else {
    cfg.topology = cluster::ClusterConfig::Topology::kCrossbar;
  }
  // Campaigns run for tens of simulated milliseconds, so tighten the
  // transport's patience relative to the 1 s production default.
  cfg.nic.retransmit_timeout = 200 * sim::us;
  cfg.nic.unreachable_timeout = 10 * sim::ms;
  if (spec.tweak) spec.tweak(cfg);
  return cfg;
}

}  // namespace

// ----------------------------------------------------------- ScenarioRun

// Declaration order is destruction safety (reverse order teardown):
// `parked` (endpoints) must die before the cluster whose NICs they detach
// from; the ProbeGuard must uninstall before the ledger goes away; the
// Campaign refers to the cluster.
struct ScenarioRun::Impl {
  explicit Impl(const ScenarioSpec& s)
      : spec(s),
        cfg(make_config(s)),
        cluster(cfg),
        probe_guard(&ledger),
        plan_rng(cluster.engine().rng().split()),
        plan(s.plan ? s.plan(cluster, plan_rng) : FaultPlan{}) {
    arm_watchdog();
    spawn_workload();
  }

  void arm_watchdog() {
    // Stall watchdog: once per window, diff the registry and name any
    // component that stopped making progress (see obs/watchdog.hpp). The
    // periodic check must stop once the controller declares the run over,
    // or the post-run engine().run() drain would never terminate.
    wcfg.window_ns = 500 * sim::us;
    wcfg.link_ns_per_byte = cfg.fabric.link.ns_per_byte;
    watchdog = std::make_unique<obs::Watchdog>(cluster.engine().metrics(),
                                               wcfg);
    watchdog->set_on_fire([this](const obs::WatchdogEvent& ev) {
      (void)ev;
      VNET_TRACE_INSTANT(cluster.engine().tracer(), "watchdog",
                         ev.rule + " " + ev.subject, 0, 0, {});
    });
    cluster.engine().every(wcfg.window_ns, [this] {
      if (sh.stop) return false;
      watchdog->check(cluster.engine().now());
      return true;
    });
  }

  void spawn_workload() {
    // --- servers: node 1 = primary, node 2 = replica (echo service) ---
    auto server_body = [this](am::Name* slot, std::uint64_t tag)
        -> cluster::Cluster::ThreadBody {
      return [this, slot, tag](host::HostThread& t) -> sim::Task<> {
        auto ep = co_await am::Endpoint::create(t, tag);
        ep->set_handler(1, [](am::Endpoint&, const am::Message& m) {
          m.reply(2, {m.arg(0)});
        });
        // Replies to crashed/unreachable clients just come back; count is
        // in the ledger, the server has no recovery to do.
        ep->set_undeliverable_handler(
            [](am::Endpoint&, am::ReturnedMessage) {});
        *slot = ep->name();
        ++sh.published;
        while (!sh.stop) {
          // Arrivals only: kEventSendSpace is level-triggered and nearly
          // always true for an idle endpoint, so a blanket mask would make
          // this wait never block and the loop spin-poll for the whole run.
          (void)co_await ep->wait_events_for(t, am::kEventArrivals,
                                             1 * sim::ms);
          co_await ep->poll(t, 64);
        }
        while (co_await ep->poll(t, 64) > 0) {
        }
        // Park instead of destroying: late retransmissions / returns for
        // this endpoint must still reach the ledger after the thread exits.
        parked.push_back(std::move(ep));
      };
    };
    cluster.spawn_thread(1, "server", server_body(&sh.server_name, 0xA11CE));
    cluster.spawn_thread(2, "replica", server_body(&sh.replica_name, 0xB0B));

    // --- clients: nodes 3 .. 3+clients ---
    for (int c = 0; c < spec.clients; ++c) {
      cluster.spawn_thread(
          3 + c, "client" + std::to_string(c),
          [this, c](host::HostThread& t) -> sim::Task<> {
            auto ep =
                co_await am::Endpoint::create(t, 0xC0000 + std::uint64_t(c));
            const int n = spec.requests_per_client;
            std::vector<int> status(static_cast<std::size_t>(n), kPending);
            std::vector<int> reissue_queue;

            ep->set_handler(2, [this, &status](am::Endpoint&,
                                               const am::Message& m) {
              ++sh.replies;
              const std::size_t i = static_cast<std::size_t>(m.arg(0));
              if (i < status.size()) status[i] = kReplied;
            });
            ep->set_undeliverable_handler(
                [this, &status, &reissue_queue](am::Endpoint&,
                                                am::ReturnedMessage r) {
                  ++sh.returns;
                  if (!r.descriptor.body.is_request) return;
                  const std::size_t i =
                      static_cast<std::size_t>(r.descriptor.body.args[0]);
                  if (i >= status.size() || status[i] != kPending) return;
                  if (spec.failover) {
                    reissue_queue.push_back(static_cast<int>(i));
                  } else {
                    status[i] = kReturnedFinal;
                  }
                });
            while (sh.published < 2) co_await t.sleep(100 * sim::us);
            ep->map(0, sh.server_name);
            ep->map(1, sh.replica_name);

            for (int i = 0; i < n; ++i) {
              if (spec.bulk_bytes > 0) {
                co_await ep->request_bulk(t, 0, 1, spec.bulk_bytes, nullptr,
                                          static_cast<std::uint64_t>(i));
              } else {
                co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
              }
              ++sh.issued;
              co_await ep->poll(t, 4);
              if (spec.send_spacing > 0) co_await t.sleep(spec.send_spacing);
            }

            auto pending = [&status] {
              return static_cast<std::uint64_t>(
                  std::count(status.begin(), status.end(), kPending));
            };
            auto flush_reissues = [&](host::HostThread& th) -> sim::Task<> {
              while (!reissue_queue.empty()) {
                const int idx = reissue_queue.back();
                reissue_queue.pop_back();
                if (status[static_cast<std::size_t>(idx)] != kPending) {
                  continue;
                }
                co_await ep->request(th, 1, 1,
                                     static_cast<std::uint64_t>(idx));
                ++sh.reissued;
                ++sh.issued;
              }
            };

            sim::Time deadline = t.engine().now() + spec.client_deadline;
            while (pending() > 0 && t.engine().now() < deadline) {
              co_await flush_reissues(t);
              (void)co_await ep->wait_events_for(t, am::kEventArrivals,
                                                 500 * sim::us);
              co_await ep->poll(t, 64);
            }

            if (spec.failover && pending() > 0) {
              // Requests that are neither acked nor returned at the
              // deadline were (probably) delivered but their replies died
              // with the primary — the inherent ambiguity of §3.2. Re-issue
              // them all to the replica; the service must be idempotent.
              for (int i = 0; i < n; ++i) {
                if (status[static_cast<std::size_t>(i)] != kPending) {
                  continue;
                }
                co_await ep->request(t, 1, 1,
                                     static_cast<std::uint64_t>(i));
                ++sh.reissued;
                ++sh.issued;
              }
              deadline = t.engine().now() + spec.client_deadline;
              while (pending() > 0 && t.engine().now() < deadline) {
                co_await flush_reissues(t);
                (void)co_await ep->wait_events_for(t, am::kEventArrivals,
                                                   500 * sim::us);
                co_await ep->poll(t, 64);
              }
            }

            sh.unfinished += pending();
            ++sh.clients_done;
            while (!sh.stop) {
              (void)co_await ep->wait_events_for(t, am::kEventArrivals,
                                                 1 * sim::ms);
              co_await ep->poll(t, 64);
            }
            while (co_await ep->poll(t, 64) > 0) {
            }
            parked.push_back(std::move(ep));
          });
    }

    // --- controller: node 0, gates shutdown on ledger quiescence ---
    cluster.spawn_thread(
        0, "controller", [this](host::HostThread& t) -> sim::Task<> {
          while (sh.clients_done < spec.clients) {
            co_await t.sleep(1 * sim::ms);
          }
          const sim::Time grace_end = t.engine().now() + spec.resolve_grace;
          while (!ledger.fully_resolved() && t.engine().now() < grace_end) {
            co_await t.sleep(500 * sim::us);
          }
          sh.stop = true;
        });
  }

  ScenarioResult finish(const FaultPlan& run_plan) {
    campaign = std::make_unique<Campaign>(cluster, run_plan);
    campaign->start();
    cluster.run_to_completion();
    const sim::Time done_at = cluster.now();
    // Drain trailing transport events (retransmit / unreachable timers are
    // all bounded, so the queues empty) so every message reaches a
    // terminal state before the ledger is judged.
    cluster.drain();

    ScenarioResult res;
    res.name = spec.name;
    res.seed = spec.seed;
    res.counts = ledger.counts();
    res.violations = ledger.violations();

    // Liveness: no endpoint may end the campaign with a wedged send queue
    // (every descriptor must complete or be returned-and-swept). Credits
    // and undrained receive entries are judged by the ledger instead: a
    // dead server legitimately strands client credits.
    for (const auto& ep : parked) {
      if (!ep->state().send_queue.empty()) {
        res.violations.push_back(
            "wedged send queue: node " + std::to_string(ep->state().node) +
            " ep " + std::to_string(ep->state().id) + " holds " +
            std::to_string(ep->state().send_queue.size()) + " descriptors");
      }
    }

    res.requests_issued = sh.issued;
    res.replies_received = sh.replies;
    res.returns_seen = sh.returns;
    res.reissued = sh.reissued;
    res.unfinished = sh.unfinished;

    const obs::Snapshot snap = cluster.merged_snapshot();
    res.retransmissions = snap.sum_counters("host.", ".nic.retransmissions");
    res.timeouts = snap.sum_counters("host.", ".nic.timeouts");
    res.channel_unbinds = snap.sum_counters("host.", ".nic.channel_unbinds");
    res.duplicates_suppressed =
        snap.sum_counters("host.", ".nic.duplicates_suppressed");
    res.returned_to_sender =
        snap.sum_counters("host.", ".nic.returned_to_sender");
    res.dropped_down = snap.sum_counters("fabric.link.", ".drops_down");
    res.dropped_fault = snap.sum_counters("fabric.link.", ".drops_fault");

    res.last_fault_at = campaign->last_action_time();
    res.resolved_at = ledger.last_terminal_time();
    res.recovery_time = std::max<sim::Duration>(
        0, ledger.last_terminal_time() - campaign->last_action_time());
    res.total_time = done_at;  // the timeline always starts at t = 0
    res.campaign_log = campaign->log();
    res.link_stats = obs::render_table(snap, "fabric.link");
    res.watchdog_events = watchdog->events();
    res.watchdog_summary = watchdog->render_summary();
    res.replay_digest = cluster.replay_digest();
    res.events_processed = cluster.events_processed();
    return res;
  }

  ScenarioSpec spec;
  cluster::ClusterConfig cfg;
  cluster::Cluster cluster;
  DeliveryLedger ledger;
  ProbeGuard probe_guard;
  sim::Rng plan_rng;
  FaultPlan plan;
  std::unique_ptr<Campaign> campaign;
  SharedState sh;
  std::vector<std::unique_ptr<am::Endpoint>> parked;
  obs::WatchdogConfig wcfg;
  std::unique_ptr<obs::Watchdog> watchdog;
};

ScenarioRun::ScenarioRun(const ScenarioSpec& spec)
    : impl_(std::make_unique<Impl>(spec)) {}

ScenarioRun::~ScenarioRun() = default;

const FaultPlan& ScenarioRun::default_plan() const { return impl_->plan; }

sim::Time ScenarioRun::checkpoint_for(const FaultPlan& plan) const {
  sim::Time first = 0;
  bool any = false;
  for (const FaultAction& a : plan.actions()) {
    if (!any || a.at < first) first = a.at;
    any = true;
  }
  if (!any || first == 0) return 0;
  return first - 1;
}

void ScenarioRun::warm(sim::Time t) {
  if (t > 0) impl_->cluster.run_until(t);
}

ScenarioResult ScenarioRun::finish(const FaultPlan& plan) {
  return impl_->finish(plan);
}

sim::Engine& ScenarioRun::engine() { return impl_->cluster.engine(); }

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioRun run(spec);
  return run.finish();
}

// ------------------------------------------------- standard scenarios

std::vector<std::string> standard_scenario_names() {
  return {"link_flap", "burst_loss",  "nic_reboot",
          "host_failover", "trunk_flap", "chaos"};
}

ScenarioSpec standard_scenario(const std::string& name, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = name;
  s.seed = seed;

  if (name == "link_flap") {
    // The server's cable bounces twice mid-run; stop-and-wait channels
    // must retransmit through it with no application help.
    s.requests_per_client = 30;
    s.plan = [](cluster::Cluster&, sim::Rng&) {
      return FaultPlan{}
          .host_flap(2 * sim::ms, 1, 1500 * sim::us)
          .host_flap(6 * sim::ms, 1, 1 * sim::ms);
    };
    return s;
  }

  if (name == "burst_loss") {
    // Correlated Gilbert–Elliott losses over most of the run: the backoff
    // and duplicate-suppression machinery under sustained stress.
    s.requests_per_client = 40;
    s.plan = [](cluster::Cluster&, sim::Rng&) {
      myrinet::GilbertElliottParams ge;
      ge.enabled = true;
      ge.p_good_to_bad = 0.01;
      ge.p_bad_to_good = 0.08;
      ge.loss_bad = 0.8;
      return FaultPlan{}.burst_episode(500 * sim::us, 12 * sim::ms, ge);
    };
    return s;
  }

  if (name == "nic_reboot") {
    // NIC SRAM state (channels, epochs) is lost mid-bulk-transfer on both
    // a receiver and a sender; host-resident endpoint state must carry the
    // reassembly and dedup windows across, and epochs must resync.
    s.requests_per_client = 8;
    s.bulk_bytes = 16384;
    s.plan = [](cluster::Cluster&, sim::Rng&) {
      return FaultPlan{}
          .nic_reboot(1200 * sim::us, 1)   // server NIC (receiver side)
          .nic_reboot(2500 * sim::us, 1)   // and again, for stale epochs
          .nic_reboot(4 * sim::ms, 3);     // a client NIC (sender side)
    };
    return s;
  }

  if (name == "host_failover") {
    // The fault_tolerance example as a checked scenario: primary dies for
    // good; every request must come back undeliverable (or have been
    // answered) and the client re-issues to the replica.
    s.requests_per_client = 20;
    s.failover = true;
    s.plan = [](cluster::Cluster&, sim::Rng&) {
      return FaultPlan{}.host_link(2 * sim::ms, 1, false);
    };
    return s;
  }

  if (name == "trunk_flap") {
    // Fat-tree: one leaf<->spine trunk fails; multi-path logical channels
    // must unbind off the dead route and fail over to the other spine.
    s.fat_tree = true;
    s.requests_per_client = 30;
    s.tweak = [](cluster::ClusterConfig& cfg) {
      // Unbind well before the unreachable timeout so route failover (not
      // return-to-sender) is what resolves the messages.
      cfg.nic.retransmit_unbind_limit = 3;
      cfg.nic.max_backoff_exponent = 2;
    };
    s.plan = [](cluster::Cluster&, sim::Rng&) {
      return FaultPlan{}.trunk_flap(1500 * sim::us, 0, 0, 4 * sim::ms);
    };
    return s;
  }

  if (name == "chaos") {
    // Randomized self-healing timeline drawn from the engine-seeded Rng.
    s.requests_per_client = 30;
    s.client_deadline = 80 * sim::ms;
    s.plan = [](cluster::Cluster& cl, sim::Rng& rng) {
      ChaosOptions opt;
      opt.first_node = 1;  // never fault the controller's node
      opt.nodes = cl.size();
      opt.events = 8;
      opt.end = 20 * sim::ms;
      return FaultPlan::chaos_mode(rng, opt);
    };
    return s;
  }

  throw std::invalid_argument("unknown scenario: " + name);
}

// ------------------------------------------------- report formatting

std::string result_table_header() {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s %5s %5s %5s %5s %4s %6s %6s %7s %6s %6s %9s",
                "scenario", "seed", "sent", "dlvd", "retd", "dup", "rexmt",
                "unbnd", "dropped", "viol", "stall", "recover");
  return buf;
}

std::string result_table_row(const ScenarioResult& r) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%-14s %5llu %5llu %5llu %5llu %4llu %6llu %6llu %7llu %6zu %6zu "
      "%7.2fms",
      r.name.c_str(), static_cast<unsigned long long>(r.seed),
      static_cast<unsigned long long>(r.counts.injected),
      static_cast<unsigned long long>(r.counts.delivered),
      static_cast<unsigned long long>(r.counts.returned),
      static_cast<unsigned long long>(r.counts.duplicate_deliveries),
      static_cast<unsigned long long>(r.retransmissions),
      static_cast<unsigned long long>(r.channel_unbinds),
      static_cast<unsigned long long>(r.dropped_down + r.dropped_fault),
      r.violations.size(), r.watchdog_events.size(),
      sim::to_msec(r.recovery_time));
  return buf;
}

// ------------------------------------------------- verdict round-trip

bool verdict_ok(const ScenarioResult& r) {
  return r.violations.empty() && r.counts.duplicate_deliveries == 0 &&
         r.counts.unresolved == 0 && r.counts.orphan_events == 0;
}

json::Value verdict_json(const ScenarioResult& r) {
  json::Value v;
  v["name"] = json::Value(r.name);
  v["seed"] = json::Value(r.seed);
  v["ok"] = json::Value(verdict_ok(r));

  json::Value counts;
  counts["injected"] = json::Value(r.counts.injected);
  counts["delivered"] = json::Value(r.counts.delivered);
  counts["returned"] = json::Value(r.counts.returned);
  counts["duplicate_deliveries"] = json::Value(r.counts.duplicate_deliveries);
  counts["delivered_and_returned"] =
      json::Value(r.counts.delivered_and_returned);
  counts["unresolved"] = json::Value(r.counts.unresolved);
  counts["orphan_events"] = json::Value(r.counts.orphan_events);
  v["counts"] = std::move(counts);

  json::Value viol{json::Value::Array{}};
  for (const std::string& s : r.violations) viol.push_back(json::Value(s));
  v["violations"] = std::move(viol);

  json::Value app;
  app["requests_issued"] = json::Value(r.requests_issued);
  app["replies_received"] = json::Value(r.replies_received);
  app["returns_seen"] = json::Value(r.returns_seen);
  app["reissued"] = json::Value(r.reissued);
  app["unfinished"] = json::Value(r.unfinished);
  v["app"] = std::move(app);

  json::Value tp;
  tp["retransmissions"] = json::Value(r.retransmissions);
  tp["timeouts"] = json::Value(r.timeouts);
  tp["channel_unbinds"] = json::Value(r.channel_unbinds);
  tp["duplicates_suppressed"] = json::Value(r.duplicates_suppressed);
  tp["returned_to_sender"] = json::Value(r.returned_to_sender);
  tp["dropped_down"] = json::Value(r.dropped_down);
  tp["dropped_fault"] = json::Value(r.dropped_fault);
  v["transport"] = std::move(tp);

  v["last_fault_at_ns"] = json::Value(static_cast<std::int64_t>(r.last_fault_at));
  v["resolved_at_ns"] = json::Value(static_cast<std::int64_t>(r.resolved_at));
  v["recovery_ns"] = json::Value(static_cast<std::int64_t>(r.recovery_time));
  v["total_ns"] = json::Value(static_cast<std::int64_t>(r.total_time));

  json::Value log{json::Value::Array{}};
  for (const std::string& s : r.campaign_log) log.push_back(json::Value(s));
  v["campaign_log"] = std::move(log);
  v["link_stats"] = json::Value(r.link_stats);

  json::Value stalls{json::Value::Array{}};
  for (const obs::WatchdogEvent& ev : r.watchdog_events) {
    json::Value e;
    e["at_ns"] = json::Value(ev.at_ns);
    e["rule"] = json::Value(ev.rule);
    e["subject"] = json::Value(ev.subject);
    e["detail"] = json::Value(ev.detail);
    stalls.push_back(std::move(e));
  }
  v["stalls"] = std::move(stalls);
  v["watchdog_summary"] = json::Value(r.watchdog_summary);

  v["replay_digest"] = json::hex_u64(r.replay_digest);
  v["events_processed"] = json::Value(r.events_processed);
  return v;
}

ScenarioResult verdict_from_json(const json::Value& v) {
  ScenarioResult r;
  r.name = v["name"].as_string();
  r.seed = static_cast<std::uint64_t>(v["seed"].as_int());

  const json::Value& c = v["counts"];
  r.counts.injected = static_cast<std::uint64_t>(c["injected"].as_int());
  r.counts.delivered = static_cast<std::uint64_t>(c["delivered"].as_int());
  r.counts.returned = static_cast<std::uint64_t>(c["returned"].as_int());
  r.counts.duplicate_deliveries =
      static_cast<std::uint64_t>(c["duplicate_deliveries"].as_int());
  r.counts.delivered_and_returned =
      static_cast<std::uint64_t>(c["delivered_and_returned"].as_int());
  r.counts.unresolved = static_cast<std::uint64_t>(c["unresolved"].as_int());
  r.counts.orphan_events =
      static_cast<std::uint64_t>(c["orphan_events"].as_int());

  for (const json::Value& s : v["violations"].as_array()) {
    r.violations.push_back(s.as_string());
  }

  const json::Value& app = v["app"];
  r.requests_issued =
      static_cast<std::uint64_t>(app["requests_issued"].as_int());
  r.replies_received =
      static_cast<std::uint64_t>(app["replies_received"].as_int());
  r.returns_seen = static_cast<std::uint64_t>(app["returns_seen"].as_int());
  r.reissued = static_cast<std::uint64_t>(app["reissued"].as_int());
  r.unfinished = static_cast<std::uint64_t>(app["unfinished"].as_int());

  const json::Value& tp = v["transport"];
  r.retransmissions =
      static_cast<std::uint64_t>(tp["retransmissions"].as_int());
  r.timeouts = static_cast<std::uint64_t>(tp["timeouts"].as_int());
  r.channel_unbinds =
      static_cast<std::uint64_t>(tp["channel_unbinds"].as_int());
  r.duplicates_suppressed =
      static_cast<std::uint64_t>(tp["duplicates_suppressed"].as_int());
  r.returned_to_sender =
      static_cast<std::uint64_t>(tp["returned_to_sender"].as_int());
  r.dropped_down = static_cast<std::uint64_t>(tp["dropped_down"].as_int());
  r.dropped_fault = static_cast<std::uint64_t>(tp["dropped_fault"].as_int());

  r.last_fault_at = static_cast<sim::Time>(v["last_fault_at_ns"].as_int());
  r.resolved_at = static_cast<sim::Time>(v["resolved_at_ns"].as_int());
  r.recovery_time = static_cast<sim::Duration>(v["recovery_ns"].as_int());
  r.total_time = static_cast<sim::Duration>(v["total_ns"].as_int());

  for (const json::Value& s : v["campaign_log"].as_array()) {
    r.campaign_log.push_back(s.as_string());
  }
  r.link_stats = v["link_stats"].as_string();

  for (const json::Value& e : v["stalls"].as_array()) {
    obs::WatchdogEvent ev;
    ev.at_ns = e["at_ns"].as_int();
    ev.rule = e["rule"].as_string();
    ev.subject = e["subject"].as_string();
    ev.detail = e["detail"].as_string();
    r.watchdog_events.push_back(std::move(ev));
  }
  r.watchdog_summary = v["watchdog_summary"].as_string();

  r.replay_digest = json::parse_hex_u64(v["replay_digest"]);
  r.events_processed =
      static_cast<std::uint64_t>(v["events_processed"].as_int());
  return r;
}

}  // namespace vnet::chaos
