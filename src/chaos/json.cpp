#include "chaos/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vnet::chaos::json {

// ------------------------------------------------------------- serializer

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::fabs(d) < 9.0e15) {
    // Integral values print without a fraction, so counts and times are
    // byte-stable and grep-able.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(d)));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Value& v : a) {
      if (!first) out += ',';
      first = false;
      if (indent >= 0) newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    if (indent >= 0) newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out += ',';
      first = false;
      if (indent >= 0) newline_indent(out, indent, depth + 1);
      append_escaped(out, k);
      out += indent >= 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    if (indent >= 0) newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return Value(std::string(buf));
}

std::uint64_t parse_hex_u64(const Value& v, std::uint64_t fallback) {
  const std::string& s = v.as_string();
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return fallback;
  }
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return fallback;
    }
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return out;
}

// ----------------------------------------------------------------- parser

namespace {

// Recursive-descent over the document text. Depth-limited so hostile input
// (a CI artifact edited by hand, a truncated pipe read) fails cleanly.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : p_(text.data()), end_(text.data() + text.size()), error_(error) {}

  bool parse_document(Value* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* msg) {
    if (error_ != nullptr && error_->empty()) *error_ = msg;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::strncmp(p_, word, n) != 0) {
      return fail("invalid literal");
    }
    p_ += n;
    return true;
  }

  bool parse_string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return fail("unterminated escape");
      switch (*p_++) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (end_ - p_ < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // Verdicts are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case 'n':
        if (!literal("null")) return false;
        *out = Value(nullptr);
        return true;
      case 't':
        if (!literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = Value(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case '[': {
        ++p_;
        Value::Array a;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          *out = Value(std::move(a));
          return true;
        }
        for (;;) {
          Value v;
          skip_ws();
          if (!parse_value(&v, depth + 1)) return false;
          a.push_back(std::move(v));
          skip_ws();
          if (p_ == end_) return fail("unterminated array");
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == ']') {
            ++p_;
            *out = Value(std::move(a));
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++p_;
        Value::Object o;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          *out = Value(std::move(o));
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          skip_ws();
          Value v;
          if (!parse_value(&v, depth + 1)) return false;
          o[std::move(key)] = std::move(v);
          skip_ws();
          if (p_ == end_) return fail("unterminated object");
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == '}') {
            ++p_;
            *out = Value(std::move(o));
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      default: {
        // Number.
        char* num_end = nullptr;
        const double d = std::strtod(p_, &num_end);
        if (num_end == p_) return fail("expected a JSON value");
        p_ = num_end;
        *out = Value(d);
        return true;
      }
    }
  }

  const char* p_;
  const char* end_;
  std::string* error_;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  return parser.parse_document(out);
}

}  // namespace vnet::chaos::json
