#include "chaos/forkserver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "sim/shard.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define VNET_HAVE_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define VNET_HAVE_FORK 0
#endif

namespace vnet::chaos {

bool fork_available() { return VNET_HAVE_FORK != 0; }

// ------------------------------------------------------------- ForkServer

ForkServer::ForkServer(const ScenarioSpec& spec)
    : spec_(spec), run_(std::make_unique<ScenarioRun>(spec)) {
  checkpoint_ = run_->checkpoint_for(run_->default_plan());
  run_->warm(checkpoint_);
}

ForkServer::~ForkServer() = default;

const FaultPlan& ForkServer::default_plan() const {
  return run_->default_plan();
}

namespace {

#if VNET_HAVE_FORK

// Writes the whole buffer, riding out EINTR/partial writes.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // reader gone; nothing useful to do in the child
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string decode_status(int status) {
  char buf[64];
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    std::snprintf(buf, sizeof buf, "signal %d (%s)", sig, strsignal(sig));
  } else if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof buf, "exit %d", WEXITSTATUS(status));
  } else {
    std::snprintf(buf, sizeof buf, "status 0x%x", status);
  }
  return buf;
}

// Last ~8 KB of the child's captured stderr — enough for an assertion
// message or the head of a sanitizer report without flooding the table.
std::string stderr_tail(std::FILE* f) {
  if (f == nullptr) return {};
  std::fflush(f);
  if (std::fseek(f, 0, SEEK_END) != 0) return {};
  const long size = std::ftell(f);
  if (size <= 0) return {};
  constexpr long kTail = 8192;
  const long start = size > kTail ? size - kTail : 0;
  if (std::fseek(f, start, SEEK_SET) != 0) return {};
  std::string out(static_cast<std::size_t>(size - start), '\0');
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  return out;
}

#endif  // VNET_HAVE_FORK

// A verdict for a child that never reported: every invariant marked broken
// so no aggregation path can mistake a dead child for a passing cell.
ScenarioResult crashed_result(const std::string& name, std::uint64_t seed,
                              const std::string& detail) {
  ScenarioResult r;
  r.name = name;
  r.seed = seed;
  r.violations.push_back("child timeline died before reporting: " + detail);
  return r;
}

}  // namespace

ForkServer::Child ForkServer::start(const FaultPlan& plan) {
  Child child;
  child.name = spec_.name;
  child.seed = spec_.seed;
#if VNET_HAVE_FORK
  if (spent_) {
    return child;  // collect() on pid -1 synthesizes a crash verdict
  }
  int fds[2];
  if (::pipe(fds) != 0) return child;
  std::FILE* err = std::tmpfile();

  // Fork-before-threads ordering (DESIGN.md §13): fork() duplicates only
  // the calling thread, so a live shard worker would leave the child with
  // a barrier nobody else ever reaches. The warmed scenario must have been
  // built with shard_threads = false (ScenarioRun::warm always runs
  // single-threaded windows, but a caller could have run the cluster
  // threaded first) — refuse to fork a multi-threaded process.
  if (sim::ShardGroup::live_workers() != 0) {
    std::fprintf(stderr,
                 "ForkServer: %d shard worker thread(s) alive at fork(); "
                 "run the warmup with shard_threads=false\n",
                 sim::ShardGroup::live_workers());
    std::abort();
  }

  // Flush before fork: buffered bytes would otherwise be written twice,
  // once by each process.
  std::fflush(stdout);
  std::fflush(stderr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    if (err != nullptr) std::fclose(err);
    return child;
  }

  if (pid == 0) {
    // Child timeline: divert stderr into the capture file so an abort or
    // sanitizer report lands somewhere the parent can read, resume the
    // simulation with this child's fault plan, ship the verdict, and
    // _exit without running destructors or flushing shared stdio.
    ::close(fds[0]);
    if (err != nullptr) ::dup2(fileno(err), 2);
    if (child_hook) child_hook();
    const ScenarioResult res = run_->finish(plan);
    const std::string verdict = verdict_json(res).dump();
    write_all(fds[1], verdict.data(), verdict.size());
    ::close(fds[1]);
    ::_exit(0);
  }

  // Parent: the warm image is untouched; hand the pipe to collect().
  ::close(fds[1]);
  child.pid = pid;
  child.pipe_fd = fds[0];
  child.err = err;
#else
  (void)plan;
#endif
  return child;
}

ForkOutcome ForkServer::collect(Child& child) {
  ForkOutcome out;
#if VNET_HAVE_FORK
  if (child.pid < 0) {
    out.crashed = true;
    out.detail = "fork failed";
    out.result = crashed_result(child.name, child.seed, out.detail);
    return out;
  }
  // Read the verdict to EOF *before* reaping: a verdict larger than the
  // pipe buffer would otherwise deadlock the child against waitpid().
  out.raw_json = read_to_eof(child.pipe_fd);
  ::close(child.pipe_fd);
  child.pipe_fd = -1;

  int status = 0;
  while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
  }
  child.pid = -1;
  out.stderr_tail = stderr_tail(child.err);
  if (child.err != nullptr) {
    std::fclose(child.err);
    child.err = nullptr;
  }

  const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  json::Value v;
  std::string parse_error;
  if (clean_exit && !out.raw_json.empty() &&
      json::parse(out.raw_json, &v, &parse_error)) {
    out.result = verdict_from_json(v);
    return out;
  }
  out.crashed = true;
  out.detail = !clean_exit ? decode_status(status)
               : out.raw_json.empty()
                   ? "empty verdict"
                   : "unparseable verdict: " + parse_error;
  out.result = crashed_result(child.name, child.seed, out.detail);
#else
  out.crashed = true;
  out.detail = "fork() unavailable on this platform";
  out.result = crashed_result(child.name, child.seed, out.detail);
#endif
  return out;
}

ScenarioResult ForkServer::run_inline(const FaultPlan& plan) {
  spent_ = true;
  return run_->finish(plan);
}

// ------------------------------------------------------------- the matrix

std::vector<ForkOutcome> run_matrix(
    const std::vector<ScenarioSpec>& specs, int jobs,
    const std::function<void(std::size_t, const ForkOutcome&)>& on_done) {
  std::vector<ForkOutcome> outcomes(specs.size());
  if (!fork_available()) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i].result = run_scenario(specs[i]);
      if (on_done) on_done(i, outcomes[i]);
    }
    return outcomes;
  }

  jobs = std::max(1, jobs);
  std::deque<std::pair<std::size_t, ForkServer::Child>> inflight;
  auto drain_one = [&] {
    auto [idx, child] = std::move(inflight.front());
    inflight.pop_front();
    outcomes[idx] = ForkServer::collect(child);
    if (on_done) on_done(idx, outcomes[idx]);
  };

  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Warm in the parent, fork the fault phase, discard the warm image:
    // the child keeps its copy-on-write snapshot. Children of earlier
    // cells keep running while the next cell warms.
    ForkServer server(specs[i]);
    inflight.emplace_back(i, server.start(server.default_plan()));
    while (static_cast<int>(inflight.size()) >= jobs) drain_one();
  }
  while (!inflight.empty()) drain_one();
  return outcomes;
}

// --------------------------------------------------------------- bisection

namespace {

std::vector<FaultAction> time_sorted(const FaultPlan& plan) {
  std::vector<FaultAction> actions = plan.actions();
  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return actions;
}

FaultPlan plan_of(const std::vector<FaultAction>& actions) {
  FaultPlan p;
  for (const FaultAction& a : actions) p.append(a);
  return p;
}

// One probe: does this trimmed plan still break an invariant? Forked off
// the shared warm image when possible, fresh in-process run otherwise.
struct Prober {
  const ScenarioSpec& spec;
  std::unique_ptr<ForkServer> server;
  int probes = 0;
  ScenarioResult last_failing;

  explicit Prober(const ScenarioSpec& s) : spec(s) {
    if (fork_available()) server = std::make_unique<ForkServer>(s);
  }

  bool fails(const FaultPlan& plan) {
    ++probes;
    const ScenarioResult res = server != nullptr
                                   ? server->run_child(plan).result
                                   : ScenarioRun(spec).finish(plan);
    const bool broke = !verdict_ok(res);
    if (broke) last_failing = res;
    return broke;
  }
};

}  // namespace

BisectReport bisect_invariant_break(const ScenarioSpec& spec,
                                    const FaultPlan& plan) {
  BisectReport report;
  report.scenario = spec.name;
  report.seed = spec.seed;
  report.full_actions = plan.size();

  const std::vector<FaultAction> actions = time_sorted(plan);
  Prober prober(spec);

  if (actions.empty() || !prober.fails(plan_of(actions))) {
    report.probes = prober.probes;
    report.log.push_back("full plan upholds every invariant; nothing to "
                         "bisect");
    return report;
  }
  report.found = true;
  report.log.push_back("full plan (" + std::to_string(actions.size()) +
                       " actions) breaks an invariant");

  // Phase 1: smallest failing time-ordered prefix. Invariant breaks are
  // monotone in the prefix — the empty prefix passes (the fault-free
  // workload is the tier-1 baseline), the full plan fails — so binary
  // search isolates the first scenario time at which the verdict flips.
  std::size_t lo = 1, hi = actions.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::vector<FaultAction> prefix(actions.begin(),
                                          actions.begin() + mid);
    if (prober.fails(plan_of(prefix))) {
      hi = mid;
      report.log.push_back("prefix of " + std::to_string(mid) + " fails");
    } else {
      lo = mid + 1;
      report.log.push_back("prefix of " + std::to_string(mid) + " passes");
    }
  }
  std::vector<FaultAction> minimal(actions.begin(), actions.begin() + lo);
  report.trigger_time = minimal.back().at;
  report.log.push_back(
      "first break at action " + std::to_string(lo) + " (t = " +
      std::to_string(report.trigger_time) + " ns): " +
      describe(minimal.back()));

  // Phase 2: the trigger may need none of the earlier actions — drop each
  // in turn (latest first, most likely redundant) if the break survives
  // without it.
  for (std::size_t i = minimal.size() - 1; i-- > 0;) {
    std::vector<FaultAction> trimmed = minimal;
    trimmed.erase(trimmed.begin() + static_cast<std::ptrdiff_t>(i));
    if (prober.fails(plan_of(trimmed))) {
      report.log.push_back("dropped redundant action: " +
                           describe(minimal[i]));
      minimal = std::move(trimmed);
    }
  }

  report.minimal_plan = plan_of(minimal);
  report.failing = prober.last_failing;
  // The minimization loop's last probe may have been a pass; re-assert the
  // minimal plan fails so `failing` is its verdict.
  if (verdict_ok(report.failing)) prober.fails(report.minimal_plan);
  report.failing = prober.last_failing;
  report.probes = prober.probes;
  return report;
}

BisectReport bisect_invariant_break(const ScenarioSpec& spec) {
  // Draw the spec's plan without running anything: the ScenarioRun ctor
  // evaluates the plan callback with the same RNG history every probe uses.
  // (Copy the plan out before the run dies — default_plan() is a ref.)
  ScenarioRun draw(spec);
  const FaultPlan plan = draw.default_plan();
  return bisect_invariant_break(spec, plan);
}

json::Value repro_json(const BisectReport& r) {
  json::Value v;
  v["found"] = json::Value(r.found);
  v["scenario"] = json::Value(r.scenario);
  v["seed"] = json::Value(r.seed);
  v["trigger_time_ns"] = json::Value(static_cast<std::int64_t>(r.trigger_time));
  v["minimal_plan"] = to_json(r.minimal_plan);
  v["full_plan_actions"] = json::Value(static_cast<std::uint64_t>(r.full_actions));
  v["probes"] = json::Value(r.probes);
  json::Value log{json::Value::Array{}};
  for (const std::string& s : r.log) log.push_back(json::Value(s));
  v["log"] = std::move(log);
  if (r.found) v["verdict"] = verdict_json(r.failing);
  return v;
}

std::string render_repro(const BisectReport& r) {
  std::string out;
  if (!r.found) {
    out = "bisect: no invariant break (" + r.scenario + " seed " +
          std::to_string(r.seed) + ", " + std::to_string(r.probes) +
          " probes)\n";
    return out;
  }
  out += "minimal repro: scenario=" + r.scenario +
         " seed=" + std::to_string(r.seed) +
         " trigger=" + std::to_string(r.trigger_time) + "ns (" +
         std::to_string(r.minimal_plan.size()) + " of " +
         std::to_string(r.full_actions) + " actions, " +
         std::to_string(r.probes) + " probes)\n";
  for (const FaultAction& a : r.minimal_plan.actions()) {
    out += "  " + describe(a) + "\n";
  }
  for (const std::string& v : r.failing.violations) {
    out += "  violation: " + v + "\n";
  }
  return out;
}

}  // namespace vnet::chaos
