#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace vnet::chaos::json {

/// Minimal JSON document model for the chaos subsystem's machine-readable
/// verdicts: fork-server children serialize their ScenarioResult over a
/// pipe, the parent parses it back, CI uploads the same bytes as artifacts.
///
/// Deliberately tiny — objects, arrays, strings, doubles, bools, null —
/// with two repo-specific conventions layered on top:
///  * 64-bit exact integers (digests, event counts) travel as hex strings
///    ("0x..."), because doubles only carry 53 bits.
///  * Serialization is canonical: object keys are emitted in sorted order
///    (std::map) with no insignificant whitespace variation, so verdict
///    bytes are diffable and byte-stable across runs.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(unsigned u) : v_(static_cast<double>(u)) {}
  Value(std::int64_t i) : v_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(v_) : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? std::get<double>(v_) : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(std::get<double>(v_))
                       : fallback;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(v_) : kEmpty;
  }
  const Array& as_array() const {
    static const Array kEmpty;
    return is_array() ? std::get<Array>(v_) : kEmpty;
  }
  const Object& as_object() const {
    static const Object kEmpty;
    return is_object() ? std::get<Object>(v_) : kEmpty;
  }

  /// Object member access; returns a null Value for missing keys (and for
  /// non-objects), so chained lookups degrade to defaults, not crashes.
  const Value& operator[](const std::string& key) const {
    static const Value kNull;
    if (!is_object()) return kNull;
    const Object& o = std::get<Object>(v_);
    auto it = o.find(key);
    return it == o.end() ? kNull : it->second;
  }

  /// Mutable object member access; converts a null Value into an object.
  Value& operator[](const std::string& key) {
    if (is_null()) v_ = Object{};
    return std::get<Object>(v_)[key];
  }

  void push_back(Value v) {
    if (is_null()) v_ = Array{};
    std::get<Array>(v_).push_back(std::move(v));
  }

  /// Canonical serialization (sorted keys, minimal spacing). `indent` >= 0
  /// pretty-prints with that many leading spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Exact 64-bit integers as JSON: hex-string round-trip ("0x1b2c...").
Value hex_u64(std::uint64_t v);
std::uint64_t parse_hex_u64(const Value& v, std::uint64_t fallback = 0);

/// Parses one JSON document. Returns false (and sets *error, if non-null)
/// on malformed input; trailing garbage after the document is an error.
bool parse(const std::string& text, Value* out, std::string* error = nullptr);

}  // namespace vnet::chaos::json
