#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace vnet::chaos {

FaultPlan& FaultPlan::host_link(sim::Time at, int node, bool up) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kHostLink;
  a.node = node;
  a.up = up;
  actions_.push_back(a);
  return *this;
}

FaultPlan& FaultPlan::host_flap(sim::Time at, int node,
                                sim::Duration down_for) {
  host_link(at, node, false);
  return host_link(at + down_for, node, true);
}

FaultPlan& FaultPlan::trunk_link(sim::Time at, int leaf, int spine, bool up) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kTrunkLink;
  a.node = leaf;
  a.port = spine;
  a.up = up;
  actions_.push_back(a);
  return *this;
}

FaultPlan& FaultPlan::trunk_flap(sim::Time at, int leaf, int spine,
                                 sim::Duration down_for) {
  trunk_link(at, leaf, spine, false);
  return trunk_link(at + down_for, leaf, spine, true);
}

FaultPlan& FaultPlan::nic_reboot(sim::Time at, int node) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kNicReboot;
  a.node = node;
  actions_.push_back(a);
  return *this;
}

FaultPlan& FaultPlan::fault_rates(sim::Time at, double drop, double corrupt) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kFaultRates;
  a.drop = drop;
  a.corrupt = corrupt;
  actions_.push_back(a);
  return *this;
}

FaultPlan& FaultPlan::burst_loss(sim::Time at,
                                 const myrinet::GilbertElliottParams& burst) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kBurstLoss;
  a.burst = burst;
  actions_.push_back(a);
  return *this;
}

FaultPlan& FaultPlan::burst_episode(
    sim::Time at, sim::Duration duration,
    const myrinet::GilbertElliottParams& burst) {
  burst_loss(at, burst);
  myrinet::GilbertElliottParams off;
  off.enabled = false;
  return burst_loss(at + duration, off);
}

FaultPlan& FaultPlan::poison(sim::Time at, int node) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kPoison;
  a.node = node;
  actions_.push_back(a);
  return *this;
}

FaultPlan FaultPlan::chaos_mode(sim::Rng& rng, const ChaosOptions& opt) {
  FaultPlan plan;
  const sim::Time window = opt.end - opt.start;
  auto pick_node = [&] {
    return opt.first_node +
           static_cast<int>(rng.below(
               static_cast<std::uint64_t>(opt.nodes - opt.first_node)));
  };
  for (int i = 0; i < opt.events; ++i) {
    // Leave room for the longest heal so everything is up by opt.end.
    const sim::Time at =
        opt.start + rng.range(0, std::max<sim::Duration>(
                                     1, window - opt.max_down - 1));
    const sim::Duration dur =
        rng.range(opt.max_down / 4, std::max<sim::Duration>(
                                        opt.max_down / 4 + 1, opt.max_down));
    enum { kFlap, kTrunk, kReboot, kRates, kBurst, kKinds };
    int kind = static_cast<int>(rng.below(kKinds));
    if (kind == kTrunk && (opt.leaves == 0 || opt.spines == 0)) kind = kFlap;
    if (kind == kReboot && !opt.allow_reboot) kind = kFlap;
    if (kind == kBurst && !opt.allow_burst) kind = kRates;
    switch (kind) {
      case kFlap:
        plan.host_flap(at, pick_node(), dur);
        break;
      case kTrunk:
        plan.trunk_flap(at,
                        static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(opt.leaves))),
                        static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(opt.spines))),
                        dur);
        break;
      case kReboot:
        plan.nic_reboot(at, pick_node());
        break;
      case kRates: {
        const double drop = opt.max_drop * rng.uniform();
        const double corrupt = opt.max_corrupt * rng.uniform();
        plan.fault_rates(at, drop, corrupt);
        plan.fault_rates(at + dur, 0.0, 0.0);
        break;
      }
      case kBurst: {
        myrinet::GilbertElliottParams ge;
        ge.enabled = true;
        ge.p_good_to_bad = 0.002 + 0.01 * rng.uniform();
        ge.p_bad_to_good = 0.05 + 0.1 * rng.uniform();
        ge.loss_bad = 0.4 + 0.4 * rng.uniform();
        plan.burst_episode(at, dur, ge);
        break;
      }
      default:
        break;
    }
  }
  // Belt and braces: whatever the draws above did, end in a healed state.
  plan.fault_rates(opt.end, 0.0, 0.0);
  myrinet::GilbertElliottParams off;
  plan.burst_loss(opt.end, off);
  return plan;
}

std::string describe(const FaultAction& a) {
  char buf[128];
  const double at_ms = sim::to_msec(a.at);
  switch (a.kind) {
    case FaultAction::Kind::kHostLink:
      std::snprintf(buf, sizeof(buf), "%8.3f ms  host %d link %s", at_ms,
                    a.node, a.up ? "up" : "down");
      break;
    case FaultAction::Kind::kTrunkLink:
      std::snprintf(buf, sizeof(buf), "%8.3f ms  trunk leaf%d<->spine%d %s",
                    at_ms, a.node, a.port, a.up ? "up" : "down");
      break;
    case FaultAction::Kind::kNicReboot:
      std::snprintf(buf, sizeof(buf), "%8.3f ms  nic %d reboot", at_ms,
                    a.node);
      break;
    case FaultAction::Kind::kFaultRates:
      std::snprintf(buf, sizeof(buf), "%8.3f ms  rates drop=%.4f corrupt=%.4f",
                    at_ms, a.drop, a.corrupt);
      break;
    case FaultAction::Kind::kBurstLoss:
      if (a.burst.enabled) {
        std::snprintf(buf, sizeof(buf),
                      "%8.3f ms  burst on  g2b=%.4f b2g=%.4f loss=%.2f", at_ms,
                      a.burst.p_good_to_bad, a.burst.p_bad_to_good,
                      a.burst.loss_bad);
      } else {
        std::snprintf(buf, sizeof(buf), "%8.3f ms  burst off", at_ms);
      }
      break;
    case FaultAction::Kind::kPoison:
      std::snprintf(buf, sizeof(buf), "%8.3f ms  poison (phantom delivery)",
                    at_ms);
      break;
  }
  return buf;
}

// ------------------------------------------------------- JSON round-trip

namespace {

const char* kind_name(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kHostLink: return "host_link";
    case FaultAction::Kind::kTrunkLink: return "trunk_link";
    case FaultAction::Kind::kNicReboot: return "nic_reboot";
    case FaultAction::Kind::kFaultRates: return "fault_rates";
    case FaultAction::Kind::kBurstLoss: return "burst_loss";
    case FaultAction::Kind::kPoison: return "poison";
  }
  return "host_link";
}

FaultAction::Kind kind_from_name(const std::string& s) {
  if (s == "trunk_link") return FaultAction::Kind::kTrunkLink;
  if (s == "nic_reboot") return FaultAction::Kind::kNicReboot;
  if (s == "fault_rates") return FaultAction::Kind::kFaultRates;
  if (s == "burst_loss") return FaultAction::Kind::kBurstLoss;
  if (s == "poison") return FaultAction::Kind::kPoison;
  return FaultAction::Kind::kHostLink;
}

}  // namespace

json::Value to_json(const FaultAction& a) {
  json::Value v;
  v["at_ns"] = json::Value(static_cast<std::int64_t>(a.at));
  v["kind"] = json::Value(kind_name(a.kind));
  v["node"] = json::Value(a.node);
  v["port"] = json::Value(a.port);
  v["up"] = json::Value(a.up);
  v["drop"] = json::Value(a.drop);
  v["corrupt"] = json::Value(a.corrupt);
  if (a.kind == FaultAction::Kind::kBurstLoss) {
    json::Value b;
    b["enabled"] = json::Value(a.burst.enabled);
    b["p_good_to_bad"] = json::Value(a.burst.p_good_to_bad);
    b["p_bad_to_good"] = json::Value(a.burst.p_bad_to_good);
    b["loss_good"] = json::Value(a.burst.loss_good);
    b["loss_bad"] = json::Value(a.burst.loss_bad);
    v["burst"] = std::move(b);
  }
  return v;
}

FaultAction action_from_json(const json::Value& v) {
  FaultAction a;
  a.at = static_cast<sim::Time>(v["at_ns"].as_int());
  a.kind = kind_from_name(v["kind"].as_string());
  a.node = static_cast<int>(v["node"].as_int(-1));
  a.port = static_cast<int>(v["port"].as_int(-1));
  a.up = v["up"].as_bool(true);
  a.drop = v["drop"].as_number();
  a.corrupt = v["corrupt"].as_number();
  if (v["burst"].is_object()) {
    const json::Value& b = v["burst"];
    a.burst.enabled = b["enabled"].as_bool();
    a.burst.p_good_to_bad = b["p_good_to_bad"].as_number();
    a.burst.p_bad_to_good = b["p_bad_to_good"].as_number();
    a.burst.loss_good = b["loss_good"].as_number();
    a.burst.loss_bad = b["loss_bad"].as_number();
  }
  return a;
}

json::Value to_json(const FaultPlan& plan) {
  json::Value arr{json::Value::Array{}};
  for (const FaultAction& a : plan.actions()) arr.push_back(to_json(a));
  return arr;
}

FaultPlan plan_from_json(const json::Value& v) {
  FaultPlan plan;
  for (const json::Value& av : v.as_array()) {
    plan.append(action_from_json(av));
  }
  return plan;
}

}  // namespace vnet::chaos
