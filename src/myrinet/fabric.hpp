#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "myrinet/link.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/station.hpp"
#include "myrinet/switch.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"

namespace vnet::myrinet {

/// A source route: the output port to take at each successive switch.
using Route = std::vector<std::uint8_t>;

/// Two-state Gilbert–Elliott loss process, evaluated per wire crossing and
/// per link direction. Each crossing first moves the link's state machine
/// (good <-> bad), then drops the packet with the state's loss rate.
/// Correlated loss bursts are what actually stress the retransmission /
/// backoff machinery — uniform Bernoulli loss rarely hits the same logical
/// channel twice in a row.
struct GilbertElliottParams {
  bool enabled = false;
  /// P(good -> bad) per wire crossing.
  double p_good_to_bad = 0.0005;
  /// P(bad -> good) per wire crossing; 1/p is the mean burst length.
  double p_bad_to_good = 0.1;
  /// Loss rate while in the good state (usually 0).
  double loss_good = 0.0;
  /// Loss rate while in the bad state.
  double loss_bad = 0.5;
};

/// Fault injection knobs, applied uniformly across all links (each link
/// direction keeps its own Gilbert–Elliott state, but shares these rates).
struct FaultParams {
  /// Probability that any given wire crossing drops / corrupts the packet.
  /// Transmission errors on Myrinet are rare (§3.2) but must be survivable.
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
  /// Correlated burst-loss process layered on top of the uniform rates.
  GilbertElliottParams burst;
  std::uint64_t fault_seed = 0x5eed;
};

struct FabricParams {
  LinkParams link;
  SwitchParams sw;
  FaultParams faults;
};

/// The interconnect: stations (host attachment points), switches, links,
/// precomputed multi-path source routes, and fault injection.
///
/// Two topologies are provided:
///  * crossbar(n): one switch, for unit tests and 2-node microbenchmarks;
///  * fat_tree(n, hosts_per_leaf, spines): the "fat-tree like" NOW network
///    of §2 — leaf switches with `hosts_per_leaf` hosts and one uplink to
///    each of `spines` spine switches. With 100 hosts, 5 hosts/leaf and 3
///    spines this gives 23 switches / 160 links, comparable to the paper's
///    25 switches / 185 links, with `spines` distinct paths between any two
///    hosts on different leaves (used by the transport's logical channels
///    for multi-path routing, §5.1).
/// Sharded construction (sim/shard.hpp): the ShardGroup overloads place
/// each device on one shard's engine — crossbar: switch on shard 0, host h
/// on shard h*N/hosts; fat-tree: leaf l (and its hosts) on shard
/// l*N/leaves, spine s on shard s%N — and split every link direction whose
/// endpoints land on different shards into router-coupled tx/rx halves
/// (see Channel). Fault injection state (RNG, rates, burst chains) is
/// per-shard, so no two workers ever share a mutable fabric member. With a
/// 1-shard group the construction order, seeds, and wiring are identical
/// to the single-engine overloads byte for byte.
class Fabric {
 public:
  static std::unique_ptr<Fabric> crossbar(sim::Engine& engine, int hosts,
                                          const FabricParams& params = {});

  static std::unique_ptr<Fabric> crossbar(sim::ShardGroup& group, int hosts,
                                          const FabricParams& params = {});

  static std::unique_ptr<Fabric> fat_tree(sim::Engine& engine, int hosts,
                                          int hosts_per_leaf, int spines,
                                          const FabricParams& params = {});

  static std::unique_ptr<Fabric> fat_tree(sim::ShardGroup& group, int hosts,
                                          int hosts_per_leaf, int spines,
                                          const FabricParams& params = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Unregisters the fabric's pull-style metrics (per-link counters, switch
  /// watermarks) from the engine's registry; the engine outlives the fabric.
  ~Fabric();

  int num_hosts() const { return static_cast<int>(stations_.size()); }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  int num_links() const { return link_directions_ / 2; }

  /// The shard whose engine drives host `id`'s station (and should drive
  /// its NIC + host model). Always 0 for single-engine fabrics.
  int host_shard(NodeId id) const {
    return host_shard_[static_cast<std::size_t>(id)];
  }

  Station& station(NodeId id) { return *stations_[static_cast<size_t>(id)]; }

  /// All precomputed distinct routes from src to dst, shortest first. Empty
  /// iff src == dst (local loopback never enters the fabric).
  const std::vector<Route>& routes(NodeId src, NodeId dst) const {
    return route_table_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(num_hosts()) +
                        static_cast<std::size_t>(dst)];
  }

  /// Connects or disconnects a host from the network (both directions).
  /// Models node crash / cable pull for the return-to-sender tests.
  void set_host_link(NodeId id, bool up);

  /// Fails or restores one leaf<->spine trunk (both directions). Models a
  /// switch-port failure: traffic between leaves keeps flowing over the
  /// remaining spines only because the transport retries over its other
  /// logical channels / routes. No-op on a crossbar (there are no trunks).
  void set_trunk_link(int leaf, int spine, bool up);
  int num_trunks() const { return static_cast<int>(trunks_.size()); }

  /// Adjusts uniform fault injection rates at runtime (all shards' fault
  /// states update together; in a sharded chaos run the change lands at
  /// the current window on every shard).
  void set_fault_rates(double drop_p, double corrupt_p) {
    params_.faults.drop_probability = drop_p;
    params_.faults.corrupt_probability = corrupt_p;
    for (auto& fs : fault_states_) {
      fs.faults.drop_probability = drop_p;
      fs.faults.corrupt_probability = corrupt_p;
    }
  }

  /// Swaps the burst-loss process parameters at runtime. Per-link state
  /// machines keep their current state; disabling stops all burst losses.
  void set_burst_loss(const GilbertElliottParams& burst) {
    params_.faults.burst = burst;
    for (auto& fs : fault_states_) fs.faults.burst = burst;
  }

  const FaultParams& fault_params() const { return params_.faults; }

  std::uint64_t injected_drops() const {
    std::uint64_t n = 0;
    for (const auto& fs : fault_states_) n += fs.drops;
    return n;
  }
  std::uint64_t injected_corruptions() const {
    std::uint64_t n = 0;
    for (const auto& fs : fault_states_) n += fs.corruptions;
    return n;
  }

  // Per-link statistics live in the engine's metric registry under
  // `fabric.link.<label>.*` (packets_tx / bytes_tx / drops_down /
  // drops_fault); render with obs::render_table(snapshot, "fabric.link").

  std::uint64_t total_dropped_down() const;
  std::uint64_t total_dropped_fault() const;

  /// Aggregate congestion indicator across all switches.
  int max_queue_watermark() const;

  const std::vector<std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

 private:
  /// A link direction as wired into devices: `tx` on the sender's shard,
  /// `rx` on the receiver's. The same object twice when both ends share a
  /// shard (the ordinary single-engine channel).
  struct Link {
    Channel* tx = nullptr;
    Channel* rx = nullptr;
  };

  Fabric(std::vector<sim::Engine*> engines, sim::ShardRouter* router,
         const FabricParams& params);

  static std::unique_ptr<Fabric> build_crossbar(
      std::vector<sim::Engine*> engines, sim::ShardRouter* router, int hosts,
      const FabricParams& params);
  static std::unique_ptr<Fabric> build_fat_tree(
      std::vector<sim::Engine*> engines, sim::ShardRouter* router, int hosts,
      int hosts_per_leaf, int spines, const FabricParams& params);

  int num_shards() const { return static_cast<int>(engines_.size()); }

  Link new_channel(std::string label, int tx_shard, int rx_shard);
  void install_fault_filter(Channel* c, int shard);
  void register_metrics();
  void build_route_table();

  // Topology-specific route enumeration.
  std::vector<Route> compute_routes(NodeId src, NodeId dst) const;

  std::vector<sim::Engine*> engines_;  // [shard] -> engine; [0] for serial
  sim::ShardRouter* router_;           // null for single-engine fabrics
  FabricParams params_;

  // Per-shard fault machinery: each shard's channels draw from their own
  // RNG and tally into their own counters, so fault injection never shares
  // state across workers. Shard 0 is seeded with fault_seed itself —
  // single-shard runs reproduce the serial fault stream exactly.
  struct FaultState {
    FaultState(std::uint64_t seed, const FaultParams& f)
        : rng(seed), faults(f) {}
    sim::Rng rng;
    FaultParams faults;
    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
  };
  std::deque<FaultState> fault_states_;  // address-stable; filters capture

  std::vector<int> host_shard_;    // [host] -> shard
  std::vector<int> switch_shard_;  // [switch] -> shard, parallel to switches_
  int link_directions_ = 0;

  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::string> channel_labels_;  // parallel to channels_
  std::vector<Route> flat_empty_;
  std::vector<std::vector<Route>> route_table_;

  // Per-link-direction Gilbert–Elliott state; deque for address stability
  // (the fault filter closure captures a pointer into it).
  struct BurstState {
    bool bad = false;
  };
  std::deque<BurstState> burst_states_;

  // Host link channels for set_host_link: [host] -> {to_switch, from_switch}.
  struct HostLink {
    Channel* to_switch = nullptr;
    Channel* from_switch = nullptr;
  };
  std::vector<HostLink> host_links_;

  // Leaf<->spine trunks for set_trunk_link (fat-tree only).
  struct TrunkLink {
    int leaf = 0;
    int spine = 0;
    Channel* up = nullptr;    // leaf -> spine
    Channel* down = nullptr;  // spine -> leaf
  };
  std::vector<TrunkLink> trunks_;

  // Topology description used by compute_routes.
  enum class Topology { kCrossbar, kFatTree };
  Topology topology_ = Topology::kCrossbar;
  int hosts_per_leaf_ = 0;
  int spines_ = 0;
};

}  // namespace vnet::myrinet
