#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "myrinet/link.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/station.hpp"
#include "myrinet/switch.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace vnet::myrinet {

/// A source route: the output port to take at each successive switch.
using Route = std::vector<std::uint8_t>;

struct FabricParams {
  LinkParams link;
  SwitchParams sw;
  /// Probability that any given wire crossing drops / corrupts the packet.
  /// Transmission errors on Myrinet are rare (§3.2) but must be survivable.
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;
  std::uint64_t fault_seed = 0x5eed;
};

/// The interconnect: stations (host attachment points), switches, links,
/// precomputed multi-path source routes, and fault injection.
///
/// Two topologies are provided:
///  * crossbar(n): one switch, for unit tests and 2-node microbenchmarks;
///  * fat_tree(n, hosts_per_leaf, spines): the "fat-tree like" NOW network
///    of §2 — leaf switches with `hosts_per_leaf` hosts and one uplink to
///    each of `spines` spine switches. With 100 hosts, 5 hosts/leaf and 3
///    spines this gives 23 switches / 160 links, comparable to the paper's
///    25 switches / 185 links, with `spines` distinct paths between any two
///    hosts on different leaves (used by the transport's logical channels
///    for multi-path routing, §5.1).
class Fabric {
 public:
  static std::unique_ptr<Fabric> crossbar(sim::Engine& engine, int hosts,
                                          const FabricParams& params = {});

  static std::unique_ptr<Fabric> fat_tree(sim::Engine& engine, int hosts,
                                          int hosts_per_leaf, int spines,
                                          const FabricParams& params = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_hosts() const { return static_cast<int>(stations_.size()); }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  int num_links() const { return static_cast<int>(channels_.size()) / 2; }

  Station& station(NodeId id) { return *stations_[static_cast<size_t>(id)]; }

  /// All precomputed distinct routes from src to dst, shortest first. Empty
  /// iff src == dst (local loopback never enters the fabric).
  const std::vector<Route>& routes(NodeId src, NodeId dst) const {
    return route_table_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(num_hosts()) +
                        static_cast<std::size_t>(dst)];
  }

  /// Connects or disconnects a host from the network (both directions).
  /// Models node crash / cable pull for the return-to-sender tests.
  void set_host_link(NodeId id, bool up);

  /// Adjusts fault injection rates at runtime.
  void set_fault_rates(double drop_p, double corrupt_p) {
    params_.drop_probability = drop_p;
    params_.corrupt_probability = corrupt_p;
  }

  std::uint64_t injected_drops() const { return injected_drops_; }
  std::uint64_t injected_corruptions() const { return injected_corruptions_; }

  /// Aggregate congestion indicator across all switches.
  int max_queue_watermark() const;

  const std::vector<std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

 private:
  explicit Fabric(sim::Engine& engine, const FabricParams& params)
      : engine_(&engine), params_(params), fault_rng_(params.fault_seed) {}

  Channel* new_channel();
  void install_fault_filter(Channel* c);
  void build_route_table();

  // Topology-specific route enumeration.
  std::vector<Route> compute_routes(NodeId src, NodeId dst) const;

  sim::Engine* engine_;
  FabricParams params_;
  sim::Rng fault_rng_;

  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<Route> flat_empty_;
  std::vector<std::vector<Route>> route_table_;

  // Host link channels for set_host_link: [host] -> {to_switch, from_switch}.
  struct HostLink {
    Channel* to_switch = nullptr;
    Channel* from_switch = nullptr;
  };
  std::vector<HostLink> host_links_;

  // Topology description used by compute_routes.
  enum class Topology { kCrossbar, kFatTree };
  Topology topology_ = Topology::kCrossbar;
  int hosts_per_leaf_ = 0;
  int spines_ = 0;

  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_corruptions_ = 0;
};

}  // namespace vnet::myrinet
