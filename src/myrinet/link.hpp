#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "myrinet/packet.hpp"
#include "sim/engine.hpp"

namespace vnet::myrinet {

/// Parameters of one link direction.
struct LinkParams {
  /// Serialization rate. Default 6.25 ns/B = 160 MB/s per direction,
  /// matching Myrinet's 1.28 Gb/s links.
  double ns_per_byte = 6.25;
  /// Propagation delay of the cable itself (switch cut-through latency is
  /// charged separately by the Switch).
  sim::Duration propagation = 25 * sim::ns;
  /// Receiver-side buffer slots. Myrinet has ~7 bytes of buffering per hop —
  /// essentially wormhole — so keep this small: when the receiver cannot
  /// drain, the sender stalls almost immediately and congestion spreads
  /// upstream, as described in §2 of the paper.
  int credits = 2;
};

/// One direction of a link: a transmitter owned by the upstream device and
/// a receiver owned by the downstream device, with credit-based flow
/// control approximating Myrinet's link-level back-pressure.
///
/// Protocol:
///   * the owner checks can_send() and calls send(); the wire is busy for
///     wire_bytes * ns_per_byte, then `on_tx_done` fires (so the owner can
///     start the next packet) and the packet arrives downstream after the
///     propagation delay;
///   * each send consumes a credit; the downstream device returns it with
///     release_credit() once it has moved the packet out of the input
///     buffer. With no credits the sender stalls — back-pressure.
class Channel {
 public:
  Channel(sim::Engine& engine, LinkParams params)
      : engine_(&engine), params_(params), credits_(params.credits) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Downstream delivery hook (set by the owning device at wiring time).
  std::function<void(Packet)> on_deliver;
  /// Fired when the transmitter becomes idle and can accept another packet.
  std::function<void()> on_tx_ready;
  /// Optional fault hook, called once per packet as it crosses the wire.
  /// May mutate the packet (e.g. set `corrupt`); returning true drops it.
  std::function<bool(Packet&)> fault_filter;

  // A down link still "accepts" packets — they are dropped in flight, like
  // bits pushed into an unplugged cable — so senders never stall on it.
  bool can_send() const { return !busy_ && credits_ > 0; }
  bool is_up() const { return up_; }

  /// Starts transmitting `p`. Precondition: can_send().
  void send(Packet p) {
    busy_ = true;
    --credits_;
    const auto ser = static_cast<sim::Duration>(
        static_cast<double>(p.wire_bytes) * params_.ns_per_byte);
    bytes_sent_ += p.wire_bytes;
    ++packets_sent_;
    engine_->after(ser, [this, p = std::move(p)]() mutable {
      busy_ = false;
      const bool drop = !up_ || (fault_filter && fault_filter(p));
      if (!drop) {
        engine_->after(params_.propagation, [this, p = std::move(p)]() mutable {
          if (on_deliver) on_deliver(std::move(p));
        });
      } else {
        if (!up_) {
          ++dropped_down_;
        } else {
          ++dropped_fault_;
        }
        // A dropped packet never reaches the receiver, so its credit can
        // never be returned from downstream; refund it here.
        ++credits_;
      }
      if (on_tx_ready) on_tx_ready();
    });
  }

  /// Returns one buffer credit to the sender (called by the downstream
  /// device when the packet leaves its input stage).
  void release_credit() {
    // Credit return travels back over the wire; model the propagation.
    engine_->after(params_.propagation, [this] {
      ++credits_;
      if (!busy_ && on_tx_ready) on_tx_ready();
    });
  }

  /// Takes the link down: in-flight and future packets are dropped until
  /// set_up(true). Models the hot-swap scenarios of §3.2.
  void set_up(bool up) {
    up_ = up;
    if (up_ && !busy_ && on_tx_ready) on_tx_ready();
  }

  int credits() const { return credits_; }
  bool busy() const { return busy_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// Total losses on this link, from both causes.
  std::uint64_t packets_dropped() const { return dropped_down_ + dropped_fault_; }
  /// Losses because the link was administratively/physically down.
  std::uint64_t dropped_down() const { return dropped_down_; }
  /// Losses injected by the fault filter (Bernoulli or burst model).
  std::uint64_t dropped_fault() const { return dropped_fault_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const LinkParams& params() const { return params_; }

 private:
  sim::Engine* engine_;
  LinkParams params_;
  int credits_;
  bool busy_ = false;
  bool up_ = true;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t dropped_fault_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace vnet::myrinet
