#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "myrinet/packet.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace vnet::myrinet {

/// Parameters of one link direction.
struct LinkParams {
  /// Serialization rate. Default 6.25 ns/B = 160 MB/s per direction,
  /// matching Myrinet's 1.28 Gb/s links.
  double ns_per_byte = 6.25;
  /// Propagation delay of the cable itself (switch cut-through latency is
  /// charged separately by the Switch).
  sim::Duration propagation = 25 * sim::ns;
  /// Receiver-side buffer slots. Myrinet has ~7 bytes of buffering per hop —
  /// essentially wormhole — so keep this small: when the receiver cannot
  /// drain, the sender stalls almost immediately and congestion spreads
  /// upstream, as described in §2 of the paper.
  int credits = 2;
};

/// One direction of a link: a transmitter owned by the upstream device and
/// a receiver owned by the downstream device, with credit-based flow
/// control approximating Myrinet's link-level back-pressure.
///
/// Protocol (batched datapath):
///   * the owner checks can_send() and calls send(); the serialization
///     start is computed analytically from the transmitter-free time, so
///     back-to-back packets join an in-flight *train* without per-packet
///     transmit-completion events. One pending engine event per train
///     delivers the head at its exact arrival instant and is then
///     rescheduled for the next head — per-packet delivery times are
///     identical to an unbatched link, but the ser-end and propagation
///     events it would schedule per packet are gone;
///   * each send consumes a credit; the downstream device returns it with
///     release_credit(). Returns are *lazy*: the maturity time (one
///     propagation back over the wire) is recorded and banked by the next
///     can_send(), costing no event. An owner that finds can_send() false
///     with work still queued arms notify_when_ready(); on_tx_ready fires
///     only on demand, at the earliest credit maturity;
///   * `head_delay` on send() lets the switch fold its cut-through latency
///     into the downstream serialization start instead of scheduling its
///     own per-packet event.
///
/// Cross-shard operation: when the two ends of a link direction live on
/// different engine shards (sim/shard.hpp), the direction is *split* into a
/// tx half on the sender's engine and an rx half on the receiver's engine,
/// coupled through the ShardRouter instead of direct engine events:
///   * the tx half evaluates link-down / fault drops at send time (the
///     serial channel evaluates them at wire-arrival; the outcomes differ
///     only when the state changes during the ~flight time, which the
///     multi-shard determinism contract permits) and posts the delivery —
///     timestamped delivered_at >= now + serialization + propagation, which
///     clears the lookahead bound L = propagation with slack;
///   * the rx half turns release_credit() into a routed credit-arrival
///     record at now + propagation back on the tx shard — the tightest
///     cross-shard record, exactly L after its posting instant;
///   * dropped packets refund their credit via a local tx-shard event at
///     the would-be delivery instant.
/// Both halves stay single-threaded: each runs only on its own shard's
/// worker, and all coupling flows through the router's outboxes.
class Channel {
 public:
  Channel(sim::Engine& engine, LinkParams params)
      : engine_(&engine), params_(params), credits_(params.credits) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Turns this channel into the transmit half of a cross-shard direction.
  /// `rx` is the receive half on shard `peer_shard`'s engine.
  void make_remote_tx(sim::ShardRouter* router, int self_shard,
                      int peer_shard, Channel* rx) {
    router_ = router;
    self_shard_ = self_shard;
    peer_shard_ = peer_shard;
    remote_peer_ = rx;
    mode_ = Mode::kRemoteTx;
  }

  /// Turns this channel into the receive half of a cross-shard direction.
  /// `tx` is the transmit half on shard `peer_shard`'s engine.
  void make_remote_rx(sim::ShardRouter* router, int self_shard,
                      int peer_shard, Channel* tx) {
    router_ = router;
    self_shard_ = self_shard;
    peer_shard_ = peer_shard;
    remote_peer_ = tx;
    mode_ = Mode::kRemoteRx;
  }

  bool is_remote() const { return mode_ != Mode::kLocal; }

  /// Downstream delivery hook (set by the owning device at wiring time).
  std::function<void(Packet)> on_deliver;
  /// Fired when the transmitter can accept another packet — but only after
  /// the owner armed notify_when_ready(); there is no unsolicited callback.
  std::function<void()> on_tx_ready;
  /// Optional fault hook, called once per packet as it crosses the wire.
  /// May mutate the packet (e.g. set `corrupt`); returning true drops it.
  std::function<bool(Packet&)> fault_filter;

  // A down link still "accepts" packets — they are dropped in flight, like
  // bits pushed into an unplugged cable — so senders never stall on it.
  bool can_send() {
    mature_credits();
    return credits_ > 0;
  }
  bool is_up() const { return up_; }

  /// Starts transmitting `p`. Precondition: can_send(). `head_delay` is
  /// dead time before serialization may begin (switch cut-through).
  void send(Packet p, sim::Duration head_delay = 0) {
    --credits_;
    const sim::Time start =
        std::max(engine_->now() + head_delay, tx_free_at_);
    const auto ser = static_cast<sim::Duration>(
        static_cast<double>(p.wire_bytes) * params_.ns_per_byte);
    tx_free_at_ = start + ser;
    bytes_sent_ += p.wire_bytes;
    ++packets_sent_;
    // The arrival instant rides in the packet; after the last hop it is the
    // wire-stage boundary for latency attribution (packet.hpp).
    p.delivered_at = tx_free_at_ + params_.propagation;
    if (p.hops < 0xff) ++p.hops;
    if (mode_ == Mode::kRemoteTx) {
      send_remote(std::move(p));
      return;
    }
    train_.push_back(std::move(p));
    if (!delivery_pending_) {
      delivery_pending_ = true;
      engine_->at(train_.front().delivered_at, [this] { deliver_train(); });
    }
  }

  /// Returns one buffer credit to the sender (called by the downstream
  /// device when the packet leaves its input stage). The credit still
  /// travels back over the wire: it matures one propagation delay from now.
  void release_credit() {
    if (mode_ == Mode::kRemoteRx) {
      // The credit crosses back to the tx shard as a routed record maturing
      // one propagation from now — the binding case of the lookahead bound.
      router_->post(self_shard_, peer_shard_,
                    engine_->now() + params_.propagation,
                    [tx = remote_peer_] { tx->remote_credit_arrived(); });
      return;
    }
    credit_returns_.push_back(engine_->now() + params_.propagation);
    if (waiting_) arm_wakeup();
  }

  /// Hands an arrived packet to this rx half's device (runs on the rx
  /// shard's engine at the packet's delivered_at instant).
  void deliver_remote(Packet p) {
    if (on_deliver) on_deliver(std::move(p));
  }

  /// A routed credit matured on this tx half (runs on the tx shard).
  void remote_credit_arrived() {
    ++credits_;
    wake_owner();
  }

  /// Arms a one-shot on_tx_ready callback for when can_send() next turns
  /// true. Call after finding can_send() false with work still queued; the
  /// wakeup fires at the earliest credit maturity (or when a drop refunds
  /// a credit, or the link comes back up).
  void notify_when_ready() {
    if (can_send()) {
      // Raced with a refund between the owner's check and this call; keep
      // the owner's callback out of its own stack frame.
      engine_->after(0, [this] {
        if (on_tx_ready) on_tx_ready();
      });
      return;
    }
    waiting_ = true;
    arm_wakeup();
  }

  /// Takes the link down: in-flight and future packets are dropped until
  /// set_up(true). Models the hot-swap scenarios of §3.2.
  void set_up(bool up) {
    up_ = up;
    if (up_) wake_owner();
  }

  int credits() {
    mature_credits();
    return credits_;
  }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// Total losses on this link, from both causes.
  std::uint64_t packets_dropped() const {
    return dropped_down_ + dropped_fault_;
  }
  /// Losses because the link was administratively/physically down.
  std::uint64_t dropped_down() const { return dropped_down_; }
  /// Losses injected by the fault filter (Bernoulli or burst model).
  std::uint64_t dropped_fault() const { return dropped_fault_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const LinkParams& params() const { return params_; }

 private:
  enum class Mode { kLocal, kRemoteTx, kRemoteRx };

  /// Cross-shard transmit tail of send(): drop decisions happen here, at
  /// send time on the tx shard; survivors become router records.
  void send_remote(Packet p) {
    const bool drop = !up_ || (fault_filter && fault_filter(p));
    if (drop) {
      if (!up_) {
        ++dropped_down_;
      } else {
        ++dropped_fault_;
      }
      // The receiver never sees the packet, so no credit will be routed
      // back; refund locally when the wire crossing would have completed.
      engine_->at(p.delivered_at, [this] {
        ++credits_;
        wake_owner();
      });
      return;
    }
    router_->post(self_shard_, peer_shard_, p.delivered_at,
                  [rx = remote_peer_, p = std::move(p)]() mutable {
                    rx->deliver_remote(std::move(p));
                  });
  }

  /// Delivers every train entry that has reached its arrival instant (ties
  /// share one event), then re-arms for the new head. Faults and link-down
  /// drops are evaluated here, at wire-crossing completion.
  void deliver_train() {
    const sim::Time now = engine_->now();
    bool refunded = false;
    while (!train_.empty() && train_.front().delivered_at <= now) {
      Packet p = std::move(train_.front());
      train_.pop_front();
      const bool drop = !up_ || (fault_filter && fault_filter(p));
      if (drop) {
        if (!up_) {
          ++dropped_down_;
        } else {
          ++dropped_fault_;
        }
        // A dropped packet never reaches the receiver, so its credit can
        // never be returned from downstream; refund it here.
        ++credits_;
        refunded = true;
      } else if (on_deliver) {
        on_deliver(std::move(p));
      }
    }
    if (!train_.empty()) {
      engine_->at(train_.front().delivered_at, [this] { deliver_train(); });
    } else {
      delivery_pending_ = false;
    }
    if (refunded) wake_owner();
  }

  void mature_credits() {
    const sim::Time now = engine_->now();
    while (!credit_returns_.empty() && credit_returns_.front() <= now) {
      credit_returns_.pop_front();
      ++credits_;
    }
  }

  void arm_wakeup() {
    if (wake_armed_ || credit_returns_.empty()) return;
    wake_armed_ = true;
    engine_->at(credit_returns_.front(), [this] {
      wake_armed_ = false;
      wake_owner();
    });
  }

  void wake_owner() {
    if (!waiting_) return;
    waiting_ = false;
    if (on_tx_ready) on_tx_ready();
  }

  sim::Engine* engine_;
  LinkParams params_;
  int credits_;
  bool up_ = true;
  // Cross-shard coupling (null/kLocal for an ordinary single-engine link).
  sim::ShardRouter* router_ = nullptr;
  Channel* remote_peer_ = nullptr;
  int self_shard_ = 0;
  int peer_shard_ = 0;
  Mode mode_ = Mode::kLocal;
  /// When the transmitter finishes serializing everything accepted so far.
  sim::Time tx_free_at_ = 0;
  /// Packets on the wire, arrival order; head owns the one pending event.
  std::deque<Packet> train_;
  bool delivery_pending_ = false;
  /// Maturity instants of credits still travelling back (FIFO).
  std::deque<sim::Time> credit_returns_;
  bool waiting_ = false;
  bool wake_armed_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t dropped_fault_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace vnet::myrinet
