#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "myrinet/link.hpp"
#include "myrinet/packet.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace vnet::myrinet {

/// A host's attachment point to the fabric: the pair of link channels
/// between the NIC and its first switch, plus a small injection queue.
///
/// The NIC firmware injects packets (inject()), throttling itself on
/// `drained()` when the injection queue backs up, and receives fully
/// arrived packets through `on_receive`. Input credits are released
/// immediately on delivery: the LANai drains its incoming link at wire
/// speed, and the interesting receive-side queueing (endpoint receive-queue
/// overrun) is handled by the transport protocol's NACKs, per §5.1.
class Station {
 public:
  Station(sim::Engine& engine, NodeId id)
      : engine_(&engine), id_(id), drained_(engine) {}

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  NodeId id() const { return id_; }

  /// Upcall invoked when a packet addressed to this station arrives.
  std::function<void(Packet)> on_receive;

  /// Maximum packets queued for injection before the firmware should
  /// throttle (the LANai's send staging area is small).
  static constexpr std::size_t kInjectLimit = 4;

  bool can_inject() const { return backlog_.size() < kInjectLimit; }

  /// Queues a packet for transmission; starts it immediately if the link
  /// transmitter is idle and has credit.
  void inject(Packet p) {
    p.injected_at = engine_->now();
    ++packets_injected_;
    backlog_.push_back(std::move(p));
    pump();
  }

  /// Awaitable used by firmware to wait until can_inject() again.
  sim::CondVar& drained() { return drained_; }

  std::size_t backlog() const { return backlog_.size(); }
  std::uint64_t packets_injected() const { return packets_injected_; }
  std::uint64_t packets_received() const { return packets_received_; }

  // --- wiring (called by Fabric) ---

  void attach_tx(Channel* tx) {
    tx_ = tx;
    tx_->on_tx_ready = [this] { pump(); };
  }

  void attach_rx(Channel* rx) {
    rx_ = rx;
    rx_->on_deliver = [this](Packet p) {
      ++packets_received_;
      // p.delivered_at was stamped by the delivering Channel (== now).
      // One span per packet, injection -> delivery, on the receiver's row.
      VNET_TRACE_COMPLETE(engine_->tracer(), "wire", "packet",
                          static_cast<std::int64_t>(p.injected_at),
                          static_cast<int>(id_), 1,
                          {{"src", static_cast<std::int64_t>(p.src)},
                           {"bytes", static_cast<std::int64_t>(p.wire_bytes)}});
      rx_->release_credit();
      if (on_receive) on_receive(std::move(p));
    };
  }

  Channel* tx_channel() { return tx_; }
  Channel* rx_channel() { return rx_; }

 private:
  void pump() {
    while (tx_ != nullptr && !backlog_.empty() && tx_->can_send()) {
      Packet p = std::move(backlog_.front());
      backlog_.pop_front();
      tx_->send(std::move(p));
    }
    // Out of credits with packets still queued: arm the demand wakeup
    // (on_tx_ready fires only when armed — there is no unsolicited call).
    if (tx_ != nullptr && !backlog_.empty()) tx_->notify_when_ready();
    if (can_inject()) drained_.notify_all();
  }

  sim::Engine* engine_;
  NodeId id_;
  sim::CondVar drained_;
  Channel* tx_ = nullptr;
  Channel* rx_ = nullptr;
  std::deque<Packet> backlog_;
  std::uint64_t packets_injected_ = 0;
  std::uint64_t packets_received_ = 0;
};

}  // namespace vnet::myrinet
