#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "myrinet/link.hpp"
#include "myrinet/packet.hpp"
#include "sim/engine.hpp"

namespace vnet::myrinet {

struct SwitchParams {
  /// Average cut-through latency per switch hop (§2: ~300 ns).
  sim::Duration cut_through = 300 * sim::ns;
  /// Per-output queue capacity, in packets. Small, to approximate wormhole
  /// buffering: once an output backs up, inputs hold their packets and
  /// upstream credits stop flowing.
  int out_queue_capacity = 2;
};

/// A source-routed cut-through switch.
///
/// Each arriving packet consumes its next route byte to pick an output
/// port. If the output queue has room the packet moves there (releasing the
/// input-link credit); otherwise it blocks in the input stage, withholding
/// the credit and stalling the upstream transmitter — this is how network
/// congestion "rapidly spreads through the network" (§2).
///
/// Batched datapath: the cut-through latency is not a scheduled event.
/// Routing happens at arrival, the packet carries its head-of-packet ready
/// time, and the residual delay is folded into the output Channel's
/// serialization start (Channel::send head_delay) — an uncongested switch
/// traversal costs zero engine events.
class Switch {
 public:
  Switch(sim::Engine& engine, int num_ports, SwitchParams params)
      : engine_(&engine), params_(params), ports_(num_ports) {}

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  int num_ports() const { return static_cast<int>(ports_.size()); }

  /// Wires the transmit side of `port` (switch -> neighbour).
  void attach_tx(int port, Channel* tx) {
    ports_[port].tx = tx;
    tx->on_tx_ready = [this, port] { pump(port); };
  }

  /// Wires the receive side of `port` (neighbour -> switch). The channel's
  /// delivery hook is bound here so arriving packets enter this switch.
  void attach_rx(int port, Channel* rx) {
    ports_[port].rx = rx;
    rx->on_deliver = [this, port](Packet p) { route(port, std::move(p)); };
  }

  std::uint64_t packets_routed() const { return packets_routed_; }
  std::uint64_t route_errors() const { return route_errors_; }

  /// Maximum output-queue depth observed; a congestion indicator for tests.
  int high_watermark() const { return high_watermark_; }

 private:
  struct Queued {
    sim::Time ready_at = 0;  ///< arrival + cut-through latency
    Packet p;
  };

  struct Port {
    Channel* tx = nullptr;
    Channel* rx = nullptr;
    std::deque<Queued> queue;
    // Packets routed to this output that could not be queued; they still
    // occupy their input buffer (in_port = input port holding the credit).
    struct Blocked {
      int in_port = 0;
      Queued q;
    };
    std::deque<Blocked> blocked;
  };

  void route(int in_port, Packet p) {
    if (p.route_pos >= p.route.size() ||
        p.route[p.route_pos] >= ports_.size()) {
      // Malformed route: Myrinet switches drop such packets on the floor.
      ++route_errors_;
      ports_[in_port].rx->release_credit();
      return;
    }
    const int out = p.route[p.route_pos];
    ++p.route_pos;
    Queued q{engine_->now() + params_.cut_through, std::move(p)};
    Port& op = ports_[out];
    if (static_cast<int>(op.queue.size()) < params_.out_queue_capacity) {
      op.queue.push_back(std::move(q));
      high_watermark_ =
          std::max(high_watermark_, static_cast<int>(op.queue.size()));
      ports_[in_port].rx->release_credit();
      pump(out);
    } else {
      // Output full: hold in the input stage, keep the upstream credit.
      op.blocked.push_back({in_port, std::move(q)});
    }
  }

  void pump(int out) {
    Port& op = ports_[out];
    while (op.tx != nullptr && !op.queue.empty() && op.tx->can_send()) {
      Queued q = std::move(op.queue.front());
      op.queue.pop_front();
      ++packets_routed_;
      // Any cut-through time not yet elapsed becomes dead time ahead of
      // the output serialization.
      const sim::Duration head_delay =
          std::max<sim::Duration>(0, q.ready_at - engine_->now());
      op.tx->send(std::move(q.p), head_delay);
      // A queue slot freed: admit one blocked packet and release its
      // input-side credit.
      if (!op.blocked.empty()) {
        Port::Blocked b = std::move(op.blocked.front());
        op.blocked.pop_front();
        op.queue.push_back(std::move(b.q));
        ports_[b.in_port].rx->release_credit();
      }
    }
    if (op.tx != nullptr && !op.queue.empty()) op.tx->notify_when_ready();
  }

  sim::Engine* engine_;
  SwitchParams params_;
  std::vector<Port> ports_;
  std::uint64_t packets_routed_ = 0;
  std::uint64_t route_errors_ = 0;
  int high_watermark_ = 0;
};

}  // namespace vnet::myrinet
