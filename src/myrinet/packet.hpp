#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace vnet::myrinet {

/// Index of a host (station) attached to the fabric.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Base class for the opaque payload the fabric carries. The NIC layer
/// (lanai) derives its transport frame from this; the fabric itself only
/// looks at the link header fields in Packet.
struct Payload {
  virtual ~Payload() = default;
};

/// Bytes of link-level framing added to every packet on the wire (Myrinet
/// route bytes, type, CRC).
inline constexpr std::uint32_t kLinkHeaderBytes = 8;

/// A packet in flight. Myrinet is source-routed: `route` holds the output
/// port to take at each successive switch; `route_pos` advances per hop.
struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<std::uint8_t> route;
  std::uint32_t route_pos = 0;
  /// Total size on the wire, including link and transport headers.
  std::uint32_t wire_bytes = 0;
  /// Set by fault injection; receiving NICs drop corrupt packets after the
  /// CRC check (contributing to transport retransmissions).
  bool corrupt = false;
  /// Injection timestamp, for end-to-end fabric latency accounting.
  sim::Time injected_at = 0;
  /// Stamped by the destination station as the last hop delivers the
  /// packet (-1 until then); the wire-stage boundary for latency
  /// attribution (obs/attr.hpp).
  sim::Time delivered_at = -1;
  /// Unique id for tracing.
  std::uint64_t id = 0;
  std::unique_ptr<Payload> payload;
};

}  // namespace vnet::myrinet
