#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace vnet::myrinet {

/// Index of a host (station) attached to the fabric.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Base class for the opaque payload the fabric carries. The NIC layer
/// (lanai) derives its transport frame from this; the fabric itself only
/// looks at the link header fields in Packet.
struct Payload {
  virtual ~Payload() = default;
};

/// Bytes of link-level framing added to every packet on the wire (Myrinet
/// route bytes, type, CRC).
inline constexpr std::uint32_t kLinkHeaderBytes = 8;

/// Source-route bytes carried by a packet, stored inline: a Myrinet route
/// is at most a handful of hops (the fat-tree needs 3), so spending a
/// heap-backed vector on it would make every packet build allocate.
class RouteBytes {
 public:
  RouteBytes() = default;
  RouteBytes(std::initializer_list<std::uint8_t> hops) {
    assign(hops.begin(), hops.size());
  }
  RouteBytes& operator=(const std::vector<std::uint8_t>& hops) {
    assign(hops.data(), hops.size());
    return *this;
  }
  std::size_t size() const { return len_; }
  std::uint8_t operator[](std::size_t i) const { return hops_[i]; }

 private:
  void assign(const std::uint8_t* p, std::size_t n) {
    assert(n <= hops_.size());
    len_ = static_cast<std::uint8_t>(n);
    std::copy_n(p, n, hops_.begin());
  }

  std::array<std::uint8_t, 8> hops_{};
  std::uint8_t len_ = 0;
};

/// A packet in flight. Myrinet is source-routed: `route` holds the output
/// port to take at each successive switch; `route_pos` advances per hop.
struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  RouteBytes route;
  std::uint32_t route_pos = 0;
  /// Total size on the wire, including link and transport headers.
  std::uint32_t wire_bytes = 0;
  /// Set by fault injection; receiving NICs drop corrupt packets after the
  /// CRC check (contributing to transport retransmissions).
  bool corrupt = false;
  /// Injection timestamp, for end-to-end fabric latency accounting.
  sim::Time injected_at = 0;
  /// Stamped by each Channel at send time with the packet's computed
  /// arrival instant on that hop; after the last hop it is the delivery
  /// time at the destination station — the wire-stage boundary for latency
  /// attribution (obs/attr.hpp). -1 until the packet first enters a link.
  sim::Time delivered_at = -1;
  /// Link hops traversed so far (bumped alongside delivered_at); at the
  /// destination it annotates the wire stage of a captured span
  /// (obs/span.hpp) — tail messages often rode the longer route.
  std::uint8_t hops = 0;
  /// Unique id for tracing.
  std::uint64_t id = 0;
  std::unique_ptr<Payload> payload;
};

}  // namespace vnet::myrinet
