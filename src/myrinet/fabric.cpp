#include "myrinet/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vnet::myrinet {

Channel* Fabric::new_channel() {
  channels_.push_back(std::make_unique<Channel>(*engine_, params_.link));
  Channel* c = channels_.back().get();
  install_fault_filter(c);
  return c;
}

void Fabric::install_fault_filter(Channel* c) {
  c->fault_filter = [this](Packet& p) {
    if (params_.drop_probability > 0.0 &&
        fault_rng_.chance(params_.drop_probability)) {
      ++injected_drops_;
      return true;
    }
    if (params_.corrupt_probability > 0.0 &&
        fault_rng_.chance(params_.corrupt_probability)) {
      ++injected_corruptions_;
      p.corrupt = true;
    }
    return false;
  };
}

std::unique_ptr<Fabric> Fabric::crossbar(sim::Engine& engine, int hosts,
                                         const FabricParams& params) {
  if (hosts < 1) throw std::invalid_argument("crossbar: hosts must be >= 1");
  auto fabric = std::unique_ptr<Fabric>(new Fabric(engine, params));
  fabric->topology_ = Topology::kCrossbar;

  fabric->switches_.push_back(
      std::make_unique<Switch>(engine, hosts, params.sw));
  Switch& sw = *fabric->switches_.back();

  for (NodeId h = 0; h < hosts; ++h) {
    fabric->stations_.push_back(std::make_unique<Station>(engine, h));
    Station& st = *fabric->stations_.back();
    Channel* up = fabric->new_channel();    // host -> switch
    Channel* down = fabric->new_channel();  // switch -> host
    st.attach_tx(up);
    sw.attach_rx(h, up);
    sw.attach_tx(h, down);
    st.attach_rx(down);
    fabric->host_links_.push_back({up, down});
  }

  fabric->build_route_table();
  return fabric;
}

std::unique_ptr<Fabric> Fabric::fat_tree(sim::Engine& engine, int hosts,
                                         int hosts_per_leaf, int spines,
                                         const FabricParams& params) {
  if (hosts < 1 || hosts_per_leaf < 1 || spines < 1) {
    throw std::invalid_argument("fat_tree: all dimensions must be >= 1");
  }
  auto fabric = std::unique_ptr<Fabric>(new Fabric(engine, params));
  fabric->topology_ = Topology::kFatTree;
  fabric->hosts_per_leaf_ = hosts_per_leaf;
  fabric->spines_ = spines;

  const int leaves = (hosts + hosts_per_leaf - 1) / hosts_per_leaf;

  // Leaf switch l: ports [0, hosts_per_leaf) to hosts, ports
  // [hosts_per_leaf, hosts_per_leaf + spines) to spines.
  // Spine switch s: port l to leaf l.
  for (int l = 0; l < leaves; ++l) {
    fabric->switches_.push_back(std::make_unique<Switch>(
        engine, hosts_per_leaf + spines, params.sw));
  }
  for (int s = 0; s < spines; ++s) {
    fabric->switches_.push_back(
        std::make_unique<Switch>(engine, leaves, params.sw));
  }
  auto leaf = [&](int l) -> Switch& { return *fabric->switches_[l]; };
  auto spine = [&](int s) -> Switch& {
    return *fabric->switches_[leaves + s];
  };

  for (NodeId h = 0; h < hosts; ++h) {
    fabric->stations_.push_back(std::make_unique<Station>(engine, h));
    Station& st = *fabric->stations_.back();
    const int l = h / hosts_per_leaf;
    const int port = h % hosts_per_leaf;
    Channel* up = fabric->new_channel();
    Channel* down = fabric->new_channel();
    st.attach_tx(up);
    leaf(l).attach_rx(port, up);
    leaf(l).attach_tx(port, down);
    st.attach_rx(down);
    fabric->host_links_.push_back({up, down});
  }

  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      Channel* up = fabric->new_channel();    // leaf -> spine
      Channel* down = fabric->new_channel();  // spine -> leaf
      leaf(l).attach_tx(hosts_per_leaf + s, up);
      spine(s).attach_rx(l, up);
      spine(s).attach_tx(l, down);
      leaf(l).attach_rx(hosts_per_leaf + s, down);
    }
  }

  fabric->build_route_table();
  return fabric;
}

std::vector<Route> Fabric::compute_routes(NodeId src, NodeId dst) const {
  std::vector<Route> out;
  if (src == dst) return out;
  switch (topology_) {
    case Topology::kCrossbar:
      out.push_back(Route{static_cast<std::uint8_t>(dst)});
      break;
    case Topology::kFatTree: {
      const int src_leaf = src / hosts_per_leaf_;
      const int dst_leaf = dst / hosts_per_leaf_;
      const auto dst_port = static_cast<std::uint8_t>(dst % hosts_per_leaf_);
      if (src_leaf == dst_leaf) {
        out.push_back(Route{dst_port});
      } else {
        // One route per spine; rotate the starting spine by (src + dst) so
        // static channel-to-route bindings spread load across the spines.
        for (int k = 0; k < spines_; ++k) {
          const int s = (src + dst + k) % spines_;
          out.push_back(Route{
              static_cast<std::uint8_t>(hosts_per_leaf_ + s),
              static_cast<std::uint8_t>(dst_leaf),
              dst_port,
          });
        }
      }
      break;
    }
  }
  return out;
}

void Fabric::build_route_table() {
  const auto n = static_cast<std::size_t>(num_hosts());
  route_table_.resize(n * n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      route_table_[s * n + d] = compute_routes(static_cast<NodeId>(s),
                                               static_cast<NodeId>(d));
    }
  }
}

void Fabric::set_host_link(NodeId id, bool up) {
  auto& hl = host_links_[static_cast<std::size_t>(id)];
  hl.to_switch->set_up(up);
  hl.from_switch->set_up(up);
}

int Fabric::max_queue_watermark() const {
  int w = 0;
  for (const auto& sw : switches_) w = std::max(w, sw->high_watermark());
  return w;
}

}  // namespace vnet::myrinet
