#include "myrinet/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vnet::myrinet {

Fabric::~Fabric() { engine_->metrics().remove_fn_prefix("fabric."); }

Channel* Fabric::new_channel(std::string label) {
  channels_.push_back(std::make_unique<Channel>(*engine_, params_.link));
  const std::string prefix = "fabric.link." + label;
  channel_labels_.push_back(std::move(label));
  Channel* c = channels_.back().get();
  // Channels keep their own tally members (the hot path stays handle-free);
  // the registry samples them lazily at snapshot time.
  obs::MetricsRegistry& reg = engine_->metrics();
  reg.counter_fn(prefix + ".packets_tx", [c] { return c->packets_sent(); });
  reg.counter_fn(prefix + ".bytes_tx", [c] { return c->bytes_sent(); });
  reg.counter_fn(prefix + ".drops_down", [c] { return c->dropped_down(); });
  reg.counter_fn(prefix + ".drops_fault", [c] { return c->dropped_fault(); });
  install_fault_filter(c);
  return c;
}

void Fabric::register_metrics() {
  obs::MetricsRegistry& reg = engine_->metrics();
  reg.counter_fn("fabric.injected_drops", [this] { return injected_drops_; });
  reg.counter_fn("fabric.injected_corruptions",
                 [this] { return injected_corruptions_; });
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Switch* sw = switches_[i].get();
    reg.gauge_fn("fabric.switch." + std::to_string(i) + ".queue_watermark",
                 [sw] { return static_cast<double>(sw->high_watermark()); });
  }
}

void Fabric::install_fault_filter(Channel* c) {
  burst_states_.emplace_back();
  BurstState* bs = &burst_states_.back();
  c->fault_filter = [this, bs](Packet& p) {
    const FaultParams& f = params_.faults;
    if (f.burst.enabled) {
      // Advance the two-state chain once per wire crossing, then apply the
      // new state's loss rate.
      if (bs->bad) {
        if (fault_rng_.chance(f.burst.p_bad_to_good)) bs->bad = false;
      } else {
        if (fault_rng_.chance(f.burst.p_good_to_bad)) bs->bad = true;
      }
      const double loss = bs->bad ? f.burst.loss_bad : f.burst.loss_good;
      if (loss > 0.0 && fault_rng_.chance(loss)) {
        ++injected_drops_;
        return true;
      }
    }
    if (f.drop_probability > 0.0 && fault_rng_.chance(f.drop_probability)) {
      ++injected_drops_;
      return true;
    }
    if (f.corrupt_probability > 0.0 &&
        fault_rng_.chance(f.corrupt_probability)) {
      ++injected_corruptions_;
      p.corrupt = true;
    }
    return false;
  };
}

std::unique_ptr<Fabric> Fabric::crossbar(sim::Engine& engine, int hosts,
                                         const FabricParams& params) {
  if (hosts < 1) throw std::invalid_argument("crossbar: hosts must be >= 1");
  auto fabric = std::unique_ptr<Fabric>(new Fabric(engine, params));
  fabric->topology_ = Topology::kCrossbar;

  fabric->switches_.push_back(
      std::make_unique<Switch>(engine, hosts, params.sw));
  Switch& sw = *fabric->switches_.back();

  for (NodeId h = 0; h < hosts; ++h) {
    fabric->stations_.push_back(std::make_unique<Station>(engine, h));
    Station& st = *fabric->stations_.back();
    const std::string hs = std::to_string(h);
    Channel* up = fabric->new_channel("h" + hs + "->sw");
    Channel* down = fabric->new_channel("sw->h" + hs);
    st.attach_tx(up);
    sw.attach_rx(h, up);
    sw.attach_tx(h, down);
    st.attach_rx(down);
    fabric->host_links_.push_back({up, down});
  }

  fabric->register_metrics();
  fabric->build_route_table();
  return fabric;
}

std::unique_ptr<Fabric> Fabric::fat_tree(sim::Engine& engine, int hosts,
                                         int hosts_per_leaf, int spines,
                                         const FabricParams& params) {
  if (hosts < 1 || hosts_per_leaf < 1 || spines < 1) {
    throw std::invalid_argument("fat_tree: all dimensions must be >= 1");
  }
  auto fabric = std::unique_ptr<Fabric>(new Fabric(engine, params));
  fabric->topology_ = Topology::kFatTree;
  fabric->hosts_per_leaf_ = hosts_per_leaf;
  fabric->spines_ = spines;

  const int leaves = (hosts + hosts_per_leaf - 1) / hosts_per_leaf;

  // Leaf switch l: ports [0, hosts_per_leaf) to hosts, ports
  // [hosts_per_leaf, hosts_per_leaf + spines) to spines.
  // Spine switch s: port l to leaf l.
  for (int l = 0; l < leaves; ++l) {
    fabric->switches_.push_back(std::make_unique<Switch>(
        engine, hosts_per_leaf + spines, params.sw));
  }
  for (int s = 0; s < spines; ++s) {
    fabric->switches_.push_back(
        std::make_unique<Switch>(engine, leaves, params.sw));
  }
  auto leaf = [&](int l) -> Switch& { return *fabric->switches_[l]; };
  auto spine = [&](int s) -> Switch& {
    return *fabric->switches_[leaves + s];
  };

  for (NodeId h = 0; h < hosts; ++h) {
    fabric->stations_.push_back(std::make_unique<Station>(engine, h));
    Station& st = *fabric->stations_.back();
    const int l = h / hosts_per_leaf;
    const int port = h % hosts_per_leaf;
    const std::string hs = std::to_string(h);
    const std::string ls = std::to_string(l);
    Channel* up = fabric->new_channel("h" + hs + "->leaf" + ls);
    Channel* down = fabric->new_channel("leaf" + ls + "->h" + hs);
    st.attach_tx(up);
    leaf(l).attach_rx(port, up);
    leaf(l).attach_tx(port, down);
    st.attach_rx(down);
    fabric->host_links_.push_back({up, down});
  }

  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      const std::string ls = std::to_string(l);
      const std::string ss = std::to_string(s);
      Channel* up = fabric->new_channel("leaf" + ls + "->spine" + ss);
      Channel* down = fabric->new_channel("spine" + ss + "->leaf" + ls);
      leaf(l).attach_tx(hosts_per_leaf + s, up);
      spine(s).attach_rx(l, up);
      spine(s).attach_tx(l, down);
      leaf(l).attach_rx(hosts_per_leaf + s, down);
      fabric->trunks_.push_back({l, s, up, down});
    }
  }

  fabric->register_metrics();
  fabric->build_route_table();
  return fabric;
}

std::vector<Route> Fabric::compute_routes(NodeId src, NodeId dst) const {
  std::vector<Route> out;
  if (src == dst) return out;
  switch (topology_) {
    case Topology::kCrossbar:
      out.push_back(Route{static_cast<std::uint8_t>(dst)});
      break;
    case Topology::kFatTree: {
      const int src_leaf = src / hosts_per_leaf_;
      const int dst_leaf = dst / hosts_per_leaf_;
      const auto dst_port = static_cast<std::uint8_t>(dst % hosts_per_leaf_);
      if (src_leaf == dst_leaf) {
        out.push_back(Route{dst_port});
      } else {
        // One route per spine; rotate the starting spine by (src + dst) so
        // static channel-to-route bindings spread load across the spines.
        for (int k = 0; k < spines_; ++k) {
          const int s = (src + dst + k) % spines_;
          out.push_back(Route{
              static_cast<std::uint8_t>(hosts_per_leaf_ + s),
              static_cast<std::uint8_t>(dst_leaf),
              dst_port,
          });
        }
      }
      break;
    }
  }
  return out;
}

void Fabric::build_route_table() {
  const auto n = static_cast<std::size_t>(num_hosts());
  route_table_.resize(n * n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      route_table_[s * n + d] = compute_routes(static_cast<NodeId>(s),
                                               static_cast<NodeId>(d));
    }
  }
}

void Fabric::set_host_link(NodeId id, bool up) {
  auto& hl = host_links_[static_cast<std::size_t>(id)];
  hl.to_switch->set_up(up);
  hl.from_switch->set_up(up);
}

void Fabric::set_trunk_link(int leaf, int spine, bool up) {
  for (auto& t : trunks_) {
    if (t.leaf == leaf && t.spine == spine) {
      t.up->set_up(up);
      t.down->set_up(up);
      return;
    }
  }
}

std::uint64_t Fabric::total_dropped_down() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c->dropped_down();
  return n;
}

std::uint64_t Fabric::total_dropped_fault() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c->dropped_fault();
  return n;
}

int Fabric::max_queue_watermark() const {
  int w = 0;
  for (const auto& sw : switches_) w = std::max(w, sw->high_watermark());
  return w;
}

}  // namespace vnet::myrinet
