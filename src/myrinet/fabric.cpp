#include "myrinet/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace vnet::myrinet {

namespace {

std::vector<sim::Engine*> engines_of(sim::ShardGroup& group) {
  std::vector<sim::Engine*> v;
  v.reserve(static_cast<std::size_t>(group.size()));
  for (int s = 0; s < group.size(); ++s) v.push_back(&group.engine(s));
  return v;
}

}  // namespace

Fabric::Fabric(std::vector<sim::Engine*> engines, sim::ShardRouter* router,
               const FabricParams& params)
    : engines_(std::move(engines)), router_(router), params_(params) {
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    // Shard 0 keeps fault_seed verbatim (serial identity); the others get
    // cheap odd-multiplier derivations so no two shards share a stream.
    fault_states_.emplace_back(
        s == 0 ? params.faults.fault_seed
               : params.faults.fault_seed ^ (0x9e3779b97f4a7c15ULL * s),
        params.faults);
  }
}

Fabric::~Fabric() {
  for (sim::Engine* e : engines_) e->metrics().remove_fn_prefix("fabric.");
}

Fabric::Link Fabric::new_channel(std::string label, int tx_shard,
                                 int rx_shard) {
  const std::string prefix = "fabric.link." + label;
  channels_.push_back(std::make_unique<Channel>(
      *engines_[static_cast<std::size_t>(tx_shard)], params_.link));
  Channel* tx = channels_.back().get();
  Channel* rx = tx;
  if (tx_shard != rx_shard) {
    // Endpoints on different shards: split the direction into a tx half on
    // the sender's engine and an rx half on the receiver's, coupled
    // through the shard router (see Channel's cross-shard contract).
    channels_.push_back(std::make_unique<Channel>(
        *engines_[static_cast<std::size_t>(rx_shard)], params_.link));
    rx = channels_.back().get();
    tx->make_remote_tx(router_, tx_shard, rx_shard, rx);
    rx->make_remote_rx(router_, rx_shard, tx_shard, tx);
    channel_labels_.push_back(label);
    label += "#rx";  // keep channel_labels_ parallel to channels_
  }
  channel_labels_.push_back(std::move(label));
  ++link_directions_;
  // Channels keep their own tally members (the hot path stays handle-free);
  // the registry samples them lazily at snapshot time. All traffic counters
  // live on the tx half, so only it is registered — on its own engine.
  obs::MetricsRegistry& reg =
      engines_[static_cast<std::size_t>(tx_shard)]->metrics();
  reg.counter_fn(prefix + ".packets_tx", [tx] { return tx->packets_sent(); });
  reg.counter_fn(prefix + ".bytes_tx", [tx] { return tx->bytes_sent(); });
  reg.counter_fn(prefix + ".drops_down", [tx] { return tx->dropped_down(); });
  reg.counter_fn(prefix + ".drops_fault",
                 [tx] { return tx->dropped_fault(); });
  install_fault_filter(tx, tx_shard);
  return {tx, rx};
}

void Fabric::register_metrics() {
  obs::MetricsRegistry& reg = engines_[0]->metrics();
  reg.counter_fn("fabric.injected_drops", [this] { return injected_drops(); });
  reg.counter_fn("fabric.injected_corruptions",
                 [this] { return injected_corruptions(); });
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    Switch* sw = switches_[i].get();
    engines_[static_cast<std::size_t>(switch_shard_[i])]->metrics().gauge_fn(
        "fabric.switch." + std::to_string(i) + ".queue_watermark",
        [sw] { return static_cast<double>(sw->high_watermark()); });
  }
}

void Fabric::install_fault_filter(Channel* c, int shard) {
  burst_states_.emplace_back();
  BurstState* bs = &burst_states_.back();
  FaultState* fs = &fault_states_[static_cast<std::size_t>(shard)];
  c->fault_filter = [bs, fs](Packet& p) {
    const FaultParams& f = fs->faults;
    if (f.burst.enabled) {
      // Advance the two-state chain once per wire crossing, then apply the
      // new state's loss rate.
      if (bs->bad) {
        if (fs->rng.chance(f.burst.p_bad_to_good)) bs->bad = false;
      } else {
        if (fs->rng.chance(f.burst.p_good_to_bad)) bs->bad = true;
      }
      const double loss = bs->bad ? f.burst.loss_bad : f.burst.loss_good;
      if (loss > 0.0 && fs->rng.chance(loss)) {
        ++fs->drops;
        return true;
      }
    }
    if (f.drop_probability > 0.0 && fs->rng.chance(f.drop_probability)) {
      ++fs->drops;
      return true;
    }
    if (f.corrupt_probability > 0.0 &&
        fs->rng.chance(f.corrupt_probability)) {
      ++fs->corruptions;
      p.corrupt = true;
    }
    return false;
  };
}

std::unique_ptr<Fabric> Fabric::crossbar(sim::Engine& engine, int hosts,
                                         const FabricParams& params) {
  return build_crossbar({&engine}, nullptr, hosts, params);
}

std::unique_ptr<Fabric> Fabric::crossbar(sim::ShardGroup& group, int hosts,
                                         const FabricParams& params) {
  return build_crossbar(engines_of(group),
                        group.size() > 1 ? &group.router() : nullptr, hosts,
                        params);
}

std::unique_ptr<Fabric> Fabric::build_crossbar(
    std::vector<sim::Engine*> engines, sim::ShardRouter* router, int hosts,
    const FabricParams& params) {
  if (hosts < 1) throw std::invalid_argument("crossbar: hosts must be >= 1");
  auto fabric = std::unique_ptr<Fabric>(
      new Fabric(std::move(engines), router, params));
  fabric->topology_ = Topology::kCrossbar;
  const int shards = fabric->num_shards();

  // The one switch lives on shard 0; hosts spread in contiguous blocks, so
  // every host<->switch link beyond shard 0's block is a split channel.
  fabric->switches_.push_back(
      std::make_unique<Switch>(*fabric->engines_[0], hosts, params.sw));
  fabric->switch_shard_.push_back(0);
  Switch& sw = *fabric->switches_.back();

  for (NodeId h = 0; h < hosts; ++h) {
    const int hsh = static_cast<int>(static_cast<long>(h) * shards / hosts);
    fabric->host_shard_.push_back(hsh);
    fabric->stations_.push_back(std::make_unique<Station>(
        *fabric->engines_[static_cast<std::size_t>(hsh)], h));
    Station& st = *fabric->stations_.back();
    const std::string hs = std::to_string(h);
    Link up = fabric->new_channel("h" + hs + "->sw", hsh, 0);
    Link down = fabric->new_channel("sw->h" + hs, 0, hsh);
    st.attach_tx(up.tx);
    sw.attach_rx(h, up.rx);
    sw.attach_tx(h, down.tx);
    st.attach_rx(down.rx);
    fabric->host_links_.push_back({up.tx, down.tx});
  }

  fabric->register_metrics();
  fabric->build_route_table();
  return fabric;
}

std::unique_ptr<Fabric> Fabric::fat_tree(sim::Engine& engine, int hosts,
                                         int hosts_per_leaf, int spines,
                                         const FabricParams& params) {
  return build_fat_tree({&engine}, nullptr, hosts, hosts_per_leaf, spines,
                        params);
}

std::unique_ptr<Fabric> Fabric::fat_tree(sim::ShardGroup& group, int hosts,
                                         int hosts_per_leaf, int spines,
                                         const FabricParams& params) {
  return build_fat_tree(engines_of(group),
                        group.size() > 1 ? &group.router() : nullptr, hosts,
                        hosts_per_leaf, spines, params);
}

std::unique_ptr<Fabric> Fabric::build_fat_tree(
    std::vector<sim::Engine*> engines, sim::ShardRouter* router, int hosts,
    int hosts_per_leaf, int spines, const FabricParams& params) {
  if (hosts < 1 || hosts_per_leaf < 1 || spines < 1) {
    throw std::invalid_argument("fat_tree: all dimensions must be >= 1");
  }
  auto fabric = std::unique_ptr<Fabric>(
      new Fabric(std::move(engines), router, params));
  fabric->topology_ = Topology::kFatTree;
  fabric->hosts_per_leaf_ = hosts_per_leaf;
  fabric->spines_ = spines;
  const int shards = fabric->num_shards();

  const int leaves = (hosts + hosts_per_leaf - 1) / hosts_per_leaf;

  // Sharding = fat-tree subtrees: a leaf switch and all its hosts share a
  // shard, so host<->leaf links stay local and only leaf<->spine trunks
  // cross shards. Spines round-robin so trunk traffic spreads.
  auto leaf_shard = [&](int l) {
    return static_cast<int>(static_cast<long>(l) * shards / leaves);
  };
  auto spine_shard = [&](int s) { return s % shards; };

  // Leaf switch l: ports [0, hosts_per_leaf) to hosts, ports
  // [hosts_per_leaf, hosts_per_leaf + spines) to spines.
  // Spine switch s: port l to leaf l.
  for (int l = 0; l < leaves; ++l) {
    fabric->switches_.push_back(std::make_unique<Switch>(
        *fabric->engines_[static_cast<std::size_t>(leaf_shard(l))],
        hosts_per_leaf + spines, params.sw));
    fabric->switch_shard_.push_back(leaf_shard(l));
  }
  for (int s = 0; s < spines; ++s) {
    fabric->switches_.push_back(std::make_unique<Switch>(
        *fabric->engines_[static_cast<std::size_t>(spine_shard(s))], leaves,
        params.sw));
    fabric->switch_shard_.push_back(spine_shard(s));
  }
  auto leaf = [&](int l) -> Switch& { return *fabric->switches_[l]; };
  auto spine = [&](int s) -> Switch& {
    return *fabric->switches_[leaves + s];
  };

  for (NodeId h = 0; h < hosts; ++h) {
    const int l = h / hosts_per_leaf;
    const int hsh = leaf_shard(l);
    fabric->host_shard_.push_back(hsh);
    fabric->stations_.push_back(std::make_unique<Station>(
        *fabric->engines_[static_cast<std::size_t>(hsh)], h));
    Station& st = *fabric->stations_.back();
    const int port = h % hosts_per_leaf;
    const std::string hs = std::to_string(h);
    const std::string ls = std::to_string(l);
    Link up = fabric->new_channel("h" + hs + "->leaf" + ls, hsh, hsh);
    Link down = fabric->new_channel("leaf" + ls + "->h" + hs, hsh, hsh);
    st.attach_tx(up.tx);
    leaf(l).attach_rx(port, up.rx);
    leaf(l).attach_tx(port, down.tx);
    st.attach_rx(down.rx);
    fabric->host_links_.push_back({up.tx, down.tx});
  }

  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      const std::string ls = std::to_string(l);
      const std::string ss = std::to_string(s);
      Link up = fabric->new_channel("leaf" + ls + "->spine" + ss,
                                    leaf_shard(l), spine_shard(s));
      Link down = fabric->new_channel("spine" + ss + "->leaf" + ls,
                                      spine_shard(s), leaf_shard(l));
      leaf(l).attach_tx(hosts_per_leaf + s, up.tx);
      spine(s).attach_rx(l, up.rx);
      spine(s).attach_tx(l, down.tx);
      leaf(l).attach_rx(hosts_per_leaf + s, down.rx);
      fabric->trunks_.push_back({l, s, up.tx, down.tx});
    }
  }

  fabric->register_metrics();
  fabric->build_route_table();
  return fabric;
}

std::vector<Route> Fabric::compute_routes(NodeId src, NodeId dst) const {
  std::vector<Route> out;
  if (src == dst) return out;
  switch (topology_) {
    case Topology::kCrossbar:
      out.push_back(Route{static_cast<std::uint8_t>(dst)});
      break;
    case Topology::kFatTree: {
      const int src_leaf = src / hosts_per_leaf_;
      const int dst_leaf = dst / hosts_per_leaf_;
      const auto dst_port = static_cast<std::uint8_t>(dst % hosts_per_leaf_);
      if (src_leaf == dst_leaf) {
        out.push_back(Route{dst_port});
      } else {
        // One route per spine; rotate the starting spine by (src + dst) so
        // static channel-to-route bindings spread load across the spines.
        for (int k = 0; k < spines_; ++k) {
          const int s = (src + dst + k) % spines_;
          out.push_back(Route{
              static_cast<std::uint8_t>(hosts_per_leaf_ + s),
              static_cast<std::uint8_t>(dst_leaf),
              dst_port,
          });
        }
      }
      break;
    }
  }
  return out;
}

void Fabric::build_route_table() {
  const auto n = static_cast<std::size_t>(num_hosts());
  route_table_.resize(n * n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      route_table_[s * n + d] = compute_routes(static_cast<NodeId>(s),
                                               static_cast<NodeId>(d));
    }
  }
}

void Fabric::set_host_link(NodeId id, bool up) {
  auto& hl = host_links_[static_cast<std::size_t>(id)];
  hl.to_switch->set_up(up);
  hl.from_switch->set_up(up);
}

void Fabric::set_trunk_link(int leaf, int spine, bool up) {
  for (auto& t : trunks_) {
    if (t.leaf == leaf && t.spine == spine) {
      t.up->set_up(up);
      t.down->set_up(up);
      return;
    }
  }
}

std::uint64_t Fabric::total_dropped_down() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c->dropped_down();
  return n;
}

std::uint64_t Fabric::total_dropped_fault() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c->dropped_fault();
  return n;
}

int Fabric::max_queue_watermark() const {
  int w = 0;
  for (const auto& sw : switches_) w = std::max(w, sw->high_watermark());
  return w;
}

}  // namespace vnet::myrinet
