#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "host/host.hpp"
#include "lanai/endpoint_state.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::via {

/// A minimal Virtual Interface Architecture (VIA 1.0) layer built on the
/// same simulated NIC — the consolidation architecture the paper discusses
/// in §7 and targets in §8 ("we are currently working on applying these
/// techniques for network virtualization to an implementation of the
/// Virtual Interface Architecture").
///
/// It deliberately reproduces the reference architecture's restrictions
/// that the paper critiques:
///  * VIs are *connections*: one VI pair per communicating peer pair, so a
///    parallel program on n nodes needs n-1 VIs per node (n^2 total)
///    instead of one endpoint with n translation entries;
///  * resources are provisioned per connection, not pooled: every VI
///    consumes an endpoint frame slot when active, so complete
///    connectivity overcommits the NIC much sooner than virtual networks;
///  * memory must be explicitly registered (pinned) before it can be used
///    in a descriptor — a conservative memory-management position.
/// VIs may share a CompletionQueue, the one pooling mechanism VIA offers.

class CompletionQueue;
class Vi;

/// Address of a VI endpoint for connection establishment.
struct ViAddress {
  myrinet::NodeId node = myrinet::kInvalidNode;
  lanai::EpId ep = lanai::kInvalidEp;
  std::uint64_t key = 0;
  bool valid() const { return node != myrinet::kInvalidNode; }
};

/// Handle to a registered (pinned) memory region.
struct MemoryHandle {
  std::uint32_t id = 0;
  std::uint32_t bytes = 0;
  bool valid() const { return id != 0; }
};

/// One completion event.
struct Completion {
  enum class Kind { kSend, kRecv };
  Kind kind = Kind::kRecv;
  int vi_id = -1;
  std::uint32_t bytes = 0;
  std::uint64_t immediate = 0;  ///< 64-bit immediate data
};

/// A completion queue shared by any number of VIs (§7: "collections of
/// VI's may share a completion queue which provides a central location
/// for polling").
class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : cv_(engine) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Blocks until a completion is available, then returns it.
  sim::Task<Completion> wait(host::HostThread& t);

  /// Non-blocking variant.
  bool try_pop(Completion* out);

  std::size_t pending() const { return entries_.size(); }

  // -- internal --
  void push(Completion c) {
    entries_.push_back(c);
    cv_.notify_all();
  }
  void notify() { cv_.notify_all(); }
  void attach(Vi* vi) { vis_.push_back(vi); }
  void detach(Vi* vi);

 private:
  std::deque<Completion> entries_;
  std::vector<Vi*> vis_;
  sim::CondVar cv_;
};

/// A Virtual Interface: a connected send/recv queue pair.
class Vi {
 public:
  /// Creates an unconnected VI; completions go to `cq` (required — this
  /// minimal layer always uses completion queues).
  static sim::Task<std::unique_ptr<Vi>> create(host::HostThread& t,
                                               CompletionQueue& cq,
                                               int vi_id);

  ~Vi();
  Vi(const Vi&) = delete;
  Vi& operator=(const Vi&) = delete;

  /// This VI's address, exchanged out of band.
  ViAddress address() const;

  /// Binds this VI to its (single) remote peer. Both sides must connect
  /// before transfers; there is no wire handshake in this minimal layer.
  void connect(const ViAddress& peer);
  bool connected() const { return peer_.valid(); }

  /// Registers (pins) a memory region; charged per page. Descriptors may
  /// only reference registered memory (§7: "requiring explicit memory
  /// registration and pinning before communicating").
  sim::Task<MemoryHandle> register_memory(host::HostThread& t,
                                          std::uint32_t bytes);
  sim::Task<> deregister_memory(host::HostThread& t, MemoryHandle h);

  /// Posts a send of `bytes` from the registered region. Returns false
  /// (posting error) if the VI is unconnected, the handle is invalid, or
  /// `bytes` exceeds the registered length.
  sim::Task<bool> post_send(host::HostThread& t, MemoryHandle h,
                            std::uint32_t bytes, std::uint64_t immediate = 0);

  /// Pre-posts a receive buffer; arriving messages consume posted
  /// receives in order. Without a posted receive, arrivals wait in the
  /// endpoint queue (this layer maps the reliable-delivery VIA mode).
  void post_recv(MemoryHandle h);

  int id() const { return vi_id_; }
  std::uint64_t sends_completed() const { return sends_completed_; }
  std::uint64_t recvs_completed() const { return recvs_completed_; }

  /// Pump: moves arrived messages into completions against posted
  /// receives. Called by CompletionQueue::wait internally and usable
  /// directly by polling loops.
  sim::Task<std::size_t> poll(host::HostThread& t);

 private:
  Vi(host::Host& host, CompletionQueue& cq, int vi_id,
     lanai::EndpointState* state);

  host::Host* host_;
  CompletionQueue* cq_;
  int vi_id_;
  lanai::EndpointState* state_;
  ViAddress peer_;
  std::uint32_t next_mem_id_ = 1;
  std::vector<MemoryHandle> registered_;
  std::deque<MemoryHandle> posted_recvs_;
  std::uint64_t sends_completed_ = 0;
  std::uint64_t recvs_completed_ = 0;
  std::uint64_t sends_posted_ = 0;
  std::uint64_t acked_at_last_poll_ = 0;
};

/// VIA cost model knobs (kept here; the underlying NIC/host models are
/// shared with the virtual-network stack).
struct ViaCosts {
  /// Registration cost per 8 KB page (pin + translate + NIC update).
  static constexpr sim::Duration kRegisterPerPage = 15 * sim::us;
  static constexpr sim::Duration kDeregister = 8 * sim::us;
};

}  // namespace vnet::via
