#include "via/via.hpp"

#include <algorithm>
#include <cassert>

namespace vnet::via {

namespace {
constexpr std::uint8_t kViaHandler = 1;
}

// --------------------------------------------------------- CompletionQueue

void CompletionQueue::detach(Vi* vi) {
  vis_.erase(std::remove(vis_.begin(), vis_.end(), vi), vis_.end());
}

sim::Task<Completion> CompletionQueue::wait(host::HostThread& t) {
  for (;;) {
    // Pump every attached VI so arrivals/acks become completion entries.
    for (Vi* vi : vis_) co_await vi->poll(t);
    if (!entries_.empty()) {
      Completion c = entries_.front();
      entries_.pop_front();
      co_return c;
    }
    co_await t.block_for(cv_, 2 * sim::ms);
  }
}

bool CompletionQueue::try_pop(Completion* out) {
  if (entries_.empty()) return false;
  *out = entries_.front();
  entries_.pop_front();
  return true;
}

// ----------------------------------------------------------------------- Vi

Vi::Vi(host::Host& host, CompletionQueue& cq, int vi_id,
       lanai::EndpointState* state)
    : host_(&host), cq_(&cq), vi_id_(vi_id), state_(state) {
  state_->translations.resize(1);
  // Arrivals and send completions wake the shared completion queue; the
  // matching against posted receives happens in poll().
  state_->on_arrival = [this] { cq_->notify(); };
  state_->on_send_progress = [this] { cq_->notify(); };
  cq_->attach(this);
}

sim::Task<std::unique_ptr<Vi>> Vi::create(host::HostThread& t,
                                          CompletionQueue& cq, int vi_id) {
  lanai::EndpointState* state =
      co_await t.host().driver().create_endpoint(t.ctx(), 0x71a0 + vi_id);
  co_return std::unique_ptr<Vi>(new Vi(t.host(), cq, vi_id, state));
}

Vi::~Vi() {
  cq_->detach(this);
  if (state_ != nullptr) {
    state_->on_arrival = nullptr;
    state_->on_send_progress = nullptr;
    state_->on_return_to_sender = nullptr;
  }
}

ViAddress Vi::address() const {
  return ViAddress{state_->node, state_->id, state_->tag};
}

void Vi::connect(const ViAddress& peer) {
  peer_ = peer;
  state_->translations[0] =
      lanai::Translation{true, peer.node, peer.ep, peer.key};
}

sim::Task<MemoryHandle> Vi::register_memory(host::HostThread& t,
                                            std::uint32_t bytes) {
  const std::uint32_t pages = (bytes + 8191) / 8192;
  co_await t.compute(pages * ViaCosts::kRegisterPerPage);
  MemoryHandle h{next_mem_id_++, bytes};
  registered_.push_back(h);
  co_return h;
}

sim::Task<> Vi::deregister_memory(host::HostThread& t, MemoryHandle h) {
  co_await t.compute(ViaCosts::kDeregister);
  registered_.erase(
      std::remove_if(registered_.begin(), registered_.end(),
                     [&](const MemoryHandle& r) { return r.id == h.id; }),
      registered_.end());
}

sim::Task<bool> Vi::post_send(host::HostThread& t, MemoryHandle h,
                              std::uint32_t bytes, std::uint64_t immediate) {
  if (!connected()) co_return false;
  const auto it =
      std::find_if(registered_.begin(), registered_.end(),
                   [&](const MemoryHandle& r) { return r.id == h.id; });
  if (it == registered_.end() || bytes > it->bytes) co_return false;

  // Wait for send-queue space (descriptor ring full = VI send queue full).
  const auto depth = static_cast<std::size_t>(
      host_->nic().config().send_queue_depth);
  while (state_->send_queue.size() >= depth) {
    co_await poll(t);
    co_await t.compute(500);
  }
  co_await host_->driver().ensure_writable(t.ctx(), state_);
  host_->driver().touch(state_);
  co_await t.compute(host_->config().send_fixed +
                     host_->config().send_descriptor_words *
                         (state_->resident()
                              ? host_->config().pio_write_word
                              : host_->config().mem_write_word));
  lanai::SendDescriptor d;
  d.dest_index = 0;
  d.body.is_request = true;
  d.body.handler = kViaHandler;
  d.body.args[0] = immediate;
  d.body.bulk_bytes = bytes > 64 ? bytes : 0;  // small sends ride inline
  d.msg_id = state_->alloc_msg_id();
  const std::uint32_t mtu = host_->nic().config().max_packet_payload;
  d.frag_count =
      d.body.bulk_bytes == 0 ? 1 : (d.body.bulk_bytes + mtu - 1) / mtu;
  state_->send_queue.push_back(std::move(d));
  ++sends_posted_;
  host_->nic().doorbell(*state_);
  co_return true;
}

void Vi::post_recv(MemoryHandle h) { posted_recvs_.push_back(h); }

sim::Task<std::size_t> Vi::poll(host::HostThread& t) {
  std::size_t made = 0;
  // Send completions: descriptors fully acknowledged since last poll.
  const std::uint64_t acked = state_->msgs_sent;
  while (acked_at_last_poll_ < acked) {
    ++acked_at_last_poll_;
    ++sends_completed_;
    cq_->push(Completion{Completion::Kind::kSend, vi_id_, 0, 0});
    ++made;
  }
  // Receive completions: match arrivals against posted receives.
  while (!state_->recv_requests.empty() && !posted_recvs_.empty()) {
    lanai::RecvEntry e = std::move(state_->recv_requests.front());
    state_->recv_requests.pop_front();
    posted_recvs_.pop_front();
    co_await t.compute(host_->config().recv_fixed +
                       (state_->resident()
                            ? host_->config().pio_block_read
                            : 8 * host_->config().mem_poll));
    ++recvs_completed_;
    cq_->push(Completion{Completion::Kind::kRecv, vi_id_,
                         e.body.bulk_bytes, e.body.args[0]});
    ++made;
  }
  co_return made;
}

}  // namespace vnet::via
