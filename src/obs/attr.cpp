#include "obs/attr.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace vnet::obs {

namespace {

constexpr const char* kIntervalNames[kIntervalCount] = {
    "os",           // kEnqueue  -> kDoorbell:   host send overhead
    "nic_tx_wait",  // kDoorbell -> kNicPickup:  NIC service/scheduling wait
    "nic_tx",       // kNicPickup-> kWireInject: NIC tx service (incl. SBUS)
    "wire",         // kWireInject->kWireDeliver: fabric latency L
    "nic_rx",       // kWireDeliver->kRxDeposit: NIC rx service (incl. SBUS)
    "wake",         // kRxDeposit-> kHandlerWake: poll/thread wake latency
    "or",           // kHandlerWake->kHandlerDone: receiver overhead
};

void merge_into(HistogramData& into, const HistogramData& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into = from;
    return;
  }
  into.min_seen = std::min(into.min_seen, from.min_seen);
  into.max_seen = std::max(into.max_seen, from.max_seen);
  into.count += from.count;
  into.sum += from.sum;
  if (into.buckets.size() < from.buckets.size()) {
    into.buckets.resize(from.buckets.size(), 0);
  }
  for (std::size_t b = 0; b < from.buckets.size(); ++b) {
    into.buckets[b] += from.buckets[b];
  }
}

}  // namespace

const char* interval_name(unsigned i) {
  return i < kIntervalCount ? kIntervalNames[i] : "?";
}

bool AttrRecorder::begin(std::uint32_t src_node, std::uint32_t src_ep,
                         std::uint64_t msg_id, std::int64_t t_ns,
                         std::int64_t ev) {
  if (interval_ == 0) return false;
  if (seq_++ % interval_ != 0) return false;
  if (flights_.size() >= kMaxInflight) return false;
  Flight f;
  f.node = src_node;
  f.ep = src_ep;
  f.at.fill(-1);
  f.ev.fill(-1);
  f.at[static_cast<unsigned>(Stage::kEnqueue)] = t_ns;
  f.ev[static_cast<unsigned>(Stage::kEnqueue)] = ev;
  flights_[key(src_node, src_ep, msg_id)] = f;
  ++tracked_;
  return true;
}

void AttrRecorder::stamp(std::uint64_t k, Stage s, std::int64_t t_ns,
                         std::int64_t ev) {
  auto it = flights_.find(k);
  if (it == flights_.end()) return;
  std::int64_t& slot = it->second.at[static_cast<unsigned>(s)];
  if (slot < 0) {
    slot = t_ns;
    it->second.ev[static_cast<unsigned>(s)] = ev;
  }
}

void AttrRecorder::finish(std::uint64_t k, std::int64_t t_ns,
                          std::int64_t ev) {
  auto it = flights_.find(k);
  if (it == flights_.end()) return;
  Flight& f = it->second;
  std::int64_t& done = f.at[static_cast<unsigned>(Stage::kHandlerDone)];
  if (done < 0) {
    done = t_ns;
    f.ev[static_cast<unsigned>(Stage::kHandlerDone)] = ev;
  }
  EpHists& h = hists_for(f.node, f.ep);
  for (unsigned i = 0; i < kIntervalCount; ++i) {
    // Locally delivered messages never cross the wire; their flights have
    // gaps, and only intervals with both endpoints present are attributed.
    if (f.at[i] >= 0 && f.at[i + 1] >= 0) {
      h.stage[i].record(static_cast<double>(f.at[i + 1] - f.at[i]));
      if (f.ev[i] >= 0 && f.ev[i + 1] >= 0) {
        h.stage_ev[i].record(static_cast<double>(f.ev[i + 1] - f.ev[i]));
      }
    }
  }
  const std::int64_t t0 = f.at[static_cast<unsigned>(Stage::kEnqueue)];
  if (t0 >= 0) {
    h.e2e.record(static_cast<double>(done - t0));
    const std::int64_t ev0 = f.ev[static_cast<unsigned>(Stage::kEnqueue)];
    const std::int64_t evN = f.ev[static_cast<unsigned>(Stage::kHandlerDone)];
    if (ev0 >= 0 && evN >= 0) {
      h.e2e_ev.record(static_cast<double>(evN - ev0));
    }
  }
  flights_.erase(it);
  ++completed_;
}

AttrRecorder::EpHists& AttrRecorder::hists_for(std::uint32_t node,
                                               std::uint32_t ep) {
  const std::uint64_t k = (static_cast<std::uint64_t>(node) << 32) | ep;
  auto it = ep_hists_.find(k);
  if (it != ep_hists_.end()) return it->second;
  const std::string prefix = "host." + std::to_string(node) + ".ep." +
                             std::to_string(ep) + ".attr.";
  const std::string ev_prefix = "host." + std::to_string(node) + ".ep." +
                                std::to_string(ep) + ".attr_ev.";
  EpHists h;
  for (unsigned i = 0; i < kIntervalCount; ++i) {
    h.stage[i] = reg_->histogram(prefix + kIntervalNames[i]);
    h.stage_ev[i] = reg_->histogram(ev_prefix + kIntervalNames[i]);
  }
  h.e2e = reg_->histogram(prefix + "e2e");
  h.e2e_ev = reg_->histogram(ev_prefix + "e2e");
  return ep_hists_.emplace(k, h).first->second;
}

double AttrSummary::stage_sum_mean_ns() const {
  double s = 0;
  for (const HistogramData& h : stages) s += h.mean();
  return s;
}

AttrSummary summarize_attr(const Snapshot& snap) {
  AttrSummary out;
  for (const auto& [name, data] : snap.histograms) {
    // ".attr." and ".attr_ev." are disjoint substrings; classify by which
    // one (if either) the metric path contains.
    std::size_t pos = name.find(".attr.");
    bool ev = false;
    if (pos == std::string::npos) {
      pos = name.find(".attr_ev.");
      if (pos == std::string::npos) continue;
      ev = true;
    }
    const std::string leaf = name.substr(pos + (ev ? 9 : 6));
    if (leaf == "e2e") {
      merge_into(ev ? out.e2e_ev : out.e2e, data);
      continue;
    }
    for (unsigned i = 0; i < kIntervalCount; ++i) {
      if (leaf == kIntervalNames[i]) {
        merge_into(ev ? out.stage_ev[i] : out.stages[i], data);
        break;
      }
    }
  }
  return out;
}

std::string render_attr_report(const Snapshot& snap) {
  const AttrSummary s = summarize_attr(snap);
  if (s.e2e.count == 0) return {};
  const bool have_ev = s.e2e_ev.count > 0;
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-12s %8s %9s %9s %9s %9s", "stage",
                "count", "mean_us", "p50_us", "p95_us", "max_us");
  out += line;
  if (have_ev) {
    std::snprintf(line, sizeof(line), " %9s", "events");
    out += line;
  }
  out += '\n';
  auto row = [&](const char* name, const HistogramData& h,
                 const HistogramData& hev) {
    std::snprintf(line, sizeof(line), "%-12s %8llu %9.3f %9.3f %9.3f %9.3f",
                  name, static_cast<unsigned long long>(h.count),
                  h.mean() / 1e3, h.quantile(0.5) / 1e3,
                  h.quantile(0.95) / 1e3, h.max_seen / 1e3);
    out += line;
    if (have_ev) {
      std::snprintf(line, sizeof(line), " %9.1f", hev.mean());
      out += line;
    }
    out += '\n';
  };
  for (unsigned i = 0; i < kIntervalCount; ++i) {
    row(kIntervalNames[i], s.stages[i], s.stage_ev[i]);
  }
  row("e2e", s.e2e, s.e2e_ev);
  const double sum = s.stage_sum_mean_ns();
  const double e2e = s.e2e.mean();
  const double delta = e2e > 0 ? (sum - e2e) / e2e * 100.0 : 0.0;
  std::snprintf(line, sizeof(line),
                "stage sum of means %.3f us vs measured e2e mean %.3f us "
                "(delta %+.2f%%)\n",
                sum / 1e3, e2e / 1e3, delta);
  out += line;
  if (have_ev) {
    std::snprintf(line, sizeof(line),
                  "engine events per tracked message: mean %.1f (max %.0f)\n",
                  s.e2e_ev.mean(), s.e2e_ev.max_seen);
    out += line;
  }
  return out;
}

}  // namespace vnet::obs
