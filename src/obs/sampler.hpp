#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace vnet::obs {

/// Periodic time-series sampler (DESIGN.md §8).
///
/// Every Δt of simulated time the caller invokes sample(); the sampler
/// snapshots the registry, diffs against the previous window, and keeps one
/// row of values for every metric matching the configured prefixes.
/// csv() renders the collected windows — one row per window, one column per
/// metric — which is enough to plot any Figures 4–7-style curve (bandwidth
/// vs. size, throughput under timesharing, congestion spreading) from a
/// live run without touching the code again.
///
/// Column semantics: counters are in-window deltas, gauges are the level at
/// the window's end, and each histogram contributes `<name>.count` (window
/// delta), `<name>.mean` (mean of the in-window samples), and
/// `<name>.p50`/`.p99`/`.p999` quantile estimates of the in-window samples
/// (sub-bucketed sketch, ≤~1.6% relative error; clamped to the lifetime
/// observed range).
struct SamplerConfig {
  /// Nominal window length, purely informational here — the caller drives
  /// sample() on its own schedule and the emitted `window_ns` column
  /// records the actual spacing.
  std::int64_t period_ns = 1'000'000;
  /// Only metrics whose names start with one of these are exported; empty
  /// means everything.
  std::vector<std::string> prefixes;
};

class Sampler {
 public:
  Sampler(const MetricsRegistry& reg, SamplerConfig cfg)
      : reg_(&reg), cfg_(std::move(cfg)) {}

  /// Closes the current window at `now_ns` and opens the next. The first
  /// call only establishes the baseline and emits no row.
  void sample(std::int64_t now_ns);

  std::size_t rows() const { return rows_.size(); }
  const SamplerConfig& config() const { return cfg_; }

  /// Renders all windows as CSV: `window_end_ns,window_ns,<columns...>`.
  /// Columns are the union of metrics seen in any window, sorted by name;
  /// windows where a metric did not yet exist render as 0.
  std::string csv() const;

 private:
  bool admits(const std::string& name) const;

  const MetricsRegistry* reg_;
  SamplerConfig cfg_;
  bool have_base_ = false;
  Snapshot last_;
  struct Row {
    std::int64_t end_ns = 0;
    std::int64_t window_ns = 0;
    std::map<std::string, double> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace vnet::obs
