#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace vnet::obs {

/// Causal span capture (DESIGN.md §12).
///
/// AttrRecorder (attr.hpp) folds each pipeline boundary into an independent
/// per-stage histogram — good for aggregate LogP decomposition, useless for
/// asking "which stage made *this* slow message slow", because the
/// per-stage marginals lose the per-message joint. SpanRecorder keeps the
/// joint: each sampled message carries its full ordered boundary vector
/// (plus retransmission / return-to-sender edges) as one SpanTrace, parked
/// in a fixed-size per-endpoint ring. The analysis layer on top —
/// critical-path extraction and the differential tail profiler — is what
/// ROADMAP item 3's p99/p99.9 reporting and item 1's events-per-message
/// hunt both read from.
///
/// The span model is a degenerate DAG: one root span per message whose
/// children are the eight pipeline stages chained parent→child in boundary
/// order, with retransmit edges looping back into the tx stages and a
/// return-to-sender edge terminating the chain early. Because the chain is
/// linear per message (fragments of one message serialize through each
/// boundary and stamps are first-wins), the critical path through the DAG
/// is exactly the telescoping walk over *present* boundaries — see
/// SpanTrace::critical_path().
///
/// obs depends on nothing above it: timestamps are plain nanosecond
/// integers supplied by the stamping layers (am, lanai, myrinet), and the
/// recorder is reached through sim::Engine (which owns one next to the
/// AttrRecorder).

/// The nine pipeline boundaries of one message, in causal order. This is
/// attr.hpp's eight-boundary set plus kGateOpen, which splits the old
/// opaque doorbell→pickup gap into doorbell-coalesce wait vs. tx queue
/// wait — the two queues PR 7's batching introduced.
enum class SpanPoint : unsigned {
  kEnqueue = 0,  ///< application began writing the send descriptor
  kDoorbell,     ///< host finished the descriptor write and rang the NIC
  kGateOpen,     ///< doorbell-coalesce gate forwarded the ring to firmware
  kNicPickup,    ///< NIC tx service picked the descriptor up
  kWireInject,   ///< first fragment handed to the fabric
  kWireDeliver,  ///< last fragment delivered by the final hop
  kRxDeposit,    ///< NIC deposited the message in the receive queue
  kHandlerWake,  ///< polling thread dequeued the message
  kHandlerDone,  ///< application handler returned
};

inline constexpr unsigned kSpanPointCount = 9;
/// Stage `i` is the interval from boundary `i` to boundary `i+1`.
inline constexpr unsigned kSpanStageCount = kSpanPointCount - 1;

/// Name of stage `i`: "host_enqueue", "doorbell_gate", "tx_queue",
/// "tx_service", "wire", "rx_service", "wake", "handler".
const char* span_stage_name(unsigned i);

/// Queue-wait vs. service-time split: true for the stages where the
/// message sits in a queue waiting for an actor (doorbell_gate, tx_queue,
/// wake), false where an actor is actively working on it.
bool span_stage_is_wait(unsigned i);

/// An auxiliary causal edge hanging off a span: a retransmission re-enters
/// the tx stages, a return-to-sender terminates the chain at the source.
struct SpanEdge {
  enum class Kind : std::uint8_t { kRetransmit, kReturnToSender };
  Kind kind = Kind::kRetransmit;
  std::int64_t at_ns = 0;
  std::int32_t arg = 0;  ///< retry ordinal / return reason
};

/// One sampled message's complete causal record.
struct SpanTrace {
  /// Edges kept inline so the per-endpoint ring stays fixed-size; beyond
  /// this the trace keeps counting (retransmits) but stops storing.
  static constexpr unsigned kMaxEdges = 4;

  std::uint32_t node = 0;  ///< source node
  std::uint32_t ep = 0;    ///< source endpoint
  std::uint64_t msg_id = 0;
  std::array<std::int64_t, kSpanPointCount> at;  ///< -1 = not crossed
  std::array<SpanEdge, kMaxEdges> edges{};
  std::uint8_t edge_count = 0;
  std::uint16_t retransmits = 0;
  std::uint8_t wire_hops = 0;  ///< link hops of the delivering packet
  bool returned = false;       ///< transport returned it to the sender
  bool complete = false;       ///< kHandlerDone was reached

  /// End-to-end latency: last present boundary minus first present
  /// boundary (0 if fewer than two boundaries were stamped).
  std::int64_t e2e_ns() const;

  /// Critical-path extraction: walks the present boundaries in order and
  /// attributes the time between each consecutive present pair to the
  /// stage that *starts* at the earlier boundary (a gap spanning missing
  /// boundaries — e.g. local delivery skips the wire — charges wholly to
  /// the stage where the message actually was). The returned per-stage
  /// nanoseconds therefore telescope: they sum to e2e_ns() exactly, which
  /// is what makes the tail report's reconciliation an identity rather
  /// than an estimate.
  std::array<std::int64_t, kSpanStageCount> critical_path() const;
};

/// Flight recorder for spans: admission via a 1-in-N sampling knob,
/// first-wins boundary stamps (retransmission-safe), completed traces
/// committed to a fixed-size overwrite-oldest ring per source endpoint.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 256;

  explicit SpanRecorder(MetricsRegistry& reg);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Sampling-rate knob: track one in every `n` sent messages. 0 disables
  /// tracking entirely (the default) — stamp sites then cost one branch —
  /// and 1 tracks every message.
  void set_sample_interval(std::uint32_t n) {
    interval_ = n;
    skip_left_ = 0;  // first message after (re)enabling is tracked
    // Pre-size the in-flight table so the common case never rehashes.
    if (n != 0 && flights_.empty()) rehash_flights(kInitialFlightSlots);
  }
  std::uint32_t sample_interval() const { return interval_; }
  bool enabled() const { return interval_ != 0; }

  /// Per-endpoint ring capacity; applies to existing and future rings
  /// (shrinking discards oldest traces, counted as overwritten).
  void set_ring_capacity(std::size_t n);
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Same packed flight key as AttrRecorder::key, so stamp sites compute
  /// it once and feed both recorders.
  static std::uint64_t key(std::uint32_t src_node, std::uint32_t src_ep,
                           std::uint64_t msg_id) {
    return (static_cast<std::uint64_t>(src_node & 0xffffu) << 48) |
           (static_cast<std::uint64_t>(src_ep & 0xffffu) << 32) |
           (msg_id & 0xffffffffu);
  }

  /// Admission at the kEnqueue boundary (`t_ns` may be earlier than "now":
  /// the caller learns the message id only after the descriptor write it
  /// is timing). Applies the sampling knob; returns true if tracked.
  /// Inline so the 63-in-64 skip path is a branch and a decrement — no
  /// call, no division.
  bool begin(std::uint32_t src_node, std::uint32_t src_ep,
             std::uint64_t msg_id, std::int64_t t_ns) {
    if (interval_ == 0) return false;
    if (skip_left_ != 0) {
      --skip_left_;
      return false;
    }
    skip_left_ = interval_ - 1;
    return begin_slow(src_node, src_ep, msg_id, t_ns);
  }

  /// Records boundary `p` of a tracked flight. Unknown keys are ignored;
  /// repeated stamps keep the first value (retransmissions re-cross
  /// kNicPickup/kWireInject; the span keeps first pickup / first inject
  /// and counts the retry as an edge instead). The occupancy-filter miss
  /// path is inline: untracked messages pay a multiply and one hot array
  /// load per stamp site, no call.
  void point(std::uint64_t k, SpanPoint p, std::int64_t t_ns) {
    if (live_[filter_bucket(k)] != 0) point_slow(k, p, t_ns);
  }

  /// Hangs a causal edge off a tracked flight (kRetransmit bumps the
  /// retransmit counter even when the inline edge array is full).
  void edge(std::uint64_t k, SpanEdge::Kind kind, std::int64_t t_ns,
            std::int32_t arg = 0) {
    if (live_[filter_bucket(k)] != 0) edge_slow(k, kind, t_ns, arg);
  }

  /// Annotates the wire stage with the delivering packet's hop count
  /// (keeps the maximum across fragments).
  void set_wire_hops(std::uint64_t k, std::uint8_t hops) {
    if (live_[filter_bucket(k)] != 0) hops_slow(k, hops);
  }

  /// Final boundary: stamps kHandlerDone and commits the trace to its
  /// source endpoint's ring.
  void finish(std::uint64_t k, std::int64_t t_ns) {
    if (live_[filter_bucket(k)] != 0) finish_slow(k, t_ns);
  }

  /// Transport returned the message to its sender: records the edge and
  /// commits the (incomplete, returned) trace — unlike AttrRecorder the
  /// tail profiler *wants* these, they explain tail mass.
  void drop_returned(std::uint64_t k, std::int64_t t_ns,
                     std::int32_t reason = 0) {
    if (live_[filter_bucket(k)] != 0) drop_slow(k, t_ns, reason);
  }

  std::size_t inflight() const { return flight_count_; }
  std::uint64_t tracked() const { return tracked_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t overwritten() const { return overwritten_; }

  /// Every retained trace, endpoints in (node, ep) order and traces in
  /// commit order within an endpoint — deterministic given a
  /// deterministic simulation.
  std::vector<SpanTrace> collect() const;

  /// Drops retained traces and in-flight state (counters survive).
  void clear();

 private:
  struct EpRing {
    std::vector<SpanTrace> ring;
    std::size_t head = 0;  ///< oldest slot once the ring is full
  };

  /// In-flight storage: open-addressed, power-of-two flat table with
  /// linear probing and tombstone deletion. Chosen over unordered_map for
  /// the full-sampling hot path: a probe is multiply-shift-load-compare
  /// (no modulo by a prime bucket count, no node chase, no allocator
  /// traffic — slots are recycled in place).
  struct Flight {
    std::uint64_t key = 0;
    std::uint8_t state = 0;  ///< 0 empty, 1 live, 2 tombstone
    SpanTrace t;
  };

  static constexpr std::size_t kInitialFlightSlots = 256;
  /// Messages sent but never finished would otherwise accumulate; cap the
  /// in-flight table like AttrRecorder does.
  static constexpr std::size_t kMaxInflight = 1 << 16;

  bool begin_slow(std::uint32_t src_node, std::uint32_t src_ep,
                  std::uint64_t msg_id, std::int64_t t_ns);
  void point_slow(std::uint64_t k, SpanPoint p, std::int64_t t_ns);
  void edge_slow(std::uint64_t k, SpanEdge::Kind kind, std::int64_t t_ns,
                 std::int32_t arg);
  void hops_slow(std::uint64_t k, std::uint8_t hops);
  void finish_slow(std::uint64_t k, std::int64_t t_ns);
  void drop_slow(std::uint64_t k, std::int64_t t_ns, std::int32_t reason);

  Flight* find_flight(std::uint64_t k);
  SpanTrace* insert_flight(std::uint64_t k);
  void erase_flight(Flight& f);
  void rehash_flights(std::size_t new_slots);
  void commit(SpanTrace&& t);

  std::size_t hash_slot(std::uint64_t k) const {
    return static_cast<std::size_t>((k * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  /// Occupancy filter over the in-flight table: every stamp site fires on
  /// every message but only 1-in-N messages are tracked, so at wide
  /// sampling intervals almost every point()/finish() is a miss. A 64-way
  /// occupancy count (4 always-hot cache lines) lets the inline miss path
  /// bail without touching the much larger flat table.
  static unsigned filter_bucket(std::uint64_t k) {
    return static_cast<unsigned>((k * 0x9E3779B97F4A7C15ull) >> 58);
  }

  std::uint32_t interval_ = 0;
  std::uint32_t skip_left_ = 0;  ///< messages until the next admission
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::uint64_t tracked_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t overwritten_ = 0;
  Counter tracked_c_, completed_c_, overwritten_c_, returned_c_;
  std::array<std::uint32_t, 64> live_{};  ///< filter-bucket occupancy
  std::vector<Flight> flights_;    ///< power-of-two open-addressed table
  unsigned shift_ = 64;            ///< 64 − log2(flights_.size())
  std::size_t flight_count_ = 0;   ///< live entries
  std::size_t flight_fill_ = 0;    ///< live + tombstone entries
  std::map<std::uint64_t, EpRing> rings_;  ///< keyed (node<<32)|ep, ordered
};

/// One row of the differential culprit table.
struct TailStageRow {
  double p50_ns = 0;   ///< mean critical-path ns over the median cohort
  double tail_ns = 0;  ///< mean critical-path ns over the slowest-1% cohort
  double delta_ns = 0;
  double share = 0;  ///< delta / (tail e2e mean − p50 e2e mean)
};

/// Differential tail profile over a set of complete traces: the slowest 1%
/// (by e2e, minimum one trace) against the median cohort (the p25–p75
/// band), stage by stage.
struct TailReport {
  std::size_t total = 0;       ///< complete traces analyzed
  std::size_t excluded = 0;    ///< incomplete / returned traces set aside
  std::size_t tail_count = 0;  ///< slowest-1% cohort size
  std::size_t p50_count = 0;   ///< median cohort size
  double e2e_p50_ns = 0;       ///< exact order statistics over `total`
  double e2e_p99_ns = 0;
  double e2e_p999_ns = 0;
  double e2e_max_ns = 0;
  double p50_e2e_mean_ns = 0;  ///< cohort e2e means…
  double tail_e2e_mean_ns = 0;
  double p50_stage_sum_ns = 0;  ///< …and cohort critical-path stage sums
  double tail_stage_sum_ns = 0;
  std::array<TailStageRow, kSpanStageCount> stages{};
  std::uint64_t p50_retransmits = 0;  ///< causal annotations per cohort
  std::uint64_t tail_retransmits = 0;
  double p50_wire_hops = 0;  ///< mean delivering-packet hop count
  double tail_wire_hops = 0;

  /// Stage indices ordered by descending tail-vs-p50 delta.
  std::array<unsigned, kSpanStageCount> culprits{};

  /// |cohort stage sum − cohort e2e mean| / e2e mean; an identity (0) by
  /// construction of critical_path(), recomputed as a self-check.
  double p50_recon_err() const;
  double tail_recon_err() const;
};

/// Builds the report; incomplete and returned traces are excluded from the
/// cohorts but counted in `excluded`.
TailReport tail_report(const std::vector<SpanTrace>& traces);

/// The human-readable culprit table, ending in a greppable
/// "top p99 culprits:" line (consumed by CI's step summary). Returns "" if
/// there are no complete traces.
std::string render_tail_report(const TailReport& r);
std::string render_tail_report(const SpanRecorder& rec);

}  // namespace vnet::obs
