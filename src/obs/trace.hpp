#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace vnet::obs {

/// Simulated-time tracing (DESIGN.md §7): typed spans and instants stamped
/// on the simulation clock, exportable as Chrome trace_event JSON so a
/// whole run opens in Perfetto / chrome://tracing.
///
/// Every recording site goes through the VNET_TRACE_* macros below. When
/// the build compiles tracing out (VNET_OBS_TRACING=0, see the VNET_TRACING
/// CMake option) the macros expand to nothing — argument expressions are
/// not even evaluated — so instrumentation is zero-cost. When compiled in,
/// a disabled tracer (the default) costs one branch per site.

struct TraceArg {
  const char* key;
  std::int64_t value;
};

struct TraceEvent {
  char ph = 'i';            ///< 'X' complete span, 'i' instant
  std::int64_t ts_ns = 0;   ///< event (or span start) time
  std::int64_t dur_ns = 0;  ///< span length ('X' only)
  int pid = 0;              ///< Perfetto process row — we use the node id
  int tid = 0;              ///< Perfetto thread row within the node
  const char* cat = "";     ///< must point at a string literal
  std::string name;
  std::vector<TraceArg> args;
};

/// Event storage is a bounded ring (overwrite-oldest): long chaos campaigns
/// with tracing left on keep the most recent `capacity()` events instead of
/// growing without limit, and every overwritten event bumps dropped() —
/// exported by sim::Engine as the `obs.trace.dropped` counter.
class Tracer {
 public:
  using Clock = std::function<std::int64_t()>;
  using Args = std::initializer_list<TraceArg>;

  /// Default ring capacity; ~64k events is minutes of NIC-level tracing.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The simulated-time source; sim::Engine installs its own clock.
  void set_clock(Clock c) { clock_ = std::move(c); }
  /// Runtime switch, off by default. Compiled-in sites check this first.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  std::int64_t now() const { return clock_ ? clock_() : 0; }

  /// Records a point event at the current simulated time.
  void instant(const char* cat, std::string name, int pid = 0, int tid = 0,
               Args args = {});

  /// Records a span from `start_ns` to the current simulated time.
  void complete(const char* cat, std::string name, std::int64_t start_ns,
                int pid = 0, int tid = 0, Args args = {});

  /// Perfetto row labels (chrome metadata events).
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  /// Retained events in chronological (recording) order. Materializes a
  /// copy: the ring's physical layout wraps once it has overwritten.
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return capacity_; }
  /// Shrinks or grows the ring; shrinking discards the oldest retained
  /// events (counted as dropped).
  void set_capacity(std::size_t cap);
  /// Lifetime count of events overwritten by the ring (survives clear()).
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array form, ts/dur in us).
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_json() const;

 private:
  struct Meta {
    int pid = 0;
    int tid = 0;
    bool thread = false;
    std::string name;
  };

  void push(TraceEvent e);
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) fn(ring_[(head_ + i) % n]);
  }

  bool enabled_ = false;
  Clock clock_;
  // Bounded ring: fills linearly to capacity_, then head_ marks the oldest
  // slot and each push overwrites it.
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::vector<Meta> meta_;
};

}  // namespace vnet::obs

// Compile-time gate. The VNET_TRACING CMake option defines
// VNET_OBS_TRACING=1; without it the macros vanish entirely.
#ifndef VNET_OBS_TRACING
#define VNET_OBS_TRACING 0
#endif

#if VNET_OBS_TRACING
// Variadic so brace-initialized args lists ({{"k", v}, ...}) pass through
// the preprocessor unharmed.
#define VNET_TRACE_INSTANT(tracer, ...)                  \
  do {                                                   \
    ::vnet::obs::Tracer& vnet_obs_tr_ = (tracer);        \
    if (vnet_obs_tr_.enabled()) {                        \
      vnet_obs_tr_.instant(__VA_ARGS__);                 \
    }                                                    \
  } while (0)
#define VNET_TRACE_COMPLETE(tracer, ...)                 \
  do {                                                   \
    ::vnet::obs::Tracer& vnet_obs_tr_ = (tracer);        \
    if (vnet_obs_tr_.enabled()) {                        \
      vnet_obs_tr_.complete(__VA_ARGS__);                \
    }                                                    \
  } while (0)
#else
#define VNET_TRACE_INSTANT(...) ((void)0)
#define VNET_TRACE_COMPLETE(...) ((void)0)
#endif
