#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vnet::obs {

/// vnet::obs — the uniform instrumentation plane (DESIGN.md §7).
///
/// One MetricsRegistry (owned by sim::Engine) holds every counter, gauge,
/// and histogram in a simulation under hierarchical dotted names:
///
///     host.3.nic.retransmissions
///     host.0.driver.remaps
///     fabric.link.h0->sw.bytes_tx
///
/// Components hold cheap handles (a single pointer into registry-owned
/// cells) and bump them on the hot path; consumers take Snapshots at any
/// simulated time, diff them, and render them — replacing the scattered
/// per-component Stats structs and printf dumps.
///
/// obs deliberately depends on nothing above it (not even sim): times are
/// plain nanosecond integers supplied by the caller.

class MetricsRegistry;

/// Monotonically increasing event count. Default-constructed handles are
/// unbound and ignore increments; handles from MetricsRegistry::counter()
/// write straight into the registry cell.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (cell_ != nullptr) *cell_ += n;
  }
  std::uint64_t value() const { return cell_ != nullptr ? *cell_ : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Point-in-time level (queue depth, residency count, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double d) const {
    if (cell_ != nullptr) *cell_ += d;
  }
  double value() const { return cell_ != nullptr ? *cell_ : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// HDR-style sub-bucketed distribution data: the registry cell for Histogram
/// handles and the per-histogram value carried by Snapshots. Bucket 0 is
/// [0,1) (and catches anything below 1, including negatives); above that,
/// every power-of-two decade [2^m, 2^(m+1)) is split into kSubBuckets
/// linear sub-buckets of width 2^m/kSubBuckets. Worst-case relative error
/// of a within-bucket estimate is 1/(2*kSubBuckets) ≈ 1.6%, uniformly at
/// every quantile — the bound that makes Sampler's p99/p99.9 columns
/// trustworthy (the old pure-log2 buckets were ±50% at the tail).
struct HistogramData {
  static constexpr std::uint32_t kSubBuckets = 32;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min_seen = 0.0;  ///< valid iff count > 0
  double max_seen = 0.0;  ///< valid iff count > 0
  std::vector<std::uint64_t> buckets;

  void record(double x);
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Quantile estimate (q in [0,1]): rank-interpolated within the owning
  /// sub-bucket and clamped to [min_seen, max_seen]. An empty (or
  /// diffed-to-zero) histogram returns 0.
  double quantile(double q) const;
};

/// Handle to a registry-owned HistogramData cell.
class Histogram {
 public:
  Histogram() = default;
  void record(double x) const {
    if (cell_ != nullptr) cell_->record(x);
  }
  std::uint64_t count() const { return cell_ != nullptr ? cell_->count : 0; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* cell) : cell_(cell) {}
  HistogramData* cell_ = nullptr;
};

/// All metric values at one simulated instant. Maps are ordered by name, so
/// iteration (and everything rendered from it) is deterministic.
struct Snapshot {
  std::int64_t at_ns = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramData* histogram(const std::string& name) const;

  /// Sum of every counter whose name starts with `prefix` and ends with
  /// `suffix` (either may be empty). The idiom for cluster-wide totals:
  ///     snap.sum_counters("host.", ".nic.retransmissions")
  std::uint64_t sum_counters(std::string_view prefix,
                             std::string_view suffix = {}) const;
};

/// Per-metric difference `newer - older`: counters subtract (clamped at 0),
/// histograms subtract count/sum/buckets (min/max are taken from `newer`),
/// gauges are levels and keep the newer value. at_ns is the interval length.
Snapshot diff(const Snapshot& newer, const Snapshot& older);

/// Renders every counter/gauge under `prefix` as a fixed-width table, one
/// row per component: the name remainder is split at its last dot into
/// (row, column). With `skip_zero_rows`, rows whose cells are all zero are
/// omitted (idle links, unused endpoints).
std::string render_table(const Snapshot& snap, const std::string& prefix,
                         bool skip_zero_rows = true);

/// The process-wide metric namespace for one simulation. Registration is
/// idempotent: asking twice for the same name (and kind) returns a handle
/// to the same cell, so a recreated component continues its predecessor's
/// counts. Cells live as long as the registry (they are never reused).
///
/// Besides owned cells there are pull-style metrics — counter_fn()/
/// gauge_fn() register a callback sampled at snapshot time — for components
/// that already maintain their own counters (links, switches). Pull
/// callbacks must be removed (remove_fn_prefix) before the component they
/// read from is destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  void counter_fn(std::string name, std::function<std::uint64_t()> fn);
  void gauge_fn(std::string name, std::function<double()> fn);
  /// Drops every pull callback whose name starts with `prefix`. Owned cells
  /// are unaffected.
  void remove_fn_prefix(const std::string& prefix);

  /// Samples everything (cells and pull callbacks) at simulated time
  /// `at_ns`.
  Snapshot snapshot(std::int64_t at_ns = 0) const;

  /// Counters and gauges only — no histogram payload. Sub-bucketed
  /// histograms carry hundreds of buckets, so copying them dominates a
  /// full snapshot; high-frequency pollers whose rules are scalar-based
  /// (the Watchdog checks every watch window) use this instead.
  Snapshot snapshot_scalars(std::int64_t at_ns = 0) const;

  std::size_t size() const {
    return counter_index_.size() + gauge_index_.size() + hist_index_.size() +
           counter_fns_.size() + gauge_fns_.size();
  }

 private:
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> gauge_index_;
  std::map<std::string, std::size_t> hist_index_;
  // deques: cell addresses must survive registration of later metrics.
  std::deque<std::uint64_t> counter_cells_;
  std::deque<double> gauge_cells_;
  std::deque<HistogramData> hist_cells_;
  std::map<std::string, std::function<std::uint64_t()>> counter_fns_;
  std::map<std::string, std::function<double()>> gauge_fns_;
};

}  // namespace vnet::obs
