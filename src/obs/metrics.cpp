#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace vnet::obs {

// ----------------------------------------------------------- HistogramData

namespace {

constexpr std::uint32_t kSub = HistogramData::kSubBuckets;

// Bucket 0 is [0,1); bucket 1 + m*kSub + s is
// [2^m * (1 + s/kSub), 2^m * (1 + (s+1)/kSub)).
std::size_t bucket_of(double x) {
  if (x < 1.0) return 0;
  const int m = std::ilogb(x);
  auto s = static_cast<std::uint32_t>((std::ldexp(x, -m) - 1.0) * kSub);
  if (s >= kSub) s = kSub - 1;  // guards x == 2^(m+1) rounding
  return 1 + static_cast<std::size_t>(m) * kSub + s;
}

double bucket_lo(std::size_t b) {
  if (b == 0) return 0.0;
  const std::size_t m = (b - 1) / kSub;
  const std::size_t s = (b - 1) % kSub;
  return std::ldexp(1.0 + static_cast<double>(s) / kSub, static_cast<int>(m));
}

double bucket_hi(std::size_t b) {
  if (b == 0) return 1.0;
  const std::size_t m = (b - 1) / kSub;
  const std::size_t s = (b - 1) % kSub;
  return std::ldexp(1.0 + static_cast<double>(s + 1) / kSub,
                    static_cast<int>(m));
}

}  // namespace

void HistogramData::record(double x) {
  if (count == 0) {
    min_seen = max_seen = x;
  } else {
    min_seen = std::min(min_seen, x);
    max_seen = std::max(max_seen, x);
  }
  ++count;
  sum += x;
  const std::size_t b = bucket_of(x);
  if (buckets.size() <= b) buckets.resize(b + 1, 0);
  ++buckets[b];
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Fractional rank into the sorted sample; interpolate linearly inside the
  // owning sub-bucket (ranks spread evenly across its occupants), then clamp
  // to the observed range so bucket-0 and top-bucket estimates can never
  // leave [min_seen, max_seen].
  const double rank = q * static_cast<double>(count - 1);
  double seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const auto n = static_cast<double>(buckets[b]);
    if (n > 0 && rank < seen + n) {
      const double frac = (rank - seen + 0.5) / n;
      const double v = bucket_lo(b) + frac * (bucket_hi(b) - bucket_lo(b));
      return std::clamp(v, min_seen, max_seen);
    }
    seen += n;
  }
  // Rank beyond the bucket mass (possible after diff() clamping): report the
  // largest value this histogram has seen.
  return max_seen;
}

// ---------------------------------------------------------------- Snapshot

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

double Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it != gauges.end() ? it->second : 0.0;
}

const HistogramData* Snapshot::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it != histograms.end() ? &it->second : nullptr;
}

std::uint64_t Snapshot::sum_counters(std::string_view prefix,
                                     std::string_view suffix) const {
  std::uint64_t total = 0;
  for (const auto& [name, v] : counters) {
    const std::string_view n = name;
    if (n.size() < prefix.size() + suffix.size()) continue;
    if (n.substr(0, prefix.size()) != prefix) continue;
    if (n.substr(n.size() - suffix.size()) != suffix) continue;
    total += v;
  }
  return total;
}

Snapshot diff(const Snapshot& newer, const Snapshot& older) {
  Snapshot d;
  d.at_ns = newer.at_ns - older.at_ns;
  for (const auto& [name, v] : newer.counters) {
    const std::uint64_t prev = older.counter(name);
    d.counters[name] = v >= prev ? v - prev : 0;
  }
  d.gauges = newer.gauges;
  for (const auto& [name, h] : newer.histograms) {
    HistogramData hd = h;
    if (const HistogramData* prev = older.histogram(name)) {
      hd.count -= std::min(hd.count, prev->count);
      hd.sum -= prev->sum;
      for (std::size_t b = 0;
           b < std::min(hd.buckets.size(), prev->buckets.size()); ++b) {
        hd.buckets[b] -= std::min(hd.buckets[b], prev->buckets[b]);
      }
    }
    d.histograms[name] = std::move(hd);
  }
  return d;
}

std::string render_table(const Snapshot& snap, const std::string& prefix,
                         bool skip_zero_rows) {
  // Split every metric under `prefix` into (row, column) at the remainder's
  // last dot; collect cell text.
  std::map<std::string, std::map<std::string, std::string>> rows;
  std::map<std::string, std::map<std::string, bool>> nonzero;
  std::set<std::string> columns;

  auto admit = [&](const std::string& name) -> std::pair<bool, std::string> {
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name[prefix.size()] != '.') {
      return {false, {}};
    }
    return {true, name.substr(prefix.size() + 1)};
  };

  auto place = [&](const std::string& rest, std::string text, bool is_zero) {
    const std::size_t dot = rest.rfind('.');
    const std::string row = dot == std::string::npos ? "" : rest.substr(0, dot);
    const std::string col =
        dot == std::string::npos ? rest : rest.substr(dot + 1);
    columns.insert(col);
    rows[row][col] = std::move(text);
    nonzero[row][col] = !is_zero;
  };

  for (const auto& [name, v] : snap.counters) {
    auto [ok, rest] = admit(name);
    if (ok) place(rest, std::to_string(v), v == 0);
  }
  for (const auto& [name, v] : snap.gauges) {
    auto [ok, rest] = admit(name);
    if (!ok) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    place(rest, buf, v == 0.0);
  }

  // Column widths.
  const std::size_t last_dot = prefix.rfind('.');
  std::string row_header =
      last_dot == std::string::npos ? prefix : prefix.substr(last_dot + 1);
  std::size_t row_w = row_header.size();
  std::map<std::string, std::size_t> col_w;
  for (const auto& c : columns) col_w[c] = c.size();
  std::string out;
  std::vector<const std::string*> kept;
  for (const auto& [row, cells] : rows) {
    if (skip_zero_rows) {
      bool any = false;
      for (const auto& [col, nz] : nonzero[row]) any |= nz;
      if (!any) continue;
    }
    kept.push_back(&row);
    row_w = std::max(row_w, row.size());
    for (const auto& [col, text] : cells) {
      col_w[col] = std::max(col_w[col], text.size());
    }
  }

  auto pad_left = [&](std::string& s, const std::string& text, std::size_t w) {
    s.append(w > text.size() ? w - text.size() : 0, ' ');
    s += text;
  };

  // Header.
  out += row_header;
  out.append(row_w - row_header.size(), ' ');
  for (const auto& c : columns) {
    out += "  ";
    pad_left(out, c, col_w[c]);
  }
  out += '\n';

  for (const std::string* row : kept) {
    out += *row;
    out.append(row_w - row->size(), ' ');
    const auto& cells = rows[*row];
    for (const auto& c : columns) {
      out += "  ";
      auto it = cells.find(c);
      pad_left(out, it != cells.end() ? it->second : "-", col_w[c]);
    }
    out += '\n';
  }
  return out;
}

// --------------------------------------------------------- MetricsRegistry

Counter MetricsRegistry::counter(const std::string& name) {
  auto [it, inserted] = counter_index_.try_emplace(name, counter_cells_.size());
  if (inserted) counter_cells_.push_back(0);
  return Counter(&counter_cells_[it->second]);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  auto [it, inserted] = gauge_index_.try_emplace(name, gauge_cells_.size());
  if (inserted) gauge_cells_.push_back(0.0);
  return Gauge(&gauge_cells_[it->second]);
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  auto [it, inserted] = hist_index_.try_emplace(name, hist_cells_.size());
  if (inserted) hist_cells_.emplace_back();
  return Histogram(&hist_cells_[it->second]);
}

void MetricsRegistry::counter_fn(std::string name,
                                 std::function<std::uint64_t()> fn) {
  counter_fns_[std::move(name)] = std::move(fn);
}

void MetricsRegistry::gauge_fn(std::string name, std::function<double()> fn) {
  gauge_fns_[std::move(name)] = std::move(fn);
}

void MetricsRegistry::remove_fn_prefix(const std::string& prefix) {
  auto scrub = [&](auto& m) {
    auto it = m.lower_bound(prefix);
    while (it != m.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
      it = m.erase(it);
    }
  };
  scrub(counter_fns_);
  scrub(gauge_fns_);
}

Snapshot MetricsRegistry::snapshot(std::int64_t at_ns) const {
  Snapshot s;
  s.at_ns = at_ns;
  for (const auto& [name, idx] : counter_index_) {
    s.counters.emplace(name, counter_cells_[idx]);
  }
  for (const auto& [name, fn] : counter_fns_) s.counters.emplace(name, fn());
  for (const auto& [name, idx] : gauge_index_) {
    s.gauges.emplace(name, gauge_cells_[idx]);
  }
  for (const auto& [name, fn] : gauge_fns_) s.gauges.emplace(name, fn());
  for (const auto& [name, idx] : hist_index_) {
    s.histograms.emplace(name, hist_cells_[idx]);
  }
  return s;
}

Snapshot MetricsRegistry::snapshot_scalars(std::int64_t at_ns) const {
  Snapshot s;
  s.at_ns = at_ns;
  for (const auto& [name, idx] : counter_index_) {
    s.counters.emplace(name, counter_cells_[idx]);
  }
  for (const auto& [name, fn] : counter_fns_) s.counters.emplace(name, fn());
  for (const auto& [name, idx] : gauge_index_) {
    s.gauges.emplace(name, gauge_cells_[idx]);
  }
  for (const auto& [name, fn] : gauge_fns_) s.gauges.emplace(name, fn());
  return s;
}

}  // namespace vnet::obs
