#include "obs/watchdog.hpp"

#include <cstdio>
#include <map>
#include <string_view>

namespace vnet::obs {

namespace {

constexpr std::string_view kWakeupsSuffix = ".wait_wakeups";
constexpr std::string_view kBusySuffix = ".busy_channels";
constexpr std::string_view kBacklogSuffix = ".send_backlog";
constexpr std::string_view kLinkPrefix = "fabric.link.";
constexpr std::string_view kBytesTxSuffix = ".bytes_tx";

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void Watchdog::fire(std::int64_t now_ns, const char* rule,
                    std::string subject, std::string detail) {
  events_.push_back(
      {now_ns, rule, std::move(subject), std::move(detail)});
  if (on_fire_) on_fire_(events_.back());
}

void Watchdog::check(std::int64_t now_ns) {
  // Every watchdog rule is scalar-based; skipping the histogram payload
  // keeps the per-window check cheap now that histograms are sub-bucketed.
  Snapshot snap = reg_->snapshot_scalars(now_ns);
  if (!have_base_) {
    last_ = std::move(snap);
    have_base_ = true;
    return;
  }
  const Snapshot w = diff(snap, last_);
  const std::int64_t window_ns = now_ns - last_.at_ns;
  char detail[128];

  // channel-stall: busy channels, zero transport-level progress.
  for (const auto& [name, level] : snap.gauges) {
    if (!ends_with(name, kBusySuffix) || level <= 0) continue;
    const std::string nic = name.substr(0, name.size() - kBusySuffix.size());
    const std::uint64_t progress = w.counter(nic + ".acks_received") +
                                   w.counter(nic + ".nacks_received") +
                                   w.counter(nic + ".msgs_completed") +
                                   w.counter(nic + ".local_deliveries");
    if (progress == 0) {
      std::snprintf(detail, sizeof(detail),
                    "%.0f busy channel(s), no ack/completion in window",
                    level);
      fire(now_ns, "channel-stall", nic, detail);
    }
  }

  // frame-loiter: unfinished send descriptors, nothing transmitted at all.
  for (const auto& [name, level] : snap.gauges) {
    if (!ends_with(name, kBacklogSuffix) || level <= 0) continue;
    const std::string nic =
        name.substr(0, name.size() - kBacklogSuffix.size());
    const std::uint64_t sent = w.counter(nic + ".data_sent") +
                               w.counter(nic + ".retransmissions") +
                               w.counter(nic + ".local_deliveries") +
                               w.counter(nic + ".returned_to_sender");
    if (sent == 0) {
      std::snprintf(detail, sizeof(detail),
                    "%.0f pending descriptor(s), no transmission in window",
                    level);
      fire(now_ns, "frame-loiter", nic, detail);
    }
  }

  // spin-poll: an endpoint's waits kept completing with zero consumption.
  if (cfg_.spin_wakeup_threshold > 0) {
    for (const auto& [name, wakeups] : w.counters) {
      if (!ends_with(name, kWakeupsSuffix) ||
          wakeups <= cfg_.spin_wakeup_threshold) {
        continue;
      }
      const std::string ep =
          name.substr(0, name.size() - kWakeupsSuffix.size());
      const std::uint64_t consumed = w.counter(ep + ".messages_handled") +
                                     w.counter(ep + ".returns_handled");
      if (consumed == 0) {
        std::snprintf(detail, sizeof(detail),
                      "%llu wait wakeups, nothing consumed in window",
                      static_cast<unsigned long long>(wakeups));
        fire(now_ns, "spin-poll", ep, detail);
      }
    }
  }

  // link-pegged: one link busy for (near) the whole window.
  if (cfg_.link_ns_per_byte > 0 && window_ns > 0) {
    for (const auto& [name, bytes] : w.counters) {
      if (name.compare(0, kLinkPrefix.size(), kLinkPrefix) != 0 ||
          !ends_with(name, kBytesTxSuffix)) {
        continue;
      }
      const double occupancy = static_cast<double>(bytes) *
                               cfg_.link_ns_per_byte /
                               static_cast<double>(window_ns);
      if (occupancy >= cfg_.link_occupancy_threshold) {
        const std::string link = name.substr(
            kLinkPrefix.size(),
            name.size() - kLinkPrefix.size() - kBytesTxSuffix.size());
        std::snprintf(detail, sizeof(detail), "occupancy %.1f%%",
                      occupancy * 100.0);
        fire(now_ns, "link-pegged", "fabric.link." + link, detail);
      }
    }
  }

  last_ = std::move(snap);
}

std::string Watchdog::render_summary() const {
  if (events_.empty()) return {};
  struct Agg {
    std::uint64_t windows = 0;
    std::int64_t first_ns = 0;
    std::int64_t last_ns = 0;
    std::string detail;
  };
  std::map<std::string, Agg> by_key;  // "rule subject" -> agg
  for (const WatchdogEvent& e : events_) {
    Agg& a = by_key[e.rule + " " + e.subject];
    if (a.windows == 0) a.first_ns = e.at_ns;
    ++a.windows;
    a.last_ns = e.at_ns;
    a.detail = e.detail;  // keep the most recent
  }
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-28s %8s %10s %10s  %s\n",
                "rule", "subject", "windows", "first_ms", "last_ms",
                "detail");
  out += line;
  for (const auto& [key, a] : by_key) {
    const std::size_t space = key.find(' ');
    std::snprintf(line, sizeof(line), "%-14s %-28s %8llu %10.2f %10.2f  %s\n",
                  key.substr(0, space).c_str(),
                  key.substr(space + 1).c_str(),
                  static_cast<unsigned long long>(a.windows),
                  static_cast<double>(a.first_ns) / 1e6,
                  static_cast<double>(a.last_ns) / 1e6, a.detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace vnet::obs
