#include "obs/sampler.hpp"

#include <cstdio>
#include <set>

namespace vnet::obs {

bool Sampler::admits(const std::string& name) const {
  if (cfg_.prefixes.empty()) return true;
  for (const std::string& p : cfg_.prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

void Sampler::sample(std::int64_t now_ns) {
  Snapshot snap = reg_->snapshot(now_ns);
  if (!have_base_) {
    last_ = std::move(snap);
    have_base_ = true;
    return;
  }
  const Snapshot window = diff(snap, last_);
  Row row;
  row.end_ns = now_ns;
  row.window_ns = now_ns - last_.at_ns;
  for (const auto& [name, v] : window.counters) {
    if (admits(name)) row.cells[name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : window.gauges) {
    if (admits(name)) row.cells[name] = v;
  }
  for (const auto& [name, h] : window.histograms) {
    if (!admits(name)) continue;
    row.cells[name + ".count"] = static_cast<double>(h.count);
    row.cells[name + ".mean"] = h.mean();
    row.cells[name + ".p50"] = h.quantile(0.50);
    row.cells[name + ".p99"] = h.quantile(0.99);
    row.cells[name + ".p999"] = h.quantile(0.999);
  }
  rows_.push_back(std::move(row));
  last_ = std::move(snap);
}

std::string Sampler::csv() const {
  std::set<std::string> cols;
  for (const Row& r : rows_) {
    for (const auto& [name, v] : r.cells) cols.insert(name);
  }
  std::string out = "window_end_ns,window_ns";
  for (const std::string& c : cols) {
    out += ',';
    out += c;
  }
  out += '\n';
  char buf[64];
  for (const Row& r : rows_) {
    std::snprintf(buf, sizeof(buf), "%lld,%lld",
                  static_cast<long long>(r.end_ns),
                  static_cast<long long>(r.window_ns));
    out += buf;
    for (const std::string& c : cols) {
      auto it = r.cells.find(c);
      const double v = it != r.cells.end() ? it->second : 0.0;
      std::snprintf(buf, sizeof(buf), ",%.10g", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace vnet::obs
