#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vnet::obs {

namespace {

constexpr const char* kStageNames[kSpanStageCount] = {
    "host_enqueue",   // kEnqueue  -> kDoorbell   (host writes descriptor)
    "doorbell_gate",  // kDoorbell -> kGateOpen   (coalesce window wait)
    "tx_queue",       // kGateOpen -> kNicPickup  (waiting for tx service)
    "tx_service",     // kNicPickup-> kWireInject (firmware builds/sends)
    "wire",           // kWireInject->kWireDeliver (fabric transit)
    "rx_service",     // kWireDeliver->kRxDeposit (rx firmware deposits)
    "wake",           // kRxDeposit-> kHandlerWake (waiting for the poller)
    "handler",        // kHandlerWake->kHandlerDone (application handler)
};

constexpr bool kStageIsWait[kSpanStageCount] = {
    false, true, true, false, false, false, true, false,
};

std::string format_us(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ns / 1e3);
  return buf;
}

/// Exact order statistic over an ascending vector: linear interpolation at
/// fractional rank q*(n-1) — the reference the sketch golden test compares
/// against, reused here because the report holds every trace anyway.
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

const char* span_stage_name(unsigned i) {
  return i < kSpanStageCount ? kStageNames[i] : "?";
}

bool span_stage_is_wait(unsigned i) {
  return i < kSpanStageCount && kStageIsWait[i];
}

// ---------------------------------------------------------------- SpanTrace

std::int64_t SpanTrace::e2e_ns() const {
  std::int64_t first = -1, last = -1;
  for (unsigned i = 0; i < kSpanPointCount; ++i) {
    if (at[i] < 0) continue;
    if (first < 0) first = at[i];
    last = at[i];
  }
  return (first >= 0 && last >= 0) ? last - first : 0;
}

std::array<std::int64_t, kSpanStageCount> SpanTrace::critical_path() const {
  std::array<std::int64_t, kSpanStageCount> cp{};
  int prev = -1;
  for (unsigned i = 0; i < kSpanPointCount; ++i) {
    if (at[i] < 0) continue;
    if (prev >= 0) cp[static_cast<unsigned>(prev)] = at[i] - at[prev];
    prev = static_cast<int>(i);
  }
  return cp;
}

// ------------------------------------------------------------- SpanRecorder

SpanRecorder::SpanRecorder(MetricsRegistry& reg)
    : tracked_c_(reg.counter("obs.span.tracked")),
      completed_c_(reg.counter("obs.span.completed")),
      overwritten_c_(reg.counter("obs.span.overwritten")),
      returned_c_(reg.counter("obs.span.returned")) {}

void SpanRecorder::set_ring_capacity(std::size_t n) {
  if (n == 0) n = 1;
  for (auto& [k, r] : rings_) {
    if (r.ring.size() > n || r.head != 0) {
      const std::size_t sz = r.ring.size();
      const std::size_t kept = sz < n ? sz : n;
      std::vector<SpanTrace> keep;
      keep.reserve(kept);
      for (std::size_t i = sz - kept; i < sz; ++i) {
        keep.push_back(std::move(r.ring[(r.head + i) % sz]));
      }
      overwritten_ += sz - kept;
      overwritten_c_.inc(sz - kept);
      r.ring = std::move(keep);
      r.head = 0;
    }
  }
  ring_capacity_ = n;
}

SpanRecorder::Flight* SpanRecorder::find_flight(std::uint64_t k) {
  const std::size_t mask = flights_.size() - 1;
  std::size_t i = hash_slot(k);
  while (true) {
    Flight& f = flights_[i];
    if (f.state == 0) return nullptr;
    if (f.state == 1 && f.key == k) return &f;
    i = (i + 1) & mask;
  }
}

SpanTrace* SpanRecorder::insert_flight(std::uint64_t k) {
  // Keep fill (live + tombstones) under 3/4 so probes terminate quickly;
  // a same-size rehash purges tombstones when the live load is still low.
  if (flight_fill_ * 4 >= flights_.size() * 3) {
    rehash_flights(flight_count_ * 2 >= flights_.size() ? flights_.size() * 2
                                                        : flights_.size());
  }
  const std::size_t mask = flights_.size() - 1;
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t free_slot = npos;
  std::size_t i = hash_slot(k);
  while (true) {
    Flight& f = flights_[i];
    if (f.state == 0) break;
    if (f.state == 2) {
      if (free_slot == npos) free_slot = i;
    } else if (f.key == k) {
      return &f.t;  // key reuse: replace the existing flight in place
    }
    i = (i + 1) & mask;
  }
  if (free_slot == npos) {
    free_slot = i;  // consumed an empty slot (reusing a tombstone is free)
    ++flight_fill_;
  }
  Flight& f = flights_[free_slot];
  f.key = k;
  f.state = 1;
  ++flight_count_;
  ++live_[filter_bucket(k)];
  return &f.t;
}

void SpanRecorder::erase_flight(Flight& f) {
  f.state = 2;
  --flight_count_;
  --live_[filter_bucket(f.key)];
}

void SpanRecorder::rehash_flights(std::size_t new_slots) {
  std::vector<Flight> old = std::move(flights_);
  flights_.assign(new_slots, Flight{});
  shift_ = 64;
  for (std::size_t s = new_slots; s > 1; s >>= 1) --shift_;
  flight_fill_ = flight_count_;
  const std::size_t mask = new_slots - 1;
  for (Flight& f : old) {
    if (f.state != 1) continue;
    std::size_t i = hash_slot(f.key);
    while (flights_[i].state == 1) i = (i + 1) & mask;
    flights_[i] = std::move(f);
  }
}

bool SpanRecorder::begin_slow(std::uint32_t src_node, std::uint32_t src_ep,
                              std::uint64_t msg_id, std::int64_t t_ns) {
  if (flight_count_ >= kMaxInflight) return false;
  const std::uint64_t k = key(src_node, src_ep, msg_id);
  SpanTrace* t = insert_flight(k);
  t->node = src_node;
  t->ep = src_ep;
  t->msg_id = msg_id;
  t->at.fill(-1);
  t->at[static_cast<unsigned>(SpanPoint::kEnqueue)] = t_ns;
  t->edge_count = 0;  // slots are recycled: reset the mutable fields
  t->retransmits = 0;
  t->wire_hops = 0;
  t->returned = false;
  t->complete = false;
  ++tracked_;
  tracked_c_.inc();
  return true;
}

void SpanRecorder::point_slow(std::uint64_t k, SpanPoint p,
                              std::int64_t t_ns) {
  Flight* f = find_flight(k);
  if (!f) return;
  std::int64_t& slot = f->t.at[static_cast<unsigned>(p)];
  if (slot < 0) slot = t_ns;
}

void SpanRecorder::edge_slow(std::uint64_t k, SpanEdge::Kind kind,
                             std::int64_t t_ns, std::int32_t arg) {
  Flight* f = find_flight(k);
  if (!f) return;
  SpanTrace& t = f->t;
  if (kind == SpanEdge::Kind::kRetransmit) ++t.retransmits;
  if (t.edge_count < SpanTrace::kMaxEdges) {
    t.edges[t.edge_count++] = SpanEdge{kind, t_ns, arg};
  }
}

void SpanRecorder::hops_slow(std::uint64_t k, std::uint8_t hops) {
  Flight* f = find_flight(k);
  if (!f) return;
  if (hops > f->t.wire_hops) f->t.wire_hops = hops;
}

void SpanRecorder::finish_slow(std::uint64_t k, std::int64_t t_ns) {
  Flight* f = find_flight(k);
  if (!f) return;
  std::int64_t& done = f->t.at[static_cast<unsigned>(SpanPoint::kHandlerDone)];
  if (done < 0) done = t_ns;
  f->t.complete = true;
  ++completed_;
  completed_c_.inc();
  commit(std::move(f->t));
  erase_flight(*f);
}

void SpanRecorder::drop_slow(std::uint64_t k, std::int64_t t_ns,
                             std::int32_t reason) {
  Flight* f = find_flight(k);
  if (!f) return;
  SpanTrace& t = f->t;
  if (t.edge_count < SpanTrace::kMaxEdges) {
    t.edges[t.edge_count++] =
        SpanEdge{SpanEdge::Kind::kReturnToSender, t_ns, reason};
  }
  t.returned = true;
  returned_c_.inc();
  commit(std::move(t));
  erase_flight(*f);
}

void SpanRecorder::commit(SpanTrace&& t) {
  const std::uint64_t rk = (static_cast<std::uint64_t>(t.node) << 32) | t.ep;
  EpRing& r = rings_[rk];
  if (r.ring.size() < ring_capacity_) {
    r.ring.push_back(std::move(t));
    return;
  }
  r.ring[r.head] = std::move(t);
  r.head = (r.head + 1) % ring_capacity_;
  ++overwritten_;
  overwritten_c_.inc();
}

std::vector<SpanTrace> SpanRecorder::collect() const {
  std::vector<SpanTrace> out;
  for (const auto& [k, r] : rings_) {
    const std::size_t n = r.ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(r.ring[(r.head + i) % n]);
    }
  }
  return out;
}

void SpanRecorder::clear() {
  for (Flight& f : flights_) f.state = 0;
  flight_count_ = 0;
  flight_fill_ = 0;
  rings_.clear();
  live_.fill(0);
}

// -------------------------------------------------------------- TailReport

double TailReport::p50_recon_err() const {
  if (p50_e2e_mean_ns <= 0) return 0.0;
  return std::fabs(p50_stage_sum_ns - p50_e2e_mean_ns) / p50_e2e_mean_ns;
}

double TailReport::tail_recon_err() const {
  if (tail_e2e_mean_ns <= 0) return 0.0;
  return std::fabs(tail_stage_sum_ns - tail_e2e_mean_ns) / tail_e2e_mean_ns;
}

TailReport tail_report(const std::vector<SpanTrace>& traces) {
  TailReport r;

  // Keep complete, non-returned traces; order them by e2e ascending.
  std::vector<const SpanTrace*> done;
  done.reserve(traces.size());
  for (const SpanTrace& t : traces) {
    if (t.complete && !t.returned) {
      done.push_back(&t);
    } else {
      ++r.excluded;
    }
  }
  r.total = done.size();
  if (done.empty()) return r;
  std::stable_sort(done.begin(), done.end(),
                   [](const SpanTrace* a, const SpanTrace* b) {
                     return a->e2e_ns() < b->e2e_ns();
                   });

  std::vector<double> e2e;
  e2e.reserve(done.size());
  for (const SpanTrace* t : done) e2e.push_back(double(t->e2e_ns()));
  r.e2e_p50_ns = exact_quantile(e2e, 0.50);
  r.e2e_p99_ns = exact_quantile(e2e, 0.99);
  r.e2e_p999_ns = exact_quantile(e2e, 0.999);
  r.e2e_max_ns = e2e.back();

  // Cohorts: the slowest 1% (at least one trace) vs. the p25–p75 band.
  const std::size_t n = done.size();
  r.tail_count = std::max<std::size_t>(1, n / 100);
  const std::size_t p25 = n / 4;
  const std::size_t p75 = std::max(p25 + 1, (3 * n) / 4);

  auto accumulate = [&](std::size_t lo, std::size_t hi,
                        std::array<double, kSpanStageCount>& stage_mean,
                        double& e2e_mean, double& stage_sum,
                        std::uint64_t& retx, double& hops) {
    const double m = static_cast<double>(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const SpanTrace* t = done[i];
      const auto cp = t->critical_path();
      for (unsigned s = 0; s < kSpanStageCount; ++s) {
        stage_mean[s] += static_cast<double>(cp[s]) / m;
      }
      e2e_mean += static_cast<double>(t->e2e_ns()) / m;
      retx += t->retransmits;
      hops += static_cast<double>(t->wire_hops) / m;
    }
    for (unsigned s = 0; s < kSpanStageCount; ++s) stage_sum += stage_mean[s];
  };

  std::array<double, kSpanStageCount> p50_stage{}, tail_stage{};
  r.p50_count = p75 - p25;
  accumulate(p25, p75, p50_stage, r.p50_e2e_mean_ns, r.p50_stage_sum_ns,
             r.p50_retransmits, r.p50_wire_hops);
  accumulate(n - r.tail_count, n, tail_stage, r.tail_e2e_mean_ns,
             r.tail_stage_sum_ns, r.tail_retransmits, r.tail_wire_hops);

  const double widen = r.tail_e2e_mean_ns - r.p50_e2e_mean_ns;
  for (unsigned s = 0; s < kSpanStageCount; ++s) {
    r.stages[s].p50_ns = p50_stage[s];
    r.stages[s].tail_ns = tail_stage[s];
    r.stages[s].delta_ns = tail_stage[s] - p50_stage[s];
    r.stages[s].share = widen > 0 ? r.stages[s].delta_ns / widen : 0.0;
  }
  for (unsigned s = 0; s < kSpanStageCount; ++s) r.culprits[s] = s;
  std::stable_sort(r.culprits.begin(), r.culprits.end(),
                   [&](unsigned a, unsigned b) {
                     return r.stages[a].delta_ns > r.stages[b].delta_ns;
                   });
  return r;
}

std::string render_tail_report(const TailReport& r) {
  if (r.total == 0) return "";
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "span tail profile: %zu spans (%zu tail, %zu median cohort"
                ", %zu excluded)\n",
                r.total, r.tail_count, r.p50_count, r.excluded);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  e2e p50 %s us   p99 %s us   p99.9 %s us   max %s us\n",
                format_us(r.e2e_p50_ns).c_str(),
                format_us(r.e2e_p99_ns).c_str(),
                format_us(r.e2e_p999_ns).c_str(),
                format_us(r.e2e_max_ns).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %12s %12s %7s\n", "stage",
                "p50-cohort", "tail-cohort", "delta(us)", "share");
  out += buf;
  for (unsigned s = 0; s < kSpanStageCount; ++s) {
    std::string label = span_stage_name(s);
    label += span_stage_is_wait(s) ? " (wait)" : " (svc)";
    std::snprintf(buf, sizeof(buf), "  %-18s %12s %12s %12s %6.1f%%\n",
                  label.c_str(), format_us(r.stages[s].p50_ns).c_str(),
                  format_us(r.stages[s].tail_ns).c_str(),
                  format_us(r.stages[s].delta_ns).c_str(),
                  100.0 * r.stages[s].share);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %12s\n", "stage sum",
                format_us(r.p50_stage_sum_ns).c_str(),
                format_us(r.tail_stage_sum_ns).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  %-18s %12s %12s   (recon err %.2f%% / %.2f%%)\n",
                "e2e mean", format_us(r.p50_e2e_mean_ns).c_str(),
                format_us(r.tail_e2e_mean_ns).c_str(),
                100.0 * r.p50_recon_err(), 100.0 * r.tail_recon_err());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  retransmits: %llu in tail cohort vs %llu in p50 cohort;"
                " mean wire hops %.2f vs %.2f\n",
                static_cast<unsigned long long>(r.tail_retransmits),
                static_cast<unsigned long long>(r.p50_retransmits),
                r.tail_wire_hops, r.p50_wire_hops);
  out += buf;
  out += "  top p99 culprits:";
  for (unsigned i = 0; i < 3 && i < kSpanStageCount; ++i) {
    const unsigned s = r.culprits[i];
    std::snprintf(buf, sizeof(buf), "%s %s (+%s us, %.0f%%)", i ? "," : "",
                  span_stage_name(s), format_us(r.stages[s].delta_ns).c_str(),
                  100.0 * r.stages[s].share);
    out += buf;
  }
  out += '\n';
  return out;
}

std::string render_tail_report(const SpanRecorder& rec) {
  return render_tail_report(tail_report(rec.collect()));
}

}  // namespace vnet::obs
