#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace vnet::obs {

/// Stall watchdogs (DESIGN.md §8): registry-driven detectors that name the
/// component that stopped making progress. The caller invokes check() once
/// per watch window of simulated time; each check snapshots the registry,
/// diffs against the previous window, and fires an event per rule/subject
/// that stalled across the whole window:
///
///   channel-stall — a NIC holds busy channels but saw zero acks, nacks or
///                   message completions (e.g. every route to the peer is
///                   down and retransmissions vanish into the dead trunk);
///   frame-loiter  — a NIC has unfinished send descriptors but transmitted
///                   nothing at all, not even a retransmission;
///   link-pegged   — back-pressure pinned one link at (near) 100% occupancy
///                   for the entire window;
///   spin-poll     — an endpoint's wait loop kept waking (wait_wakeups grew
///                   past the threshold) while handling zero messages or
///                   returns: some thread waits on a level-triggered
///                   condition it never consumes (the PR 6 bug class).
///
/// Events accumulate for render_summary() (one row per rule/subject, wired
/// into the chaos scenario reports) and optionally invoke an on_fire hook,
/// which chaos uses to drop trace instants at the moment of detection.
struct WatchdogConfig {
  /// Watch-window length the caller promises to check() at; occupancy is
  /// computed against the actual spacing of check() calls.
  std::int64_t window_ns = 500'000;
  /// Serialization cost of the watched links; 0 disables the link-pegged
  /// rule (occupancy cannot be computed without it).
  double link_ns_per_byte = 0.0;
  double link_occupancy_threshold = 0.99;
  /// spin-poll rule: fire when an endpoint's wait_wakeups grows by more
  /// than this in one window while its messages_handled + returns_handled
  /// did not move. A healthy server wakes at most once per message; 64
  /// progress-free wakeups in a window is a busy loop. 0 disables.
  std::uint64_t spin_wakeup_threshold = 64;
};

struct WatchdogEvent {
  std::int64_t at_ns = 0;
  std::string rule;
  std::string subject;
  std::string detail;
};

class Watchdog {
 public:
  Watchdog(const MetricsRegistry& reg, WatchdogConfig cfg)
      : reg_(&reg), cfg_(cfg) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void set_on_fire(std::function<void(const WatchdogEvent&)> hook) {
    on_fire_ = std::move(hook);
  }

  /// Evaluates every rule over the window since the previous check. The
  /// first call only establishes the baseline.
  void check(std::int64_t now_ns);

  const std::vector<WatchdogEvent>& events() const { return events_; }
  const WatchdogConfig& config() const { return cfg_; }

  /// One row per (rule, subject): windows fired, first and last firing
  /// time. Returns "" if nothing ever fired.
  std::string render_summary() const;

 private:
  void fire(std::int64_t now_ns, const char* rule, std::string subject,
            std::string detail);

  const MetricsRegistry* reg_;
  WatchdogConfig cfg_;
  std::function<void(const WatchdogEvent&)> on_fire_;
  bool have_base_ = false;
  Snapshot last_;
  std::vector<WatchdogEvent> events_;
};

}  // namespace vnet::obs
