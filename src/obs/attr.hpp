#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace vnet::obs {

/// Per-message latency attribution (DESIGN.md §8).
///
/// An AttrRecorder is a message flight recorder: layers stamp a tracked
/// message at each pipeline boundary it crosses, and when the message
/// finishes the recorder folds the per-stage deltas into registry
/// histograms under `host.<node>.ep.<ep>.attr.<stage>`. Summed over a run
/// this reproduces the paper's Figure 3 LogP decomposition (o_s, NIC
/// service, wire L, o_r) from live traffic instead of dedicated
/// microbenchmarks.
///
/// Each boundary can also carry the simulator's global event counter
/// (sim::Engine::events_processed()); per-stage *event-count* deltas are
/// then folded into `host.<node>.ep.<ep>.attr_ev.<stage>` histograms. The
/// event column answers "where do the engine events per message go" the
/// same way the time column answers "where do the nanoseconds go", which is
/// what the batched-datapath work optimizes against. Event counts are
/// global (concurrent traffic inflates them), so they are meaningful in
/// single-message-in-flight runs like the Fig 3 ping-pong.
///
/// obs depends on nothing above it: timestamps are plain nanosecond
/// integers supplied by the stamping layer, and the recorder is reached
/// through sim::Engine (which owns one next to the MetricsRegistry).

/// The pipeline boundaries of one message, in crossing order. Between
/// consecutive boundaries lies one attributed stage (see interval_name).
enum class Stage : unsigned {
  kEnqueue = 0,   ///< application began writing the send descriptor
  kDoorbell,      ///< host finished the descriptor write and rang the NIC
  kNicPickup,     ///< NIC tx service picked the descriptor up
  kWireInject,    ///< first fragment handed to the fabric
  kWireDeliver,   ///< last fragment delivered by the final hop
  kRxDeposit,     ///< NIC deposited the message in the receive queue
  kHandlerWake,   ///< polling thread dequeued the message
  kHandlerDone,   ///< application handler returned
};

inline constexpr unsigned kStageCount = 8;
inline constexpr unsigned kIntervalCount = kStageCount - 1;

/// Leaf metric name of interval `i` (the stage ending at boundary i+1):
/// "os", "nic_tx_wait", "nic_tx", "wire", "nic_rx", "wake", "or".
const char* interval_name(unsigned i);

class AttrRecorder {
 public:
  explicit AttrRecorder(MetricsRegistry& reg) : reg_(&reg) {}

  AttrRecorder(const AttrRecorder&) = delete;
  AttrRecorder& operator=(const AttrRecorder&) = delete;

  /// Sampling-rate knob: track one in every `n` sent messages. 0 disables
  /// tracking entirely (the default) — stamp sites then cost one branch —
  /// and 1 tracks every message.
  void set_sample_interval(std::uint32_t n) { interval_ = n; }
  std::uint32_t sample_interval() const { return interval_; }
  bool enabled() const { return interval_ != 0; }

  /// Flight key. Node ids and endpoint ids are small in any simulated
  /// cluster (< 2^16) and per-endpoint message ids stay well under 2^32,
  /// so the triple packs losslessly into 64 bits.
  static std::uint64_t key(std::uint32_t src_node, std::uint32_t src_ep,
                           std::uint64_t msg_id) {
    return (static_cast<std::uint64_t>(src_node & 0xffffu) << 48) |
           (static_cast<std::uint64_t>(src_ep & 0xffffu) << 32) |
           (msg_id & 0xffffffffu);
  }

  /// Admission point, called at the kEnqueue boundary (`t_ns` may be
  /// earlier than "now": the caller learns the message id only after the
  /// descriptor write it is timing). Applies the sampling knob; returns
  /// true if the message is now tracked.
  bool begin(std::uint32_t src_node, std::uint32_t src_ep,
             std::uint64_t msg_id, std::int64_t t_ns, std::int64_t ev = -1);

  /// Records boundary `s` of a tracked flight. Unknown keys are ignored
  /// (the message was not sampled); repeated stamps keep the first value,
  /// which is what makes retransmissions and multi-fragment messages
  /// attribute to first pickup / first injection. `ev` is the global
  /// engine event count at the boundary (-1 = not recorded).
  void stamp(std::uint64_t k, Stage s, std::int64_t t_ns,
             std::int64_t ev = -1);

  /// Final boundary: stamps kHandlerDone, folds every present interval
  /// (plus end-to-end) into the source endpoint's histograms, and forgets
  /// the flight.
  void finish(std::uint64_t k, std::int64_t t_ns, std::int64_t ev = -1);

  /// Forgets a flight without recording (message returned to sender or
  /// dropped by an unreliable transport).
  void drop(std::uint64_t k) { flights_.erase(k); }

  std::size_t inflight() const { return flights_.size(); }
  std::uint64_t tracked() const { return tracked_; }
  std::uint64_t completed() const { return completed_; }

 private:
  struct Flight {
    std::uint32_t node = 0;
    std::uint32_t ep = 0;
    std::array<std::int64_t, kStageCount> at;
    std::array<std::int64_t, kStageCount> ev;  ///< events_processed, or -1
  };
  struct EpHists {
    std::array<Histogram, kIntervalCount> stage;
    Histogram e2e;
    std::array<Histogram, kIntervalCount> stage_ev;
    Histogram e2e_ev;
  };

  EpHists& hists_for(std::uint32_t node, std::uint32_t ep);

  /// Messages sent but never finished (returns, GAM drops, still-running
  /// workloads) would otherwise accumulate; cap the table.
  static constexpr std::size_t kMaxInflight = 1 << 16;

  MetricsRegistry* reg_;
  std::uint32_t interval_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t tracked_ = 0;
  std::uint64_t completed_ = 0;
  std::unordered_map<std::uint64_t, Flight> flights_;
  std::unordered_map<std::uint64_t, EpHists> ep_hists_;
};

/// Cluster-wide attribution summary extracted from a Snapshot: each stage's
/// histogram merged across every endpoint, in pipeline order. `stage_ev`
/// carries the per-stage engine event-count deltas when the stamp sites
/// supplied them (count == 0 otherwise).
struct AttrSummary {
  std::array<HistogramData, kIntervalCount> stages;
  HistogramData e2e;
  std::array<HistogramData, kIntervalCount> stage_ev;
  HistogramData e2e_ev;

  /// Sum of per-stage means — should reconcile with e2e.mean() when the
  /// traffic was remote and every tracked message ran to completion.
  double stage_sum_mean_ns() const;
};

AttrSummary summarize_attr(const Snapshot& snap);

/// The LogP report: per-stage count/mean/p50/p95/max table (in
/// microseconds) followed by the stage-sum vs measured end-to-end
/// reconciliation line. When event-count data is present each row also
/// shows the mean engine events spent in that stage. Returns "" if the
/// snapshot holds no attribution data.
std::string render_attr_report(const Snapshot& snap);

}  // namespace vnet::obs
