#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace vnet::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  out += buf;
}

}  // namespace

void Tracer::push(TraceEvent e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::instant(const char* cat, std::string name, int pid, int tid,
                     Args args) {
  if (!enabled_) return;
  TraceEvent e;
  e.ph = 'i';
  e.ts_ns = now();
  e.pid = pid;
  e.tid = tid;
  e.cat = cat;
  e.name = std::move(name);
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void Tracer::complete(const char* cat, std::string name, std::int64_t start_ns,
                      int pid, int tid, Args args) {
  if (!enabled_) return;
  TraceEvent e;
  e.ph = 'X';
  e.ts_ns = start_ns;
  e.dur_ns = now() - start_ns;
  if (e.dur_ns < 0) e.dur_ns = 0;
  e.pid = pid;
  e.tid = tid;
  e.cat = cat;
  e.name = std::move(name);
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void Tracer::set_process_name(int pid, std::string name) {
  meta_.push_back({pid, 0, false, std::move(name)});
}

void Tracer::set_thread_name(int pid, int tid, std::string name) {
  meta_.push_back({pid, tid, true, std::move(name)});
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for_each_event([&](const TraceEvent& e) { out.push_back(e); });
  return out;
}

void Tracer::set_capacity(std::size_t cap) {
  if (cap == 0) cap = 1;
  // Linearize if the ring has wrapped (so future pushes append after the
  // newest event) and trim to the newest `cap` events when shrinking; the
  // discarded oldest count as dropped.
  if (ring_.size() > cap || head_ != 0) {
    const std::size_t n = ring_.size();
    const std::size_t kept = n < cap ? n : cap;
    std::vector<TraceEvent> keep;
    keep.reserve(kept);
    for (std::size_t i = n - kept; i < n; ++i) {
      keep.push_back(std::move(ring_[(head_ + i) % n]));
    }
    dropped_ += n - kept;
    ring_ = std::move(keep);
    head_ = 0;
  }
  capacity_ = cap;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  meta_.clear();
}

std::string Tracer::chrome_trace_json() const {
  std::string out;
  out.reserve(ring_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Meta& m : meta_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"";
    out += m.thread ? "thread_name" : "process_name";
    out += "\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%d,\"tid\":%d", m.pid, m.tid);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, m.name);
    out += "\"}}";
  }
  for_each_event([&](const TraceEvent& e) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    }
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", e.pid, e.tid);
    out += buf;
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        append_escaped(out, e.args[i].key);
        out += "\":";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(e.args[i].value));
        out += buf;
      }
      out += '}';
    }
    out += '}';
  });
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << chrome_trace_json();
}

}  // namespace vnet::obs
