#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lanai/endpoint_state.hpp"
#include "lanai/frame.hpp"

namespace vnet::am {

using lanai::EpId;
using lanai::kMaxArgs;
using myrinet::NodeId;

/// Handler index reserved by the library for implicit credit-return
/// replies (the AM request/reply paradigm: every request is answered).
inline constexpr std::uint8_t kCreditHandler = 255;

/// A delivered message as seen by an application handler.
///
/// Handlers run during Endpoint::poll on the polling thread. A request
/// handler may set a reply with reply(); if it does not (and flow control
/// is enabled), the library sends an implicit credit reply so the
/// requester's outstanding-message window advances.
class Message {
 public:
  std::uint8_t handler() const { return entry_.body.handler; }
  bool is_request() const { return entry_.body.is_request; }
  const std::array<std::uint64_t, kMaxArgs>& args() const {
    return entry_.body.args;
  }
  std::uint64_t arg(std::size_t i) const { return entry_.body.args[i]; }
  std::uint32_t bulk_bytes() const { return entry_.body.bulk_bytes; }
  const std::shared_ptr<const std::vector<std::uint8_t>>& bulk_data() const {
    return entry_.body.bulk_data;
  }
  NodeId src_node() const { return entry_.src_node; }
  EpId src_ep() const { return entry_.src_ep; }
  /// Sender-side message id: (src_node, src_ep, msg_id) names the message
  /// end to end (used by the chaos delivery ledger).
  std::uint64_t msg_id() const { return entry_.msg_id; }
  sim::Time arrived_at() const { return entry_.arrived_at; }

  /// Sets the reply to this request; sent by poll() after the handler
  /// returns. Only meaningful for requests.
  void reply(std::uint8_t handler,
             std::initializer_list<std::uint64_t> args = {},
             std::uint32_t bulk_bytes = 0,
             std::shared_ptr<const std::vector<std::uint8_t>> data =
                 nullptr) const {
    ReplyIntent r;
    r.handler = handler;
    std::size_t i = 0;
    for (std::uint64_t a : args) {
      if (i >= kMaxArgs) break;
      r.args[i++] = a;
    }
    r.bulk_bytes = bulk_bytes;
    r.data = std::move(data);
    reply_intent_ = std::move(r);
  }

  // --- library internals ---

  struct ReplyIntent {
    std::uint8_t handler = 0;
    std::array<std::uint64_t, kMaxArgs> args{};
    std::uint32_t bulk_bytes = 0;
    std::shared_ptr<const std::vector<std::uint8_t>> data;
  };

  explicit Message(lanai::RecvEntry entry) : entry_(std::move(entry)) {}
  const lanai::ReplyToken& reply_token() const { return entry_.reply_to; }
  const std::optional<ReplyIntent>& reply_intent() const {
    return reply_intent_;
  }

 private:
  lanai::RecvEntry entry_;
  mutable std::optional<ReplyIntent> reply_intent_;
};

/// A message returned to its sender as undeliverable (§3.2), passed to the
/// endpoint's undeliverable-message handler so the application can decide
/// whether to abort, log, or re-issue.
struct ReturnedMessage {
  lanai::SendDescriptor descriptor;
  lanai::NackReason reason = lanai::NackReason::kNone;

  bool unreachable() const { return reason == lanai::NackReason::kNone; }
};

}  // namespace vnet::am
