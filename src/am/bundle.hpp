#pragma once

#include <memory>
#include <vector>

#include "am/endpoint.hpp"

namespace vnet::am {

/// An AM-II bundle: the per-process collection of endpoints (§3). Beyond
/// ownership, a bundle provides what VIA gets from shared completion
/// queues (§7) without per-connection resources: a single place for a
/// thread to wait on *any* member endpoint's events, and a one-call sweep
/// poll — the natural shape of the single-threaded servers of §6.4.
class Bundle {
 public:
  explicit Bundle(host::Host& host) : host_(&host), events_(host.engine()) {}

  Bundle(const Bundle&) = delete;
  Bundle& operator=(const Bundle&) = delete;

  /// Creates an endpoint owned by this bundle.
  sim::Task<Endpoint*> create_endpoint(host::HostThread& t, std::uint64_t tag,
                                       bool shared = false) {
    auto ep = co_await Endpoint::create(t, tag, shared);
    ep->set_event_sink(&events_);
    endpoints_.push_back(std::move(ep));
    co_return endpoints_.back().get();
  }

  std::size_t size() const { return endpoints_.size(); }
  Endpoint* at(std::size_t i) { return endpoints_[i].get(); }

  /// Blocks the calling thread until some member endpoint has an event in
  /// `mask` pending; returns that endpoint. The mask is explicit, same as
  /// Endpoint::wait_events() — a serving loop passes kEventArrivals.
  sim::Task<Endpoint*> wait_any(host::HostThread& t, std::uint32_t mask) {
    for (;;) {
      for (auto& ep : endpoints_) {
        if (ep->has_event(mask)) co_return ep.get();
      }
      co_await t.block(events_);
    }
  }

  /// wait_any with a timeout; nullptr if nothing arrived in time.
  sim::Task<Endpoint*> wait_any_for(host::HostThread& t, std::uint32_t mask,
                                    sim::Duration d) {
    const sim::Time deadline = t.engine().now() + d;
    for (;;) {
      for (auto& ep : endpoints_) {
        if (ep->has_event(mask)) co_return ep.get();
      }
      const sim::Duration rem = deadline - t.engine().now();
      if (rem <= 0) co_return nullptr;
      co_await t.block_for(events_, rem);
    }
  }

  /// Polls every member endpoint once; returns messages processed.
  sim::Task<std::size_t> poll_all(host::HostThread& t,
                                  std::size_t max_per_ep = 16) {
    std::size_t n = 0;
    for (auto& ep : endpoints_) {
      n += co_await ep->poll(t, max_per_ep);
    }
    co_return n;
  }

  /// Destroys all member endpoints (synchronizing each with the NIC).
  sim::Task<> destroy_all(host::HostThread& t) {
    for (auto& ep : endpoints_) {
      co_await ep->destroy(t);
    }
    endpoints_.clear();
  }

 private:
  host::Host* host_;
  sim::CondVar events_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace vnet::am
