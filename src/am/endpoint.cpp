#include "am/endpoint.hpp"

#include <algorithm>
#include <cassert>

#include "am/probe.hpp"
#include "obs/attr.hpp"
#include "obs/span.hpp"

namespace vnet::am {

namespace {

std::uint32_t frag_count_for(std::uint32_t bulk_bytes, std::uint32_t mtu) {
  if (bulk_bytes == 0) return 1;
  return (bulk_bytes + mtu - 1) / mtu;
}

}  // namespace

Endpoint::Endpoint(host::Host& host, lanai::EndpointState* state, bool shared)
    : host_(&host),
      state_(state),
      shared_(shared),
      mutex_(host.engine()),
      events_(host.engine()),
      handlers_(256),
      credit_limit_(host.nic().config().recv_request_depth) {
  const std::string prefix = "host." + std::to_string(state_->node) + ".ep." +
                             std::to_string(state_->id);
  obs::MetricsRegistry& reg = host.engine().metrics();
  counters_.requests_sent = reg.counter(prefix + ".requests_sent");
  counters_.replies_sent = reg.counter(prefix + ".replies_sent");
  counters_.credit_replies_sent = reg.counter(prefix + ".credit_replies_sent");
  counters_.messages_handled = reg.counter(prefix + ".messages_handled");
  counters_.returns_handled = reg.counter(prefix + ".returns_handled");
  counters_.send_stalls = reg.counter(prefix + ".send_stalls");
  counters_.wait_wakeups = reg.counter(prefix + ".wait_wakeups");
  VNET_TRACE_INSTANT(host.engine().tracer(), "endpoint", "ep_create",
                     static_cast<int>(state_->node), 0,
                     {{"ep", static_cast<std::int64_t>(state_->id)}});
  state_->on_arrival = [this] { on_arrival(); };
  state_->on_send_progress = [this] { on_send_progress(); };
  state_->on_return_to_sender = [this](lanai::SendDescriptor d,
                                       lanai::NackReason r) {
    on_returned(std::move(d), r);
  };
}

Endpoint::~Endpoint() {
  if (state_ != nullptr) {
    state_->on_arrival = nullptr;
    state_->on_send_progress = nullptr;
    state_->on_return_to_sender = nullptr;
  }
}

sim::Task<std::unique_ptr<Endpoint>> Endpoint::create(host::HostThread& t,
                                                      std::uint64_t tag,
                                                      bool shared) {
  lanai::EndpointState* state =
      co_await t.host().driver().create_endpoint(t.ctx(), tag);
  co_return std::unique_ptr<Endpoint>(new Endpoint(t.host(), state, shared));
}

sim::Task<> Endpoint::destroy(host::HostThread& t) {
  if (destroyed_) co_return;
  destroyed_ = true;
  // Detach upcalls before the state goes away.
  state_->on_arrival = nullptr;
  state_->on_send_progress = nullptr;
  state_->on_return_to_sender = nullptr;
  co_await host_->driver().destroy_endpoint(t.ctx(), state_);
  state_ = nullptr;
  events_.notify_all();
}

// -------------------------------------------------- naming & protection

void Endpoint::map(std::uint32_t index, const Name& peer) {
  map_raw(index, peer.node, peer.ep, peer.tag);
}

void Endpoint::map_raw(std::uint32_t index, NodeId node, EpId ep,
                       std::uint64_t key) {
  if (state_->translations.size() <= index) {
    state_->translations.resize(index + 1);
  }
  state_->translations[index] = lanai::Translation{true, node, ep, key};
}

void Endpoint::unmap(std::uint32_t index) {
  if (index < state_->translations.size()) {
    state_->translations[index] = lanai::Translation{};
  }
}

void Endpoint::set_handler(std::uint8_t index, Handler h) {
  handlers_[index] = std::move(h);
}

// ---------------------------------------------------------------- events

namespace {

// Debug-time guard on wait masks: empty masks never wake, and all-bits
// masks include level-triggered kEventSendSpace, which turns the wait into
// a spin-poll (the PR 6 workload bug). Callers must name what they consume.
inline void assert_explicit_mask([[maybe_unused]] std::uint32_t mask) {
  assert(mask != kEventNone && "wait_events: empty mask would never wake");
  assert(mask != 0xffffffffu &&
         "wait_events: kEventAll spin-polls on level-triggered send-space; "
         "wait on an explicit mask (e.g. kEventArrivals)");
}

}  // namespace

sim::Task<> Endpoint::wait_events(host::HostThread& t, std::uint32_t mask) {
  assert_explicit_mask(mask);
  while (pending_events(mask) == 0) {
    co_await t.block(events_);
    if (destroyed_) co_return;
  }
  counters_.wait_wakeups.inc();
}

sim::Task<bool> Endpoint::wait_events_for(host::HostThread& t,
                                          std::uint32_t mask,
                                          sim::Duration d) {
  assert_explicit_mask(mask);
  const sim::Time deadline = host_->engine().now() + d;
  while (pending_events(mask) == 0) {
    const sim::Duration rem = deadline - host_->engine().now();
    if (rem <= 0) co_return false;
    co_await t.block_for(events_, rem);
    if (destroyed_) co_return false;
  }
  counters_.wait_wakeups.inc();
  co_return true;
}

bool Endpoint::poll_would_find_work() const {
  return state_ != nullptr &&
         (!state_->recv_requests.empty() || !state_->recv_replies.empty() ||
          !returned_.empty());
}

std::uint32_t Endpoint::pending_events(std::uint32_t mask) const {
  if (state_ == nullptr) return 0;
  std::uint32_t pending = 0;
  if ((mask & kEventReceive) != 0 &&
      (!state_->recv_requests.empty() || !state_->recv_replies.empty())) {
    pending |= kEventReceive;
  }
  if ((mask & kEventReturned) != 0 && !returned_.empty()) {
    pending |= kEventReturned;
  }
  if ((mask & kEventSendSpace) != 0) {
    // A pending reply counts too: processing it returns a credit, so a
    // send-space waiter must wake to poll (credits only move under poll).
    if (send_space_available() || !state_->recv_replies.empty()) {
      pending |= kEventSendSpace;
    }
  }
  return pending;
}

bool Endpoint::send_space_available() const {
  const auto depth =
      static_cast<std::size_t>(host_->nic().config().send_queue_depth);
  return state_->send_queue.size() < depth &&
         (!flow_control_ || outstanding_requests_ < credit_limit_);
}

// --------------------------------------------------------------- sending

sim::Duration Endpoint::send_charge() const {
  const host::HostConfig& hc = host_->config();
  const bool gam = !host_->nic().config().reliable_transport;
  const int words =
      gam ? hc.gam_send_descriptor_words : hc.send_descriptor_words;
  const sim::Duration word_cost =
      resident() ? hc.pio_write_word : hc.mem_write_word;
  return hc.send_fixed + words * word_cost;
}

sim::Duration Endpoint::recv_charge() const {
  const host::HostConfig& hc = host_->config();
  const bool gam = !host_->nic().config().reliable_transport;
  sim::Duration d;
  if (resident()) {
    // Virtual networks read whole descriptors with one VIS block load;
    // GAM reads word-at-a-time (§6.1).
    d = (hc.use_block_loads && !gam) ? hc.pio_block_read
                                     : 8 * hc.pio_read_word;
  } else {
    d = 8 * hc.mem_poll;
  }
  return hc.recv_fixed + d;
}

// Callers guard with `if (shared_)`: spawning the lock task for the
// exclusive (common) case would cost a coroutine frame per API call.
sim::Task<> Endpoint::lock(host::HostThread& t) {
  if (!shared_) co_return;
  co_await t.compute(host_->config().shared_lock_cost);
  co_await mutex_.acquire();
}

void Endpoint::unlock() {
  if (shared_) mutex_.release();
}

sim::Task<> Endpoint::request(host::HostThread& t, std::uint32_t dest_index,
                              std::uint8_t handler, std::uint64_t a0,
                              std::uint64_t a1, std::uint64_t a2,
                              std::uint64_t a3) {
  co_return co_await request_bulk(t, dest_index, handler, 0, nullptr, a0, a1,
                                  a2, a3);
}

sim::Task<> Endpoint::request_bulk(
    host::HostThread& t, std::uint32_t dest_index, std::uint8_t handler,
    std::uint32_t bulk_bytes,
    std::shared_ptr<const std::vector<std::uint8_t>> data, std::uint64_t a0,
    std::uint64_t a1, std::uint64_t a2, std::uint64_t a3) {
  lanai::SendDescriptor d;
  d.dest_index = dest_index;
  d.body.is_request = true;
  d.body.handler = handler;
  d.body.args = {a0, a1, a2, a3};
  d.body.bulk_bytes = bulk_bytes;
  d.body.bulk_data = std::move(data);
  co_await send_common(t, std::move(d), /*is_request=*/true);
}

sim::Task<> Endpoint::reply(
    host::HostThread& t, const Message& to, std::uint8_t handler,
    std::uint64_t a0, std::uint64_t a1, std::uint64_t a2, std::uint64_t a3,
    std::uint32_t bulk_bytes,
    std::shared_ptr<const std::vector<std::uint8_t>> data) {
  assert(to.reply_token().valid());
  lanai::SendDescriptor d;
  d.reply_to = to.reply_token();
  d.body.is_request = false;
  d.body.handler = handler;
  d.body.args = {a0, a1, a2, a3};
  d.body.bulk_bytes = bulk_bytes;
  d.body.bulk_data = std::move(data);
  co_await send_common(t, std::move(d), /*is_request=*/false);
}

sim::Task<> Endpoint::send_common(host::HostThread& t,
                                  lanai::SendDescriptor desc,
                                  bool is_request) {
  if (shared_) co_await lock(t);
  const auto depth =
      static_cast<std::size_t>(host_->nic().config().send_queue_depth);

  // Block while the send queue is full or — for requests — the credit
  // window is exhausted (§6.4). One poll pass drains any replies already
  // delivered (returning credits); after that the stall can only clear
  // when the NIC makes progress, so park on the event condvar (every
  // arrival and send-space upcall notifies it) instead of spin-polling:
  // a spin iteration costs engine events, and at steady state every send
  // stalls once per message.
  bool stalled = false;
  while (state_->send_queue.size() >= depth ||
         (is_request && flow_control_ &&
          outstanding_requests_ >= credit_limit_)) {
    if (!stalled) {
      stalled = true;
      counters_.send_stalls.inc();
    }
    unlock();
    // Poll to drain replies (returning credits) and keep handlers running.
    const std::size_t handled = co_await poll(t, 4);
    if (handled == 0) {
      // Nothing to consume yet; sleep until an upcall rings. The timeout
      // is a liveness net (credits can also free via returns the
      // undeliverable handler consumed elsewhere), not the wakeup path.
      co_await t.block_for(events_, 50 * sim::us);
    }
    if (destroyed_) co_return;
    if (shared_) co_await lock(t);
  }

  // The write into the endpoint may fault (on-host r/o -> r/w, §4.2).
  // Attribution's kEnqueue boundary: the stall loop above is back-pressure,
  // not send overhead, so o_s starts here (the message id that names the
  // flight only exists further down; begin() backdates to enq_at).
  const sim::Time enq_at = host_->engine().now();
  const auto enq_ev =
      static_cast<std::int64_t>(host_->engine().events_processed());
  if (!host_->driver().writable(state_)) {
    co_await host_->driver().ensure_writable(t.ctx(), state_);
  }
  host_->driver().touch(state_);
  // One compute covers the descriptor write and (for bulk) staging the
  // payload into the pinned communication region.
  sim::Duration send_cost = send_charge();
  if (desc.body.bulk_bytes > 0) {
    send_cost += static_cast<sim::Duration>(
        desc.body.bulk_bytes * host_->config().bulk_copy_ns_per_byte);
  }
  co_await t.compute(send_cost);

  desc.msg_id = state_->alloc_msg_id();
  desc.frag_count = frag_count_for(desc.body.bulk_bytes,
                                   host_->nic().config().max_packet_payload);
  if (probe_ != nullptr) {
    NodeId dst = myrinet::kInvalidNode;
    if (is_request) {
      if (desc.dest_index < state_->translations.size() &&
          state_->translations[desc.dest_index].valid) {
        dst = state_->translations[desc.dest_index].node;
      }
    } else {
      dst = desc.reply_to.node;
    }
    probe_->message_injected(state_->node, state_->id, desc.msg_id, is_request,
                             dst, host_->engine().now());
  }
  obs::AttrRecorder& attr = host_->engine().attr();
  obs::SpanRecorder& spans = host_->engine().spans();
  bool attr_tracked = false;
  bool span_tracked = false;
  std::uint64_t attr_key = 0;
  if (attr.enabled() || spans.enabled()) {
    const auto node = static_cast<std::uint32_t>(state_->node);
    attr_key = obs::AttrRecorder::key(node, state_->id, desc.msg_id);
    if (attr.enabled()) {
      attr_tracked = attr.begin(node, state_->id, desc.msg_id,
                                static_cast<std::int64_t>(enq_at), enq_ev);
    }
    if (spans.enabled()) {
      span_tracked = spans.begin(node, state_->id, desc.msg_id,
                                 static_cast<std::int64_t>(enq_at));
    }
  }
  state_->send_queue.push_back(std::move(desc));
  if (is_request) {
    ++outstanding_requests_;
    counters_.requests_sent.inc();
  } else {
    counters_.replies_sent.inc();
  }
  const sim::Time gate_at = host_->nic().doorbell(*state_);
  if (attr_tracked) {
    attr.stamp(attr_key, obs::Stage::kDoorbell,
               static_cast<std::int64_t>(host_->engine().now()),
               static_cast<std::int64_t>(host_->engine().events_processed()));
  }
  if (span_tracked) {
    spans.point(attr_key, obs::SpanPoint::kDoorbell,
                static_cast<std::int64_t>(host_->engine().now()));
    spans.point(attr_key, obs::SpanPoint::kGateOpen,
                static_cast<std::int64_t>(gate_at));
  }
  unlock();
}

// --------------------------------------------------------------- polling

sim::Task<std::size_t> Endpoint::poll(host::HostThread& t, std::size_t max) {
  if (destroyed_) co_return 0;
  if (shared_) co_await lock(t);
  const host::HostConfig& hc = host_->config();
  // Probing the endpoint costs an uncached PIO read when it is resident in
  // NIC SRAM, but only a cached load when it lives in host memory — the
  // §6.4 observation that made ST-with-96-frames *slower* than OneVN.
  co_await t.compute(resident() ? hc.pio_read_word : hc.mem_poll);
  host_->driver().touch(state_);

  std::size_t processed = 0;

  // Undeliverable messages first: the application learns about errors
  // promptly (§3.2).
  while (processed < max && !returned_.empty()) {
    ReturnedMessage r = std::move(returned_.front());
    returned_.pop_front();
    if (r.descriptor.body.is_request && outstanding_requests_ > 0) {
      --outstanding_requests_;  // the request will never be replied to
    }
    counters_.returns_handled.inc();
    ++processed;
    if (undeliverable_) undeliverable_(*this, std::move(r));
  }

  while (processed < max && state_ != nullptr) {
    // Prefer replies: they complete outstanding operations and return
    // credits, keeping the pipeline moving.
    std::deque<lanai::RecvEntry>* q = nullptr;
    if (!state_->recv_replies.empty()) {
      q = &state_->recv_replies;
    } else if (!state_->recv_requests.empty()) {
      q = &state_->recv_requests;
    } else {
      break;
    }
    lanai::RecvEntry entry = std::move(q->front());
    q->pop_front();
    const bool credit_only =
        !entry.body.is_request && entry.body.handler == kCreditHandler;
    obs::AttrRecorder& attr = host_->engine().attr();
    obs::SpanRecorder& spans = host_->engine().spans();
    bool attr_track = false;
    std::uint64_t attr_key = 0;
    if ((attr.enabled() || spans.enabled()) && !credit_only) {
      // Dequeue is the handler/thread-wake boundary: everything from here
      // to handler return is receiver overhead o_r.
      attr_key = obs::AttrRecorder::key(
          static_cast<std::uint32_t>(entry.src_node), entry.src_ep,
          entry.msg_id);
      if (attr.enabled()) {
        attr.stamp(attr_key, obs::Stage::kHandlerWake,
                   static_cast<std::int64_t>(host_->engine().now()),
                   static_cast<std::int64_t>(
                       host_->engine().events_processed()));
      }
      spans.point(attr_key, obs::SpanPoint::kHandlerWake,
                  static_cast<std::int64_t>(host_->engine().now()));
      attr_track = true;
    }
    if (credit_only) {
      // Implicit credit replies carry no payload the application reads;
      // the library just bumps its window counter (one flag load).
      co_await t.compute(resident() ? host_->config().pio_read_word
                                    : host_->config().mem_poll);
    } else {
      // One compute covers the descriptor read and (for bulk) copying the
      // payload out of the communication region.
      sim::Duration recv_cost = recv_charge();
      if (entry.body.bulk_bytes > 0) {
        recv_cost += static_cast<sim::Duration>(
            entry.body.bulk_bytes * host_->config().bulk_copy_ns_per_byte);
      }
      co_await t.compute(recv_cost);
    }
    ++processed;

    Message msg(std::move(entry));
    if (probe_ != nullptr && !credit_only) {
      probe_->message_delivered(msg.src_node(), msg.src_ep(), msg.msg_id(),
                                msg.is_request(), state_->node, state_->id,
                                host_->engine().now());
    }
    if (!msg.is_request()) {
      if (outstanding_requests_ > 0) --outstanding_requests_;
      if (msg.handler() != kCreditHandler) {
        counters_.messages_handled.inc();
        if (handlers_[msg.handler()]) handlers_[msg.handler()](*this, msg);
        if (attr_track) {
          attr.finish(attr_key,
                      static_cast<std::int64_t>(host_->engine().now()),
                      static_cast<std::int64_t>(
                          host_->engine().events_processed()));
          spans.finish(attr_key,
                       static_cast<std::int64_t>(host_->engine().now()));
        }
      }
      events_.notify_all();  // credit/space became available
      continue;
    }

    counters_.messages_handled.inc();
    if (handlers_[msg.handler()]) handlers_[msg.handler()](*this, msg);
    if (attr_track) {
      // Handler return completes the request's flight; the reply enqueued
      // below is its own flight.
      attr.finish(attr_key, static_cast<std::int64_t>(host_->engine().now()),
                  static_cast<std::int64_t>(
                      host_->engine().events_processed()));
      spans.finish(attr_key,
                   static_cast<std::int64_t>(host_->engine().now()));
    }

    // Request/reply paradigm: send the handler's reply, or an implicit
    // credit reply so the requester's window advances.
    if (msg.reply_intent().has_value()) {
      const auto& ri = *msg.reply_intent();
      lanai::SendDescriptor d;
      d.reply_to = msg.reply_token();
      d.body.is_request = false;
      d.body.handler = ri.handler;
      d.body.args = ri.args;
      d.body.bulk_bytes = ri.bulk_bytes;
      d.body.bulk_data = ri.data;
      co_await enqueue_reply_locked(t, std::move(d));
      counters_.replies_sent.inc();
    } else if (flow_control_) {
      lanai::SendDescriptor d;
      d.reply_to = msg.reply_token();
      d.body.is_request = false;
      d.body.handler = kCreditHandler;
      co_await enqueue_reply_locked(t, std::move(d));
      counters_.credit_replies_sent.inc();
    }
  }

  unlock();
  co_return processed;
}

sim::Task<> Endpoint::enqueue_reply_locked(host::HostThread& t,
                                           lanai::SendDescriptor d) {
  const auto depth =
      static_cast<std::size_t>(host_->nic().config().send_queue_depth);
  // Replies need only send-queue space (no credits). Space frees up as the
  // NIC acknowledges in-flight messages, without host involvement, so
  // blocking here cannot deadlock the poll loop.
  while (state_->send_queue.size() >= depth) {
    co_await events_.wait();
    if (destroyed_) co_return;
  }
  const sim::Time enq_at = host_->engine().now();
  const auto enq_ev =
      static_cast<std::int64_t>(host_->engine().events_processed());
  if (!host_->driver().writable(state_)) {
    co_await host_->driver().ensure_writable(t.ctx(), state_);
  } else {
    host_->driver().touch(state_);
  }
  co_await t.compute(send_charge());
  d.msg_id = state_->alloc_msg_id();
  d.frag_count = frag_count_for(d.body.bulk_bytes,
                                host_->nic().config().max_packet_payload);
  // Implicit credit replies are flow-control plumbing; don't track them.
  const bool tracked_kind = d.body.handler != kCreditHandler;
  if (probe_ != nullptr && tracked_kind) {
    probe_->message_injected(state_->node, state_->id, d.msg_id,
                             /*is_request=*/false, d.reply_to.node,
                             host_->engine().now());
  }
  obs::AttrRecorder& attr = host_->engine().attr();
  obs::SpanRecorder& spans = host_->engine().spans();
  bool attr_tracked = false;
  bool span_tracked = false;
  std::uint64_t attr_key = 0;
  if ((attr.enabled() || spans.enabled()) && tracked_kind) {
    const auto node = static_cast<std::uint32_t>(state_->node);
    attr_key = obs::AttrRecorder::key(node, state_->id, d.msg_id);
    if (attr.enabled()) {
      attr_tracked = attr.begin(node, state_->id, d.msg_id,
                                static_cast<std::int64_t>(enq_at), enq_ev);
    }
    if (spans.enabled()) {
      span_tracked = spans.begin(node, state_->id, d.msg_id,
                                 static_cast<std::int64_t>(enq_at));
    }
  }
  state_->send_queue.push_back(std::move(d));
  const sim::Time gate_at = host_->nic().doorbell(*state_);
  if (attr_tracked) {
    attr.stamp(attr_key, obs::Stage::kDoorbell,
               static_cast<std::int64_t>(host_->engine().now()),
               static_cast<std::int64_t>(host_->engine().events_processed()));
  }
  if (span_tracked) {
    spans.point(attr_key, obs::SpanPoint::kDoorbell,
                static_cast<std::int64_t>(host_->engine().now()));
    spans.point(attr_key, obs::SpanPoint::kGateOpen,
                static_cast<std::int64_t>(gate_at));
  }
}

// --------------------------------------------------------------- upcalls

void Endpoint::on_arrival() {
  events_.notify_all();
  if (event_sink_ != nullptr) event_sink_->notify_all();
}

void Endpoint::on_send_progress() {
  events_.notify_all();
  if (event_sink_ != nullptr) event_sink_->notify_all();
}

void Endpoint::on_returned(lanai::SendDescriptor d, lanai::NackReason r) {
  // Record at the upcall, not at poll time: the return has surfaced to the
  // sender even if the application never drains its returned queue. Credit
  // replies are untracked at injection, so skip them here too.
  if (probe_ != nullptr && state_ != nullptr &&
      (d.body.is_request || d.body.handler != kCreditHandler)) {
    probe_->message_returned(state_->node, state_->id, d.msg_id, r,
                             host_->engine().now());
  }
  if (state_ != nullptr && host_->engine().attr().enabled()) {
    // A returned message never reaches a handler; forget its flight.
    host_->engine().attr().drop(obs::AttrRecorder::key(
        static_cast<std::uint32_t>(state_->node), state_->id, d.msg_id));
  }
  if (state_ != nullptr && host_->engine().spans().enabled()) {
    // Spans keep the return as a terminal edge: returned traces explain
    // tail mass even though they never complete.
    host_->engine().spans().drop_returned(
        obs::SpanRecorder::key(static_cast<std::uint32_t>(state_->node),
                               state_->id, d.msg_id),
        static_cast<std::int64_t>(host_->engine().now()),
        static_cast<std::int32_t>(r));
  }
  returned_.push_back(ReturnedMessage{std::move(d), r});
  events_.notify_all();
  if (event_sink_ != nullptr) event_sink_->notify_all();
}

}  // namespace vnet::am
