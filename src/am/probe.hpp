#pragma once

#include <cstdint>

#include "lanai/endpoint_state.hpp"
#include "lanai/frame.hpp"
#include "sim/time.hpp"

namespace vnet::am {

using lanai::EpId;
using myrinet::NodeId;

/// Observer interface for end-to-end message accounting. A single
/// process-wide probe (Endpoint::set_probe) sees every tracked message at
/// three points in its life:
///
///  * injected  — the application handed the message to the library and it
///                entered the endpoint's send queue;
///  * delivered — poll() consumed it at the destination (just before the
///                handler, so duplicate *handler invocations* are visible);
///  * returned  — it came back undeliverable (surfaced to the sender's
///                returned queue; reason kNone == unreachable timeout).
///
/// Implicit credit replies (handler == kCreditHandler) are not tracked on
/// either side — they are flow-control plumbing, not application messages.
///
/// Messages are keyed by (src_node, src_ep, msg_id); msg_id is unique per
/// source endpoint. The chaos DeliveryLedger implements this to check
/// exactly-once delivery and delivered-or-returned under fault campaigns.
///
/// `at` is the simulated time of the event on the reporting endpoint's
/// engine. It is a parameter (rather than something the probe reads off a
/// global engine) because under sharded simulation (sim/shard.hpp) events
/// arrive from several engines whose clocks differ within a lookahead
/// window; implementations must tolerate concurrent calls when the cluster
/// runs threaded shards.
class MessageProbe {
 public:
  virtual ~MessageProbe() = default;

  virtual void message_injected(NodeId src_node, EpId src_ep,
                                std::uint64_t msg_id, bool is_request,
                                NodeId dst_node, sim::Time at) = 0;
  virtual void message_delivered(NodeId src_node, EpId src_ep,
                                 std::uint64_t msg_id, bool is_request,
                                 NodeId at_node, EpId at_ep,
                                 sim::Time at) = 0;
  virtual void message_returned(NodeId src_node, EpId src_ep,
                                std::uint64_t msg_id,
                                lanai::NackReason reason, sim::Time at) = 0;
};

}  // namespace vnet::am
