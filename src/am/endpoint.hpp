#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "am/message.hpp"
#include "host/host.hpp"
#include "obs/metrics.hpp"
#include "lanai/endpoint_state.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::am {

/// Global endpoint name: opaque to applications (§3.1); obtained from
/// Endpoint::name() and distributed by any rendezvous mechanism.
struct Name {
  NodeId node = myrinet::kInvalidNode;
  EpId ep = lanai::kInvalidEp;
  /// The endpoint's protection tag; a sender must present it as its key.
  std::uint64_t tag = 0;
  bool valid() const { return node != myrinet::kInvalidNode; }
};

/// Endpoint state transitions an application can sensitize to (§3.3).
///
/// Events are *level-triggered*: a wait returns while the condition holds,
/// not only on its edge. That makes a blanket mask a spin-poll hazard —
/// kEventSendSpace is true almost always, so a loop waiting on "anything"
/// re-wakes forever without consuming work. Waits therefore take an
/// explicit mask naming exactly the conditions the loop consumes.
enum EventMask : std::uint32_t {
  kEventNone = 0,
  kEventReceive = 1u << 0,    ///< a message arrived in a receive queue
  kEventSendSpace = 1u << 1,  ///< send-queue space / credit became available
  kEventReturned = 1u << 2,   ///< a message came back undeliverable
  /// What a serving/draining loop consumes: deliveries and returns. This
  /// is the mask for "wake me when poll() would find something".
  kEventArrivals = kEventReceive | kEventReturned,
  /// Deprecated: an all-bits mask includes level-triggered kEventSendSpace
  /// and turns the wait into a silent spin-poll (the PR 6 workload bug).
  /// wait_events() rejects it; name the conditions you consume instead.
  kEventAll [[deprecated(
      "blanket masks spin-poll on level-triggered send-space; wait on an "
      "explicit mask (e.g. kEventArrivals)")]] = 0xffffffffu,
};

/// The user-level communication endpoint — the core abstraction of the
/// paper (§3). Wraps the hardware-visible lanai::EndpointState managed by
/// the host's segment driver, and layers on: handler dispatch, endpoint-
/// relative naming via the translation table, user-level credit flow
/// control, the return-to-sender error model, and thread-based events.
///
/// All operations take the calling HostThread and charge its CPU for the
/// library and PIO work — these charges are exactly the o_s / o_r
/// overheads of the LogP characterization (Fig 3).
class MessageProbe;

class Endpoint {
 public:
  using Handler = std::function<void(Endpoint&, const Message&)>;
  using UndeliverableHandler = std::function<void(Endpoint&, ReturnedMessage)>;

  /// Installs a process-wide message-accounting probe (see am/probe.hpp);
  /// nullptr uninstalls. One probe observes all endpoints — it is the
  /// attachment point for the chaos campaign's delivery ledger.
  static void set_probe(MessageProbe* p) { probe_ = p; }
  static MessageProbe* probe() { return probe_; }

  /// Creates an endpoint on `host`. Shared endpoints serialize operations
  /// from concurrent threads (with a small locking cost); exclusive ones
  /// avoid that overhead (§3.3).
  static sim::Task<std::unique_ptr<Endpoint>> create(host::HostThread& t,
                                                     std::uint64_t tag,
                                                     bool shared = false);

  /// Detaches the NIC upcalls: an Endpoint object may go out of scope
  /// while late retransmissions still arrive for its endpoint state.
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Destroys the endpoint, synchronizing with the NIC (quiesces in-flight
  /// traffic). The Endpoint object must not be used afterwards.
  sim::Task<> destroy(host::HostThread& t);

  Name name() const { return Name{state_->node, state_->id, state_->tag}; }
  host::Host& host() { return *host_; }
  lanai::EndpointState& state() { return *state_; }

  // ---- naming & protection (§3.1) ----

  /// Binds translation-table `index` to a peer endpoint, presenting the
  /// peer's tag as our key.
  void map(std::uint32_t index, const Name& peer);
  void map_raw(std::uint32_t index, NodeId node, EpId ep, std::uint64_t key);
  void unmap(std::uint32_t index);

  // ---- handlers ----

  void set_handler(std::uint8_t index, Handler h);
  void set_undeliverable_handler(UndeliverableHandler h) {
    undeliverable_ = std::move(h);
  }

  // ---- events & threads (§3.3) ----

  /// Blocks the calling thread until an event enabled in `mask` is
  /// pending. The mask is explicit per wait — there is no endpoint-wide
  /// default — and must name a real subset of conditions: an empty or
  /// all-bits mask is rejected (debug assert), because kEventSendSpace is
  /// level-triggered and a blanket mask degenerates into a spin-poll.
  sim::Task<> wait_events(host::HostThread& t, std::uint32_t mask);
  /// Like wait_events() with a timeout; true if an event is pending.
  sim::Task<bool> wait_events_for(host::HostThread& t, std::uint32_t mask,
                                  sim::Duration d);

  // ---- communication ----

  /// Sends a short request through translation-table entry `dest_index`
  /// carrying up to four 64-bit arguments. Blocks (polling, consuming CPU)
  /// while the send queue is full or the credit window is exhausted.
  /// (Scalar arguments rather than an initializer list: the values must
  /// live in the coroutine frame across suspension.)
  sim::Task<> request(host::HostThread& t, std::uint32_t dest_index,
                      std::uint8_t handler, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                      std::uint64_t a3 = 0);

  /// Sends a bulk-transfer request of `bulk_bytes` (fragmented by the
  /// transport as needed). `data` optionally carries real payload bytes.
  sim::Task<> request_bulk(
      host::HostThread& t, std::uint32_t dest_index, std::uint8_t handler,
      std::uint32_t bulk_bytes,
      std::shared_ptr<const std::vector<std::uint8_t>> data = nullptr,
      std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
      std::uint64_t a3 = 0);

  /// Sends an explicit reply to a received request.
  sim::Task<> reply(host::HostThread& t, const Message& to,
                    std::uint8_t handler, std::uint64_t a0 = 0,
                    std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                    std::uint64_t a3 = 0, std::uint32_t bulk_bytes = 0,
                    std::shared_ptr<const std::vector<std::uint8_t>> data =
                        nullptr);

  /// Drains up to `max` pending messages/returns, invoking handlers on the
  /// calling thread. Returns the number of messages processed.
  sim::Task<std::size_t> poll(host::HostThread& t, std::size_t max = 16);

  /// True if a poll would find work without doing any.
  bool poll_would_find_work() const;

  /// True if any event in `mask` is currently pending (the condition
  /// wait_events()/wait_events_for() block on).
  bool has_event(std::uint32_t mask) const {
    return pending_events(mask) != 0;
  }

  /// Registers an additional condition variable notified on every endpoint
  /// event — the hook bundles use to wait on any member endpoint (§3.3).
  void set_event_sink(sim::CondVar* sink) { event_sink_ = sink; }

  // ---- flow control ----

  void set_flow_control(bool on) { flow_control_ = on; }
  int credits_in_use() const { return outstanding_requests_; }
  int credit_limit() const { return credit_limit_; }

  // Statistics live in the engine's metric registry under
  // `host.<node>.ep.<id>.*` (see obs/metrics.hpp); snapshot that.

 private:
  Endpoint(host::Host& host, lanai::EndpointState* state, bool shared);

  sim::Task<> send_common(host::HostThread& t, lanai::SendDescriptor desc,
                          bool is_request);
  sim::Task<> enqueue_reply_locked(host::HostThread& t,
                                   lanai::SendDescriptor d);
  sim::Duration send_charge() const;
  sim::Duration recv_charge() const;
  sim::Task<> lock(host::HostThread& t);
  void unlock();
  /// The subset of `mask` currently pending.
  std::uint32_t pending_events(std::uint32_t mask) const;
  bool send_space_available() const;
  void on_arrival();
  void on_send_progress();
  void on_returned(lanai::SendDescriptor d, lanai::NackReason r);
  bool resident() const { return state_->resident(); }

  host::Host* host_;
  lanai::EndpointState* state_;
  bool shared_;
  sim::Mutex mutex_;
  sim::CondVar events_;

  std::vector<Handler> handlers_;
  UndeliverableHandler undeliverable_;
  std::deque<ReturnedMessage> returned_;

  bool flow_control_ = true;
  int credit_limit_;
  int outstanding_requests_ = 0;

  /// Registry-backed counters under `host.<node>.ep.<id>.*`.
  struct EpCounters {
    obs::Counter requests_sent;
    obs::Counter replies_sent;
    obs::Counter credit_replies_sent;
    obs::Counter messages_handled;
    obs::Counter returns_handled;
    obs::Counter send_stalls;
    /// wait_events()/wait_events_for() completions that found an event
    /// pending. The watchdog's spin-poll rule compares its growth against
    /// messages_handled + returns_handled: wakeups without progress means
    /// a loop is waiting on a condition it never consumes.
    obs::Counter wait_wakeups;
  };

  bool destroyed_ = false;
  sim::CondVar* event_sink_ = nullptr;
  EpCounters counters_;

  inline static MessageProbe* probe_ = nullptr;
};

}  // namespace vnet::am
