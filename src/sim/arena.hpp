#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace vnet::sim {

/// Fixed-size block allocator for oversized event closures.
///
/// The event queue schedules millions of callbacks per simulated second;
/// most fit UniqueFunction's inline buffer, but the hot fat ones (a Packet
/// moving across a link captures its payload vector and route) used to take
/// a fresh heap allocation each. The arena hands out 240-byte blocks from a
/// free list carved out of chunked slabs, so steady-state scheduling never
/// touches the global allocator: blocks released when an event fires are
/// immediately reused by the next push.
///
/// Each live block stores a back-pointer to its owning arena in a header,
/// so a UniqueFunction can release its storage from wherever it was moved
/// to without carrying the arena pointer itself. Closures larger than
/// kPayloadBytes fall back to the heap; the hit/fallback counters feed the
/// `sim.arena.*` gauges so a workload whose closures outgrow the block size
/// shows up in the metrics instead of silently losing the optimization.
class ClosureArena {
 public:
  /// Usable bytes per block. Sized so every closure in the current stack
  /// (largest: link-serialization lambdas capturing a Packet) fits.
  static constexpr std::size_t kPayloadBytes = 240;

  struct Stats {
    std::uint64_t hits = 0;       ///< oversized closures served from a block
    std::uint64_t fallbacks = 0;  ///< too big for a block: plain heap
    std::size_t blocks_total = 0;
    std::size_t blocks_free = 0;
  };

  ClosureArena() = default;
  ClosureArena(const ClosureArena&) = delete;
  ClosureArena& operator=(const ClosureArena&) = delete;

  /// Returns a kPayloadBytes block aligned for any type with
  /// alignof <= alignof(std::max_align_t). Never fails (carves a new chunk
  /// when the free list is empty).
  void* allocate() {
    if (free_list_ == nullptr) carve_chunk();
    Block* b = free_list_;
    free_list_ = b->next_free;
    b->arena = this;
    ++hits_;
    --blocks_free_;
    return static_cast<void*>(b->payload);
  }

  /// Returns a block obtained from allocate() to its owning arena. Static:
  /// the owner is recovered from the block header, so callers only need the
  /// payload pointer.
  static void release(void* payload) {
    auto* b = reinterpret_cast<Block*>(static_cast<unsigned char*>(payload) -
                                       offsetof(Block, payload));
    ClosureArena* a = b->arena;
    b->next_free = a->free_list_;
    a->free_list_ = b;
    ++a->blocks_free_;
  }

  /// Records a closure that was too large for a block (heap fallback).
  void note_fallback() { ++fallbacks_; }

  Stats stats() const {
    return Stats{hits_, fallbacks_, blocks_total_, blocks_free_};
  }

 private:
  struct Block {
    union {
      ClosureArena* arena;  // while allocated: owner, for release()
      Block* next_free;     // while free: free-list link
    };
    alignas(std::max_align_t) unsigned char payload[kPayloadBytes];
  };
  static_assert(std::is_standard_layout_v<Block>,
                "offsetof(Block, payload) requires standard layout");

  static constexpr std::size_t kChunkBlocks = 64;

  void carve_chunk() {
    auto chunk = std::make_unique<Block[]>(kChunkBlocks);
    for (std::size_t i = 0; i < kChunkBlocks; ++i) {
      chunk[i].next_free = free_list_;
      free_list_ = &chunk[i];
    }
    blocks_total_ += kChunkBlocks;
    blocks_free_ += kChunkBlocks;
    chunks_.push_back(std::move(chunk));
  }

  Block* free_list_ = nullptr;
  std::vector<std::unique_ptr<Block[]>> chunks_;
  std::uint64_t hits_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::size_t blocks_total_ = 0;
  std::size_t blocks_free_ = 0;
};

}  // namespace vnet::sim
