#include "sim/time.hpp"

#include <cstdio>

namespace vnet::sim {

std::string format_time(Time t) {
  char buf[48];
  if (t == kTimeNever) {
    return "never";
  }
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_usec(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_msec(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", to_sec(t));
  }
  return buf;
}

}  // namespace vnet::sim
