#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vnet::sim {

namespace detail {

/// Allocator recycling CondVar wait-state blocks. Every datapath wait
/// (host block/block_for, firmware doze) materializes one shared state;
/// with make_shared that is a fresh heap allocation per wait. A
/// thread-local free list (one size class: the allocator is only ever
/// rebound to the combined control-block + WaitState type) keeps
/// steady-state waiting allocation-free with no cross-thread traffic when
/// shard workers (sim/shard.hpp) run engines in parallel. Blocks freed on
/// a different thread than they were allocated just migrate pools; both
/// sides bottom out in global new/delete.
template <typename T>
struct WaitStateAlloc {
  using value_type = T;
  WaitStateAlloc() = default;
  template <typename U>
  WaitStateAlloc(const WaitStateAlloc<U>&) noexcept {}  // NOLINT
  template <typename U>
  bool operator==(const WaitStateAlloc<U>&) const noexcept {
    return true;
  }

  T* allocate(std::size_t n) {
    auto& fl = freelist();
    if (n == 1 && !fl.empty()) {
      void* p = fl.back();
      fl.pop_back();
      return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    auto& fl = freelist();
    if (n == 1 && fl.size() < 1024) {
      fl.push_back(p);
      return;
    }
    ::operator delete(p);
  }

 private:
  // One free list per rebound T, so every pooled block has T's exact size.
  // The pool frees parked blocks when its thread exits (engines are always
  // torn down before their driving thread), keeping LeakSanitizer clean.
  struct Pool {
    std::vector<void*> slots;
    ~Pool() {
      for (void* p : slots) ::operator delete(p);
    }
  };
  static std::vector<void*>& freelist() {
    static thread_local Pool pool;
    return pool.slots;
  }
};

}  // namespace detail

/// Condition variable for simulation processes.
///
/// As with POSIX condition variables, waits can wake spuriously relative to
/// the guarded predicate (another process may consume the state between
/// notify and resume), so callers loop:
///
///     while (!pred()) co_await cv.wait();
///
/// All wakeups are delivered through the engine's event queue in FIFO order.
class CondVar {
 public:
  explicit CondVar(Engine& engine) : engine_(&engine) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Awaitable: suspends until notify_one()/notify_all().
  auto wait() {
    struct Awaiter {
      CondVar& cv;
      std::shared_ptr<WaitState> state;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        state = std::allocate_shared<WaitState>(
            detail::WaitStateAlloc<WaitState>{});
        state->handle = h;
        cv.waiters_.push_back(state);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, nullptr};
  }

  /// Awaitable: suspends until notified or until `d` elapses.
  /// `co_await cv.wait_for(d)` yields true if notified, false on timeout.
  /// A notify cancels the timeout event outright (O(1) in the event queue),
  /// so heavily-notified waiters leave no stale timer events behind.
  auto wait_for(Duration d) {
    struct Awaiter {
      CondVar& cv;
      Duration d;
      std::shared_ptr<WaitState> state;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        state = std::allocate_shared<WaitState>(
            detail::WaitStateAlloc<WaitState>{});
        state->handle = h;
        cv.waiters_.push_back(state);
        Engine& eng = *cv.engine_;
        state->timer = eng.after(d, [s = state, &eng] {
          if (s->done) return;  // already notified
          s->done = true;
          s->notified = false;
          eng.post(s->handle);
        });
      }
      bool await_resume() const noexcept { return state->notified; }
    };
    return Awaiter{*this, d, nullptr};
  }

  /// Wakes the earliest live waiter, if any.
  void notify_one() {
    while (!waiters_.empty()) {
      auto s = std::move(waiters_.front());
      waiters_.pop_front();
      if (s->done) continue;  // timed out; entry is stale
      s->done = true;
      s->notified = true;
      if (s->timer.valid()) engine_->cancel(s->timer);
      engine_->post(s->handle);
      return;
    }
  }

  /// Wakes all live waiters in FIFO order.
  void notify_all() {
    if (waiters_.empty()) return;  // hot path: most notifies find no waiter
    auto pending = std::move(waiters_);
    waiters_.clear();
    for (auto& s : pending) {
      if (s->done) continue;
      s->done = true;
      s->notified = true;
      if (s->timer.valid()) engine_->cancel(s->timer);
      engine_->post(s->handle);
    }
  }

  /// Number of live (not yet notified or timed-out) waiters.
  std::size_t waiter_count() const {
    std::size_t n = 0;
    for (const auto& s : waiters_) {
      if (!s->done) ++n;
    }
    return n;
  }
  Engine& engine() { return *engine_; }

 private:
  struct WaitState {
    std::coroutine_handle<> handle;
    EventHandle timer;  // wait_for() only: cancelled on notify
    bool done = false;
    bool notified = false;
  };

  Engine* engine_;
  std::deque<std::shared_ptr<WaitState>> waiters_;
};

/// One-shot latch: processes wait until open() is called once; waits after
/// that complete immediately. Used for residency transitions and joins.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(&engine) {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) engine_->post(h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* engine_;
  bool open_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO hand-off, for modelling exclusive hardware
/// resources (DMA engines, bus grants).
class Semaphore {
 public:
  Semaphore(Engine& engine, int initial) : engine_(&engine), count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() noexcept {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  bool try_acquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  /// Releases one unit; hands it directly to the earliest waiter if any.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->post(h);  // waiter proceeds without touching count_
    } else {
      ++count_;
    }
  }

  int available() const { return count_; }
  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine* engine_;
  int count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII-style mutex built on Semaphore; use `co_await m.acquire(); ...
/// m.release();` around critical sections touching shared sim state across
/// suspension points.
class Mutex : public Semaphore {
 public:
  explicit Mutex(Engine& engine) : Semaphore(engine, 1) {}
};

/// Unbounded message queue between processes (firmware mailboxes, driver
/// request queues). post() never blocks; receive() suspends when empty and
/// hands values to receivers in FIFO order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(&engine) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void post(T value) {
    if (!receivers_.empty()) {
      Receiver r = receivers_.front();
      receivers_.pop_front();
      *r.slot = std::move(value);
      engine_->post(r.handle);
    } else {
      queue_.push_back(std::move(value));
    }
  }

  /// Awaitable: yields the next value, suspending if none is queued.
  auto receive() {
    struct Awaiter {
      Mailbox& box;
      std::optional<T> slot;
      bool await_ready() noexcept {
        if (!box.queue_.empty()) {
          slot = std::move(box.queue_.front());
          box.queue_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.receivers_.push_back(Receiver{&slot, h});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this, std::nullopt};
  }

  std::optional<T> try_receive() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  struct Receiver {
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  Engine* engine_;
  std::deque<T> queue_;
  std::deque<Receiver> receivers_;
};

}  // namespace vnet::sim
