#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace vnet::sim {

class ShardGroup;

/// The explicit timestamped message interface between shards.
///
/// Every cross-shard interaction — a packet crossing a link whose endpoints
/// live on different shards, a credit travelling back over such a link — is
/// a *record*: an absolute execution time plus a closure to run on the
/// destination shard's engine. Records are buffered in per-source outboxes
/// while a window executes (each outbox is written only by its owning
/// worker, so the hot path is lock-free) and drained at the next window
/// barrier, where they are merged in deterministic (when, src, seq) order
/// and pushed onto the destination engines.
///
/// Conservative lookahead contract: a record posted while the window
/// [T, T+L) executes must carry `when >= T+L` — the poster's shard can be
/// anywhere inside the window, so an earlier timestamp could land in a
/// neighbour's already-executed past. post() enforces this and throws
/// std::logic_error on violation (the shard_test suite proves the check
/// fires). The fabric guarantees the bound structurally: the cheapest
/// cross-shard effect is a credit return one link-propagation delay after
/// the posting instant, so L = min propagation over cross-shard links.
class ShardRouter {
 public:
  explicit ShardRouter(int shards);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Schedules `fn` on shard `dst`'s engine at absolute time `when`.
  /// Called by shard `src` while its window executes. Thread-safe across
  /// distinct `src` values; a given src posts from its own worker only.
  void post(int src, int dst, Time when, UniqueFunction fn);

  /// End of the window currently executing (0 = no window active; posts
  /// are then unconstrained — setup/teardown time).
  Time horizon() const { return horizon_; }
  void begin_window(Time end) { horizon_ = end; }
  void end_window() { horizon_ = 0; }

  /// Moves every buffered record onto its destination engine, merged in
  /// (when, src, seq) order so multi-shard delivery order is a pure
  /// function of the simulated schedule. Call only at a barrier (no worker
  /// inside a window).
  void deliver(ShardGroup& group);

  /// Total records routed since construction (sync-traffic observability).
  std::uint64_t crossings() const { return crossings_; }

 private:
  struct Record {
    Time when = 0;
    int dst = 0;
    std::uint64_t seq = 0;
    UniqueFunction fn;
  };
  // One outbox per source shard, padded so concurrent writers on adjacent
  // shards do not share a cache line.
  struct alignas(64) Outbox {
    std::vector<Record> records;
    std::uint64_t next_seq = 0;
  };

  std::vector<Outbox> outboxes_;
  Time horizon_ = 0;
  std::uint64_t crossings_ = 0;  // updated in deliver(), single-threaded
};

/// N engines advancing one conservative time window at a time (ROADMAP
/// item 2: parallel deterministic simulation).
///
/// Window algorithm (bounded-lag / YAWNS-style): at each barrier the group
/// drains the router, finds the global minimum next-event time m, and
/// executes [m, m+L) on every shard, where L is the lookahead. Any record
/// generated inside the window has `when >= m+L` (see ShardRouter), so it
/// is delivered at a later barrier — no shard ever executes past what its
/// neighbours could still inject.
///
/// Execution modes:
///  * size() == 1 (default): the serial engine, byte-identical to the
///    pre-shard code path — the determinism oracle;
///  * set_force_windows(true) at size() == 1: the same windowed loop on
///    one engine. The windows partition the identical (time, seq)-ordered
///    pop stream, so the replay digest still matches the serial engine
///    exactly — this is what `--shards 1` runs in the CI oracle gate;
///  * size() > 1, set_threaded(false): one OS thread executes the shards
///    of each window in index order. Deterministic, fork()-safe, and safe
///    for workloads whose host threads share plain memory across shards
///    (the chaos scenarios) — the schedule is identical to threaded mode;
///  * size() > 1, set_threaded(true): one worker thread per shard,
///    synchronized by a std::barrier whose completion step runs the
///    drain/advance logic. Same schedule as sequential mode, so fixed
///    (seed, shard count) gives run-to-run identical digests.
class ShardGroup {
 public:
  /// Shard 0 is seeded with `seed` itself (so a 1-shard group reproduces
  /// the serial engine bit-for-bit); shards 1.. get splitmix-derived seeds.
  ShardGroup(int shards, std::uint64_t seed, Duration lookahead);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int size() const { return static_cast<int>(engines_.size()); }
  Engine& engine(int s) { return *engines_[static_cast<std::size_t>(s)]; }
  const Engine& engine(int s) const {
    return *engines_[static_cast<std::size_t>(s)];
  }
  ShardRouter& router() { return router_; }
  Duration lookahead() const { return lookahead_; }

  /// Worker threads per run (default on). Sequential mode executes the
  /// same window schedule on the calling thread; required when host
  /// threads share unsynchronized state across shards, and for any run
  /// that must remain fork()-compatible (chaos fork server).
  void set_threaded(bool threaded) { threaded_ = threaded; }
  bool threaded() const { return threaded_; }

  /// Forces the windowed loop even at size() == 1 (the CI determinism
  /// oracle: windowed single-shard must match the plain serial loop).
  void set_force_windows(bool force) { force_windows_ = force; }

  /// Runs windows until `done()` returns true (checked at each window
  /// barrier) or every engine is idle with no records in flight. Returns
  /// engine events processed during the call.
  std::uint64_t run_to_completion(const std::function<bool()>& done = {});

  /// Runs all events with timestamp < t, then advances every engine's
  /// clock to exactly t. Always executes sequentially on the calling
  /// thread (it exists for the pre-fork warmup path, which must never
  /// spawn workers).
  void run_until(Time t);

  /// Latest clock across shards (shards inside one window may sit at
  /// slightly different instants; the max is the cluster-wide "now").
  Time max_now() const;

  std::uint64_t total_events() const;

  /// Replay digest of the whole group: exactly engine(0)'s digest for a
  /// single shard (oracle property), a shard-order fold otherwise.
  std::uint64_t combined_digest() const;

  /// Union of every shard's metric registry at max_now(). Counters and
  /// gauges with the same name sum; histograms merge. A 1-shard group
  /// returns engine(0).snapshot() verbatim.
  obs::Snapshot merged_snapshot() const;

  /// Engine::shutdown() across shards in index order (teardown ordering
  /// for Cluster's destructor).
  void shutdown_all();

  /// Process-wide count of live shard worker threads. The chaos fork
  /// server asserts this is zero before fork(): forking a multi-threaded
  /// process would duplicate only the calling thread and deadlock the
  /// barrier (fork-before-threads ordering, DESIGN.md §13).
  static int live_workers() {
    return live_workers_.load(std::memory_order_acquire);
  }

 private:
  friend class ShardRouter;

  /// Global min next-event time, or kIdle when every queue is empty.
  static constexpr Time kIdle = INT64_MAX;
  Time min_next_event();

  void run_windows_sequential(const std::function<bool()>& done, Time limit);
  void run_windows_threaded(const std::function<bool()>& done);

  std::vector<std::unique_ptr<Engine>> engines_;
  ShardRouter router_;
  Duration lookahead_;
  bool threaded_ = true;
  bool force_windows_ = false;

  // Window state shared with workers; written only inside the barrier
  // completion step, which happens-before every worker's release.
  Time window_end_ = 0;
  bool stop_ = false;

  static std::atomic<int> live_workers_;
};

}  // namespace vnet::sim
