#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <vector>

namespace vnet::sim::detail {

/// Size-bucketed free list for coroutine frames (Task and Process).
///
/// Every co_await-composed API call on the datapath — send_common, poll,
/// charge_send, Cpu::run, Nic::inject — materializes a coroutine frame, and
/// the default promise allocator takes those from the global heap one at a
/// time. Frame sizes are compiler-chosen but perfectly repetitive: the same
/// handful of sizes recur once or more per simulated message. Parking freed
/// frames on per-size free lists makes steady-state Task creation
/// allocation-free, the coroutine counterpart of ClosureArena for event
/// closures. The pool is thread_local: each shard worker (sim/shard.hpp)
/// recycles frames privately, with no cross-thread traffic on the hot path.
/// Frames allocated on one thread and freed on another simply migrate
/// between pools — both sides fall back to global new/delete, which is safe.
class FramePool {
 public:
  static constexpr std::size_t kGrain = 64;
  static constexpr std::size_t kBuckets = 64;  ///< frames up to 4 KB pooled
  static constexpr std::size_t kPerBucketCap = 256;

  ~FramePool() {
    for (auto& list : free_) {
      for (void* p : list) ::operator delete(p);
    }
  }

  void* allocate(std::size_t size) {
    const std::size_t b = bucket(size);
    if (b >= kBuckets) return ::operator new(size);
    auto& list = free_[b];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new((b + 1) * kGrain);
  }

  void deallocate(void* p, std::size_t size) noexcept {
    const std::size_t b = bucket(size);
    if (b >= kBuckets) {
      ::operator delete(p);
      return;
    }
    auto& list = free_[b];
    if (list.size() < kPerBucketCap) {
      list.push_back(p);
    } else {
      ::operator delete(p);
    }
  }

 private:
  static std::size_t bucket(std::size_t size) {
    return size == 0 ? 0 : (size - 1) / kGrain;
  }

  std::array<std::vector<void*>, kBuckets> free_;
};

inline FramePool& frame_pool() {
  static thread_local FramePool pool;
  return pool;
}

}  // namespace vnet::sim::detail
