#include "sim/shard.hpp"

#include <algorithm>

#include "sim/process.hpp"  // Engine's inline run/step definitions
#include <barrier>
#include <stdexcept>
#include <string>
#include <thread>

namespace vnet::sim {

std::atomic<int> ShardGroup::live_workers_{0};

// ---------------------------------------------------------- ShardRouter

ShardRouter::ShardRouter(int shards)
    : outboxes_(static_cast<std::size_t>(shards)) {}

void ShardRouter::post(int src, int dst, Time when, UniqueFunction fn) {
  if (horizon_ != 0 && when < horizon_) {
    // A record inside the executing window could land in a neighbour
    // shard's already-executed past; the lookahead bound is broken.
    throw std::logic_error(
        "ShardRouter: lookahead violation — record for t=" +
        std::to_string(when) + " posted inside window ending at t=" +
        std::to_string(horizon_));
  }
  Outbox& ob = outboxes_[static_cast<std::size_t>(src)];
  ob.records.push_back({when, dst, ob.next_seq++, std::move(fn)});
}

void ShardRouter::deliver(ShardGroup& group) {
  // Merge order is (when, src, seq): a pure function of the simulated
  // schedule, independent of worker interleaving — the multi-shard
  // determinism contract.
  struct Tagged {
    Time when;
    int src;
    std::uint64_t seq;
    Record* rec;
  };
  std::vector<Tagged> all;
  for (std::size_t s = 0; s < outboxes_.size(); ++s) {
    for (Record& r : outboxes_[s].records) {
      all.push_back({r.when, static_cast<int>(s), r.seq, &r});
    }
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Tagged& t : all) {
    group.engine(t.rec->dst).at(
        t.when, [fn = std::move(t.rec->fn)]() mutable { fn(); });
    ++crossings_;
  }
  for (Outbox& ob : outboxes_) ob.records.clear();
}

// ----------------------------------------------------------- ShardGroup

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardGroup::ShardGroup(int shards, std::uint64_t seed, Duration lookahead)
    : router_(shards), lookahead_(lookahead) {
  if (shards < 1) throw std::invalid_argument("ShardGroup: shards must be >= 1");
  if (shards > 1 && lookahead < 1) {
    throw std::invalid_argument(
        "ShardGroup: multi-shard sync needs lookahead >= 1 ns");
  }
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>(
        s == 0 ? seed : mix64(seed ^ (0xd1b54a32d192ed03ULL *
                                      static_cast<std::uint64_t>(s)))));
  }
}

ShardGroup::~ShardGroup() = default;

Time ShardGroup::min_next_event() {
  Time m = kIdle;
  for (auto& e : engines_) {
    if (e->has_events()) m = std::min(m, e->next_event_time());
  }
  return m;
}

Time ShardGroup::max_now() const {
  Time t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

std::uint64_t ShardGroup::total_events() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->events_processed();
  return n;
}

std::uint64_t ShardGroup::combined_digest() const {
  std::uint64_t h = engines_[0]->replay_digest();
  for (std::size_t s = 1; s < engines_.size(); ++s) {
    h = mix64(h ^ engines_[s]->replay_digest());
  }
  return h;
}

obs::Snapshot ShardGroup::merged_snapshot() const {
  if (engines_.size() == 1) return engines_[0]->snapshot();
  obs::Snapshot out;
  out.at_ns = static_cast<std::int64_t>(max_now());
  for (const auto& e : engines_) {
    const obs::Snapshot snap = e->snapshot();
    for (const auto& [name, v] : snap.counters) out.counters[name] += v;
    for (const auto& [name, v] : snap.gauges) out.gauges[name] += v;
    for (const auto& [name, h] : snap.histograms) {
      auto [it, fresh] = out.histograms.try_emplace(name, h);
      if (fresh) continue;
      obs::HistogramData& acc = it->second;
      if (h.count > 0) {
        acc.min_seen = acc.count ? std::min(acc.min_seen, h.min_seen)
                                 : h.min_seen;
        acc.max_seen = acc.count ? std::max(acc.max_seen, h.max_seen)
                                 : h.max_seen;
      }
      acc.count += h.count;
      acc.sum += h.sum;
      if (acc.buckets.size() < h.buckets.size()) {
        acc.buckets.resize(h.buckets.size(), 0);
      }
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        acc.buckets[b] += h.buckets[b];
      }
    }
  }
  return out;
}

void ShardGroup::shutdown_all() {
  for (auto& e : engines_) e->shutdown();
}

std::uint64_t ShardGroup::run_to_completion(
    const std::function<bool()>& done) {
  const std::uint64_t before = total_events();
  if (engines_.size() == 1 && !force_windows_) {
    // The serial engine, verbatim — the determinism oracle's code path.
    Engine& e = *engines_[0];
    if (done) {
      while (!done() && e.step()) {
      }
    } else {
      e.run();
    }
  } else if (engines_.size() > 1 && threaded_) {
    run_windows_threaded(done);
  } else {
    run_windows_sequential(done, kIdle);
  }
  return total_events() - before;
}

void ShardGroup::run_until(Time t) {
  if (engines_.size() == 1 && !force_windows_) {
    engines_[0]->run_until(t);
    return;
  }
  // Bounded windows, always sequential: this is the fork server's pre-fork
  // warmup path and must not spawn threads.
  run_windows_sequential({}, t);
  for (auto& e : engines_) e->run_until(t);
}

void ShardGroup::run_windows_sequential(const std::function<bool()>& done,
                                        Time limit) {
  for (;;) {
    router_.deliver(*this);
    if (done && done()) break;
    const Time m = min_next_event();
    if (m == kIdle || m >= limit) break;
    const Time end = std::min<Time>(m + lookahead_, limit);
    router_.begin_window(end);
    for (auto& e : engines_) e->run_window(end);
    router_.end_window();
  }
}

void ShardGroup::run_windows_threaded(const std::function<bool()>& done) {
  const int n = size();
  stop_ = false;
  window_end_ = 0;
  // The completion step runs on the last-arriving worker with every other
  // worker parked at the barrier: the only moment mutable cross-shard work
  // (record drain, window advance) is safe. The barrier's synchronization
  // orders it before any worker resumes.
  auto boundary = [this, &done]() noexcept {
    router_.end_window();
    router_.deliver(*this);
    const Time m = min_next_event();
    if ((done && done()) || m == kIdle) {
      stop_ = true;
      return;
    }
    window_end_ = m + lookahead_;
    router_.begin_window(window_end_);
  };
  std::barrier bar(n, boundary);
  auto work = [this, &bar](int s) {
    for (;;) {
      bar.arrive_and_wait();
      if (stop_) break;
      engines_[static_cast<std::size_t>(s)]->run_window(window_end_);
    }
  };
  live_workers_.fetch_add(n - 1, std::memory_order_acq_rel);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 1; s < n; ++s) workers.emplace_back(work, s);
  work(0);  // the caller is shard 0's worker
  for (auto& w : workers) w.join();
  live_workers_.fetch_sub(n - 1, std::memory_order_acq_rel);
}

}  // namespace vnet::sim
