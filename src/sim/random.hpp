#pragma once

#include <cmath>
#include <cstdint>

namespace vnet::sim {

/// Deterministic pseudo-random source for the simulation.
///
/// xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
/// std::mt19937 distributions — stable across standard library versions, so a
/// given seed reproduces the same run on any platform. Each component that
/// needs randomness (backoff timers, replacement policy, fault injection)
/// forks its own stream via split() so adding randomness in one place never
/// perturbs another.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent stream; deterministic for a given parent state.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  /// Order-dependent hash of the generator state, for replay digests: two
  /// runs that drew the same values in the same order have equal hashes.
  std::uint64_t state_hash() const {
    std::uint64_t h = 0x6a09e667f3bcc908ULL;
    for (std::uint64_t word : s_) {
      h ^= word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace vnet::sim
