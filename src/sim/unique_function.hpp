#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/arena.hpp"

namespace vnet::sim {

/// A move-only type-erased callable with signature `void()`.
///
/// The discrete-event queue stores millions of pending callbacks, many of
/// which capture move-only state (packets, coroutine handles). std::function
/// requires copyability, and std::move_only_function is C++23; this is the
/// small subset we need, with a small-buffer optimization sized for typical
/// event lambdas (a couple of pointers).
///
/// Closures that outgrow the inline buffer normally heap-allocate; the
/// two-argument constructor routes them through a ClosureArena instead, so
/// the event queue's steady-state scheduling is allocation-free (the block
/// is returned to the arena when the closure is destroyed, from wherever
/// the UniqueFunction was moved to).
class UniqueFunction {
 public:
  UniqueFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : UniqueFunction(std::forward<F>(f), nullptr) {}

  /// As above, but oversized closures are placed in `arena` when they fit a
  /// block (falling back to the heap, counted, when they don't). A null
  /// arena always uses the heap.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f, ClosureArena* arena) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else if constexpr (sizeof(Fn) <= ClosureArena::kPayloadBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      if (arena != nullptr) {
        void* block = arena->allocate();
        ::new (block) Fn(std::forward<F>(f));
        ::new (static_cast<void*>(buffer_)) void*(block);
        vtable_ = &arena_vtable<Fn>;
      } else {
        ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(f)));
        vtable_ = &heap_vtable<Fn>;
      }
    } else {
      if (arena != nullptr) arena->note_fallback();
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(buffer_); }

 private:
  static constexpr std::size_t kInlineSize = 6 * sizeof(void*);

  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
  };

  template <typename Fn>
  static constexpr VTable arena_vtable = {
      [](void* p) { (*static_cast<Fn*>(*static_cast<void**>(p)))(); },
      [](void* p) noexcept {
        void* block = *static_cast<void**>(p);
        static_cast<Fn*>(block)->~Fn();
        ClosureArena::release(block);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) void*(*static_cast<void**>(src));
      },
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buffer_, other.buffer_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
};

}  // namespace vnet::sim
