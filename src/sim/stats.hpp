#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vnet::sim {

/// Running summary statistics (count / mean / min / max / stddev) using
/// Welford's numerically stable update. Used throughout the benches for
/// latency and throughput series.
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Summary{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log2-bucketed histogram for long-tailed distributions (round-trip times
/// under contention are strongly bimodal — see §6.4.1 of the paper — and a
/// mean alone hides that).
class Histogram {
 public:
  void add(double x) {
    summary_.add(x);
    std::size_t b = bucket_of(x);
    if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
    ++buckets_[b];
  }

  const Summary& summary() const { return summary_; }

  /// Approximate quantile (q in [0,1]) from bucket midpoints.
  double quantile(double q) const {
    const std::uint64_t n = summary_.count();
    if (n == 0) return 0.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen > target) return bucket_mid(b);
    }
    return summary_.max();
  }

  /// Number of populated buckets; useful for detecting multi-modality.
  std::size_t mode_count() const {
    std::size_t modes = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const std::uint64_t cur = buckets_[b];
      if (cur == 0) continue;
      const std::uint64_t prev = b > 0 ? buckets_[b - 1] : 0;
      const std::uint64_t next = b + 1 < buckets_.size() ? buckets_[b + 1] : 0;
      if (cur >= prev && cur >= next) ++modes;
    }
    return modes;
  }

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  void reset() {
    summary_.reset();
    buckets_.clear();
  }

 private:
  static std::size_t bucket_of(double x) {
    if (x < 1.0) return 0;
    return static_cast<std::size_t>(std::ilogb(x)) + 1;
  }
  static double bucket_mid(std::size_t b) {
    if (b == 0) return 0.5;
    return 1.5 * std::ldexp(1.0, static_cast<int>(b) - 1);
  }

  Summary summary_;
  std::vector<std::uint64_t> buckets_;
};

/// Least-squares fit y = a*x + b over accumulated points; used to recover
/// the paper's round-trip-time model RTT(n) = 0.1112 n + 61.02 us (Fig 4).
class LinearFit {
 public:
  void add(double x, double y) {
    ++n_;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    sxy_ += x * y;
    syy_ += y * y;
  }

  double slope() const {
    const double d = static_cast<double>(n_) * sxx_ - sx_ * sx_;
    return d != 0.0 ? (static_cast<double>(n_) * sxy_ - sx_ * sy_) / d : 0.0;
  }

  double intercept() const {
    return n_ ? (sy_ - slope() * sx_) / static_cast<double>(n_) : 0.0;
  }

  /// Coefficient of determination R^2.
  double r_squared() const {
    const double d1 = static_cast<double>(n_) * sxx_ - sx_ * sx_;
    const double d2 = static_cast<double>(n_) * syy_ - sy_ * sy_;
    if (d1 <= 0.0 || d2 <= 0.0) return 0.0;
    const double num = static_cast<double>(n_) * sxy_ - sx_ * sy_;
    return (num * num) / (d1 * d2);
  }

  std::uint64_t count() const { return n_; }

 private:
  std::uint64_t n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0, syy_ = 0;
};

}  // namespace vnet::sim
