#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <unordered_set>

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace vnet::sim {

class Process;

/// The discrete-event simulation engine: one shared clock, one event queue,
/// and ownership of every live coroutine process.
///
/// Components schedule plain callbacks with at()/after(), or run as
/// coroutine Processes (see process.hpp) that `co_await engine.delay(d)` and
/// the synchronization primitives in sync.hpp. All coroutine resumption goes
/// through the event queue — never inline — so execution order is a pure
/// function of (time, insertion order) and runs are reproducible.
///
/// Single-threaded by design: a cluster simulation is one logical timeline.
/// Parallel runs use one Engine per shard (sim/shard.hpp), each advanced by
/// exactly one worker thread per time window; nothing in this class is
/// shared across workers mid-window.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {
    tracer_.set_clock([this] { return static_cast<std::int64_t>(now_); });
    metrics_.counter_fn("sim.events_processed",
                        [this] { return events_processed_; });
    metrics_.gauge_fn("sim.pending_events", [this] {
      return static_cast<double>(queue_.size());
    });
    metrics_.gauge_fn("sim.live_processes", [this] {
      return static_cast<double>(processes_.size());
    });
    // Scheduling allocator health: oversized closures served from the slab
    // arena vs. spilled to the heap (see sim/arena.hpp). A workload whose
    // fallback counter grows has closures larger than the arena block.
    metrics_.counter_fn("sim.arena.closure_hits",
                        [this] { return queue_.arena_stats().hits; });
    metrics_.counter_fn("sim.arena.closure_fallbacks",
                        [this] { return queue_.arena_stats().fallbacks; });
    metrics_.gauge_fn("sim.arena.blocks_total", [this] {
      return static_cast<double>(queue_.arena_stats().blocks_total);
    });
    metrics_.gauge_fn("sim.queue.slots", [this] {
      return static_cast<double>(queue_.slot_capacity());
    });
    // Bounded trace-ring health: a growing dropped counter means the ring
    // wrapped and the oldest events were overwritten.
    metrics_.counter_fn("obs.trace.dropped",
                        [this] { return tracer_.dropped(); });
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Destroys all still-suspended process frames (servers, firmware loops).
  ~Engine();

  /// Tears down all live processes and pending events *now*. Call before
  /// destroying objects that process locals reference (hosts, fabrics) —
  /// Cluster does this in its destructor to fix teardown order.
  void shutdown();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). The returned
  /// handle may be passed to cancel(); discarding it is fine.
  template <typename F>
  EventHandle at(Time t, F&& fn) {
    return queue_.push(clamp(t), std::forward<F>(fn));
  }

  /// Schedules `fn` after a relative delay `d` (must be >= 0).
  template <typename F>
  EventHandle after(Duration d, F&& fn) {
    return queue_.push(now_ + d, std::forward<F>(fn));
  }

  /// Cancels a previously scheduled event in O(1). Distinguishes a pending
  /// event (now cancelled) from one that already fired or was already
  /// cancelled; stale/invalid handles report kUnknown. See event_queue.hpp.
  CancelOutcome cancel(EventHandle h) { return queue_.cancel(h); }

  /// Runs `fn` every `d` nanoseconds until it returns false. The stop
  /// condition matters: run()/chaos drains execute until the queue is
  /// empty, so an unconditionally re-arming tick would never let them
  /// finish.
  void every(Duration d, std::function<bool()> fn) {
    after(d, [this, d, fn = std::move(fn)]() mutable {
      if (fn()) every(d, std::move(fn));
    });
  }

  /// Schedules coroutine `h` to be resumed at the current time, after all
  /// events already queued for this instant.
  void post(std::coroutine_handle<> h) {
    queue_.push(now_, [h] { h.resume(); });
  }

  /// Schedules coroutine `h` to be resumed at absolute time `t`.
  void resume_at(Time t, std::coroutine_handle<> h) {
    queue_.push(clamp(t), [h] { h.resume(); });
  }

  /// Takes ownership of a process coroutine and schedules its first step at
  /// the current time. The frame is destroyed when the coroutine finishes,
  /// or by ~Engine if it never does.
  void spawn(Process p);

  /// Awaitable: suspends the calling process for `d` nanoseconds.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.resume_at(engine.now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue is empty. Returns the number of events processed.
  std::size_t run();

  /// Runs all events with timestamp <= t, then sets now() = t.
  std::size_t run_until(Time t);

  /// Runs all events with timestamp strictly < end, leaving now() at the
  /// last executed event. The conservative window step of sim/shard.hpp:
  /// windows partition the (time, seq)-ordered pop stream, so a windowed
  /// run fires the identical event sequence (and replay digest) as run().
  std::size_t run_window(Time end);

  bool has_events() const { return !queue_.empty(); }
  /// Time of the earliest pending event. Precondition: has_events().
  Time next_event_time() { return queue_.next_time(); }

  /// Runs for `d` more nanoseconds of simulated time.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Engine-owned random stream. Components should fork their own stream
  /// once via rng().split() rather than drawing from this repeatedly.
  Rng& rng() { return rng_; }

  /// The simulation-wide metric namespace (see obs/metrics.hpp). Components
  /// register counters here under hierarchical names at construction.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// All metric values at the current simulated time.
  obs::Snapshot snapshot() const {
    return metrics_.snapshot(static_cast<std::int64_t>(now_));
  }

  /// Simulated-time tracer; its clock is this engine's clock.
  obs::Tracer& tracer() { return tracer_; }

  /// Per-message latency attribution recorder (see obs/attr.hpp). Disabled
  /// by default; stamp sites throughout the stack cost one branch until
  /// attr().set_sample_interval(n) turns tracking on.
  obs::AttrRecorder& attr() { return attr_; }

  /// Per-message causal span recorder (see obs/span.hpp). Disabled by
  /// default; the same stamp sites that feed attr() also feed this, at the
  /// cost of one branch each until spans().set_sample_interval(n) turns
  /// tracking on.
  obs::SpanRecorder& spans() { return spans_; }
  const obs::SpanRecorder& spans() const { return spans_; }

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t live_processes() const { return processes_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Deterministic-replay digest: a rolling hash over the fired event
  /// stream (time, seq, slot) folded with the event count and engine RNG
  /// state. Address-independent, so it compares across processes — a
  /// fork()ed timeline that runs to completion must report the same digest
  /// as the straight-through run, and a fresh run with the same seed must
  /// match both. Any divergence means hidden nondeterminism.
  std::uint64_t replay_digest() const {
    std::uint64_t h = queue_.digest();
    h ^= 0x9e3779b97f4a7c15ULL * (events_processed_ + 1);
    h ^= rng_.state_hash();
    h ^= static_cast<std::uint64_t>(now_) * 0xff51afd7ed558ccdULL;
    return h;
  }

 private:
  friend class Process;

  // Called from a process's final suspend point: unregister and free it.
  void on_process_done(std::coroutine_handle<> h) {
    processes_.erase(h.address());
    h.destroy();
  }

  Time clamp(Time t) const { return t < now_ ? now_ : t; }

  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  obs::AttrRecorder attr_{metrics_};
  obs::SpanRecorder spans_{metrics_};
  obs::Tracer tracer_;
  std::unordered_set<void*> processes_;
  std::uint64_t events_processed_ = 0;
};

}  // namespace vnet::sim
