#pragma once

#include <cstdint>
#include <string>

namespace vnet::sim {

/// Simulated time in integer nanoseconds since the start of the run.
///
/// All components of the simulated cluster (hosts, NICs, links) share one
/// clock owned by the Engine. Integer nanoseconds give exact, platform
/// independent arithmetic; the longest runs we model (tens of simulated
/// seconds) are far from overflow.
using Time = std::int64_t;

/// A span of simulated time, also in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Convenience literals: `250 * sim::us`, `4 * sim::ms`.
inline constexpr Duration ns = kNanosecond;
inline constexpr Duration us = kMicrosecond;
inline constexpr Duration ms = kMillisecond;
inline constexpr Duration sec = kSecond;

/// Sentinel meaning "no deadline".
inline constexpr Time kTimeNever = INT64_MAX;

/// Converts a duration to floating-point microseconds (for reporting).
constexpr double to_usec(Duration d) { return static_cast<double>(d) / 1e3; }

/// Converts a duration to floating-point milliseconds (for reporting).
constexpr double to_msec(Duration d) { return static_cast<double>(d) / 1e6; }

/// Converts a duration to floating-point seconds (for reporting).
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e9; }

/// Converts floating-point microseconds to a Duration, rounding to nearest.
constexpr Duration from_usec(double usec) {
  return static_cast<Duration>(usec * 1e3 + (usec >= 0 ? 0.5 : -0.5));
}

/// Renders a time as a human-readable string, e.g. "12.345us" or "3.2ms".
std::string format_time(Time t);

}  // namespace vnet::sim
