#pragma once

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"

namespace vnet::sim {

/// The coroutine type for simulation processes.
///
/// A process is a `Process`-returning coroutine: NIC firmware loops, host
/// threads, and application ranks are all processes. Creating one does not
/// run it; pass it to Engine::spawn, which takes ownership and schedules the
/// first step. After spawn the process is detached — it lives until it runs
/// to completion (the engine then frees the frame) or until the engine is
/// destroyed.
///
///     sim::Process ping(sim::Engine& eng) {
///       co_await eng.delay(5 * sim::us);
///       ...
///     }
///     eng.spawn(ping(eng));
///
/// Exceptions escaping a process indicate a simulation bug; they abort the
/// run with a diagnostic rather than being silently swallowed.
class Process {
 public:
  struct promise_type {
    Engine* engine = nullptr;

    // Short-lived processes (per-packet injections, driver ops) recycle
    // their frames through the same pool as Task.
    static void* operator new(std::size_t size) {
      return detail::frame_pool().allocate(size);
    }
    static void operator delete(void* p, std::size_t size) noexcept {
      detail::frame_pool().deallocate(p, size);
    }

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Unregisters from the engine and destroys the frame. If the process
        // was never spawned, Process::~Process owns destruction instead.
        if (Engine* e = h.promise().engine) e->on_process_done(h);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}

    void unhandled_exception() noexcept {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "fatal: exception escaped sim process: %s\n",
                     ex.what());
      } catch (...) {
        std::fprintf(stderr, "fatal: unknown exception escaped sim process\n");
      }
      std::abort();
    }
  };

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}

  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ~Process() { destroy(); }

 private:
  friend class Engine;

  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

  // Engine::spawn takes the handle; afterwards this object is empty.
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

inline void Engine::spawn(Process p) {
  auto h = p.release();
  h.promise().engine = this;
  processes_.insert(h.address());
  post(h);
}

inline void Engine::shutdown() {
  // Drain the queue first: the entries may hold resume handles for the
  // frames we are about to destroy, and must never fire afterwards.
  while (!queue_.empty()) queue_.pop();
  // Destroying a suspended frame runs its locals' destructors, which may
  // legally destroy *other* processes (e.g. a thread owning an Endpoint);
  // iterate over a snapshot and re-check liveness.
  auto snapshot = processes_;
  for (void* addr : snapshot) {
    if (processes_.erase(addr) > 0) {
      std::coroutine_handle<>::from_address(addr).destroy();
    }
  }
}

inline Engine::~Engine() { shutdown(); }

inline bool Engine::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  now_ = t;
  ++events_processed_;
  fn();
  return true;
}

inline std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

inline std::size_t Engine::run_window(Time end) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() < end) {
    step();
    ++n;
  }
  return n;
}

inline std::size_t Engine::run_until(Time t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace vnet::sim
