#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#ifdef VNET_EVENT_PROFILE
#include <unordered_map>
#endif
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace vnet::sim {

#ifdef VNET_EVENT_PROFILE
// Build-time probe only (not compiled into the tree's targets): call-site
// histogram of event pushes, keyed by return address; resolve with addr2line.
inline std::unordered_map<void*, std::uint64_t>& event_profile() {
  static std::unordered_map<void*, std::uint64_t> m;
  return m;
}
#endif

/// Identifies one scheduled event for cancellation: a slot in the queue's
/// entry slab plus a generation counter that detects slot reuse. Default
/// constructed handles are invalid (cancel() returns kUnknown).
struct EventHandle {
  static constexpr std::uint32_t kInvalidSlot = UINT32_MAX;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;
  bool valid() const { return slot != kInvalidSlot; }
};

/// What cancel() found. The outcome is exact until the event's slot is
/// recycled by a later push; after that a stale handle reports kUnknown
/// (the event certainly fired or was cancelled long before).
enum class CancelOutcome {
  kCancelled,         ///< event was pending; it will not run
  kFired,             ///< event already ran
  kAlreadyCancelled,  ///< a previous cancel() already suppressed it
  kUnknown,           ///< invalid or stale handle (slot since recycled)
};

/// A priority queue of timed callbacks with deterministic tie-breaking.
///
/// Events at equal timestamps run in insertion order (FIFO), which makes
/// whole-cluster simulations bit-reproducible for a given seed regardless
/// of queue internals: pop order is a pure function of (time, sequence),
/// where `sequence` increments once per push.
///
/// Layout, tuned for the simulator's traffic (overwhelmingly near-future
/// events: link serialization, NIC service slots, periodic ticks):
///
///  * Entries live in a slab (`slots_` + free list), addressed by index.
///    Payload closures go through a ClosureArena (see arena.hpp), so
///    steady-state push/pop performs no heap allocation.
///  * A calendar of kNumBuckets buckets, each kBucketNs wide, covers the
///    near-future horizon (~4 ms). Each bucket is a small binary heap
///    ordered by (time, sequence); the cursor consumes buckets in order.
///    Because bucket time ranges are disjoint, the earliest event overall
///    is always in the first non-empty bucket at/after the cursor, and the
///    per-operation heap cost is O(log bucket-occupancy), not O(log n).
///  * Events beyond the horizon (retransmit/unreachable timers, long
///    sleeps) sit in an overflow heap. When the calendar is drained, it is
///    re-based at the earliest overflow event and in-horizon events migrate
///    into buckets — O(overflow) per horizon, amortized O(1) per event.
///  * cancel() is O(1): handles carry (slot, generation); cancellation
///    tombstones the slot and the stale heap entry is dropped when it
///    surfaces. No linear scan anywhere.
///
/// Pushing a time earlier than the cursor's bucket (the engine clamps
/// schedule times to >= now, so this only happens for "run at the current
/// instant" events after the cursor advanced) files the event under the
/// cursor bucket; the in-bucket comparator still orders it exactly.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`, placing oversized closures in the
  /// queue's arena. Returns a handle for cancel().
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  EventHandle push(Time t, F&& fn) {
    return push(t, UniqueFunction(std::forward<F>(fn), &arena_));
  }

  /// Schedules an already-built callable (no arena routing).
#ifdef VNET_EVENT_PROFILE
  __attribute__((noinline))
#endif
  EventHandle push(Time t, UniqueFunction fn) {
#ifdef VNET_EVENT_PROFILE
    ++event_profile()[__builtin_return_address(0)];
#endif
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.time = t;
    s.seq = next_seq_++;
    s.state = State::kPending;
    s.fn = std::move(fn);
    insert_ref(Ref{t, s.seq, slot});
    ++live_;
    return EventHandle{slot, s.gen};
  }

  /// Cancels a pending event in O(1). See CancelOutcome for the cases; the
  /// closure is destroyed immediately, the queue entry lazily.
  CancelOutcome cancel(EventHandle h) {
    if (!h.valid() || h.slot >= slots_.size()) return CancelOutcome::kUnknown;
    Slot& s = slots_[h.slot];
    if (s.gen != h.gen) return CancelOutcome::kUnknown;
    switch (s.state) {
      case State::kPending:
        s.state = State::kCancelled;
        s.fn = UniqueFunction{};
        --live_;
        return CancelOutcome::kCancelled;
      case State::kFired:
        return CancelOutcome::kFired;
      case State::kCancelled:
        return CancelOutcome::kAlreadyCancelled;
      case State::kFree:
        break;
    }
    return CancelOutcome::kUnknown;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  Time next_time() { return position()->front().time; }

  /// Removes and returns the earliest live event. Precondition: !empty().
  std::pair<Time, UniqueFunction> pop() {
    std::vector<Ref>* b = position();
    const Ref top = b->front();
    std::pop_heap(b->begin(), b->end(), RefAfter{});
    b->pop_back();
    Slot& s = slots_[top.slot];
    Time t = s.time;
    UniqueFunction fn = std::move(s.fn);
    s.state = State::kFired;
    // Replay digest: fold (time, seq, slot) of every fired event into a
    // rolling hash. seq is the global push order and slot the slab index —
    // both pure functions of the schedule history, never of addresses — so
    // two runs (or a fork and its straight-through twin) that execute the
    // same event stream produce bit-identical digests. One avalanche per
    // pop suffices (the inputs enter via distinct odd multipliers); this
    // is on the hot path of every fired event, so keep it to one mix64.
    digest_ = mix64(digest_ ^ (static_cast<std::uint64_t>(t) +
                               0x9e3779b97f4a7c15ULL * s.seq +
                               0xbf58476d1ce4e5b9ULL * top.slot));
    free_slot(top.slot);
    --live_;
    return {t, std::move(fn)};
  }

  /// Rolling hash over every event popped so far — the fired-event stream
  /// (time, seq, slot). Equal digests mean equal execution histories.
  std::uint64_t digest() const { return digest_; }

  /// Slab occupancy, for the engine's `sim.queue.*` gauges.
  std::size_t slot_capacity() const { return slots_.size(); }
  std::size_t slots_free() const { return free_slots_.size(); }
  ClosureArena::Stats arena_stats() const { return arena_.stats(); }

 private:
  // Calendar geometry: 1024 buckets of 4.096 us cover a ~4.2 ms horizon,
  // which holds essentially all wire/NIC/tick events; coarser timers (e.g.
  // 200 us - 1 s retransmission timeouts scheduled from ~0) stay cheap in
  // the overflow heap.
  static constexpr int kBucketShift = 12;  // 4096 ns per bucket
  static constexpr std::size_t kNumBuckets = 1024;

  enum class State : std::uint8_t { kFree, kPending, kFired, kCancelled };

  struct Slot {
    Time time = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    State state = State::kFree;
    UniqueFunction fn;
  };

  struct Ref {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Strict-weak "fires later than": std::*_heap with this comparator keeps
  // the (time, seq)-earliest Ref at front(). The (time, seq) pair is the
  // load-bearing total order — see the class comment.
  struct RefAfter {
    bool operator()(const Ref& a, const Ref& b) const {
      return b.time < a.time || (b.time == a.time && b.seq < a.seq);
    }
  };

  // SplitMix64 finalizer: full-avalanche 64-bit mixer.
  static std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t alloc_slot() {
    if (free_slots_.empty()) {
      slots_.emplace_back();
      return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ++slots_[slot].gen;  // invalidate handles to the previous occupant
    return slot;
  }

  void free_slot(std::uint32_t slot) { free_slots_.push_back(slot); }

  void insert_ref(const Ref& r) {
    std::int64_t idx = (r.time >> kBucketShift) - base_tick_;
    if (idx < static_cast<std::int64_t>(cursor_)) {
      idx = static_cast<std::int64_t>(cursor_);  // current-instant events
    }
    if (idx >= static_cast<std::int64_t>(kNumBuckets)) {
      overflow_.push_back(r);
      std::push_heap(overflow_.begin(), overflow_.end(), RefAfter{});
    } else {
      auto& b = buckets_[static_cast<std::size_t>(idx)];
      b.push_back(r);
      std::push_heap(b.begin(), b.end(), RefAfter{});
    }
  }

  // Advances the cursor to the bucket holding the earliest live event,
  // dropping cancelled tombstones, re-basing the calendar from the
  // overflow heap when the window is drained. Precondition: !empty().
  std::vector<Ref>* position() {
    for (;;) {
      while (cursor_ < kNumBuckets && buckets_[cursor_].empty()) ++cursor_;
      if (cursor_ == kNumBuckets) {
        rebase();
        continue;
      }
      auto& b = buckets_[cursor_];
      const Ref top = b.front();
      if (slots_[top.slot].state == State::kCancelled) {
        std::pop_heap(b.begin(), b.end(), RefAfter{});
        b.pop_back();
        free_slot(top.slot);
        continue;
      }
      return &b;
    }
  }

  // Re-anchors the calendar window at the earliest overflow event and
  // migrates every overflow entry that now falls inside it. Precondition:
  // all buckets empty and overflow_ non-empty (live_ > 0 guarantees the
  // latter when the former holds).
  void rebase() {
    base_tick_ = overflow_.front().time >> kBucketShift;
    cursor_ = 0;
    std::vector<Ref> keep;
    keep.reserve(overflow_.size());
    for (const Ref& r : overflow_) {
      const std::int64_t idx = (r.time >> kBucketShift) - base_tick_;
      if (idx < static_cast<std::int64_t>(kNumBuckets)) {
        buckets_[static_cast<std::size_t>(idx)].push_back(r);
      } else {
        keep.push_back(r);
      }
    }
    overflow_ = std::move(keep);
    std::make_heap(overflow_.begin(), overflow_.end(), RefAfter{});
    for (auto& b : buckets_) {
      if (!b.empty()) std::make_heap(b.begin(), b.end(), RefAfter{});
    }
  }

  // Declared before slots_: slot closures may hold arena blocks, and
  // members are destroyed in reverse declaration order.
  ClosureArena arena_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::array<std::vector<Ref>, kNumBuckets> buckets_;
  std::vector<Ref> overflow_;
  std::int64_t base_tick_ = 0;
  std::size_t cursor_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t digest_ = 0x243f6a8885a308d3ULL;  // pi, arbitrary non-zero
};

}  // namespace vnet::sim
