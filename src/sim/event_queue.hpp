#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace vnet::sim {

/// A priority queue of timed callbacks with deterministic tie-breaking.
///
/// Events at equal timestamps run in insertion order (FIFO), which makes
/// whole-cluster simulations bit-reproducible for a given seed regardless of
/// heap internals. Implemented as a binary min-heap over (time, sequence).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Returns a monotonically increasing
  /// id that can be passed to cancel().
  std::uint64_t push(Time t, UniqueFunction fn) {
    const std::uint64_t id = next_seq_++;
    heap_.push_back(Entry{t, id, std::move(fn), false});
    sift_up(heap_.size() - 1);
    ++live_;
    return id;
  }

  /// Lazily cancels a pending event by id. The entry stays in the heap until
  /// it reaches the top, then is discarded without running. Cancelling an
  /// already-fired or unknown id is a no-op (returns false).
  bool cancel(std::uint64_t id) {
    for (auto& e : heap_) {
      if (e.seq == id && !e.cancelled) {
        e.cancelled = true;
        e.fn = UniqueFunction{};
        --live_;
        return true;
      }
    }
    return false;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  Time next_time() {
    drop_cancelled();
    return heap_.front().time;
  }

  /// Removes and returns the earliest live event. Precondition: !empty().
  std::pair<Time, UniqueFunction> pop() {
    drop_cancelled();
    Time t = heap_.front().time;
    UniqueFunction fn = std::move(heap_.front().fn);
    remove_top();
    --live_;
    return {t, std::move(fn)};
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    UniqueFunction fn;
    bool cancelled;

    bool before(const Entry& o) const {
      return time < o.time || (time == o.time && seq < o.seq);
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && heap_.front().cancelled) remove_top();
  }

  void remove_top() {
    std::swap(heap_.front(), heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      std::size_t l = 2 * i + 1;
      std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].before(heap_[smallest])) smallest = l;
      if (r < n && heap_[r].before(heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace vnet::sim
