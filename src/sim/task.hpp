#pragma once

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/frame_pool.hpp"

namespace vnet::sim {

template <typename T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  // Task frames recycle through the coroutine frame pool: one Task per
  // datapath API call adds up to millions of frames per simulated second.
  static void* operator new(std::size_t size) {
    return frame_pool().allocate(size);
  }
  static void operator delete(void* p, std::size_t size) noexcept {
    frame_pool().deallocate(p, size);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Resume whoever awaited us; the frame itself is destroyed by the
      // owning Task object.
      auto& cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    try {
      std::rethrow_exception(std::current_exception());
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "fatal: exception escaped sim task: %s\n",
                   ex.what());
    } catch (...) {
      std::fprintf(stderr, "fatal: unknown exception escaped sim task\n");
    }
    std::abort();
  }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();

  template <typename U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }

  T take() { return std::move(*value); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
  void take() {}
};

}  // namespace detail

/// A lazily-started, awaitable coroutine returning T.
///
/// Task is the composition primitive beneath Process: a Process (or another
/// Task) does `T v = co_await some_task(...)`, the child starts inline, and
/// when it completes — possibly after suspending on engine delays or
/// condition variables — control transfers back to the awaiter via
/// symmetric transfer. The public vnet::am API is expressed as Tasks so
/// application code reads like straight-line threaded code.
///
/// The Task object owns the coroutine frame; it must be awaited (or
/// destroyed) by its creator. A Task is single-shot: await it once.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        child.promise().continuation = parent;
        return child;  // start the child inline (symmetric transfer)
      }
      T await_resume() { return child.promise().take(); }
    };
    return Awaiter{handle_};
  }

  /// Starts the task with `continuation` resumed on completion, returning
  /// the task's handle for symmetric transfer. For awaitables that wrap a
  /// Task slow path inside their own await_suspend; the Task object must
  /// stay alive until it completes (it owns the frame).
  std::coroutine_handle<> start(std::coroutine_handle<> continuation) noexcept {
    handle_.promise().continuation = continuation;
    return handle_;
  }

 private:
  friend struct detail::TaskPromise<T>;

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace vnet::sim
