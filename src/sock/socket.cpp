#include "sock/socket.hpp"

#include <cstdio>
#include <cstdlib>

namespace vnet::sock {

namespace {
constexpr std::uint8_t kSyn = 1;     ///< to listener: (node, ep, tag)
constexpr std::uint8_t kAccept = 2;  ///< to client socket: (node, ep, tag)
constexpr std::uint8_t kData = 3;    ///< args[0] = stream offset
constexpr std::uint8_t kFin = 4;     ///< args[0] = final stream offset

constexpr std::uint32_t kPeerIndex = 0;      ///< translation slot: peer
constexpr std::uint32_t kListenerIndex = 1;  ///< translation slot: listener
}  // namespace

Socket::Socket(std::unique_ptr<am::Endpoint> ep) : ep_(std::move(ep)) {
  install_handlers();
}

Socket::~Socket() = default;

void Socket::install_handlers() {
  ep_->set_handler(kAccept, [this](am::Endpoint& ep, const am::Message& m) {
    if (std::getenv("VNET_SOCK_DEBUG")) {
      std::fprintf(stderr, "[sock] ACCEPT received on node %d ep %u\n",
                   ep.name().node, ep.name().ep);
    }
    ep.map_raw(kPeerIndex, static_cast<myrinet::NodeId>(m.arg(0)),
               static_cast<lanai::EpId>(m.arg(1)), m.arg(2));
    connected_ = true;
  });
  ep_->set_undeliverable_handler([](am::Endpoint& ep, am::ReturnedMessage r) {
    if (std::getenv("VNET_SOCK_DEBUG")) {
      std::fprintf(stderr,
                   "[sock] RETURNED msg handler=%u reason=%s from node %d "
                   "ep %u\n",
                   r.descriptor.body.handler, lanai::to_string(r.reason),
                   ep.name().node, ep.name().ep);
    }
  });
  ep_->set_handler(kData, [this](am::Endpoint&, const am::Message& m) {
    const std::uint64_t offset = m.arg(0);
    const std::uint32_t len = m.bulk_bytes();
    if (offset == assembled_) {
      assembled_ += len;
      // Absorb any previously-buffered segments that are now contiguous.
      auto it = out_of_order_.find(assembled_);
      while (it != out_of_order_.end()) {
        assembled_ += it->second;
        out_of_order_.erase(it);
        it = out_of_order_.find(assembled_);
      }
    } else if (offset > assembled_) {
      out_of_order_[offset] = len;  // reordered across logical channels
    }
    // offset < assembled_ cannot happen: the transport is exactly-once.
  });
  ep_->set_handler(kFin, [this](am::Endpoint&, const am::Message& m) {
    fin_received_ = true;
    fin_offset_ = m.arg(0);  // effective once all its bytes are assembled
  });
}

sim::Task<std::unique_ptr<Socket>> Socket::connect(host::HostThread& t,
                                                   const am::Name& listener) {
  auto ep = co_await am::Endpoint::create(t, /*tag=*/0x50c0 + listener.ep);
  auto sock = std::unique_ptr<Socket>(new Socket(std::move(ep)));
  sock->ep_->map(kListenerIndex, listener);
  const am::Name self = sock->ep_->name();
  co_await sock->ep_->request(t, kListenerIndex, kSyn,
                              static_cast<std::uint64_t>(self.node),
                              self.ep, self.tag);
  while (!sock->connected_) {
    (void)co_await sock->ep_->wait_events_for(t, am::kEventArrivals,
                                              500 * sim::us);
    co_await sock->ep_->poll(t, 8);
  }
  co_return sock;
}

sim::Task<> Socket::send_segment(host::HostThread& t, std::uint32_t bytes) {
  co_await ep_->request_bulk(t, kPeerIndex, kData, bytes, nullptr,
                             send_offset_);
  send_offset_ += bytes;
}

sim::Task<> Socket::send(host::HostThread& t, std::uint32_t bytes) {
  std::uint32_t remaining = bytes;
  while (remaining > 0) {
    const std::uint32_t seg = std::min(remaining, kSegmentBytes);
    co_await send_segment(t, seg);  // the credit window throttles here
    remaining -= seg;
    co_await ep_->poll(t, 4);
  }
}

sim::Task<std::uint64_t> Socket::recv(host::HostThread& t,
                                      std::uint64_t min_bytes) {
  co_await ep_->poll(t, 16);  // segments only land under a poll
  while (available() < min_bytes && !peer_closed()) {
    (void)co_await ep_->wait_events_for(t, am::kEventArrivals, 500 * sim::us);
    co_await ep_->poll(t, 16);
  }
  const std::uint64_t got = available();  // consume the contiguous prefix
  consumed_ += got;
  co_return got;
}

sim::Task<> Socket::close(host::HostThread& t) {
  while (ep_->credits_in_use() > 0) co_await ep_->poll(t, 16);
  co_await ep_->request(t, kPeerIndex, kFin, send_offset_);
  // Give the FIN a moment to complete before the endpoint may be torn down.
  co_await t.sleep(500 * sim::us);
  co_await ep_->poll(t, 16);
}

// ------------------------------------------------------------- Listener

Listener::Listener(std::unique_ptr<am::Endpoint> ep) : ep_(std::move(ep)) {
  ep_->set_handler(kSyn, [this](am::Endpoint&, const am::Message& m) {
    pending_.push_back(PendingSyn{
        am::Name{static_cast<myrinet::NodeId>(m.arg(0)),
                 static_cast<lanai::EpId>(m.arg(1)), m.arg(2)}});
  });
}

sim::Task<std::unique_ptr<Listener>> Listener::create(host::HostThread& t,
                                                      std::uint64_t tag) {
  auto ep = co_await am::Endpoint::create(t, tag);
  co_return std::unique_ptr<Listener>(new Listener(std::move(ep)));
}

sim::Task<std::unique_ptr<Socket>> Listener::accept(host::HostThread& t) {
  while (pending_.empty()) {
    (void)co_await ep_->wait_events_for(t, am::kEventArrivals, 500 * sim::us);
    co_await ep_->poll(t, 8);
  }
  const PendingSyn syn = pending_.front();
  pending_.pop_front();

  auto sep = co_await am::Endpoint::create(t, 0xacc0 + syn.client.ep);
  auto sock = std::unique_ptr<Socket>(new Socket(std::move(sep)));
  sock->ep_->map(kPeerIndex, syn.client);
  sock->connected_ = true;
  const am::Name self = sock->ep_->name();
  co_await sock->ep_->request(t, kPeerIndex, kAccept,
                              static_cast<std::uint64_t>(self.node),
                              self.ep, self.tag);
  if (std::getenv("VNET_SOCK_DEBUG")) {
    std::fprintf(stderr,
                 "[sock] accept: sent ACCEPT from (%d,%u) to (%d,%u)\n",
                 self.node, self.ep, syn.client.node, syn.client.ep);
  }
  co_return sock;
}

}  // namespace vnet::sock
