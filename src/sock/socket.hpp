#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "am/endpoint.hpp"
#include "host/host.hpp"
#include "sim/task.hpp"

namespace vnet::sock {

/// Stream sockets over Active Messages — the Fig 1 path by which "standard
/// sockets, network file systems, and remote-procedure call packages can
/// leverage the performance of the network". A connected Socket is a
/// reliable, ordered byte stream built from AM bulk requests: the
/// transport's logical channels may reorder whole messages, so each
/// segment carries its stream offset and the receiver reassembles in
/// order; the request/reply credit window provides flow control.
class Socket {
 public:
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Active open: performs a SYN/ACCEPT handshake with a Listener.
  static sim::Task<std::unique_ptr<Socket>> connect(host::HostThread& t,
                                                    const am::Name& listener);

  /// Sends `bytes` down the stream; returns once every segment has been
  /// accepted into the send window (not necessarily delivered).
  sim::Task<> send(host::HostThread& t, std::uint32_t bytes);

  /// Blocks until at least `min_bytes` of in-order data are available,
  /// consumes and returns them (ordered-delivery guarantee).
  sim::Task<std::uint64_t> recv(host::HostThread& t,
                                std::uint64_t min_bytes);

  /// Bytes available to recv() right now (contiguous only).
  std::uint64_t available() const { return assembled_ - consumed_; }

  /// Half-close: flushes the window and sends FIN; recv on the peer
  /// returns whatever remains, then 0.
  sim::Task<> close(host::HostThread& t);

  /// True once the peer's FIN has arrived *and* every byte it sent has
  /// been assembled (the FIN may overtake data on another logical
  /// channel, so it carries the final stream offset).
  bool peer_closed() const {
    return fin_received_ && assembled_ >= fin_offset_;
  }

  std::uint64_t bytes_sent() const { return send_offset_; }
  std::uint64_t bytes_received() const { return assembled_; }

  /// Largest stream segment (one AM bulk request).
  static constexpr std::uint32_t kSegmentBytes = 8192;

 private:
  friend class Listener;
  explicit Socket(std::unique_ptr<am::Endpoint> ep);

  void install_handlers();
  sim::Task<> send_segment(host::HostThread& t, std::uint32_t bytes);

  std::unique_ptr<am::Endpoint> ep_;
  bool connected_ = false;

  // --- send side ---
  std::uint64_t send_offset_ = 0;

  // --- receive side: in-order reassembly ---
  std::uint64_t assembled_ = 0;  ///< contiguous prefix received
  std::uint64_t consumed_ = 0;   ///< handed to the application
  std::map<std::uint64_t, std::uint32_t> out_of_order_;  // offset -> len
  bool fin_received_ = false;
  std::uint64_t fin_offset_ = 0;
};

/// Passive side of socket establishment.
class Listener {
 public:
  static sim::Task<std::unique_ptr<Listener>> create(host::HostThread& t,
                                                     std::uint64_t tag);

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  am::Name name() const { return ep_->name(); }

  /// Blocks until a client connects; returns the accepted stream.
  sim::Task<std::unique_ptr<Socket>> accept(host::HostThread& t);

 private:
  explicit Listener(std::unique_ptr<am::Endpoint> ep);

  std::unique_ptr<am::Endpoint> ep_;
  struct PendingSyn {
    am::Name client;
  };
  std::deque<PendingSyn> pending_;
};

}  // namespace vnet::sock
