#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "host/host.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace vnet::cluster {

/// A complete simulated cluster: engine, fabric, and N hosts (each with a
/// NIC and segment driver), built from a ClusterConfig and started.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  /// Destroys all simulation processes *before* the hosts and fabric they
  /// reference.
  ~Cluster() { engine_.shutdown(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  myrinet::Fabric& fabric() { return *fabric_; }
  host::Host& host(int n) { return *hosts_[static_cast<std::size_t>(n)]; }
  int size() const { return static_cast<int>(hosts_.size()); }
  const ClusterConfig& config() const { return config_; }

  /// Spawns a user thread running `body` on `node`. The thread's CPU use
  /// is time-shared with every other thread on that host.
  using ThreadBody = std::function<sim::Task<>(host::HostThread&)>;
  void spawn_thread(int node, std::string name, ThreadBody body);

  /// Number of spawned threads that have finished.
  std::uint64_t completed_threads() const { return completed_; }
  std::uint64_t spawned_threads() const { return spawned_; }
  bool all_threads_done() const { return completed_ == spawned_; }

  /// Runs the simulation until every spawned thread has completed (or the
  /// event queue goes idle). Returns simulated time elapsed.
  sim::Duration run_to_completion();

 private:
  sim::Process thread_wrapper(host::Host& h, std::string name,
                              ThreadBody body);

  ClusterConfig config_;
  sim::Engine engine_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::uint64_t spawned_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace vnet::cluster
