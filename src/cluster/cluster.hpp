#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "host/host.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/shard.hpp"
#include "sim/task.hpp"

namespace vnet::cluster {

/// A complete simulated cluster: engine shards, fabric, and N hosts (each
/// with a NIC and segment driver), built from a ClusterConfig and started.
///
/// With config.shards == 1 (the default) everything runs on one engine and
/// behaves exactly as the serial simulator always has. With more shards the
/// fabric is partitioned across engines (see Fabric's sharded factories)
/// and runs advance in conservative lookahead windows (sim/shard.hpp);
/// run-to-run output is deterministic for a fixed (seed, shard count).
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  /// Destroys all simulation processes *before* the hosts and fabric they
  /// reference.
  ~Cluster() { group_.shutdown_all(); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Shard 0's engine: the control-plane timeline (chaos campaigns,
  /// watchdogs, single-shard tests). Prefer the cluster-level helpers
  /// below for anything that must span shards.
  sim::Engine& engine() { return group_.engine(0); }
  sim::ShardGroup& shard_group() { return group_; }
  int shards() const { return group_.size(); }

  myrinet::Fabric& fabric() { return *fabric_; }
  host::Host& host(int n) { return *hosts_[static_cast<std::size_t>(n)]; }
  int size() const { return static_cast<int>(hosts_.size()); }
  const ClusterConfig& config() const { return config_; }

  /// Spawns a user thread running `body` on `node`. The thread's CPU use
  /// is time-shared with every other thread on that host. The thread runs
  /// on the engine of `node`'s shard.
  using ThreadBody = std::function<sim::Task<>(host::HostThread&)>;
  void spawn_thread(int node, std::string name, ThreadBody body);

  /// Number of spawned threads that have finished.
  std::uint64_t completed_threads() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t spawned_threads() const {
    return spawned_.load(std::memory_order_acquire);
  }
  bool all_threads_done() const {
    return completed_threads() == spawned_threads();
  }

  /// Runs the simulation until every spawned thread has completed (or the
  /// event queues go idle). Returns simulated time elapsed.
  sim::Duration run_to_completion();

  /// Runs until every shard is idle with nothing in flight (the post-test
  /// drain that used to be engine().run()).
  void drain();

  /// Runs all pending work below `t`, then advances every shard to `t`.
  /// Always single-threaded — safe before fork().
  void run_until(sim::Time t) { group_.run_until(t); }

  /// Latest simulated instant across shards (== engine().now() serially).
  sim::Time now() const { return group_.max_now(); }

  /// Union of all shards' metric registries (engine().snapshot() serially).
  obs::Snapshot merged_snapshot() const { return group_.merged_snapshot(); }

  /// Whole-cluster replay digest: engine(0)'s digest serially, a
  /// shard-order fold otherwise (see ShardGroup::combined_digest).
  std::uint64_t replay_digest() const { return group_.combined_digest(); }

  std::uint64_t events_processed() const { return group_.total_events(); }

 private:
  sim::Process thread_wrapper(host::Host& h, std::string name,
                              ThreadBody body);

  ClusterConfig config_;
  sim::ShardGroup group_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  // Atomic: incremented from shard workers, read at window barriers.
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace vnet::cluster
