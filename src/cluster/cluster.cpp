#include "cluster/cluster.hpp"

namespace vnet::cluster {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), engine_(config.seed) {
  switch (config_.topology) {
    case ClusterConfig::Topology::kCrossbar:
      fabric_ = myrinet::Fabric::crossbar(engine_, config_.nodes,
                                          config_.fabric);
      break;
    case ClusterConfig::Topology::kFatTree:
      fabric_ = myrinet::Fabric::fat_tree(engine_, config_.nodes,
                                          config_.hosts_per_leaf,
                                          config_.spines, config_.fabric);
      break;
  }
  hosts_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int n = 0; n < config_.nodes; ++n) {
    hosts_.push_back(std::make_unique<host::Host>(
        engine_, *fabric_, n, config_.host, config_.nic));
    hosts_.back()->start();
  }
}

sim::Process Cluster::thread_wrapper(host::Host& h, std::string name,
                                     ThreadBody body) {
  host::HostThread t(h, std::move(name));
  co_await body(t);
  ++completed_;
}

void Cluster::spawn_thread(int node, std::string name, ThreadBody body) {
  ++spawned_;
  engine_.spawn(thread_wrapper(host(node), std::move(name), std::move(body)));
}

sim::Duration Cluster::run_to_completion() {
  const sim::Time t0 = engine_.now();
  while (!all_threads_done() && engine_.step()) {
  }
  return engine_.now() - t0;
}

}  // namespace vnet::cluster
