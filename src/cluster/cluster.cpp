#include "cluster/cluster.hpp"

namespace vnet::cluster {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      group_(config.shards, config.seed, config.fabric.link.propagation) {
  group_.set_threaded(config_.shard_threads);
  group_.set_force_windows(config_.shard_force_windows);
  switch (config_.topology) {
    case ClusterConfig::Topology::kCrossbar:
      fabric_ = myrinet::Fabric::crossbar(group_, config_.nodes,
                                          config_.fabric);
      break;
    case ClusterConfig::Topology::kFatTree:
      fabric_ = myrinet::Fabric::fat_tree(group_, config_.nodes,
                                          config_.hosts_per_leaf,
                                          config_.spines, config_.fabric);
      break;
  }
  hosts_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int n = 0; n < config_.nodes; ++n) {
    // Each host lives on its station's shard, so NIC <-> station traffic
    // stays engine-local; only the fabric's split links cross shards.
    hosts_.push_back(std::make_unique<host::Host>(
        group_.engine(fabric_->host_shard(n)), *fabric_, n, config_.host,
        config_.nic));
    hosts_.back()->start();
  }
}

sim::Process Cluster::thread_wrapper(host::Host& h, std::string name,
                                     ThreadBody body) {
  host::HostThread t(h, std::move(name));
  co_await body(t);
  completed_.fetch_add(1, std::memory_order_acq_rel);
}

void Cluster::spawn_thread(int node, std::string name, ThreadBody body) {
  spawned_.fetch_add(1, std::memory_order_acq_rel);
  host::Host& h = host(node);
  group_.engine(fabric_->host_shard(node))
      .spawn(thread_wrapper(h, std::move(name), std::move(body)));
}

sim::Duration Cluster::run_to_completion() {
  const sim::Time t0 = group_.max_now();
  group_.run_to_completion([this] { return all_threads_done(); });
  return group_.max_now() - t0;
}

void Cluster::drain() { group_.run_to_completion(); }

}  // namespace vnet::cluster
