#pragma once

#include <cstdint>

#include "host/config.hpp"
#include "lanai/config.hpp"
#include "myrinet/fabric.hpp"

namespace vnet::cluster {

/// Everything needed to build a simulated cluster.
struct ClusterConfig {
  int nodes = 2;

  enum class Topology { kCrossbar, kFatTree };
  Topology topology = Topology::kCrossbar;
  int hosts_per_leaf = 5;
  int spines = 3;

  myrinet::FabricParams fabric;
  lanai::NicConfig nic;
  host::HostConfig host;
  std::uint64_t seed = 1;

  /// Engine shards for parallel simulation (sim/shard.hpp). 1 = the serial
  /// engine, byte-identical to the pre-shard code path. N > 1 partitions
  /// the fabric by host / fat-tree subtree across N engines synchronized
  /// with conservative lookahead = the link propagation delay.
  int shards = 1;
  /// One worker thread per shard (default). False executes the same window
  /// schedule on the calling thread — required for fork()-based tooling
  /// and for workloads sharing plain memory across host threads.
  bool shard_threads = true;
  /// Forces the windowed scheduler even at shards == 1 (the determinism
  /// oracle: windowed output must match the serial engine exactly).
  bool shard_force_windows = false;

  /// Relative processor speed vs the NOW's 167 MHz UltraSPARC-1; used by
  /// the application kernels to scale compute phases (the SP-2's P2SC and
  /// the Origin's R10000 are roughly 2.5x faster, which is exactly why
  /// their speedup curves suffer more from communication).
  double cpu_speedup = 1.0;
};

/// The calibrated Berkeley-NOW configuration (§2): virtual-network (AM-II)
/// firmware, 8 endpoint frames, Myrinet fat-tree for larger node counts.
/// All Fig 3–7 benchmarks build on this.
ClusterConfig NowConfig(int nodes);

/// The first-generation single-program Active Message baseline (GAM) used
/// as the comparison point in Figs 3 and 4: one endpoint frame, no
/// transport protocol, no protection.
ClusterConfig GamConfig(int nodes);

/// Machine models for the NPB cross-machine comparison (Fig 5). These keep
/// the same skeleton kernels but change the communication cost parameters:
/// the SP-2's MPL stack has much higher per-message overhead; the Origin
/// 2000's ccNUMA interconnect is faster than the NOW on both counts.
ClusterConfig Sp2Config(int nodes);
ClusterConfig OriginConfig(int nodes);

}  // namespace vnet::cluster
