#include "cluster/config.hpp"

namespace vnet::cluster {

ClusterConfig NowConfig(int nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  // Small clusters fit one switch; at scale use the paper's fat-tree-like
  // topology (5 hosts per leaf, 3 spines -> 23 switches at 100 nodes).
  if (nodes > 8) {
    c.topology = ClusterConfig::Topology::kFatTree;
    c.hosts_per_leaf = 5;
    c.spines = 3;
  }
  // NicConfig and HostConfig defaults *are* the calibrated NOW values.
  return c;
}

ClusterConfig GamConfig(int nodes) {
  ClusterConfig c = NowConfig(nodes);
  // First-generation firmware: a single endpoint frame mapped to the one
  // parallel program, no transport protocol, no protection, no defensive
  // checks (§2, §6.1).
  c.nic.reliable_transport = false;
  c.nic.defensive_checks = false;
  c.nic.endpoint_frames = 1;
  c.host.eager_binding = true;  // the one endpoint is pinned at startup
  // First-generation firmware issued smaller, less efficient DMA bursts:
  // it delivered only 38 MB/s for 8 KB messages over the same SBUS (§6.1).
  c.nic.sbus_write_ns_per_byte = 1000.0 / 40.0;
  c.nic.max_packet_payload = 2048;
  return c;
}

ClusterConfig Sp2Config(int nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.topology = ClusterConfig::Topology::kCrossbar;  // full-bisection switch
  // The SP-2's MPI/MPL stack: much higher per-message host overhead and a
  // slower effective per-byte path (~35 MB/s end-to-end at the time), but
  // a full-bisection multistage switch.
  c.host.send_fixed = 18 * sim::us;
  c.host.recv_fixed = 18 * sim::us;
  c.fabric.link.ns_per_byte = 1000.0 / 150.0;
  c.nic.sbus_write_ns_per_byte = 1000.0 / 35.0;
  c.nic.sbus_read_ns_per_byte = 1000.0 / 35.0;
  c.nic.ns_per_instruction = 40.0;  // slower adapter microcontroller
  c.cpu_speedup = 2.3;              // 120 MHz P2SC
  return c;
}

ClusterConfig OriginConfig(int nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.topology = ClusterConfig::Topology::kCrossbar;
  // ccNUMA: communication is loads/stores through the directory protocol —
  // very low per-message cost and high link bandwidth.
  c.host.send_fixed = 1200 * sim::ns;
  c.host.recv_fixed = 1200 * sim::ns;
  c.host.pio_write_word = 60 * sim::ns;
  c.host.pio_read_word = 120 * sim::ns;
  c.host.pio_block_read = 250 * sim::ns;
  c.fabric.link.ns_per_byte = 1000.0 / 600.0;
  c.fabric.sw.cut_through = 50 * sim::ns;
  c.nic.ns_per_instruction = 4.0;  // "NIC" work is hardware
  c.nic.sbus_write_ns_per_byte = 1000.0 / 300.0;
  c.nic.sbus_read_ns_per_byte = 1000.0 / 300.0;
  c.nic.sbus_dma_setup = 300 * sim::ns;
  c.cpu_speedup = 2.6;  // 195 MHz R10000
  return c;
}

}  // namespace vnet::cluster
