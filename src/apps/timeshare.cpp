#include "apps/timeshare.hpp"

#include <memory>

#include "apps/parallel.hpp"
#include "cluster/cluster.hpp"

namespace vnet::apps {

namespace {

struct AppOutcome {
  sim::Time finished_at = -1;
  sim::Duration comm_total = 0;
  int ranks_done = 0;
};

/// One bulk-synchronous app: iterations of compute + ring exchange +
/// barrier, with two-phase waiting for implicit co-scheduling.
sim::Task<> bsp_app(Par& par, const TimeshareParams& p,
                    sim::Duration compute, std::uint32_t bytes,
                    double imbalance, AppOutcome& out) {
  par.set_spin_block(p.spin_limit);
  const int r = par.rank();
  const int n = par.size();
  // Deterministic per-rank imbalance in [-imbalance, +imbalance].
  const double skew =
      imbalance == 0.0
          ? 0.0
          : imbalance * (2.0 * ((r * 2654435761u) % 1000) / 1000.0 - 1.0);
  const auto my_compute =
      static_cast<sim::Duration>(static_cast<double>(compute) * (1.0 + skew));
  co_await par.barrier();
  for (int it = 0; it < p.iterations; ++it) {
    co_await par.compute(my_compute);
    co_await par.exchange((r + 1) % n, bytes);
    co_await par.barrier();
  }
  out.comm_total += par.comm_cpu_time();
  if (++out.ranks_done == n) out.finished_at = par.thread().engine().now();
}

double run_alone(const TimeshareParams& p, sim::Duration compute,
                 std::uint32_t bytes, AppOutcome& out) {
  cluster::ClusterConfig cfg = cluster::NowConfig(p.nodes);
  cluster::Cluster cl(cfg);
  launch_spmd(cl, p.nodes,
              [&](Par& par) -> sim::Task<> {
                co_await bsp_app(par, p, compute, bytes, p.imbalance, out);
              },
              0, 1, "app");
  cl.run_to_completion();
  return sim::to_sec(out.finished_at);
}

}  // namespace

TimeshareResult run_timeshare(const TimeshareParams& p) {
  TimeshareResult result;

  AppOutcome a_alone, b_alone;
  result.t_a_alone_sec = run_alone(p, p.a_compute, p.a_bytes, a_alone);
  result.t_b_alone_sec = run_alone(p, p.b_compute, p.b_bytes, b_alone);
  result.a_comm_alone_sec =
      sim::to_sec(a_alone.comm_total) / static_cast<double>(p.nodes);

  // Both apps time-share the same 16 nodes, relying only on the local
  // schedulers plus two-phase waiting (implicit co-scheduling).
  cluster::ClusterConfig cfg = cluster::NowConfig(p.nodes);
  cluster::Cluster cl(cfg);
  AppOutcome a_shared, b_shared;
  launch_spmd(cl, p.nodes,
              [&](Par& par) -> sim::Task<> {
                co_await bsp_app(par, p, p.a_compute, p.a_bytes, p.imbalance,
                                 a_shared);
              },
              0, 1, "appA-");
  launch_spmd(cl, p.nodes,
              [&](Par& par) -> sim::Task<> {
                co_await bsp_app(par, p, p.b_compute, p.b_bytes, p.imbalance,
                                 b_shared);
              },
              0, 1, "appB-");
  cl.run_to_completion();

  const sim::Time last =
      std::max(a_shared.finished_at, b_shared.finished_at);
  result.t_together_sec = sim::to_sec(last);
  result.overhead_ratio =
      result.t_together_sec /
      (result.t_a_alone_sec + result.t_b_alone_sec);
  result.a_comm_shared_sec =
      sim::to_sec(a_shared.comm_total) / static_cast<double>(p.nodes);
  return result;
}

}  // namespace vnet::apps
