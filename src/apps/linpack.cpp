#include "apps/linpack.hpp"

#include "apps/parallel.hpp"
#include "cluster/cluster.hpp"

namespace vnet::apps {

namespace {

sim::Duration mflops_time(double flops, double mflops) {
  return static_cast<sim::Duration>(flops / (mflops * 1e6) * 1e9);
}

sim::Task<> lu_rank(Par& par, const LinpackParams& lp) {
  const int q = lp.grid_q;
  const int row = par.rank() / q;
  const int col = par.rank() % q;
  const int steps = lp.n / lp.nb;

  co_await par.barrier();
  for (int k = 0; k < steps; ++k) {
    const double nk = static_cast<double>(lp.n - k * lp.nb);
    const int owner_col = k % lp.grid_q;
    const int owner_row = k % lp.grid_p;
    const auto l_bytes = static_cast<std::uint32_t>(
        nk / lp.grid_p * lp.nb * 8);  // my slice of the L panel
    const auto u_bytes = static_cast<std::uint32_t>(
        nk / lp.grid_q * lp.nb * 8);  // my slice of the U block

    // Panel factorization on the owner column.
    if (col == owner_col) {
      co_await par.compute_with_progress(
          mflops_time(nk * lp.nb * lp.nb / lp.grid_p, lp.node_mflops),
          25 * sim::ms);
    }

    // Ring broadcast of the L panel along each process row, split into
    // chunks so forwarding pipelines hop-by-hop (HPL-style segmented
    // broadcast: the ripple latency is one chunk per hop, not one panel).
    constexpr int kChunks = 4;
    {
      const int right = row * q + (col + 1) % q;
      const int right_col = (col + 1) % q;
      for (int chunk = 0; chunk < kChunks; ++chunk) {
        const auto tag =
            static_cast<std::uint32_t>((k << 6) | (chunk << 2) | 1);
        const std::uint32_t bytes = l_bytes / kChunks;
        if (col == owner_col) {
          if (q > 1) co_await par.send_to(right, bytes, tag);
        } else {
          co_await par.recv_count(tag, 1);
          if (right_col != owner_col) {
            co_await par.send_to(right, bytes, tag);
          }
        }
      }
    }
    // Likewise for the U block along each process column.
    {
      const int p = lp.grid_p;
      const int down = ((row + 1) % p) * q + col;
      const int down_row = (row + 1) % p;
      for (int chunk = 0; chunk < kChunks; ++chunk) {
        const auto tag =
            static_cast<std::uint32_t>((k << 6) | (chunk << 2) | 2);
        const std::uint32_t bytes = u_bytes / kChunks;
        if (row == owner_row) {
          if (p > 1) co_await par.send_to(down, bytes, tag);
        } else {
          co_await par.recv_count(tag, 1);
          if (down_row != owner_row) {
            co_await par.send_to(down, bytes, tag);
          }
        }
      }
    }

    // Trailing matrix update: my share of a rank-nb DGEMM, polling the
    // progress engine between tiles so broadcasts keep flowing (HPL's
    // lookahead does the same).
    co_await par.compute_with_progress(
        mflops_time(2.0 * (nk / lp.grid_p) * (nk / lp.grid_q) * lp.nb,
                    lp.node_mflops),
        25 * sim::ms);
  }
  co_await par.allreduce_sum(1.0);  // residual check
  co_await par.barrier();
}

}  // namespace

LinpackResult run_linpack(const cluster::ClusterConfig& config,
                          const LinpackParams& lp) {
  cluster::ClusterConfig cfg = config;
  cfg.nodes = lp.nodes;
  cluster::Cluster cl(cfg);
  launch_spmd(cl, lp.nodes, [&lp](Par& par) -> sim::Task<> {
    co_await lu_rank(par, lp);
  });
  const double seconds = sim::to_sec(cl.run_to_completion());
  LinpackResult r;
  r.seconds = seconds;
  const double flops =
      2.0 / 3.0 * static_cast<double>(lp.n) * lp.n * lp.n;
  r.gflops = flops / seconds / 1e9;
  r.peak_fraction = r.gflops * 1e3 / (lp.nodes * 334.0);
  return r;
}

}  // namespace vnet::apps
