#pragma once

#include <string>

#include "cluster/config.hpp"

namespace vnet::apps {

/// LogP characterization results, all in microseconds (Fig 3).
struct LogpResult {
  double os_us = 0;   ///< send overhead: host time in the request call
  double or_us = 0;   ///< receive overhead: host time handling one message
  double l_us = 0;    ///< latency: RTT/2 - o_s - o_r
  double g_us = 0;    ///< gap: steady-state time per small message
  double rtt_us = 0;  ///< measured round-trip time of a 16-byte message

  // Filled only when measure_logp runs with `attribute == true`:
  // the flight recorder's per-stage decomposition of the same ping-pongs.
  double attr_e2e_us = 0;        ///< mean one-way end-to-end (enqueue->done)
  double attr_stage_sum_us = 0;  ///< sum of the per-stage interval means
  std::string attr_report;       ///< rendered stage table ("" otherwise)

  // Also filled under `attribute`: the span recorder's differential tail
  // profile of the same messages (obs/span.hpp), plus its reconciliation
  // errors (cohort critical-path stage sum vs. cohort e2e mean — an
  // identity by construction, recomputed as a self-check).
  std::string tail_report;  ///< rendered culprit table ("" otherwise)
  double tail_recon_p50 = 0;
  double tail_recon_tail = 0;
};

/// Runs the LogP microbenchmark of [9] on a fresh 2-node cluster with the
/// given configuration:
///  * o_s — mean simulated time spent inside Endpoint::request;
///  * RTT — request/reply ping-pong with a single outstanding message;
///  * o_r — mean time spent in a poll that handles exactly one message;
///  * g   — a `stream`-message burst under the full credit window, taking
///          the steady-state inter-arrival time at the receiver;
///  * L   — RTT/2 - o_s - o_r.
///
/// With `attribute` set, every message is also tracked by the engine's
/// latency-attribution recorder (obs/attr.hpp) and the result carries the
/// per-stage table; pass `stream == 0` for a pure ping-pong decomposition
/// whose stage sums reconcile with the measured RTT (two one-way flights —
/// request and reply — per round trip).
LogpResult measure_logp(const cluster::ClusterConfig& config,
                        int pingpongs = 300, int stream = 3000,
                        bool attribute = false);

}  // namespace vnet::apps
