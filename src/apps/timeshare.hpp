#pragma once

#include "cluster/config.hpp"
#include "sim/time.hpp"

namespace vnet::apps {

/// The §6.3 time-sharing experiment: multiple bulk-synchronous parallel
/// programs (Split-C style: compute / neighbour exchange / barrier) share a
/// partition of the cluster, co-ordinated only by implicit co-scheduling —
/// two-phase (spin-then-block) waiting on top of the hosts' ordinary local
/// schedulers. The paper reports the time to run time-shared workloads
/// within 15% of running the programs in sequence, near-constant time
/// spent in communication, and up to 20% throughput gain for imbalanced
/// workloads.
struct TimeshareParams {
  int nodes = 16;
  int iterations = 12;
  /// App A: heavier compute, moderate messages.
  sim::Duration a_compute = 15 * sim::ms;
  std::uint32_t a_bytes = 60'000;
  /// App B: lighter compute, bigger messages.
  sim::Duration b_compute = 10 * sim::ms;
  std::uint32_t b_bytes = 100'000;
  /// Two-phase waiting spin limit (0 = spin forever: no co-scheduling).
  sim::Duration spin_limit = 150 * sim::us;
  /// Per-rank compute imbalance (fraction of compute, deterministic by
  /// rank) for the imbalanced variant.
  double imbalance = 0.0;
};

struct TimeshareResult {
  double t_a_alone_sec = 0;
  double t_b_alone_sec = 0;
  double t_together_sec = 0;
  /// t_together / (t_a_alone + t_b_alone); the paper reports <= 1.15.
  double overhead_ratio = 0;
  /// Mean per-rank communication seconds for app A, alone vs shared: the
  /// paper observes these stay nearly constant.
  double a_comm_alone_sec = 0;
  double a_comm_shared_sec = 0;
};

TimeshareResult run_timeshare(const TimeshareParams& params);

}  // namespace vnet::apps
