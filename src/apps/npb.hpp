#pragma once

#include <string>
#include <vector>

#include "cluster/config.hpp"

namespace vnet::apps {

/// The NAS Parallel Benchmarks 2.2 (Class A) skeletons of Fig 5. Each
/// kernel models the per-iteration computation of the real benchmark (as a
/// calibrated CPU burn) and performs its real communication pattern through
/// the full simulated stack: ghost-face exchanges (BT/SP), wavefront sweeps
/// (LU), multigrid level exchanges (MG), transpose all-to-alls (FT/IS),
/// reduction-heavy iterations (CG), and an embarrassingly parallel kernel
/// (EP). Runs are truncated to a few iterations — the comm/compute ratio
/// per iteration (which determines the speedup curve) is unchanged.
enum class NpbKernel { kBT, kSP, kLU, kMG, kFT, kIS, kCG, kEP };

const char* to_string(NpbKernel k);
std::vector<NpbKernel> all_npb_kernels();

/// Runs the kernel on `procs` ranks over a fresh cluster built from
/// `config` (nodes are set to `procs`). Returns simulated seconds.
double run_npb(const cluster::ClusterConfig& config, NpbKernel kernel,
               int procs);

/// Speedup of the kernel at `procs` relative to the single-rank run.
struct NpbPoint {
  int procs;
  double seconds;
  double speedup;
};
std::vector<NpbPoint> npb_speedups(const cluster::ClusterConfig& config,
                                   NpbKernel kernel,
                                   const std::vector<int>& proc_counts);

}  // namespace vnet::apps
