#include "apps/workloads.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "am/endpoint.hpp"
#include <cstdio>

#include "cluster/cluster.hpp"
#include "obs/metrics.hpp"

namespace vnet::apps {

namespace {

constexpr std::uint8_t kRequestHandler = 1;
constexpr std::uint8_t kReplyHandler = 2;

struct SharedState {
  explicit SharedState(int clients)
      : server_names(static_cast<std::size_t>(clients)),
        replies(static_cast<std::size_t>(clients), 0),
        window_open(false) {}

  std::vector<am::Name> server_names;  // [client] -> its server endpoint
  std::vector<std::uint64_t> replies;  // replies received per client
  bool window_open;
  bool clients_stop = false;
  bool servers_stop = false;
  sim::Histogram rtt_us;

  bool names_ready() const {
    for (const auto& n : server_names) {
      if (!n.valid()) return false;
    }
    return true;
  }
};

/// Client: stream requests with a full credit window until told to stop.
sim::Task<> client_body(host::HostThread& t, SharedState& st, int id,
                        std::uint32_t bytes, bool collect_rtt,
                        bool flow_control, int burst_size,
                        sim::Duration burst_gap) {
  auto ep = co_await am::Endpoint::create(t, 0xc0 + id);
  ep->set_flow_control(flow_control);
  ep->set_handler(kReplyHandler, [&st, &t, id, collect_rtt](
                                     am::Endpoint&, const am::Message& m) {
    if (st.window_open) {
      ++st.replies[static_cast<std::size_t>(id)];
      if (collect_rtt) {
        st.rtt_us.add(sim::to_usec(t.engine().now() -
                                   static_cast<sim::Time>(m.arg(0))));
      }
    }
  });
  while (!st.names_ready()) co_await t.sleep(50 * sim::us);
  ep->map(0, st.server_names[static_cast<std::size_t>(id)]);

  int in_burst = 0;
  while (!st.clients_stop) {
    const auto now = static_cast<std::uint64_t>(t.engine().now());
    if (bytes == 0) {
      co_await ep->request(t, 0, kRequestHandler, now);
    } else {
      co_await ep->request_bulk(t, 0, kRequestHandler, bytes, nullptr, now);
    }
    co_await ep->poll(t, 8);
    if (burst_size > 0 && ++in_burst >= burst_size) {
      in_burst = 0;
      co_await t.sleep(burst_gap);  // computation phase between bursts
    }
  }
  // Drain what we can, but do not wait forever for stuck messages.
  const sim::Time deadline = t.engine().now() + 50 * sim::ms;
  while (ep->credits_in_use() > 0 && t.engine().now() < deadline) {
    co_await ep->poll(t, 16);
    co_await t.compute(500);
  }
}

/// Installs the serving handler: echo the client's timestamp back.
void install_server_handler(am::Endpoint& ep) {
  ep.set_handler(kRequestHandler, [](am::Endpoint&, const am::Message& m) {
    m.reply(kReplyHandler, {m.arg(0)});
  });
}

/// OneVN / ST server: one thread polling `eps` round-robin.
sim::Task<> polling_server_body(host::HostThread& t, SharedState& st,
                                std::vector<std::unique_ptr<am::Endpoint>>&
                                    eps, sim::Duration work) {
  while (!st.servers_stop) {
    std::size_t handled = 0;
    for (auto& ep : eps) {
      const std::size_t n = co_await ep->poll(t, 32);
      if (n > 0 && work > 0) co_await t.compute(n * work);
      handled += n;
    }
    if (handled == 0) co_await t.compute(200);
  }
}

/// MT server: one event-driven thread per endpoint (§3.3: threads sleep
/// until messages arrive).
sim::Task<> mt_server_body(host::HostThread& t, SharedState& st,
                           am::Endpoint& ep, sim::Duration work) {
  while (!st.servers_stop) {
    // Process requests until none remain (§6.4); spin briefly before
    // sleeping so back-to-back arrivals do not each pay a thread wake.
    std::size_t handled = co_await ep.poll(t, 32);
    if (handled > 0 && work > 0) co_await t.compute(handled * work);
    if (handled > 0) continue;
    bool found = false;
    for (int spin = 0; spin < 4 && !found; ++spin) {
      co_await t.compute(2 * sim::us);
      found = ep.poll_would_find_work();
    }
    if (!found) {
      (void)co_await ep.wait_events_for(t, am::kEventReceive, 1 * sim::ms);
    }
  }
}

}  // namespace

ContentionParams::ContentionParams() : base(cluster::NowConfig(2)) {}

const char* to_string(ContentionParams::Mode m) {
  switch (m) {
    case ContentionParams::Mode::kOneVN:
      return "OneVN";
    case ContentionParams::Mode::kSingleThread:
      return "ST";
    case ContentionParams::Mode::kMultiThread:
      return "MT";
  }
  return "?";
}

double ContentionResult::min_client_per_sec() const {
  double v = per_client_per_sec.empty() ? 0 : per_client_per_sec[0];
  for (double x : per_client_per_sec) v = std::min(v, x);
  return v;
}

double ContentionResult::max_client_per_sec() const {
  double v = 0;
  for (double x : per_client_per_sec) v = std::max(v, x);
  return v;
}

ContentionResult run_contention(const ContentionParams& params) {
  const int k = params.clients;
  cluster::ClusterConfig cfg = params.base;
  cfg.nodes = k + 1;  // node 0 = server; nodes 1..k = clients
  if (cfg.nodes > 8) {
    cfg.topology = cluster::ClusterConfig::Topology::kFatTree;
    cfg.hosts_per_leaf = 5;
    cfg.spines = 3;
  } else {
    cfg.topology = cluster::ClusterConfig::Topology::kCrossbar;
  }
  cfg.nic.endpoint_frames = params.server_frames;

  cluster::Cluster cl(cfg);
  cl.host(0).driver().set_policy(params.replacement);
  auto st = std::make_unique<SharedState>(k);

  // Keep server-side endpoints alive for the whole run.
  auto server_eps =
      std::make_unique<std::vector<std::unique_ptr<am::Endpoint>>>();

  switch (params.mode) {
    case ContentionParams::Mode::kOneVN:
      cl.spawn_thread(0, "server", [&st, &server_eps, k, &params](
                                       host::HostThread& t) -> sim::Task<> {
        auto ep = co_await am::Endpoint::create(t, 0x5eef);
        install_server_handler(*ep);
        for (int c = 0; c < k; ++c) {
          st->server_names[static_cast<std::size_t>(c)] = ep->name();
        }
        server_eps->push_back(std::move(ep));
        co_await polling_server_body(t, *st, *server_eps,
                                     params.server_work);
      });
      break;
    case ContentionParams::Mode::kSingleThread:
      cl.spawn_thread(0, "server", [&st, &server_eps, k, &params](
                                       host::HostThread& t) -> sim::Task<> {
        for (int c = 0; c < k; ++c) {
          auto ep = co_await am::Endpoint::create(t, 0x100 + c);
          install_server_handler(*ep);
          st->server_names[static_cast<std::size_t>(c)] = ep->name();
          server_eps->push_back(std::move(ep));
        }
        co_await polling_server_body(t, *st, *server_eps,
                                     params.server_work);
      });
      break;
    case ContentionParams::Mode::kMultiThread:
      for (int c = 0; c < k; ++c) {
        cl.spawn_thread(0, "server" + std::to_string(c),
                        [&st, &server_eps, c, &params](
                            host::HostThread& t) -> sim::Task<> {
                          auto ep =
                              co_await am::Endpoint::create(t, 0x100 + c);
                          install_server_handler(*ep);
                          st->server_names[static_cast<std::size_t>(c)] =
                              ep->name();
                          am::Endpoint& ref = *ep;
                          server_eps->push_back(std::move(ep));
                          co_await mt_server_body(t, *st, ref,
                                                  params.server_work);
                        });
      }
      break;
  }

  for (int c = 0; c < k; ++c) {
    cl.spawn_thread(c + 1, "client" + std::to_string(c),
                    [&st, c, &params](host::HostThread& t) -> sim::Task<> {
                      co_await client_body(t, *st, c, params.request_bytes,
                                           params.collect_rtt,
                                           params.flow_control,
                                           params.burst_size,
                                           params.burst_gap);
                    });
  }

  // Measurement schedule. The measurement window is a pair of registry
  // snapshots: everything counted inside the window is a snapshot diff,
  // no per-counter bookkeeping at open time.
  ContentionResult result;
  auto& nic = cl.host(0).nic();
  const std::string qfull_name =
      "host.0.nic.nacks_sent_by_reason." +
      std::to_string(static_cast<int>(lanai::NackReason::kQueueFull));
  const std::string notres_name =
      "host.0.nic.nacks_sent_by_reason." +
      std::to_string(static_cast<int>(lanai::NackReason::kNotResident));
  obs::Snapshot open_snap;

  cl.engine().after(params.warmup, [&] {
    st->window_open = true;
    open_snap = cl.engine().snapshot();
  });
  cl.engine().after(params.warmup + params.window, [&] {
    st->window_open = false;
    st->clients_stop = true;
    const double secs = sim::to_sec(params.window);
    double total = 0;
    for (int c = 0; c < k; ++c) {
      const double rate =
          static_cast<double>(st->replies[static_cast<std::size_t>(c)]) /
          secs;
      result.per_client_per_sec.push_back(rate);
      total += rate;
    }
    result.aggregate_per_sec = total;
    result.aggregate_mb_per_sec =
        total * params.request_bytes / (1024.0 * 1024.0);
    const obs::Snapshot close_snap = cl.engine().snapshot();
    const obs::Snapshot window = obs::diff(close_snap, open_snap);
    result.remaps_per_sec =
        static_cast<double>(window.counter("host.0.driver.remaps")) / secs;
    result.server_write_faults = close_snap.counter("host.0.driver.write_faults");
    result.server_proxy_faults = close_snap.counter("host.0.driver.proxy_faults");
    result.queue_full_nacks = window.counter(qfull_name);
    result.not_resident_nacks = window.counter(notres_name);
    result.retransmissions =
        window.sum_counters("host.", ".nic.retransmissions");
  });
  cl.engine().after(params.warmup + params.window + 60 * sim::ms,
                    [&] { st->servers_stop = true; });

  if (params.debug_trace) {
    for (int msi = 1; msi < 400; ++msi) {
      cl.engine().at(msi * sim::ms, [&cl, &st, &nic, &notres_name] {
        std::uint64_t replies = 0;
        for (auto r : st->replies) replies += r;
        const obs::Snapshot s = cl.engine().snapshot();
        std::fprintf(stderr,
                     "[%4lldms] events=%llu replies=%llu remaps=%llu "
                     "notres=%llu retrans=%llu timeouts=%llu pend=%zu\n",
                     static_cast<long long>(cl.engine().now() / sim::ms),
                     static_cast<unsigned long long>(
                         cl.engine().events_processed()),
                     static_cast<unsigned long long>(replies),
                     static_cast<unsigned long long>(
                         s.counter("host.0.driver.remaps")),
                     static_cast<unsigned long long>(s.counter(notres_name)),
                     static_cast<unsigned long long>(
                         s.counter("host.0.nic.retransmissions")),
                     static_cast<unsigned long long>(
                         s.counter("host.0.nic.timeouts")),
                     cl.engine().pending_events());
        std::fprintf(stderr,
                     "        remapq=%zu unloads=%zu busych=%d reqd=%zu "
                     "drain=%zu evict=%llu resident=%d\n",
                     cl.host(0).driver().remap_queue_size(),
                     nic.pending_unload_count(), nic.busy_channel_count(),
                     nic.resident_requested_count(), nic.draining_count(),
                     static_cast<unsigned long long>(
                         s.counter("host.0.driver.evictions")),
                     cl.host(0).driver().resident_count());
      });
    }
  }

  cl.run_to_completion();
  result.rtt_us = st->rtt_us;
  return result;
}

}  // namespace vnet::apps
