#pragma once

#include <cstdint>
#include <vector>

#include "cluster/config.hpp"
#include "host/segment_driver.hpp"
#include "sim/stats.hpp"

namespace vnet::apps {

/// The §6.4 client/server macrobenchmark: one server node, k client nodes,
/// each client streaming requests as fast as its credit window allows.
struct ContentionParams {
  /// Server process organisation (§6.4):
  ///  * kOneVN:        every client talks to ONE shared server endpoint;
  ///  * kSingleThread: one server endpoint per client, one thread polling
  ///                   all of them round-robin (ST);
  ///  * kMultiThread:  one endpoint per client, one event-driven thread
  ///                   per endpoint (MT).
  enum class Mode { kOneVN, kSingleThread, kMultiThread };

  Mode mode = Mode::kOneVN;
  int clients = 4;
  /// 0 = small (16-byte) requests (Fig 6); e.g. 8192 for bulk (Fig 7).
  std::uint32_t request_bytes = 0;
  /// Server NIC endpoint frames: 8 (default) or 96 (§6.4).
  int server_frames = 8;

  /// Measurement window (the paper uses a 20 s steady-state interval; the
  /// default here is scaled down — throughput is stationary).
  sim::Duration warmup = 50 * sim::ms;
  sim::Duration window = 200 * sim::ms;

  /// Base cluster configuration; topology/nodes are overridden.
  cluster::ClusterConfig base;

  /// Collect client-observed round-trip times (slightly more work).
  bool collect_rtt = true;

  /// Print a progress line every simulated millisecond (debugging aid).
  bool debug_trace = false;

  /// Endpoint replacement policy on the server (ablation B; the paper's
  /// system replaces at random).
  host::SegmentDriver::Policy replacement =
      host::SegmentDriver::Policy::kRandom;

  /// User-level credit window on client endpoints (ablation E).
  bool flow_control = true;

  /// When > 0, clients send in bursts of this many requests separated by
  /// `burst_gap` (client/server phases alternating between computation and
  /// burst communication, as §6.4 describes the general model). Bursts
  /// make receive queues back up, exercising the stranded-entry cases.
  int burst_size = 0;
  sim::Duration burst_gap = 0;

  /// CPU the server spends processing each request (a real service does
  /// work per message; 0 = pure echo).
  sim::Duration server_work = 0;

  ContentionParams();
};

struct ContentionResult {
  /// Server throughput over the window: requests served per second
  /// (aggregate and per client).
  double aggregate_per_sec = 0;
  std::vector<double> per_client_per_sec;
  /// For bulk runs: delivered payload bandwidth.
  double aggregate_mb_per_sec = 0;

  /// Virtualization activity on the server during the window.
  double remaps_per_sec = 0;
  std::uint64_t server_write_faults = 0;
  std::uint64_t server_proxy_faults = 0;
  std::uint64_t queue_full_nacks = 0;
  std::uint64_t not_resident_nacks = 0;
  std::uint64_t retransmissions = 0;

  /// Client-observed request round-trip times (strongly bimodal when
  /// endpoints are being re-mapped, §6.4.1).
  sim::Histogram rtt_us;

  double min_client_per_sec() const;
  double max_client_per_sec() const;
};

ContentionResult run_contention(const ContentionParams& params);

const char* to_string(ContentionParams::Mode m);

}  // namespace vnet::apps
