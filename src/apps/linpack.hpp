#pragma once

#include "cluster/config.hpp"

namespace vnet::apps {

/// The massively-parallel Linpack model of §6.2 (ScaLAPACK + Sun BLAS +
/// MPICH over Active Messages): right-looking blocked LU on a P x Q process
/// grid, with per-step panel broadcasts along rows/columns (ring pipelined,
/// through the full simulated stack) and trailing-matrix updates charged at
/// the node's DGEMM rate. The paper's 100-node cluster sustained 10.14
/// GFLOPS, the first cluster on the Top500 list.
struct LinpackParams {
  int nodes = 100;
  int grid_p = 10;  ///< process-grid rows (P x Q must equal nodes)
  int grid_q = 10;
  int n = 6000;     ///< matrix dimension
  int nb = 600;     ///< block size (n / nb pipeline steps)
  /// Effective DGEMM rate per node. The UltraSPARC-1 peaks at 334 MFLOPS;
  /// in-cache DGEMM reached roughly half of that.
  double node_mflops = 240.0;
};

struct LinpackResult {
  double gflops = 0;
  double seconds = 0;
  double peak_fraction = 0;  ///< of nodes * node peak (334 MF)
};

LinpackResult run_linpack(const cluster::ClusterConfig& config,
                          const LinpackParams& params);

}  // namespace vnet::apps
