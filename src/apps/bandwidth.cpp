#include "apps/bandwidth.hpp"

#include <algorithm>
#include <memory>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "sim/stats.hpp"

namespace vnet::apps {

namespace {

struct SharedState {
  am::Name server_name;
  bool server_up = false;

  // streaming phase (per size, reset between sizes)
  std::uint64_t stream_received = 0;
  std::uint64_t stream_bytes = 0;
  sim::Time window_start = 0;
  std::uint64_t window_start_count = 0;
  sim::Time last_arrival = 0;

  // echo phase
  std::uint64_t echoes = 0;

  bool client_done = false;
};

sim::Task<> server_body(host::HostThread& t, SharedState& st) {
  auto ep = co_await am::Endpoint::create(t, 0xb4);
  // Handler 1: stream sink (no explicit reply; credits flow implicitly).
  ep->set_handler(1, [&st, &t](am::Endpoint&, const am::Message& m) {
    ++st.stream_received;
    st.stream_bytes += m.bulk_bytes();
    st.last_arrival = t.engine().now();
    // Skip the warm-up ramp: start the measurement window at message 32.
    if (st.stream_received == 32) {
      st.window_start = t.engine().now();
      st.window_start_count = st.stream_received;
    }
  });
  // Handler 2: echo the same number of bytes back.
  ep->set_handler(2, [](am::Endpoint&, const am::Message& m) {
    m.reply(3, {}, m.bulk_bytes());
  });
  st.server_name = ep->name();
  st.server_up = true;
  while (!st.client_done) {
    const std::size_t n = co_await ep->poll(t, 16);
    if (n == 0) co_await t.compute(150);
  }
  co_await t.sleep(2 * sim::ms);
  co_await ep->destroy(t);
}

}  // namespace

BandwidthResult measure_bandwidth(const cluster::ClusterConfig& config,
                                  const std::vector<std::uint32_t>& sizes,
                                  int stream_messages, int pingpongs,
                                  sim::Duration sample_period,
                                  std::uint32_t span_sample_interval) {
  cluster::ClusterConfig cfg = config;
  cfg.nodes = 2;
  cfg.topology = cluster::ClusterConfig::Topology::kCrossbar;
  cluster::Cluster cl(cfg);
  if (span_sample_interval > 0) {
    cl.engine().spans().set_sample_interval(span_sample_interval);
    cl.engine().attr().set_sample_interval(span_sample_interval);
    // Enough for every sampled message across all sizes (streams + echoes,
    // requests + replies).
    const std::size_t msgs = sizes.size() *
                             static_cast<std::size_t>(stream_messages +
                                                      2 * pingpongs + 16) *
                             2 / span_sample_interval;
    cl.engine().spans().set_ring_capacity(msgs + 64);
  }
  auto st = std::make_unique<SharedState>();
  BandwidthResult result;
  sim::LinearFit fit;

  // Phase markers for the time-series sampler: which message size is being
  // streamed/echoed during each sampling window (Figures 4-7 style curves
  // are regenerated offline from the CSV by grouping windows on these).
  obs::Gauge phase_msg_bytes =
      cl.engine().metrics().gauge("apps.bandwidth.msg_bytes");
  obs::Gauge phase_gauge = cl.engine().metrics().gauge("apps.bandwidth.phase");
  phase_gauge.set(kBwPhaseIdle);

  std::unique_ptr<obs::Sampler> sampler;
  if (sample_period > 0) {
    obs::SamplerConfig scfg;
    scfg.period_ns = sample_period;
    scfg.prefixes = {"apps.bandwidth", "fabric.link."};
    // With attribution on, also export the per-endpoint attr histograms so
    // the CSV carries p50/p99/p999 latency columns per window.
    if (span_sample_interval > 0) scfg.prefixes.push_back("host.");
    sampler = std::make_unique<obs::Sampler>(cl.engine().metrics(), scfg);
    sampler->sample(cl.engine().now());  // baseline window
    cl.engine().every(sample_period, [&sampler, &st, &cl] {
      sampler->sample(cl.engine().now());
      return !st->client_done;  // stop once the workload is over
    });
  }

  cl.spawn_thread(1, "bw-server", [&st](host::HostThread& t) -> sim::Task<> {
    co_await server_body(t, *st);
  });

  cl.spawn_thread(0, "bw-client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xc4);
    std::uint64_t echoes_seen = 0;
    ep->set_handler(3, [&st](am::Endpoint&, const am::Message&) {
      ++st->echoes;
    });
    while (!st->server_up) co_await t.sleep(10 * sim::us);
    ep->map(0, st->server_name);

    // Warm-up.
    for (int i = 0; i < 4; ++i) {
      co_await ep->request_bulk(t, 0, 2, 128);
      while (st->echoes <= echoes_seen) co_await ep->poll(t, 4);
      echoes_seen = st->echoes;
    }

    for (std::uint32_t n : sizes) {
      // --- bandwidth: windowed stream of `stream_messages` n-byte sends ---
      phase_msg_bytes.set(n);
      phase_gauge.set(kBwPhaseStream);
      st->stream_received = 0;
      st->stream_bytes = 0;
      st->window_start = 0;
      for (int i = 0; i < stream_messages; ++i) {
        co_await ep->request_bulk(t, 0, 1, n);
      }
      while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
      // Measure from message 32 to the last arrival.
      BandwidthPoint p;
      p.bytes = n;
      const auto msgs = st->stream_received - st->window_start_count;
      const sim::Duration span = st->last_arrival - st->window_start;
      if (span > 0) {
        p.mbps = static_cast<double>(msgs) * n / (sim::to_sec(span) * 1e6);
      }

      // --- latency: single outstanding n-byte echo ---
      phase_gauge.set(kBwPhaseEcho);
      sim::Summary rtt;
      for (int i = 0; i < pingpongs; ++i) {
        const sim::Time t0 = t.engine().now();
        co_await ep->request_bulk(t, 0, 2, n);
        while (st->echoes <= echoes_seen) co_await ep->poll(t, 4);
        echoes_seen = st->echoes;
        rtt.add(sim::to_usec(t.engine().now() - t0));
      }
      p.rtt_us = rtt.mean();
      if (n >= 128) fit.add(n, p.rtt_us);
      result.points.push_back(p);
    }
    phase_gauge.set(kBwPhaseIdle);
    st->client_done = true;
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
  if (sampler) {
    sampler->sample(cl.engine().now());  // close the final partial window
    result.timeseries_csv = sampler->csv();
  }
  if (span_sample_interval > 0) {
    result.tail_report = obs::render_tail_report(cl.engine().spans());
  }

  result.slope_us_per_byte = fit.slope();
  result.intercept_us = fit.intercept();
  result.r_squared = fit.r_squared();

  // N_1/2: message size delivering half the peak bandwidth, interpolated.
  double peak = 0;
  for (const auto& p : result.points) peak = std::max(peak, p.mbps);
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (result.points[i].mbps >= peak / 2) {
      if (i == 0) {
        result.n_half_bytes = result.points[0].bytes;
      } else {
        const auto& a = result.points[i - 1];
        const auto& b = result.points[i];
        const double frac =
            (peak / 2 - a.mbps) / std::max(1e-9, b.mbps - a.mbps);
        result.n_half_bytes = a.bytes + frac * (b.bytes - a.bytes);
      }
      break;
    }
  }
  return result;
}

}  // namespace vnet::apps
