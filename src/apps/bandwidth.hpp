#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/config.hpp"

namespace vnet::apps {

/// One point of the Fig 4 transfer-bandwidth curve.
struct BandwidthPoint {
  std::uint32_t bytes = 0;
  double mbps = 0;    ///< delivered steady-state bandwidth
  double rtt_us = 0;  ///< round trip of one n-byte message echoed back
};

struct BandwidthResult {
  std::vector<BandwidthPoint> points;
  /// Least-squares fit RTT(n) = slope_us_per_byte * n + intercept_us
  /// (paper: 0.1112 n + 61.02 us, R^2 = 0.99).
  double slope_us_per_byte = 0;
  double intercept_us = 0;
  double r_squared = 0;
  /// Half-power message size N_1/2 (paper: ~540 bytes).
  double n_half_bytes = 0;
  /// Time-series CSV from the periodic registry sampler ("" unless a
  /// sample period was requested): one row per window with per-link byte
  /// deltas plus the `apps.bandwidth.msg_bytes` / `.phase` gauges, enough
  /// to regenerate the bandwidth-vs-size curve offline
  /// (scripts/plot_timeseries.py). With span capture on, the window rows
  /// additionally carry `host.<n>.ep.<id>.attr.*` percentile columns
  /// (.p50/.p99/.p999) for percentile-band plots.
  std::string timeseries_csv;
  /// Differential tail profile of the captured spans ("" unless
  /// `span_sample_interval` > 0). See obs/span.hpp.
  std::string tail_report;
};

/// Phase gauge values published under `apps.bandwidth.phase`.
inline constexpr double kBwPhaseIdle = 0;
inline constexpr double kBwPhaseStream = 1;
inline constexpr double kBwPhaseEcho = 2;

/// Runs the Fig 4 microbenchmark on a fresh 2-node cluster: for each
/// message size, a windowed stream measures delivered bandwidth, and a
/// ping-pong with same-size echoes measures round-trip time. A non-zero
/// `sample_period` additionally runs an obs::Sampler over the
/// `apps.bandwidth`, `fabric.link.`, and `host.` metric prefixes every
/// period of simulated time and returns the CSV. A non-zero
/// `span_sample_interval` turns on 1-in-N causal span capture (plus
/// latency attribution, so the CSV carries per-endpoint percentile
/// columns) and returns the rendered tail profile; recording takes no
/// simulated time, so the measured curve is unchanged.
BandwidthResult measure_bandwidth(const cluster::ClusterConfig& config,
                                  const std::vector<std::uint32_t>& sizes,
                                  int stream_messages = 160, int pingpongs = 30,
                                  sim::Duration sample_period = 0,
                                  std::uint32_t span_sample_interval = 0);

}  // namespace vnet::apps
