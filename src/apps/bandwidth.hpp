#pragma once

#include <cstdint>
#include <vector>

#include "cluster/config.hpp"

namespace vnet::apps {

/// One point of the Fig 4 transfer-bandwidth curve.
struct BandwidthPoint {
  std::uint32_t bytes = 0;
  double mbps = 0;    ///< delivered steady-state bandwidth
  double rtt_us = 0;  ///< round trip of one n-byte message echoed back
};

struct BandwidthResult {
  std::vector<BandwidthPoint> points;
  /// Least-squares fit RTT(n) = slope_us_per_byte * n + intercept_us
  /// (paper: 0.1112 n + 61.02 us, R^2 = 0.99).
  double slope_us_per_byte = 0;
  double intercept_us = 0;
  double r_squared = 0;
  /// Half-power message size N_1/2 (paper: ~540 bytes).
  double n_half_bytes = 0;
};

/// Runs the Fig 4 microbenchmark on a fresh 2-node cluster: for each
/// message size, a windowed stream measures delivered bandwidth, and a
/// ping-pong with same-size echoes measures round-trip time.
BandwidthResult measure_bandwidth(const cluster::ClusterConfig& config,
                                  const std::vector<std::uint32_t>& sizes,
                                  int stream_messages = 160, int pingpongs = 30);

}  // namespace vnet::apps
