#include "apps/logp.hpp"

#include <memory>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/stats.hpp"

namespace vnet::apps {

namespace {

struct SharedState {
  am::Name client_name;
  am::Name server_name;
  bool ready() const { return client_name.valid() && server_name.valid(); }

  // ping-pong
  std::uint64_t pongs = 0;

  // streaming (gap) phase
  bool stream_done = false;
  std::uint64_t server_handled = 0;
  std::uint64_t stream_received = 0;
  sim::Time stream_first = 0;
  sim::Time stream_last = 0;

  sim::Summary os;
  sim::Summary orcv;
  sim::Summary rtt;
};

sim::Task<> server_body(host::HostThread& t, SharedState& st, int pingpongs,
                        int stream) {
  auto ep = co_await am::Endpoint::create(t, /*tag=*/0x5e11);
  ep->set_handler(1, [&st](am::Endpoint&, const am::Message& m) {
    ++st.server_handled;
    m.reply(2, {m.arg(0)});  // pong
  });
  ep->set_handler(3, [&st, &t](am::Endpoint&, const am::Message&) {
    // gap-phase stream arrival
    ++st.server_handled;
    const sim::Time now = t.engine().now();
    if (st.stream_received == 0) st.stream_first = now;
    st.stream_last = now;
    ++st.stream_received;
  });
  st.server_name = ep->name();

  const auto expected = 20u +  // warm-up round trips
                        static_cast<std::uint64_t>(pingpongs) +
                        static_cast<std::uint64_t>(stream);
  while (st.server_handled < expected) {
    const std::size_t n = co_await ep->poll(t, 8);
    if (n == 0) co_await t.compute(100);
  }
  // Drain trailing acks/credits before tearing down.
  co_await t.sleep(2 * sim::ms);
  co_await ep->destroy(t);
  (void)stream;
}

sim::Task<> client_body(host::HostThread& t, SharedState& st, int pingpongs,
                        int stream) {
  auto ep = co_await am::Endpoint::create(t, 0xc11e);
  ep->set_handler(2, [&st](am::Endpoint&, const am::Message&) { ++st.pongs; });
  st.client_name = ep->name();
  while (!st.ready()) co_await t.sleep(10 * sim::us);
  ep->map(0, st.server_name);

  // Warm-up: fault the endpoint in, prime channels and translations.
  for (int i = 0; i < 20; ++i) {
    co_await ep->request(t, 0, 1, 1);
    const std::uint64_t want = static_cast<std::uint64_t>(i) + 1;
    while (st.pongs < want) co_await ep->poll(t, 4);
  }

  // --- ping-pong: o_s and RTT, one message outstanding at a time ---
  for (int i = 0; i < pingpongs; ++i) {
    const sim::Time t0 = t.engine().now();
    co_await ep->request(t, 0, 1, 1);
    const sim::Time sent = t.engine().now();
    st.os.add(sim::to_usec(sent - t0));
    const std::uint64_t want = 20 + static_cast<std::uint64_t>(i) + 1;
    while (st.pongs < want) {
      // o_r: cost of the poll call that actually handles the reply.
      const sim::Time p0 = t.engine().now();
      const std::size_t n = co_await ep->poll(t, 1);
      if (n > 0 && st.pongs == want) {
        st.orcv.add(sim::to_usec(t.engine().now() - p0));
      }
    }
    st.rtt.add(sim::to_usec(t.engine().now() - t0));
  }

  // --- streaming: g, full credit window ---
  for (int i = 0; i < stream; ++i) {
    co_await ep->request(t, 0, 3, static_cast<std::uint64_t>(i));
  }
  while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  st.stream_done = true;
  co_await ep->destroy(t);
}

}  // namespace

LogpResult measure_logp(const cluster::ClusterConfig& config, int pingpongs,
                        int stream, bool attribute) {
  cluster::ClusterConfig cfg = config;
  cfg.nodes = 2;
  cfg.topology = cluster::ClusterConfig::Topology::kCrossbar;
  cluster::Cluster cl(cfg);
  if (attribute) {
    cl.engine().attr().set_sample_interval(1);  // track all
    cl.engine().spans().set_sample_interval(1);
    // Retain every ping-pong (requests + replies) for the tail profile.
    cl.engine().spans().set_ring_capacity(
        static_cast<std::size_t>(2 * (pingpongs + stream) + 64));
  }
  auto st = std::make_unique<SharedState>();

  cl.spawn_thread(1, "logp-server", [&st, pingpongs, stream](
                                        host::HostThread& t) -> sim::Task<> {
    co_await server_body(t, *st, pingpongs, stream);
  });
  cl.spawn_thread(0, "logp-client", [&st, pingpongs, stream](
                                        host::HostThread& t) -> sim::Task<> {
    co_await client_body(t, *st, pingpongs, stream);
  });
  cl.run_to_completion();

  LogpResult r;
  r.os_us = st->os.mean();
  r.or_us = st->orcv.mean();
  r.rtt_us = st->rtt.mean();
  if (st->stream_received > 1) {
    r.g_us = sim::to_usec(st->stream_last - st->stream_first) /
             static_cast<double>(st->stream_received - 1);
  }
  r.l_us = r.rtt_us / 2.0 - r.os_us - r.or_us;

  if (attribute) {
    const obs::Snapshot snap = cl.engine().snapshot();
    const obs::AttrSummary sum = obs::summarize_attr(snap);
    r.attr_e2e_us = sum.e2e.mean() / 1e3;
    r.attr_stage_sum_us = sum.stage_sum_mean_ns() / 1e3;
    r.attr_report = obs::render_attr_report(snap);
    const obs::TailReport tail =
        obs::tail_report(cl.engine().spans().collect());
    r.tail_report = obs::render_tail_report(tail);
    r.tail_recon_p50 = tail.p50_recon_err();
    r.tail_recon_tail = tail.tail_recon_err();
  }
  return r;
}

}  // namespace vnet::apps
