#include "apps/npb.hpp"

#include <cmath>

#include "apps/parallel.hpp"
#include "cluster/cluster.hpp"

namespace vnet::apps {

namespace {

/// Per-kernel model parameters (Class A, per iteration). Serial times are
/// representative of a 167 MHz UltraSPARC-1; iteration counts are truncated
/// (see header). Communication volumes follow the benchmarks' asymptotics:
/// surface exchanges shrink as p^(2/3), transposes as 1/p^2 per pair.
struct Spec {
  const char* name;
  double serial_sec_per_iter;  ///< single-rank compute per iteration
  int iters;                   ///< truncated iteration count
  /// Cache bonus: smaller per-rank working sets improve cache behaviour,
  /// compensating for communication (§6.2). Fractional gain per log2 p.
  double cache_bonus = 0.02;
};

Spec spec_of(NpbKernel k) {
  switch (k) {
    case NpbKernel::kBT:
      return {"BT", 13.0, 3};
    case NpbKernel::kSP:
      return {"SP", 3.8, 4};
    case NpbKernel::kLU:
      return {"LU", 7.6, 3};
    case NpbKernel::kMG:
      return {"MG", 13.7, 4};
    case NpbKernel::kFT:
      return {"FT", 14.2, 4, 0.015};
    case NpbKernel::kIS:
      return {"IS", 4.2, 5, 0.0};
    case NpbKernel::kCG:
      return {"CG", 3.9, 3};
    case NpbKernel::kEP:
      return {"EP", 130.0, 1, 0.0};
  }
  return {"?", 1.0, 1};
}

sim::Duration compute_time(const Spec& s, int p, double cpu_speedup) {
  const double eff = 1.0 + s.cache_bonus * std::log2(static_cast<double>(p));
  return static_cast<sim::Duration>(s.serial_sec_per_iter /
                                    (p * eff * cpu_speedup) * 1e9);
}

std::uint32_t face_bytes(double base, int p) {
  return static_cast<std::uint32_t>(
      base / std::pow(static_cast<double>(p), 2.0 / 3.0));
}

sim::Task<> run_kernel(Par& par, NpbKernel kernel, double cpu_speedup) {
  const Spec s = spec_of(kernel);
  const int p = par.size();
  const int r = par.rank();
  const int stride = std::max(1, static_cast<int>(std::lround(
                                     std::sqrt(static_cast<double>(p)))));
  co_await par.barrier();
  for (int it = 0; it < s.iters; ++it) {
    co_await par.compute(compute_time(s, p, cpu_speedup));
    if (p == 1) continue;
    switch (kernel) {
      case NpbKernel::kBT:
        // ADI sweeps: ghost-face exchanges in three directions.
        co_await par.exchange((r + 1) % p, face_bytes(164e3, p));
        co_await par.exchange((r + p - 1) % p, face_bytes(164e3, p));
        co_await par.exchange((r + stride) % p, face_bytes(164e3, p));
        co_await par.exchange((r + p - stride) % p, face_bytes(164e3, p));
        break;
      case NpbKernel::kSP:
        co_await par.exchange((r + 1) % p, face_bytes(100e3, p));
        co_await par.exchange((r + p - 1) % p, face_bytes(100e3, p));
        co_await par.exchange((r + stride) % p, face_bytes(100e3, p));
        co_await par.exchange((r + p - stride) % p, face_bytes(100e3, p));
        break;
      case NpbKernel::kLU:
        // Wavefront sweeps: many small pencil exchanges with neighbours.
        for (int w = 0; w < 60; ++w) {
          co_await par.exchange((r + 1) % p, 1024);
          co_await par.exchange((r + p - 1) % p, 1024);
        }
        break;
      case NpbKernel::kMG: {
        // V-cycle: exchanges at four grid levels plus a residual norm.
        const std::uint32_t levels[4] = {face_bytes(130e3, p),
                                         face_bytes(33e3, p),
                                         face_bytes(8e3, p), 2048};
        for (std::uint32_t bytes : levels) {
          co_await par.exchange((r + 1) % p, bytes);
          co_await par.exchange((r + p - 1) % p, bytes);
        }
        co_await par.allreduce_sum(1.0);
        break;
      }
      case NpbKernel::kFT:
        // 3-D FFT: two transposes per iteration, each a personalized
        // all-to-all of the whole 128 MB Class A array.
        co_await par.alltoall(static_cast<std::uint32_t>(
            128e6 / (static_cast<double>(p) * p)));
        co_await par.alltoall(static_cast<std::uint32_t>(
            128e6 / (static_cast<double>(p) * p)));
        break;
      case NpbKernel::kIS:
        // Bucketed key redistribution plus a histogram reduction.
        co_await par.allreduce_sum(static_cast<double>(r));
        co_await par.alltoall(static_cast<std::uint32_t>(
            64e6 / (static_cast<double>(p) * p)));
        break;
      case NpbKernel::kCG:
        // Inner solver iterations: dot products and partner exchanges.
        for (int inner = 0; inner < 6; ++inner) {
          co_await par.allreduce_sum(1.0);
          co_await par.exchange(
              (r + stride) % p,
              static_cast<std::uint32_t>(
                  70e3 / std::sqrt(static_cast<double>(p))));
          co_await par.allreduce_sum(1.0);
        }
        break;
      case NpbKernel::kEP:
        break;  // embarrassingly parallel: compute only
    }
  }
  // Verification step: global checksum.
  co_await par.allreduce_sum(static_cast<double>(r));
  co_await par.barrier();
}

}  // namespace

const char* to_string(NpbKernel k) { return spec_of(k).name; }

std::vector<NpbKernel> all_npb_kernels() {
  return {NpbKernel::kBT, NpbKernel::kSP, NpbKernel::kLU, NpbKernel::kMG,
          NpbKernel::kFT, NpbKernel::kIS, NpbKernel::kCG, NpbKernel::kEP};
}

double run_npb(const cluster::ClusterConfig& config, NpbKernel kernel,
               int procs) {
  cluster::ClusterConfig cfg = config;
  cfg.nodes = procs;
  if (procs <= 2) cfg.topology = cluster::ClusterConfig::Topology::kCrossbar;
  cluster::Cluster cl(cfg);
  const double speedup = cfg.cpu_speedup;
  launch_spmd(cl, procs, [kernel, speedup](Par& par) -> sim::Task<> {
    co_await run_kernel(par, kernel, speedup);
  });
  const sim::Duration elapsed = cl.run_to_completion();
  return sim::to_sec(elapsed);
}

std::vector<NpbPoint> npb_speedups(const cluster::ClusterConfig& config,
                                   NpbKernel kernel,
                                   const std::vector<int>& proc_counts) {
  std::vector<NpbPoint> out;
  const double t1 = run_npb(config, kernel, 1);
  for (int p : proc_counts) {
    const double tp = p == 1 ? t1 : run_npb(config, kernel, p);
    out.push_back(NpbPoint{p, tp, t1 / tp});
  }
  return out;
}

}  // namespace vnet::apps
