#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "sim/task.hpp"

namespace vnet::apps {

/// Shared bring-up state for one SPMD job (out-of-band rendezvous for
/// endpoint names, §3.1 allows any rendezvous mechanism).
struct JobState {
  explicit JobState(int n) : names(static_cast<std::size_t>(n)) {}
  std::vector<am::Name> names;
  std::uint64_t finished = 0;
  bool ready() const {
    for (const auto& n : names) {
      if (!n.valid()) return false;
    }
    return true;
  }
};

/// Per-rank handle of an SPMD parallel program: one endpoint in a fully
/// connected virtual network plus message-based collectives (barrier,
/// allreduce, pairwise exchange, all-to-all) in the style of the Split-C /
/// MPI layers the paper runs over Active Messages (§2, Fig 1).
class Par {
 public:
  Par(host::HostThread& t, std::shared_ptr<JobState> job, int rank,
      int nranks);

  /// Creates the endpoint, publishes its name, and maps every peer.
  /// Must complete on all ranks before any communication.
  sim::Task<> init();

  int rank() const { return rank_; }
  int size() const { return nranks_; }
  host::HostThread& thread() { return *t_; }
  am::Endpoint& endpoint() { return *ep_; }

  /// Pure computation for `d` (time-shared with other threads).
  sim::Task<> compute(sim::Duration d) { co_await t_->compute(d); }

  /// Drains pending messages without waiting (a library "progress engine"
  /// call, as polled inside long computation loops).
  sim::Task<> progress() {
    co_await ep_->poll(*t_, 16);
  }

  /// Computation interleaved with progress polls every `tile` of work, so
  /// arrivals are absorbed and forwarded during long compute phases.
  sim::Task<> compute_with_progress(sim::Duration d,
                                    sim::Duration tile = 20 * sim::ms) {
    sim::Duration rem = d;
    while (rem > 0) {
      const sim::Duration step = rem < tile ? rem : tile;
      co_await t_->compute(step);
      rem -= step;
      co_await progress();
    }
  }

  /// Dissemination barrier over request messages.
  sim::Task<> barrier();

  /// Binomial-tree allreduce (sum of doubles).
  sim::Task<double> allreduce_sum(double value);

  /// Sends `bytes` to `peer` tagged with the current phase; the matching
  /// receive is recv_from/recv_count.
  sim::Task<> send_to(int peer, std::uint32_t bytes, std::uint32_t tag);

  /// Waits until `count` messages with `tag` have arrived.
  sim::Task<> recv_count(std::uint32_t tag, std::uint64_t count);

  /// Pairwise exchange: send `bytes` to peer and wait for its `bytes`.
  sim::Task<> exchange(int peer, std::uint32_t bytes);

  /// Personalized all-to-all: `bytes_per_pair` to every other rank.
  sim::Task<> alltoall(std::uint32_t bytes_per_pair);

  /// Waiting policy: by default waits spin-poll (efficient for dedicated
  /// parallel programs, §3.3). With a spin limit set, waits spin for that
  /// long and then block — two-phase waiting, the enabling mechanism for
  /// implicit co-scheduling in time-shared workloads (§6.3).
  void set_spin_block(sim::Duration spin_limit) { spin_limit_ = spin_limit; }

  /// Tears down the endpoint (optional; engine teardown also reclaims).
  sim::Task<> finish();

  /// Total simulated (wall) time this rank has spent inside communication
  /// operations (barrier / allreduce / exchange / alltoall / waits).
  sim::Duration comm_time() const { return comm_time_; }

  /// CPU time consumed inside communication operations — unlike wall time,
  /// this stays nearly constant when the application is time-shared
  /// (§6.3: "the time spent in communication remains nearly constant").
  sim::Duration comm_cpu_time() const { return comm_cpu_; }

 private:
  sim::Task<> wait_until(std::function<bool()> pred);
  std::uint32_t phase_tag(std::uint32_t kind) {
    return (phase_counter_++ << 4) | kind;
  }

  host::HostThread* t_;
  std::shared_ptr<JobState> job_;
  int rank_;
  int nranks_;
  std::unique_ptr<am::Endpoint> ep_;
  sim::Duration spin_limit_ = 0;  // 0 = pure spin

  // tag -> messages arrived / value accumulator
  std::unordered_map<std::uint64_t, std::uint64_t> arrived_;
  std::unordered_map<std::uint64_t, double> values_;

  sim::Duration comm_time_ = 0;
  sim::Duration comm_cpu_ = 0;
  std::uint32_t barrier_gen_ = 0;
  std::uint32_t reduce_gen_ = 0;
  std::uint32_t phase_counter_ = 1;
};

/// Launches an SPMD job on the cluster: rank i runs on node
/// (first_node + i*node_stride) % cluster.size(). `body` runs after init().
void launch_spmd(cluster::Cluster& cl, int ranks,
                 std::function<sim::Task<>(Par&)> body, int first_node = 0,
                 int node_stride = 1, const char* name_prefix = "rank");

}  // namespace vnet::apps
