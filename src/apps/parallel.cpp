#include "apps/parallel.hpp"

#include <bit>
#include <string>

namespace vnet::apps {

namespace {

// Handler indices of the mini parallel runtime.
constexpr std::uint8_t kCtrl = 1;  ///< barrier / reduction contribution
constexpr std::uint8_t kData = 2;  ///< bulk data with a phase tag

}  // namespace

Par::Par(host::HostThread& t, std::shared_ptr<JobState> job, int rank,
         int nranks)
    : t_(&t), job_(std::move(job)), rank_(rank), nranks_(nranks) {}

sim::Task<> Par::init() {
  ep_ = co_await am::Endpoint::create(*t_, 0x7000 + rank_);
  // Control messages: count arrivals per (tag), accumulate values.
  ep_->set_handler(kCtrl, [this](am::Endpoint&, const am::Message& m) {
    const auto tag = static_cast<std::uint32_t>(m.arg(0));
    ++arrived_[tag];
    values_[tag] += std::bit_cast<double>(m.arg(1));
  });
  ep_->set_handler(kData, [this](am::Endpoint&, const am::Message& m) {
    ++arrived_[static_cast<std::uint32_t>(m.arg(0))];
  });
  job_->names[static_cast<std::size_t>(rank_)] = ep_->name();
  while (!job_->ready()) co_await t_->sleep(30 * sim::us);
  for (int p = 0; p < nranks_; ++p) {
    ep_->map(static_cast<std::uint32_t>(p),
             job_->names[static_cast<std::size_t>(p)]);
  }
  // One sim-level round so every rank has finished mapping before traffic.
  co_await t_->sleep(30 * sim::us);
}

sim::Task<> Par::wait_until(std::function<bool()> pred) {
  sim::Time spin_started = t_->engine().now();
  while (!pred()) {
    const std::size_t n = co_await ep_->poll(*t_, 16);
    if (n > 0) {
      spin_started = t_->engine().now();
      continue;
    }
    if (spin_limit_ > 0 &&
        t_->engine().now() - spin_started >= spin_limit_) {
      // Two-phase waiting: yield the processor and sleep on the endpoint
      // event until a message arrives (implicit co-scheduling, §6.3).
      (void)co_await ep_->wait_events_for(*t_, am::kEventArrivals,
                                          2 * sim::ms);
      spin_started = t_->engine().now();
    } else if (spin_limit_ > 0) {
      co_await t_->compute(300);  // brief pre-block spin: stay reactive
    } else {
      // Pure spinning holds the processor; model the CPU it burns in
      // coarse chunks so competing threads really contend for it.
      co_await t_->compute(200 * sim::us);
    }
  }
}

sim::Task<> Par::barrier() {
  // Dissemination barrier: ceil(log2 n) rounds; round k signals rank
  // (r + 2^k) mod n and waits for rank (r - 2^k) mod n.
  const std::uint32_t gen = barrier_gen_++;
  if (nranks_ == 1) co_return;
  const sim::Time t0 = t_->engine().now();
  const sim::Duration c0 = t_->ctx().cpu_used;
  std::uint32_t round = 0;
  for (int dist = 1; dist < nranks_; dist <<= 1, ++round) {
    const int to = (rank_ + dist) % nranks_;
    const std::uint32_t tag = 0x10000000u | (gen << 8) | round;
    co_await ep_->request(*t_, static_cast<std::uint32_t>(to), kCtrl, tag, 0);
    co_await wait_until([this, tag] {
      auto it = arrived_.find(tag);
      return it != arrived_.end() && it->second >= 1;
    });
    arrived_.erase(tag);
    values_.erase(tag);
  }
  comm_time_ += t_->engine().now() - t0;
  comm_cpu_ += t_->ctx().cpu_used - c0;
}

sim::Task<double> Par::allreduce_sum(double value) {
  // Binomial-tree reduce to rank 0, then tree broadcast back down.
  const std::uint32_t gen = reduce_gen_++;
  double acc = value;
  if (nranks_ == 1) co_return acc;

  int dist = 1;
  while (dist < nranks_) {
    if (rank_ % (2 * dist) == 0) {
      if (rank_ + dist < nranks_) {
        const std::uint32_t tag = 0x20000000u | (gen << 8) |
                                  static_cast<std::uint32_t>(rank_ + dist);
        co_await wait_until([this, tag] { return arrived_[tag] >= 1; });
        acc += values_[tag];
        arrived_.erase(tag);
        values_.erase(tag);
      }
    } else if (rank_ % (2 * dist) == dist) {
      const std::uint32_t tag =
          0x20000000u | (gen << 8) | static_cast<std::uint32_t>(rank_);
      co_await ep_->request(*t_, static_cast<std::uint32_t>(rank_ - dist),
                            kCtrl, tag, std::bit_cast<std::uint64_t>(acc));
      break;  // contributed; wait for the broadcast
    }
    dist <<= 1;
  }

  // Broadcast the total from rank 0 along the reversed tree.
  const std::uint32_t btag = 0x30000000u | (gen << 8);
  if (rank_ != 0) {
    co_await wait_until([this, btag] { return arrived_[btag] >= 1; });
    acc = values_[btag];
    arrived_.erase(btag);
    values_.erase(btag);
  }
  // Highest power of two at or below my subtree span.
  int top = 1;
  while (top < nranks_) top <<= 1;
  for (int d = top >> 1; d >= 1; d >>= 1) {
    if (rank_ % (2 * d) == 0 && rank_ + d < nranks_) {
      co_await ep_->request(*t_, static_cast<std::uint32_t>(rank_ + d), kCtrl,
                            btag, std::bit_cast<std::uint64_t>(acc));
    }
  }
  co_return acc;
}

sim::Task<> Par::send_to(int peer, std::uint32_t bytes, std::uint32_t tag) {
  co_await ep_->request_bulk(*t_, static_cast<std::uint32_t>(peer), kData,
                             bytes, nullptr, tag);
}

sim::Task<> Par::recv_count(std::uint32_t tag, std::uint64_t count) {
  co_await wait_until([this, tag, count] { return arrived_[tag] >= count; });
  arrived_.erase(tag);
}

sim::Task<> Par::exchange(int peer, std::uint32_t bytes) {
  const sim::Time t0 = t_->engine().now();
  const sim::Duration c0 = t_->ctx().cpu_used;
  const std::uint32_t tag = phase_tag(0x1);
  co_await send_to(peer, bytes, tag);
  co_await recv_count(tag, 1);
  comm_time_ += t_->engine().now() - t0;
  comm_cpu_ += t_->ctx().cpu_used - c0;
}

sim::Task<> Par::alltoall(std::uint32_t bytes_per_pair) {
  const sim::Time t0 = t_->engine().now();
  const sim::Duration c0 = t_->ctx().cpu_used;
  const std::uint32_t tag = phase_tag(0x2);
  // Rotated schedule so traffic spreads instead of hot-spotting rank 0.
  for (int i = 1; i < nranks_; ++i) {
    const int to = (rank_ + i) % nranks_;
    co_await send_to(to, bytes_per_pair, tag);
  }
  co_await recv_count(tag, static_cast<std::uint64_t>(nranks_ - 1));
  comm_time_ += t_->engine().now() - t0;
  comm_cpu_ += t_->ctx().cpu_used - c0;
}

sim::Task<> Par::finish() {
  if (ep_ != nullptr) {
    co_await ep_->destroy(*t_);
    ep_.reset();
  }
}

void launch_spmd(cluster::Cluster& cl, int ranks,
                 std::function<sim::Task<>(Par&)> body, int first_node,
                 int node_stride, const char* name_prefix) {
  auto job = std::make_shared<JobState>(ranks);
  for (int r = 0; r < ranks; ++r) {
    const int node = (first_node + r * node_stride) % cl.size();
    cl.spawn_thread(node, std::string(name_prefix) + std::to_string(r),
                    [job, r, ranks, body](host::HostThread& t) -> sim::Task<> {
                      Par par(t, job, r, ranks);
                      co_await par.init();
                      co_await body(par);
                      ++job->finished;
                    });
  }
}

}  // namespace vnet::apps
