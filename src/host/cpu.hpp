#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "host/config.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::host {

/// Identity of a logical thread for scheduling/accounting purposes.
struct ThreadCtx {
  std::string name;
  bool kernel = false;          ///< kernel threads preempt user threads
  sim::Duration cpu_used = 0;   ///< accumulated CPU time
  std::uint64_t dispatches = 0;
};

/// One time-shared processor with a two-level (kernel > user) round-robin
/// run queue, quantum slicing, and context-switch costs — the local Solaris
/// scheduler that virtual networks must adapt to (§6.3 relies on exactly
/// this: implicit co-scheduling through conventional local schedulers).
class Cpu {
  struct AcquireAwaiter {
    Cpu& cpu;
    bool kernel;
    bool await_ready() noexcept {
      if (!cpu.busy_) {
        cpu.busy_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      (kernel ? cpu.kernel_q_ : cpu.user_q_).push_back(h);
    }
    void await_resume() const noexcept {}
  };

 public:
  Cpu(sim::Engine& engine, const HostConfig& config)
      : engine_(&engine), config_(&config) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Awaitable form of run() with a frameless fast path: when the
  /// processor is free and `t` ran last, there is no context switch and no
  /// preemption window, so the whole charge is one engine event — no
  /// coroutine frame, no scheduler loop. Any other state falls back to the
  /// general run() task. On the datapath nearly every compute takes the
  /// fast path (one thread per host at steady state).
  auto charge(ThreadCtx& t, sim::Duration d) {
    struct Awaiter {
      Cpu& cpu;
      ThreadCtx& t;
      sim::Duration d;
      std::optional<sim::Task<>> slow;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
        if (!cpu.busy_ && cpu.last_ == &t) {
          // Free processor, same thread: queues are empty (threads only
          // queue while busy_), so run() would charge d in one slice.
          cpu.busy_ = true;
          Cpu* c = &cpu;
          ThreadCtx* ctx = &t;
          const sim::Duration dd = d;
          cpu.engine_->after(dd, [c, ctx, dd, h] {
            ctx->cpu_used += dd;
            c->release();
            h.resume();
          });
          return std::noop_coroutine();
        }
        slow.emplace(cpu.run(t, d));
        return slow->start(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, t, d, std::nullopt};
  }

  /// Charges `d` of CPU time to `t`, sharing the processor with all other
  /// runnable threads at quantum granularity.
  sim::Task<> run(ThreadCtx& t, sim::Duration d) {
    sim::Duration rem = d;
    while (rem > 0) {
      co_await acquire(t.kernel);
      if (last_ != &t) {
        // Context switch: charged to the incoming thread's wall time.
        co_await engine_->delay(config_->context_switch);
        last_ = &t;
        ++t.dispatches;
      }
      const sim::Duration slice = preempt_pending()
                                      ? std::min(config_->time_quantum, rem)
                                      : rem;
      co_await engine_->delay(slice);
      t.cpu_used += slice;
      rem -= slice;
      release();
    }
  }

  /// Charges the fixed wake-up cost after a thread unblocks (§3.3 events).
  /// Threads waking from sleep get a priority boost (as in Solaris TS):
  /// this is the local-scheduler behaviour implicit co-scheduling rides on
  /// (§6.3) — the rank with a newly-arrived message runs promptly.
  sim::Task<> wake(ThreadCtx& t) {
    const bool was_kernel = t.kernel;
    t.kernel = true;
    co_await charge(t, config_->thread_wake_latency);
    t.kernel = was_kernel;
  }

  /// Threads currently waiting for the processor.
  std::size_t runnable_waiters() const {
    return kernel_q_.size() + user_q_.size();
  }
  bool busy() const { return busy_; }

 private:
  bool preempt_pending() const { return runnable_waiters() > 0; }

  AcquireAwaiter acquire(bool kernel) { return AcquireAwaiter{*this, kernel}; }

  void release() {
    if (!kernel_q_.empty()) {
      auto h = kernel_q_.front();
      kernel_q_.pop_front();
      engine_->post(h);  // hand-off: busy_ stays true
    } else if (!user_q_.empty()) {
      auto h = user_q_.front();
      user_q_.pop_front();
      engine_->post(h);
    } else {
      busy_ = false;
    }
  }

  sim::Engine* engine_;
  const HostConfig* config_;
  bool busy_ = false;
  const ThreadCtx* last_ = nullptr;
  std::deque<std::coroutine_handle<>> kernel_q_;
  std::deque<std::coroutine_handle<>> user_q_;
};

}  // namespace vnet::host
