#include "host/segment_driver.hpp"

#include <cassert>

namespace vnet::host {

const char* to_string(Residency r) {
  switch (r) {
    case Residency::kOnNic:
      return "on-nic r/w";
    case Residency::kOnHostRW:
      return "on-host r/w";
    case Residency::kOnHostRO:
      return "on-host r/o";
    case Residency::kOnDisk:
      return "on-disk";
  }
  return "?";
}

void SegmentDriver::DriverCounters::register_with(obs::MetricsRegistry& reg,
                                                  const std::string& prefix) {
  write_faults = reg.counter(prefix + ".write_faults");
  disk_faults = reg.counter(prefix + ".disk_faults");
  proxy_faults = reg.counter(prefix + ".proxy_faults");
  remaps = reg.counter(prefix + ".remaps");
  evictions = reg.counter(prefix + ".evictions");
  pageouts = reg.counter(prefix + ".pageouts");
  endpoints_created = reg.counter(prefix + ".endpoints_created");
  endpoints_destroyed = reg.counter(prefix + ".endpoints_destroyed");
}

SegmentDriver::SegmentDriver(sim::Engine& engine, Cpu& cpu, lanai::Nic& nic,
                             const HostConfig& config)
    : engine_(&engine),
      cpu_(&cpu),
      nic_(&nic),
      config_(&config),
      work_(engine),
      rng_(engine.rng().split()),
      metric_prefix_("host." + std::to_string(nic.node()) + ".driver") {
  counters_.register_with(engine.metrics(), metric_prefix_);
  fault_ns_ = engine.metrics().histogram(metric_prefix_ + ".attr.fault_ns");
  engine.metrics().gauge_fn(metric_prefix_ + ".resident_endpoints", [this] {
    return static_cast<double>(resident_count());
  });
  engine.metrics().gauge_fn(metric_prefix_ + ".remap_queue", [this] {
    return static_cast<double>(remap_queue_.size());
  });
}

SegmentDriver::~SegmentDriver() {
  engine_->metrics().remove_fn_prefix(metric_prefix_ + ".");
}

void SegmentDriver::start() {
  assert(!started_);
  started_ = true;
  // The NIC asks us to activate endpoints in response to message arrival;
  // this is the proxy-fault path of §4.2 (no user instruction faulted, so
  // the kernel thread simulates the fault's effect).
  nic_->on_nic_request = [this](lanai::NicRequest req) {
    if (req.kind != lanai::NicRequest::Kind::kMakeResident) return;
    lamport_ = std::max(lamport_, req.lamport) + 1;
    auto it = endpoints_.find(req.ep);
    if (it == endpoints_.end() || it->second->destroyed) return;
    counters_.proxy_faults.inc();
    schedule_remap(*it->second);
  };
  engine_->spawn(remap_thread());
}

sim::Task<lanai::EndpointState*> SegmentDriver::create_endpoint(
    ThreadCtx& t, std::uint64_t tag) {
  // Segment creation is equivalent to allocating the endpoint and
  // initializing its message queues (§4.2).
  co_await cpu_->run(t, config_->fault_overhead);
  auto m = std::make_unique<Managed>(*engine_);
  m->state = std::make_unique<lanai::EndpointState>();
  m->state->node = nic_->node();
  m->state->id = next_ep_id_++;
  m->state->tag = tag;
  m->state->translations.resize(64);
  lanai::EndpointState* raw = m->state.get();

  sim::Gate done(*engine_);
  nic_->submit({lanai::DriverOp::Kind::kCreate, raw, -1, ++lamport_, &done});
  co_await done.wait();
  Managed& managed = *m;
  endpoints_.emplace(raw->id, std::move(m));
  counters_.endpoints_created.inc();
  if (config_->eager_binding) {
    schedule_remap(managed);
    while (managed.res != Residency::kOnNic && !managed.destroyed) {
      co_await managed.resident_cv.wait();
    }
  }
  co_return raw;
}

sim::Task<> SegmentDriver::destroy_endpoint(ThreadCtx& t,
                                            lanai::EndpointState* ep) {
  Managed* m = find(ep);
  if (m == nullptr || m->destroyed) co_return;
  m->destroyed = true;  // logical-clock race resolution: later NIC
                        // make-resident requests for this id are ignored
  co_await cpu_->run(t, config_->fault_overhead);
  sim::Gate done(*engine_);
  nic_->submit({lanai::DriverOp::Kind::kDestroy, ep, -1, ++lamport_, &done});
  co_await done.wait();  // the NIC quiesces in-flight traffic first (§5.3)
  counters_.endpoints_destroyed.inc();
  m->resident_cv.notify_all();
  endpoints_.erase(ep->id);
}

Residency SegmentDriver::residency(const lanai::EndpointState* ep) const {
  const Managed* m = find(ep);
  return m != nullptr ? m->res : Residency::kOnHostRO;
}

bool SegmentDriver::writable(const lanai::EndpointState* ep) const {
  const Managed* m = find(ep);
  // Unmanaged/destroyed endpoints are "writable" in the sense that
  // ensure_writable() would return immediately without charging anything.
  return m == nullptr || m->destroyed || m->res == Residency::kOnNic ||
         m->res == Residency::kOnHostRW;
}

sim::Task<> SegmentDriver::ensure_writable(ThreadCtx& t,
                                           lanai::EndpointState* ep) {
  Managed* m = find(ep);
  if (m == nullptr || m->destroyed) co_return;
  m->last_touch = engine_->now();
  const sim::Time fault_start = engine_->now();
  switch (m->res) {
    case Residency::kOnNic:
    case Residency::kOnHostRW:
      co_return;  // already writable; common case costs nothing extra
    case Residency::kOnDisk:
      counters_.disk_faults.inc();
      co_await cpu_->run(t, config_->fault_overhead);
      co_await engine_->delay(config_->disk_fault_latency);
      m->res = Residency::kOnHostRO;
      [[fallthrough]];
    case Residency::kOnHostRO:
      // Write fault: make the page writable and schedule the re-mapping.
      counters_.write_faults.inc();
      VNET_TRACE_INSTANT(engine_->tracer(), "driver", "write_fault",
                         static_cast<int>(nic_->node()), 0,
                         {{"ep", static_cast<std::int64_t>(ep->id)}});
      co_await cpu_->run(t, config_->fault_overhead +
                                config_->remap_schedule_overhead);
      m->res = Residency::kOnHostRW;
      if (config_->async_write_faults) {
        // The faulting thread continues immediately (§4.2: this state
        // "allows the application thread to continue execution immediately
        // after a write fault"); the background thread does the upload.
        schedule_remap(*m);
      } else {
        // Ablation A: the original (pre-on-host-r/w) design blocked the
        // faulting thread for the full duration of the upload (including
        // any queueing behind other re-mappings in progress).
        schedule_remap(*m);
        while (m->res != Residency::kOnNic && !m->destroyed) {
          co_await m->resident_cv.wait();
        }
      }
      fault_ns_.record(
          static_cast<double>(engine_->now() - fault_start));
      co_return;
  }
}

sim::CondVar& SegmentDriver::residency_cv(lanai::EndpointState* ep) {
  Managed* m = find(ep);
  assert(m != nullptr);
  return m->resident_cv;
}

void SegmentDriver::touch(lanai::EndpointState* ep) {
  if (Managed* m = find(ep)) m->last_touch = engine_->now();
}

void SegmentDriver::page_out(lanai::EndpointState* ep) {
  Managed* m = find(ep);
  if (m == nullptr || m->destroyed || m->res == Residency::kOnNic ||
      m->remap_queued) {
    return;
  }
  m->res = Residency::kOnDisk;
  counters_.pageouts.inc();
}

int SegmentDriver::resident_count() const {
  int n = 0;
  for (const auto& [id, m] : endpoints_) {
    if (m->res == Residency::kOnNic) ++n;
  }
  return n;
}

// ------------------------------------------------------------- internals

void SegmentDriver::schedule_remap(Managed& m) {
  if (m.remap_queued || m.res == Residency::kOnNic || m.destroyed) return;
  m.remap_queued = true;
  remap_queue_.push_back(m.state->id);
  work_.notify_all();
}

sim::Process SegmentDriver::remap_thread() {
  // The background kernel thread of §4.2: periodically services
  // re-mapping requests asynchronously to the faults that queued them.
  for (;;) {
    while (remap_queue_.empty()) co_await work_.wait();
    const lanai::EpId id = remap_queue_.front();
    remap_queue_.pop_front();
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) continue;
    Managed& m = *it->second;
    m.remap_queued = false;
    if (m.destroyed || m.res == Residency::kOnNic) continue;
    co_await make_resident(m);
    // Pace the scan: remapping storms must not monopolize the CPU.
    co_await engine_->delay(config_->remap_scan_period);
  }
}

sim::Task<> SegmentDriver::make_resident(Managed& m) {
  if (m.res == Residency::kOnDisk) {
    counters_.disk_faults.inc();
    co_await engine_->delay(config_->disk_fault_latency);
    m.res = Residency::kOnHostRW;
  }
  // Kernel work: unmap, update translations, drive the driver/NI protocol.
  co_await cpu_->run(kthread_, config_->remap_kernel_work);

  int frame = find_free_frame();
  while (frame < 0) {
    co_await evict_one(&m);
    frame = find_free_frame();
  }
  if (m.destroyed) co_return;

  sim::Gate done(*engine_);
  nic_->submit({lanai::DriverOp::Kind::kLoad, m.state.get(), frame,
                ++lamport_, &done});
  co_await done.wait();
  m.res = Residency::kOnNic;
  m.load_seq = next_load_seq_++;
  counters_.remaps.inc();
  m.resident_cv.notify_all();
  nic_->doorbell(*m.state);
}

sim::Task<> SegmentDriver::evict_one(Managed* keep) {
  Managed* victim = pick_victim(keep);
  if (victim == nullptr) {
    // Nothing evictable right now (e.g. everything mid-transition); let
    // the NIC make progress and retry.
    co_await engine_->delay(config_->remap_scan_period);
    co_return;
  }
  sim::Gate done(*engine_);
  nic_->submit({lanai::DriverOp::Kind::kUnload, victim->state.get(), -1,
                ++lamport_, &done});
  co_await done.wait();  // includes quiescence of in-flight messages
  victim->res = Residency::kOnHostRO;
  counters_.evictions.inc();
  VNET_TRACE_INSTANT(engine_->tracer(), "driver", "evict",
                     static_cast<int>(nic_->node()), 0,
                     {{"ep", static_cast<std::int64_t>(victim->state->id)}});
  // §4.2: the background thread "activates non-empty endpoints". An evicted
  // endpoint that still has unfinished send work must come back on its own —
  // no future write fault or message arrival may ever reference it (e.g. a
  // server blocked on that very endpoint's full send queue).
  for (const auto& d : victim->state->send_queue) {
    if (!d.finished()) {
      schedule_remap(*victim);
      break;
    }
  }
}

SegmentDriver::Managed* SegmentDriver::pick_victim(Managed* keep) {
  std::vector<Managed*> candidates;
  for (auto& [id, m] : endpoints_) {
    if (m.get() != keep && m->res == Residency::kOnNic && !m->destroyed) {
      candidates.push_back(m.get());
    }
  }
  if (candidates.empty()) return nullptr;
  switch (policy_) {
    case Policy::kRandom:
      // The paper's policy: replace a resident endpoint at random (§4.2).
      return candidates[rng_.below(candidates.size())];
    case Policy::kFifo: {
      Managed* best = candidates[0];
      for (Managed* c : candidates) {
        if (c->load_seq < best->load_seq) best = c;
      }
      return best;
    }
    case Policy::kLru: {
      Managed* best = candidates[0];
      for (Managed* c : candidates) {
        if (c->last_touch < best->last_touch) best = c;
      }
      return best;
    }
  }
  return nullptr;
}

SegmentDriver::Managed* SegmentDriver::find(
    const lanai::EndpointState* ep) const {
  if (ep == nullptr) return nullptr;
  auto it = endpoints_.find(ep->id);
  return it != endpoints_.end() ? it->second.get() : nullptr;
}

int SegmentDriver::find_free_frame() const {
  for (int i = 0; i < nic_->endpoint_frames(); ++i) {
    if (nic_->frame_occupant(i) == nullptr) return i;
  }
  return -1;
}

}  // namespace vnet::host
