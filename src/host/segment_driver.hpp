#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "host/config.hpp"
#include "host/cpu.hpp"
#include "lanai/nic.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::host {

/// Where an endpoint currently lives — the four-state protocol of Fig 2.
enum class Residency {
  kOnNic,     ///< bound to a NIC endpoint frame, r/w translations
  kOnHostRW,  ///< in host memory, writable; re-mapping scheduled
  kOnHostRO,  ///< in host memory, read-only; a write will fault
  kOnDisk,    ///< paged out; any reference takes a major fault
};

const char* to_string(Residency r);

/// The endpoint segment driver (§4.2): manages every endpoint on one host
/// as a virtual-memory object, binding endpoints to NIC frames on demand in
/// response to local writes (page faults) or remote message arrival (proxy
/// faults requested by the NIC), evicting a resident endpoint when all
/// frames are occupied, and de-coupling the faulting thread from the
/// binding through the asynchronous on-host r/w state serviced by a
/// background kernel thread.
class SegmentDriver {
 public:
  /// Endpoint replacement policy. The paper's system replaces at random
  /// (§4.2); FIFO and LRU are provided for the ablation study.
  enum class Policy { kRandom, kFifo, kLru };

  /// Registry-backed counter handles for the driver, registered under
  /// `host.<node>.driver.*` at construction.
  struct DriverCounters {
    obs::Counter write_faults;
    obs::Counter disk_faults;
    obs::Counter proxy_faults;
    obs::Counter remaps;
    obs::Counter evictions;
    obs::Counter pageouts;
    obs::Counter endpoints_created;
    obs::Counter endpoints_destroyed;
    void register_with(obs::MetricsRegistry& reg, const std::string& prefix);
  };

  SegmentDriver(sim::Engine& engine, Cpu& cpu, lanai::Nic& nic,
                const HostConfig& config);

  SegmentDriver(const SegmentDriver&) = delete;
  SegmentDriver& operator=(const SegmentDriver&) = delete;

  /// Unregisters the pull-style gauges (resident_endpoints, remap_queue)
  /// from the engine's registry; the engine outlives every driver.
  ~SegmentDriver();

  /// Hooks the NIC's driver-request upcall and spawns the background
  /// re-mapping kernel thread. Call once.
  void start();

  // ---- endpoint lifecycle ----

  /// Allocates an endpoint (segment creation, §4.2): registers it with the
  /// NIC directory and returns it in the on-host r/o state.
  sim::Task<lanai::EndpointState*> create_endpoint(ThreadCtx& t,
                                                   std::uint64_t tag);

  /// Frees an endpoint, synchronizing de-allocation with the NIC (§4.2).
  sim::Task<> destroy_endpoint(ThreadCtx& t, lanai::EndpointState* ep);

  // ---- the access protocol ----

  Residency residency(const lanai::EndpointState* ep) const;

  /// True when a store to `ep` would not fault (resident on the NIC or
  /// mapped r/w on the host). Senders check this to skip the
  /// ensure_writable() task — and its coroutine frame — on the hot path.
  bool writable(const lanai::EndpointState* ep) const;

  /// Called before the application writes into `ep` (message send). If the
  /// endpoint is writable this is free; otherwise it takes the write-fault
  /// path: on-host r/o -> on-host r/w plus a scheduled re-mapping. With
  /// `async_write_faults` disabled (ablation A), the fault blocks until
  /// the endpoint is resident, as in the paper's original design.
  sim::Task<> ensure_writable(ThreadCtx& t, lanai::EndpointState* ep);

  /// Notifies interested threads when `ep` becomes resident.
  sim::CondVar& residency_cv(lanai::EndpointState* ep);

  /// LRU hint: the application touched this endpoint.
  void touch(lanai::EndpointState* ep);

  /// Simulates the VM pageout daemon reclaiming this (non-resident)
  /// endpoint's backing pages under memory pressure ("vm pageout" in
  /// Fig 2). No-op if the endpoint is resident.
  void page_out(lanai::EndpointState* ep);

  void set_policy(Policy p) { policy_ = p; }
  Policy policy() const { return policy_; }

  // Statistics live in the engine's metric registry under
  // `host.<node>.driver.*` (see obs/metrics.hpp); snapshot that.

  int resident_count() const;
  std::size_t remap_queue_size() const { return remap_queue_.size(); }

 private:
  struct Managed {
    std::unique_ptr<lanai::EndpointState> state;
    Residency res = Residency::kOnHostRO;
    bool remap_queued = false;
    bool destroyed = false;
    sim::Time last_touch = 0;
    std::uint64_t load_seq = 0;  // for FIFO replacement
    sim::CondVar resident_cv;
    explicit Managed(sim::Engine& e) : resident_cv(e) {}
  };

  sim::Process remap_thread();
  sim::Task<> make_resident(Managed& m);
  sim::Task<> evict_one(Managed* keep);
  Managed* pick_victim(Managed* keep);
  Managed* find(const lanai::EndpointState* ep) const;
  void schedule_remap(Managed& m);
  int find_free_frame() const;

  sim::Engine* engine_;
  Cpu* cpu_;
  lanai::Nic* nic_;
  const HostConfig* config_;

  ThreadCtx kthread_{"endpoint-segd", /*kernel=*/true};
  sim::CondVar work_;
  std::deque<lanai::EpId> remap_queue_;
  std::unordered_map<lanai::EpId, std::unique_ptr<Managed>> endpoints_;

  lanai::EpId next_ep_id_ = 1;
  std::uint64_t next_load_seq_ = 1;
  std::uint64_t lamport_ = 0;
  Policy policy_ = Policy::kRandom;
  sim::Rng rng_;
  DriverCounters counters_;
  /// Service time of each write-fault (on-host r/o -> writable), the OS
  /// contribution to send latency attribution (obs/attr.hpp); registered
  /// under `host.<node>.driver.attr.fault_ns`.
  obs::Histogram fault_ns_;
  std::string metric_prefix_;
  bool started_ = false;
};

}  // namespace vnet::host
