#pragma once

#include "sim/time.hpp"

namespace vnet::host {

/// Cost model for the simulated 167 MHz UltraSPARC-1 host running Solaris
/// 2.6 (§2). Host-side overheads (o_s, o_r in Fig 3), thread scheduling,
/// and segment-driver costs all come from here; the values are calibrated
/// against the paper's measurements (see EXPERIMENTS.md).
struct HostConfig {
  // ----- processor scheduling -----
  /// Time-sharing quantum of the local scheduler.
  sim::Duration time_quantum = 2 * sim::ms;
  /// Cost of switching the CPU between threads.
  sim::Duration context_switch = 5 * sim::us;
  /// Fixed kernel cost to wake a blocked thread (on top of any run-queue
  /// delay). This is what makes the MT server pay per message when its
  /// threads sleep between arrivals (§6.4).
  sim::Duration thread_wake_latency = 8 * sim::us;

  // ----- programmed I/O to NIC SRAM (uncached, across the SBUS) -----
  /// Writing one 8-byte word into a resident endpoint.
  sim::Duration pio_write_word = 220 * sim::ns;
  /// Reading one 8-byte word from a resident endpoint (uncached load).
  sim::Duration pio_read_word = 300 * sim::ns;
  /// Reading an entire 64-byte receive descriptor with a single SPARC VIS
  /// block load (§6.1: this is why the virtual-network o_r is *smaller*
  /// than GAM's word-at-a-time reads).
  sim::Duration pio_block_read = 1600 * sim::ns;

  // ----- cached host memory (non-resident endpoints) -----
  /// Polling a non-resident endpoint in cacheable host memory (§6.4: with
  /// 96 frames, polling resident-but-uncached endpoints costs *more* than
  /// polling non-resident cacheable ones).
  sim::Duration mem_poll = 80 * sim::ns;
  sim::Duration mem_write_word = 40 * sim::ns;

  // ----- host-side messaging layer costs (beyond the PIO traffic) -----
  /// Fixed library cost per send (argument marshalling, credit check).
  sim::Duration send_fixed = 700 * sim::ns;
  /// Fixed library cost per received message (handler dispatch).
  sim::Duration recv_fixed = 700 * sim::ns;
  /// Words of descriptor written per virtual-network send (bigger
  /// descriptors than GAM: §6.1 attributes the larger o_s to this).
  int send_descriptor_words = 10;
  /// Words per GAM send descriptor.
  int gam_send_descriptor_words = 5;
  /// GAM reads descriptors word-at-a-time instead of block loads.
  bool use_block_loads = true;
  /// Per-byte host cost of staging a bulk payload into/out of the pinned
  /// communication region (the library bcopy around medium messages).
  double bulk_copy_ns_per_byte = 11.0;
  /// Synchronization cost per operation on a *shared* endpoint (§3.3);
  /// exclusive endpoints skip it.
  sim::Duration shared_lock_cost = 300 * sim::ns;

  // ----- segment driver (§4.2) -----
  /// Trap + driver entry/exit for an endpoint page fault.
  sim::Duration fault_overhead = 20 * sim::us;
  /// Driver work to queue a re-mapping request for the background thread.
  sim::Duration remap_schedule_overhead = 5 * sim::us;
  /// Kernel CPU consumed by the background thread per re-mapping (page
  /// table updates, driver/NI protocol messages); the DMA time of the
  /// 8 KB endpoint image is charged by the NIC on top of this.
  sim::Duration remap_kernel_work = 60 * sim::us;
  /// Period between background-thread scans when work is pending.
  sim::Duration remap_scan_period = 2 * sim::ms;
  /// Latency of a major fault on an endpoint paged out to disk.
  sim::Duration disk_fault_latency = 9 * sim::ms;

  /// Bind endpoints to NIC frames at creation time and wait for residency
  /// (how a first-generation, single-program interface like GAM operates:
  /// the program's one endpoint is pinned at startup). Virtual networks
  /// bind on demand instead.
  bool eager_binding = false;

  /// Ablation A (§6.4.1): when false, the on-host r/w state is removed and
  /// a write fault blocks the faulting thread synchronously for the whole
  /// upload, reproducing the original design whose single-threaded servers
  /// "fell off sharply" once re-mapping began.
  bool async_write_faults = true;
};

}  // namespace vnet::host
