#pragma once

#include <memory>
#include <string>

#include "host/config.hpp"
#include "host/cpu.hpp"
#include "host/segment_driver.hpp"
#include "lanai/nic.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"

namespace vnet::host {

/// One workstation: a time-shared CPU, the LANai NIC plugged into its SBUS,
/// and the endpoint segment driver extending its virtual memory system.
class Host {
 public:
  Host(sim::Engine& engine, myrinet::Fabric& fabric, myrinet::NodeId id,
       const HostConfig& config, const lanai::NicConfig& nic_config)
      : engine_(&engine),
        id_(id),
        config_(config),
        cpu_(engine, config_),
        nic_(std::make_unique<lanai::Nic>(engine, fabric, id, nic_config)),
        driver_(engine, cpu_, *nic_, config_) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Boots the NIC firmware and the segment driver's kernel thread.
  void start() {
    nic_->start();
    driver_.start();
  }

  sim::Engine& engine() { return *engine_; }
  myrinet::NodeId id() const { return id_; }
  const HostConfig& config() const { return config_; }
  Cpu& cpu() { return cpu_; }
  lanai::Nic& nic() { return *nic_; }
  SegmentDriver& driver() { return driver_; }

 private:
  sim::Engine* engine_;
  myrinet::NodeId id_;
  HostConfig config_;
  Cpu cpu_;
  std::unique_ptr<lanai::Nic> nic_;
  SegmentDriver driver_;
};

/// A user (or kernel) thread on a host: the execution context the public
/// vnet::am API charges costs to. Application code runs as a sim::Process
/// holding one of these and awaits its methods:
///
///     sim::Process worker(HostThread t) {
///       co_await t.compute(50 * sim::us);   // burn CPU (time-shared)
///       co_await t.sleep(1 * sim::ms);      // off-CPU wait
///       ...
///     }
class HostThread {
 public:
  HostThread(Host& host, std::string name, bool kernel = false)
      : host_(&host), ctx_{std::move(name), kernel, 0, 0} {}

  Host& host() { return *host_; }
  ThreadCtx& ctx() { return ctx_; }
  const std::string& name() const { return ctx_.name; }
  sim::Engine& engine() { return host_->engine(); }

  /// Consumes `d` of CPU, time-shared with other threads on this host.
  auto compute(sim::Duration d) { return host_->cpu().charge(ctx_, d); }

  /// Off-CPU wait (e.g. timed back-off); other threads run meanwhile.
  sim::Task<> sleep(sim::Duration d) {
    co_await host_->engine().delay(d);
  }

  /// Blocks on `cv` without holding the CPU; charges the kernel wake-up
  /// cost once notified (§3.3's thread-based events).
  sim::Task<> block(sim::CondVar& cv) {
    [[maybe_unused]] const sim::Time blocked_at = engine().now();
    co_await cv.wait();
    VNET_TRACE_COMPLETE(engine().tracer(), "thread", "blocked",
                        static_cast<std::int64_t>(blocked_at),
                        static_cast<int>(host_->id()), 2);
    co_await host_->cpu().wake(ctx_);
  }

  /// Like block(), but gives up after `d`. Returns true if notified.
  sim::Task<bool> block_for(sim::CondVar& cv, sim::Duration d) {
    [[maybe_unused]] const sim::Time blocked_at = engine().now();
    const bool notified = co_await cv.wait_for(d);
    VNET_TRACE_COMPLETE(engine().tracer(), "thread", "blocked",
                        static_cast<std::int64_t>(blocked_at),
                        static_cast<int>(host_->id()), 2,
                        {{"notified", notified ? 1 : 0}});
    co_await host_->cpu().wake(ctx_);
    co_return notified;
  }

 private:
  Host* host_;
  ThreadCtx ctx_;
};

}  // namespace vnet::host
