#pragma once

#include <cstdint>

#include "lanai/config.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::lanai {

/// The single SBUS DMA engine of the LANai 4.3 (§2). All bulk data staged
/// between host memory and NIC SRAM crosses here, in both directions, and
/// the two directions have asymmetric rates (§6.1): writes to host memory
/// are capped at 46.8 MB/s — the bound that the 8 KB transfer benchmark
/// approaches at 93% — while reads are faster.
///
/// Because there is only one engine, concurrent send staging and receive
/// draining serialize; transfer() queues FIFO behind in-progress DMAs.
class SbusDma {
 public:
  enum class Dir {
    kReadHost,   ///< host memory -> NIC SRAM (send staging)
    kWriteHost,  ///< NIC SRAM -> host memory (receive delivery)
  };

  SbusDma(sim::Engine& engine, const NicConfig& config)
      : engine_(&engine), config_(&config), unit_(engine, 1) {}

  SbusDma(const SbusDma&) = delete;
  SbusDma& operator=(const SbusDma&) = delete;

  /// Performs one DMA of `bytes`; completes when the transfer finishes.
  sim::Task<> transfer(std::uint32_t bytes, Dir dir) {
    co_await unit_.acquire();
    const double rate = dir == Dir::kReadHost ? config_->sbus_read_ns_per_byte
                                              : config_->sbus_write_ns_per_byte;
    co_await engine_->delay(config_->sbus_dma_setup +
                            static_cast<sim::Duration>(bytes * rate));
    if (dir == Dir::kReadHost) {
      bytes_read_ += bytes;
    } else {
      bytes_written_ += bytes;
    }
    ++transfers_;
    unit_.release();
  }

  /// Pure transfer time of `bytes` in one direction with no queueing — the
  /// "hardware limit" reference curves of Fig 4.
  sim::Duration ideal_time(std::uint32_t bytes, Dir dir) const {
    const double rate = dir == Dir::kReadHost ? config_->sbus_read_ns_per_byte
                                              : config_->sbus_write_ns_per_byte;
    return config_->sbus_dma_setup + static_cast<sim::Duration>(bytes * rate);
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t transfers() const { return transfers_; }

 private:
  sim::Engine* engine_;
  const NicConfig* config_;
  sim::Semaphore unit_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace vnet::lanai
