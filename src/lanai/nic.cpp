#include "lanai/nic.hpp"

#include <algorithm>
#include <cassert>

#include "obs/attr.hpp"
#include "obs/span.hpp"

namespace vnet::lanai {

namespace {

/// Key for per-source-endpoint delivery windows (see endpoint_state.hpp).
std::uint64_t src_key(NodeId node, EpId ep) { return source_key(node, ep); }

/// Recycled Frame storage (frame.hpp). Capped so a retransmission burst
/// cannot pin memory forever; storage still parked at exit is released by
/// the holder's destructor.
struct FrameFreeList {
  static constexpr std::size_t kCap = 1024;
  std::vector<void*> slots;
  ~FrameFreeList() {
    for (void* p : slots) ::operator delete(p);
  }
};

FrameFreeList& frame_free_list() {
  // thread_local: each shard worker (sim/shard.hpp) recycles frames
  // privately. Cross-thread alloc/free pairs migrate storage between
  // lists, which is safe — both paths bottom out in global new/delete.
  static thread_local FrameFreeList list;
  return list;
}

}  // namespace

void* Frame::operator new(std::size_t size) {
  auto& list = frame_free_list().slots;
  if (size == sizeof(Frame) && !list.empty()) {
    void* p = list.back();
    list.pop_back();
    return p;
  }
  return ::operator new(size);
}

void Frame::operator delete(void* p, std::size_t size) noexcept {
  auto& list = frame_free_list().slots;
  if (size == sizeof(Frame) && list.size() < FrameFreeList::kCap) {
    list.push_back(p);
    return;
  }
  ::operator delete(p);
}

const char* to_string(NackReason r) {
  switch (r) {
    case NackReason::kNone:
      return "none";
    case NackReason::kNotResident:
      return "not-resident";
    case NackReason::kQueueFull:
      return "queue-full";
    case NackReason::kNoSuchEndpoint:
      return "no-such-endpoint";
    case NackReason::kBadKey:
      return "bad-key";
    case NackReason::kStaleEpoch:
      return "stale-epoch";
  }
  return "?";
}

void NicCounters::register_with(obs::MetricsRegistry& reg,
                                const std::string& prefix) {
  data_sent = reg.counter(prefix + ".data_sent");
  data_received = reg.counter(prefix + ".data_received");
  acks_sent = reg.counter(prefix + ".acks_sent");
  acks_received = reg.counter(prefix + ".acks_received");
  nacks_sent = reg.counter(prefix + ".nacks_sent");
  nacks_received = reg.counter(prefix + ".nacks_received");
  retransmissions = reg.counter(prefix + ".retransmissions");
  timeouts = reg.counter(prefix + ".timeouts");
  channel_unbinds = reg.counter(prefix + ".channel_unbinds");
  returned_to_sender = reg.counter(prefix + ".returned_to_sender");
  crc_drops = reg.counter(prefix + ".crc_drops");
  gam_drops = reg.counter(prefix + ".gam_drops");
  duplicates_suppressed = reg.counter(prefix + ".duplicates_suppressed");
  local_deliveries = reg.counter(prefix + ".local_deliveries");
  remap_requests = reg.counter(prefix + ".remap_requests");
  driver_ops = reg.counter(prefix + ".driver_ops");
  msgs_completed = reg.counter(prefix + ".msgs_completed");
  frames_loaded = reg.counter(prefix + ".frames_loaded");
  frames_unloaded = reg.counter(prefix + ".frames_unloaded");
  acks_piggybacked = reg.counter(prefix + ".acks_piggybacked");
  piggy_flushes = reg.counter(prefix + ".piggy_flushes");
  firmware_wakeups = reg.counter(prefix + ".firmware_wakeups");
  for (int i = 0; i < 8; ++i) {
    nacks_sent_by_reason[i] =
        reg.counter(prefix + ".nacks_sent_by_reason." + std::to_string(i));
  }
  rtt_ns = reg.histogram(prefix + ".rtt_ns");
}

Nic::Nic(sim::Engine& engine, myrinet::Fabric& fabric, NodeId node,
         NicConfig config)
    : engine_(&engine),
      fabric_(&fabric),
      station_(&fabric.station(node)),
      node_(node),
      config_(config),
      sbus_(engine, config_),
      work_(engine),
      rx_(engine),
      driver_ops_(engine),
      frames_(static_cast<std::size_t>(config.endpoint_frames)),
      rng_(engine.rng().split()),
      metric_prefix_("host." + std::to_string(node) + ".nic") {
  counters_.register_with(engine.metrics(), metric_prefix_);
  // Pull-style gauges sampled at snapshot time; the stall watchdogs
  // (obs/watchdog.hpp) read these against the counter deltas.
  engine.metrics().gauge_fn(metric_prefix_ + ".busy_channels", [this] {
    return static_cast<double>(busy_channel_count());
  });
  engine.metrics().gauge_fn(metric_prefix_ + ".send_backlog", [this] {
    return static_cast<double>(send_backlog());
  });
  engine.metrics().gauge_fn(metric_prefix_ + ".rx_backlog", [this] {
    return static_cast<double>(rx_.size());
  });
}

Nic::~Nic() {
  engine_->metrics().remove_fn_prefix(metric_prefix_ + ".");
}

void Nic::start() {
  assert(!started_);
  started_ = true;
  station_->on_receive = [this](myrinet::Packet p) {
    rx_.post(std::move(p));
    work_.notify_all();
  };
  engine_->spawn(firmware_loop());
}

sim::Time Nic::doorbell(EndpointState& ep) {
  const sim::Time now = engine_->now();
  if (!ep.resident()) return now;
  const sim::Duration window = config_.doorbell_coalesce;
  if (window <= 0) {
    work_.notify_all();
    return now;
  }
  // Doorbell moderation: the first ring in a window passes through and
  // opens the window; later rings within it are folded into one deferred
  // ring at the window's end. The firmware drains every pending descriptor
  // per wakeup, so a folded ring loses no work — the deferred event is
  // only needed for the case where the firmware went idle again before
  // the window closed (otherwise its notify finds no waiter and is free).
  if (doorbell_deferred_) return doorbell_gate_;  // deferred ring scheduled
  if (now >= doorbell_gate_) {
    doorbell_gate_ = now + window;
    work_.notify_all();
    return now;
  }
  doorbell_deferred_ = true;
  engine_->at(doorbell_gate_, [this] {
    doorbell_deferred_ = false;
    doorbell_gate_ = engine_->now() + config_.doorbell_coalesce;
    work_.notify_all();
  });
  return doorbell_gate_;
}

void Nic::submit(DriverOp op) {
  driver_ops_.post(std::move(op));
  work_.notify_all();
}

int Nic::free_frames() const {
  int n = 0;
  for (const auto& f : frames_) {
    if (f.ep == nullptr) ++n;
  }
  return n;
}

void Nic::reboot() {
  VNET_TRACE_INSTANT(engine_->tracer(), "fault", "nic_reboot",
                     static_cast<int>(node_));
  // Transport state is lost: channels restart in a new epoch; the receive
  // side re-synchronizes on the first frame it sees (§5.1). Message-level
  // receive state (dedup windows, reassembly) lives in the endpoints, which
  // are host-memory backed, and survives.
  std::uint32_t max_epoch = epoch_base_;
  for (auto& [peer, chans] : channels_) {
    for (auto& ch : chans) {
      max_epoch = std::max(max_epoch, ch.epoch);
      // A fragment in flight on a dying channel would otherwise be stranded
      // in kInFlight forever (no channel remembers it); hand it back to the
      // send scheduler.
      if (ch.busy && ch.src_ep != nullptr) {
        if (SendDescriptor* d = find_descriptor(*ch.src_ep, ch.pending.msg_id)) {
          const std::uint32_t idx = ch.pending.frag_index;
          if (idx < d->frag_state.size() &&
              d->frag_state[idx] == SendDescriptor::FragState::kInFlight) {
            d->frag_state[idx] = SendDescriptor::FragState::kUnsent;
          }
        }
      }
    }
  }
  channels_.clear();
  recv_channels_.clear();
  channel_cursor_.clear();
  due_retransmits_.clear();
  ++channel_table_gen_;
  epoch_base_ = max_epoch + 1;
  work_.notify_all();
}

// --------------------------------------------------------------- firmware

sim::Process Nic::firmware_loop() {
  for (;;) {
    bool worked = false;
    // Receive processing first: keeps acknowledgments flowing and receive
    // queues draining. Bounded burst so sends are not starved.
    for (int i = 0; i < config_.burst_rx; ++i) {
      auto pkt = rx_.try_receive();
      if (!pkt) break;
      worked |= co_await handle_rx(std::move(*pkt));
    }
    // Driver/NI protocol operations are interleaved with user messages
    // (§5.3): one per loop.
    if (auto op = driver_ops_.try_receive()) {
      co_await handle_driver(std::move(*op));
      worked = true;
    }
    // Retransmission timers.
    while (!due_retransmits_.empty()) {
      ChannelState* ch = due_retransmits_.front();
      due_retransmits_.pop_front();
      worked |= co_await handle_retransmit(ch);
    }
    // Weighted round-robin endpoint service (§5.2), bursting up to
    // burst_service transmissions before receive processing and timers
    // get another turn.
    for (int i = 0; i < config_.burst_service; ++i) {
      if (!co_await service_step()) break;
      worked = true;
    }
    // Quiescence checks for pending unload/destroy (§5.3).
    if (!pending_unloads_.empty()) worked |= co_await process_unloads();
    if (!worked) {
      // The work_pending() re-check closes a lost-wakeup race: a doorbell
      // can ring while this loop is mid-step (awaiting an instruction
      // charge), in which case its notify finds no waiter and would
      // otherwise be lost.
      if (!work_pending()) {
        co_await work_.wait();
      } else {
        // Descriptors have unsent fragments but every one is blocked on a
        // busy channel (stop-and-wait, awaiting acks). Spinning here would
        // charge instruction time per loop with nothing to do; every
        // unblocking transition notifies work_, so doze with a bounded
        // timeout as a liveness net.
        co_await work_.wait_for(config_.blocked_poll_interval);
      }
      // Counts resumes out of idle/doze: a coalesced doorbell must produce
      // exactly one wakeup (regression guard for lost/double wakeups).
      counters_.firmware_wakeups.inc();
    }
  }
}

bool Nic::work_pending() const {
  if (!rx_.empty() || !driver_ops_.empty() || !due_retransmits_.empty()) {
    return true;
  }
  for (const auto& slot : frames_) {
    if (slot.ep != nullptr && has_sendable(*slot.ep)) return true;
  }
  return false;
}

bool Nic::has_sendable(const EndpointState& ep) const {
  if (draining_.count(ep.id) != 0) return false;
  for (const auto& d : ep.send_queue) {
    if (d.has_unsent()) return true;
  }
  return false;
}

sim::Task<bool> Nic::service_step() {
  // One transmission per dispatch-loop iteration, so receive processing
  // and timers interleave with sending (the LANai's DMA engines overlap).
  // The loiter state keeps the interface on the same endpoint for up to
  // loiter_descriptors / loiter_time (§5.2) before it rotates onward.
  if (loiter_ep_ != nullptr) {
    EndpointState& ep = *loiter_ep_;
    const bool still_eligible = ep.resident() && has_sendable(ep) &&
                                loiter_budget_ > 0 &&
                                engine_->now() < loiter_deadline_;
    if (still_eligible) {
      const bool sent = co_await service_endpoint(ep);
      if (sent) {
        --loiter_budget_;
        co_return true;
      }
    }
    loiter_ep_ = nullptr;  // budget spent, drained, or blocked: rotate
  }

  const std::size_t n = frames_.size();
  if (n == 0) co_return false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (rr_cursor_ + i) % n;
    EndpointState* ep = frames_[slot].ep;
    if (ep == nullptr || !has_sendable(*ep)) continue;
    // Dispatch overhead for selecting the endpoint. (Real firmware keeps a
    // doorbell bitmask; scanning idle frames is near-free.)
    co_await charge(config_.instr_endpoint_visit);
    const bool sent = co_await service_endpoint(*ep);
    rr_cursor_ = (slot + 1) % n;
    if (sent) {
      loiter_ep_ = ep;
      loiter_budget_ = config_.loiter_descriptors - 1;
      loiter_deadline_ = engine_->now() + config_.loiter_time;
      co_return true;
    }
    // This endpoint is blocked (e.g. all channels to its destination are
    // busy); keep scanning so one stuck endpoint cannot idle the wire.
  }
  co_return false;
}

sim::Task<bool> Nic::service_endpoint(EndpointState& ep) {
  // Transmit the next pending fragment of this endpoint, if any.
  SendDescriptor* next = nullptr;
  for (auto& d : ep.send_queue) {
    if (d.has_unsent()) {
      next = &d;
      break;
    }
  }
  if (next == nullptr) co_return false;
  co_return co_await start_fragment(ep, *next);
}

sim::Task<bool> Nic::start_fragment(EndpointState& ep, SendDescriptor& desc) {
  if (engine_->spans().enabled()) {
    engine_->spans().point(
        obs::SpanRecorder::key(static_cast<std::uint32_t>(node_), ep.id,
                               desc.msg_id),
        obs::SpanPoint::kNicPickup, static_cast<std::int64_t>(engine_->now()));
  }
  if (engine_->attr().enabled()) {
    // First pickup only (repeat stamps are ignored): rebinds and later
    // fragments attribute to the initial tx-service wait.
    engine_->attr().stamp(
        obs::AttrRecorder::key(static_cast<std::uint32_t>(node_), ep.id,
                               desc.msg_id),
        obs::Stage::kNicPickup, static_cast<std::int64_t>(engine_->now()),
        static_cast<std::int64_t>(engine_->events_processed()));
  }
  // Resolve the destination: requests go through the translation table
  // (§3.1), replies directly to the requester.
  NodeId dst_node;
  EpId dst_ep;
  std::uint64_t key = 0;
  if (desc.body.is_request) {
    if (desc.dest_index >= ep.translations.size() ||
        !ep.translations[desc.dest_index].valid) {
      return_to_sender(ep, desc.msg_id, NackReason::kNoSuchEndpoint);
      co_return true;
    }
    const Translation& tr = ep.translations[desc.dest_index];
    dst_node = tr.node;
    dst_ep = tr.ep;
    key = tr.key;
  } else {
    dst_node = desc.reply_to.node;
    dst_ep = desc.reply_to.ep;
    key = desc.reply_to.key;  // return authorization from the request
  }

  if (dst_node == node_) {
    co_return co_await deliver_local(ep, desc, dst_ep, key);
  }

  const bool gam = !config_.reliable_transport;
  ChannelState* ch = nullptr;
  // A reboot() during any of the suspensions below frees the channel table
  // `ch` points into; the generation check invalidates it (the fragment is
  // left/reset kUnsent, so a post-reboot service pass resends it).
  const std::uint64_t table_gen = channel_table_gen_;
  if (!gam) {
    ch = find_free_channel(dst_node);
    if (ch == nullptr) co_return false;  // all channels busy: try later
  }

  const int instr_preamble =
      config_.instr_send_descriptor +
      (config_.defensive_checks ? config_.instr_defensive : 0);
  // Fragment chosen before the instruction charges: the descriptor cannot
  // complete during them (this fragment is not in flight yet), and a
  // reboot mid-charge is caught by the generation check below.
  const int frag_idx = desc.next_unsent();
  assert(frag_idx >= 0);
  const auto frag = static_cast<std::uint32_t>(frag_idx);
  const std::uint32_t mtu = config_.max_packet_payload;
  const std::uint32_t frag_bytes =
      desc.body.bulk_bytes == 0
          ? 0
          : std::min(mtu, desc.body.bulk_bytes - frag * mtu);

  if (frag_bytes > 0) {
    // Bulk payload is staged host -> NIC SRAM across the SBUS between
    // descriptor fetch and packet build (§4.1: all transfers staged
    // through NIC memory).
    co_await charge(instr_preamble);
    co_await sbus_.transfer(frag_bytes, SbusDma::Dir::kReadHost);
    co_await charge(config_.instr_build_packet);
  } else {
    // Short message, nothing to stage: descriptor fetch and packet build
    // are one uninterrupted instruction block — charge them as one
    // scheduled event instead of two back-to-back ones.
    co_await charge(instr_preamble + config_.instr_build_packet);
  }
  if (desc.first_sent_at < 0) desc.first_sent_at = engine_->now();
  if (!gam && table_gen != channel_table_gen_) {
    co_return true;  // rebooted while staging: nothing bound yet
  }

  Frame f;
  f.kind = FrameKind::kData;
  f.src_node = node_;
  f.src_ep = ep.id;
  f.dst_node = dst_node;
  f.dst_ep = dst_ep;
  f.key = key;
  f.src_tag = ep.tag;
  f.body = desc.body;
  f.reply_to = desc.reply_to;
  f.msg_id = desc.msg_id;
  f.frag_index = frag;
  f.frag_count = desc.frag_count;
  f.frag_bytes = frag_bytes;
  f.timestamp = nic_timestamp();

  desc.frag_state[frag] = SendDescriptor::FragState::kInFlight;

  if (gam) {
    co_await inject(f);
    counters_.data_sent.inc();
    // No acknowledgment: the first-generation interface assumes a
    // reliable network. The descriptor completes as soon as it is sent.
    desc.frag_state[frag] = SendDescriptor::FragState::kAcked;
    ++desc.frags_acked;
    if (desc.complete()) {
      counters_.msgs_completed.inc();
      ++ep.msgs_sent;
      sweep_send_queue(ep);
      if (ep.on_send_progress) ep.on_send_progress();
    }
    co_return true;
  }

  f.channel = ch->index;
  f.seq = ch->next_seq++;
  f.epoch = ch->epoch;
  ch->busy = true;
  ch->src_ep = &ep;
  ch->consecutive_retries = 0;
  ch->sent_at = engine_->now();
  ch->was_retransmitted = false;

  // §8 extension: carry pending acknowledgments for this peer.
  if (config_.piggyback_acks) {
    auto pit = pending_acks_.find(dst_node);
    if (pit != pending_acks_.end() && !pit->second.empty()) {
      auto& pending = pit->second;
      const auto take = std::min<std::size_t>(
          pending.size(), static_cast<std::size_t>(config_.piggyback_max));
      f.piggy_acks.assign(pending.begin(),
                          pending.begin() + static_cast<std::ptrdiff_t>(take));
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(take));
      counters_.acks_piggybacked.inc(take);
    }
  }
  ch->pending = f;

  co_await inject(f);
  counters_.data_sent.inc();
  if (table_gen != channel_table_gen_) {
    co_return true;  // rebooted during injection: channel table is gone
  }
  arm_timer(*ch, backoff_for(*ch, 0));
  co_return true;
}

sim::Task<bool> Nic::deliver_local(EndpointState& src, SendDescriptor& desc,
                                   EpId dst_ep, std::uint64_t key) {
  const bool gam = !config_.reliable_transport;
  co_await charge((gam ? config_.gam_instr_send : config_.instr_send_descriptor) +
                  (gam ? config_.gam_instr_recv : config_.instr_recv_process));

  auto finish_ok = [&] {
    desc.frag_state.assign(desc.frag_count, SendDescriptor::FragState::kAcked);
    desc.frags_acked = desc.frag_count;
    counters_.msgs_completed.inc();
    counters_.local_deliveries.inc();
    ++src.msgs_sent;
    sweep_send_queue(src);
    if (src.on_send_progress) src.on_send_progress();
  };

  auto it = directory_.find(dst_ep);
  if (it == directory_.end()) {
    return_to_sender(src, desc.msg_id, NackReason::kNoSuchEndpoint);
    co_return true;
  }
  EndpointState& dst = *it->second;
  if (!gam && key != dst.tag) {
    return_to_sender(src, desc.msg_id, NackReason::kBadKey);
    co_return true;
  }
  if (!dst.resident()) {
    // A local reference to a non-resident endpoint triggers activation
    // (§4.1) and the message waits, exactly like a remote arrival.
    request_make_resident(dst.id);
    co_return false;
  }
  auto& queue = desc.body.is_request ? dst.recv_requests : dst.recv_replies;
  const auto reserved = desc.body.is_request ? dst.nic_reserved_requests
                                             : dst.nic_reserved_replies;
  const auto depth = static_cast<std::size_t>(desc.body.is_request
                                                  ? config_.recv_request_depth
                                                  : config_.recv_reply_depth);
  if (queue.size() + reserved >= depth) {
    if (gam) {
      // GAM drops on overrun; user-level credits are the only protection.
      counters_.gam_drops.inc();
      ++dst.recv_overruns;
      finish_ok();  // the send itself "succeeded"
      co_return true;
    }
    ++dst.recv_overruns;
    co_return false;  // retry later (stays in the send queue)
  }

  // Bulk payload crosses the SBUS twice for a local message (out of the
  // source region, into the destination region).
  if (desc.body.bulk_bytes > 0) {
    co_await sbus_.transfer(desc.body.bulk_bytes, SbusDma::Dir::kReadHost);
    co_await sbus_.transfer(desc.body.bulk_bytes, SbusDma::Dir::kWriteHost);
  }

  RecvEntry entry;
  entry.body = desc.body;
  entry.reply_to = desc.body.is_request
                       ? ReplyToken{node_, src.id, desc.msg_id, src.tag}
                       : ReplyToken{};
  entry.src_node = node_;
  entry.src_ep = src.id;
  entry.msg_id = desc.msg_id;
  entry.arrived_at = engine_->now();
  queue.push_back(std::move(entry));
  ++dst.msgs_delivered;
  if (engine_->attr().enabled()) {
    // Local delivery skips the wire boundaries; the flight keeps a gap.
    engine_->attr().stamp(
        obs::AttrRecorder::key(static_cast<std::uint32_t>(node_), src.id,
                               desc.msg_id),
        obs::Stage::kRxDeposit, static_cast<std::int64_t>(engine_->now()),
        static_cast<std::int64_t>(engine_->events_processed()));
  }
  if (engine_->spans().enabled()) {
    // The span keeps the same gap; critical_path() charges the whole
    // pickup→deposit interval to tx_service for local traffic.
    engine_->spans().point(
        obs::SpanRecorder::key(static_cast<std::uint32_t>(node_), src.id,
                               desc.msg_id),
        obs::SpanPoint::kRxDeposit, static_cast<std::int64_t>(engine_->now()));
  }
  finish_ok();
  if (dst.on_arrival) dst.on_arrival();
  co_return true;
}

sim::Task<> Nic::inject(Frame f) {
  const auto& routes = fabric_->routes(node_, f.dst_node);
  assert(!routes.empty());
  // Channels are statically bound to routes (§5.3): FIFO per channel.
  const auto& route = routes[f.channel % routes.size()];

  const bool own_data = f.kind == FrameKind::kData && f.src_node == node_;
  const EpId attr_ep = f.src_ep;
  const std::uint64_t attr_msg = f.msg_id;

  myrinet::Packet p;
  p.src = node_;
  p.dst = f.dst_node;
  p.route = route;
  p.wire_bytes = f.wire_bytes();
  p.id = next_packet_id_++;
  p.payload = std::make_unique<Frame>(std::move(f));

  while (!station_->can_inject()) {
    co_await station_->drained().wait();
  }
  if (own_data && engine_->attr().enabled()) {
    // Stamped after the back-pressure wait: injection-queue stalls count
    // as NIC tx service, not as wire latency.
    engine_->attr().stamp(
        obs::AttrRecorder::key(static_cast<std::uint32_t>(node_), attr_ep,
                               attr_msg),
        obs::Stage::kWireInject, static_cast<std::int64_t>(engine_->now()),
        static_cast<std::int64_t>(engine_->events_processed()));
  }
  if (own_data && engine_->spans().enabled()) {
    engine_->spans().point(
        obs::SpanRecorder::key(static_cast<std::uint32_t>(node_), attr_ep,
                               attr_msg),
        obs::SpanPoint::kWireInject, static_cast<std::int64_t>(engine_->now()));
  }
  station_->inject(std::move(p));
}

// --------------------------------------------------------------- receive

sim::Task<bool> Nic::handle_rx(myrinet::Packet pkt) {
  auto* frame = dynamic_cast<Frame*>(pkt.payload.get());
  if (frame == nullptr) co_return true;  // foreign traffic: ignore
  frame->delivered_at = pkt.delivered_at;
  frame->wire_hops = pkt.hops;
  if (pkt.corrupt) {
    // CRC failure: drop silently; the sender's timer recovers it.
    counters_.crc_drops.inc();
    co_await charge(16);
    co_return true;
  }
  if (frame->kind == FrameKind::kData) {
    co_await handle_data(std::move(*frame));
  } else {
    co_await handle_ack_or_nack(*frame);
  }
  co_return true;
}

sim::Task<> Nic::handle_data(Frame f) {
  const bool gam = !config_.reliable_transport;
  counters_.data_received.inc();
  for (const auto& pa : f.piggy_acks) {
    co_await apply_positive_ack(f.src_node, pa, /*standalone=*/false);
  }
  co_await charge((gam ? config_.gam_instr_recv : config_.instr_recv_process) +
                  (!gam && config_.defensive_checks ? config_.instr_defensive
                                                    : 0));

  RecvChannelState* rcs = nullptr;
  if (!gam) {
    rcs = &recv_channels_[peer_key(f.src_node, f.channel)];
    if (f.epoch < rcs->epoch) {
      // Stale incarnation: tell the sender to resynchronize (§5.1).
      Frame nack_template = f;
      nack_template.epoch = rcs->epoch;
      co_await send_nack(nack_template, NackReason::kStaleEpoch);
      co_return;
    }
    if (f.epoch > rcs->epoch) {
      // The peer re-initialized; adopt its new epoch (self-synchronizing).
      rcs->epoch = f.epoch;
      rcs->have_seq = false;
    }
    if (rcs->have_seq && rcs->last_seq == f.seq) {
      // Duplicate of an already-accepted frame (our ack was lost): re-ack.
      counters_.duplicates_suppressed.inc();
      co_await send_ack(f);
      co_return;
    }
  }

  auto it = directory_.find(f.dst_ep);
  if (it == directory_.end()) {
    if (!gam) co_await send_nack(f, NackReason::kNoSuchEndpoint);
    co_return;
  }
  EndpointState& ep = *it->second;
  if (!gam && f.key != ep.tag) {
    co_await send_nack(f, NackReason::kBadKey);
    co_return;
  }
  if (!ep.resident()) {
    // Message arrival for a non-resident endpoint: nack it and ask the
    // driver to activate the endpoint (§4.1, §4.2). The sender retries.
    request_make_resident(ep.id);
    if (gam) {
      counters_.gam_drops.inc();
    } else {
      co_await send_nack(f, NackReason::kNotResident);
    }
    co_return;
  }

  // Exactly-once across channel rebinds and receiver reboots: suppress
  // message-level duplicates. The window lives in the endpoint (host
  // memory), so it survives the loss of NIC SRAM state.
  if (!gam) {
    auto& window = ep.delivered_from[src_key(f.src_node, f.src_ep)];
    if (window.contains(f.msg_id)) {
      counters_.duplicates_suppressed.inc();
      co_await send_ack(f);
      co_return;
    }
  }

  auto& queue = f.body.is_request ? ep.recv_requests : ep.recv_replies;
  auto& reserved = f.body.is_request ? ep.nic_reserved_requests
                                     : ep.nic_reserved_replies;
  const auto depth = static_cast<std::size_t>(
      f.body.is_request ? config_.recv_request_depth
                        : config_.recv_reply_depth);

  const auto rkey = std::make_tuple(f.src_node, f.src_ep, f.msg_id);
  auto rit = ep.reassembly.find(rkey);
  const bool first_frag = (rit == ep.reassembly.end());
  // The LANai has only a few packet buffers between the wire and the
  // endpoint queues; frames already received but not yet demultiplexed
  // count against the queue up to that buffering, otherwise overruns
  // would hide in NIC memory. (Counting the *whole* backlog would let a
  // retry storm at high fan-in nack 100% of arrivals forever.)
  const std::size_t staged = std::min<std::size_t>(rx_.size(), 8);
  if (first_frag && queue.size() + reserved + staged >= depth) {
    ++ep.recv_overruns;
    if (gam) {
      counters_.gam_drops.inc();
    } else {
      co_await send_nack(f, NackReason::kQueueFull);
    }
    co_return;
  }

  co_await accept_fragment(ep, f, queue, reserved);
  if (!gam) {
    // Re-resolve the receive channel: a reboot during the SBUS staging
    // above destroys the table `rcs` pointed into. A fresh entry (epoch 0)
    // simply adopts the sender's epoch, as any first frame would.
    RecvChannelState& rc = recv_channels_[peer_key(f.src_node, f.channel)];
    if (f.epoch >= rc.epoch) {
      rc.epoch = f.epoch;
      rc.have_seq = true;
      rc.last_seq = f.seq;
    }
    co_await send_ack(f);
  }
}

sim::Task<> Nic::accept_fragment(EndpointState& ep, const Frame& f,
                                 std::deque<RecvEntry>& queue,
                                 std::uint32_t& reserved) {
  // Bulk payload is staged NIC SRAM -> host memory across the SBUS.
  if (f.frag_bytes > 0) {
    co_await sbus_.transfer(f.frag_bytes, SbusDma::Dir::kWriteHost);
  }

  auto deliver = [&](RecvEntry entry) {
    queue.push_back(std::move(entry));
    ++ep.msgs_delivered;
    if (config_.reliable_transport) {
      ep.delivered_from[src_key(f.src_node, f.src_ep)].remember(f.msg_id);
    }
    if (engine_->attr().enabled()) {
      const std::uint64_t k = obs::AttrRecorder::key(
          static_cast<std::uint32_t>(f.src_node), f.src_ep, f.msg_id);
      if (f.delivered_at >= 0) {
        // The frame doesn't carry an event count from its delivery event,
        // so both boundary counters are read here at deposit: the rx
        // service events fold into the `wire` event column and `nic_rx`
        // reads ~0 events (its *time* column is still exact).
        engine_->attr().stamp(
            k, obs::Stage::kWireDeliver,
            static_cast<std::int64_t>(f.delivered_at),
            static_cast<std::int64_t>(engine_->events_processed()));
      }
      engine_->attr().stamp(
          k, obs::Stage::kRxDeposit, static_cast<std::int64_t>(engine_->now()),
          static_cast<std::int64_t>(engine_->events_processed()));
    }
    if (engine_->spans().enabled()) {
      const std::uint64_t k = obs::SpanRecorder::key(
          static_cast<std::uint32_t>(f.src_node), f.src_ep, f.msg_id);
      if (f.delivered_at >= 0) {
        engine_->spans().point(k, obs::SpanPoint::kWireDeliver,
                               static_cast<std::int64_t>(f.delivered_at));
        engine_->spans().set_wire_hops(k, f.wire_hops);
      }
      engine_->spans().point(k, obs::SpanPoint::kRxDeposit,
                             static_cast<std::int64_t>(engine_->now()));
    }
    if (ep.on_arrival) ep.on_arrival();
  };

  auto make_entry = [&] {
    RecvEntry entry;
    entry.body = f.body;
    entry.reply_to = f.body.is_request
                         ? ReplyToken{f.src_node, f.src_ep, f.msg_id, f.src_tag}
                         : ReplyToken{};
    entry.src_node = f.src_node;
    entry.src_ep = f.src_ep;
    entry.msg_id = f.msg_id;
    entry.arrived_at = engine_->now();
    return entry;
  };

  if (f.frag_count <= 1) {
    deliver(make_entry());
    co_return;
  }

  const auto rkey = std::make_tuple(f.src_node, f.src_ep, f.msg_id);
  auto rit = ep.reassembly.find(rkey);
  if (rit == ep.reassembly.end()) {
    Reassembly r;
    r.entry = make_entry();
    r.is_request = f.body.is_request;
    r.frags.insert(f.frag_index);
    ++reserved;  // hold a queue slot for the completed message
    ep.reassembly.emplace(rkey, std::move(r));
    co_return;
  }
  Reassembly& r = rit->second;
  if (!r.frags.insert(f.frag_index).second) co_return;  // duplicate frag
  if (r.frags.size() == f.frag_count) {
    RecvEntry entry = std::move(r.entry);
    entry.arrived_at = engine_->now();
    ep.reassembly.erase(rit);
    if (reserved > 0) --reserved;
    deliver(std::move(entry));
  }
}

sim::Task<> Nic::send_ack(const Frame& data) {
  if (config_.piggyback_acks) {
    // Queue the acknowledgment; it rides the next data frame toward the
    // sender, or a standalone flush goes out after piggyback_delay.
    Frame::PiggyAck pa;
    pa.channel = data.channel;
    pa.seq = data.seq;
    pa.epoch = data.epoch;
    pa.timestamp = data.timestamp;
    pa.msg_id = data.msg_id;
    pa.frag_index = data.frag_index;
    pending_acks_[data.src_node].push_back(pa);
    schedule_piggy_flush(data.src_node);
    co_return;
  }
  co_await charge(config_.instr_ack_generate);
  Frame a;
  a.kind = FrameKind::kAck;
  a.src_node = node_;
  a.src_ep = data.dst_ep;
  a.dst_node = data.src_node;
  a.dst_ep = data.src_ep;
  a.channel = data.channel;
  a.epoch = data.epoch;
  a.acked_seq = data.seq;
  a.timestamp = data.timestamp;  // echoed for the sender's matching rule
  a.msg_id = data.msg_id;
  counters_.acks_sent.inc();
  co_await inject(std::move(a));
}

sim::Task<> Nic::send_nack(const Frame& data, NackReason r) {
  co_await charge(config_.instr_ack_generate);
  Frame a;
  a.kind = FrameKind::kNack;
  a.nack = r;
  a.src_node = node_;
  a.src_ep = data.dst_ep;
  a.dst_node = data.src_node;
  a.dst_ep = data.src_ep;
  a.channel = data.channel;
  a.epoch = data.epoch;
  a.acked_seq = data.seq;
  a.timestamp = data.timestamp;
  a.msg_id = data.msg_id;
  counters_.nacks_sent.inc();
  counters_.nacks_sent_by_reason[static_cast<int>(r)].inc();
  co_await inject(std::move(a));
}

sim::Task<> Nic::handle_ack_or_nack(const Frame& f) {
  if (f.kind == FrameKind::kAck) {
    // Positive acks (standalone or carrying extra piggybacked entries) all
    // go through the same validation/application path; a stale main entry
    // must not discard the piggybacked ones.
    Frame::PiggyAck main;
    main.channel = f.channel;
    main.seq = f.acked_seq;
    main.epoch = f.epoch;
    main.timestamp = f.timestamp;
    main.msg_id = f.msg_id;
    main.frag_index = f.frag_index;
    co_await apply_positive_ack(f.src_node, main, /*standalone=*/true);
    for (const auto& pa : f.piggy_acks) {
      co_await apply_positive_ack(f.src_node, pa, /*standalone=*/false);
    }
    co_return;
  }

  co_await charge(config_.instr_ack_process +
                  (config_.defensive_checks ? config_.instr_defensive : 0));
  auto cit = channels_.find(f.src_node);
  if (cit == channels_.end() || f.channel >= cit->second.size()) {
    co_return;  // unknown channel (e.g. after reboot): ignore
  }
  ChannelState& ch = cit->second[f.channel];

  if (f.nack == NackReason::kStaleEpoch) {
    // Peer is ahead of us: adopt its epoch and retransmit (§5.1).
    if (ch.busy && f.epoch > ch.epoch) {
      ch.epoch = f.epoch;
      ch.pending.epoch = f.epoch;
      ch.timer_gen++;
      disarm_timer(ch);
      due_retransmits_.push_back(&ch);
    }
    counters_.nacks_received.inc();
    co_return;
  }

  // Validate against the most recent (re)transmission: the echoed
  // timestamp must match (§5.3's accounting rule for in-flight copies).
  if (!ch.busy || f.epoch != ch.epoch || f.acked_seq != ch.pending.seq ||
      f.timestamp != ch.pending.timestamp) {
    co_return;  // stale nack for an older copy
  }

  counters_.nacks_received.inc();
  if (is_fatal(f.nack)) {
    EndpointState* ep = ch.src_ep;
    const std::uint64_t msg = ch.pending.msg_id;
    ch.busy = false;
    ch.timer_gen++;
    disarm_timer(ch);
    return_to_sender(*ep, msg, f.nack);
    co_return;
  }
  // Transient: back off and retransmit via the timer path. The explicit
  // nack tells us the frame arrived but could not be delivered, so the
  // retry delay starts from the (short) nack base, not the loss timeout.
  ch.consecutive_retries++;
  ch.timer_gen++;
  disarm_timer(ch);
  arm_timer(ch, nack_backoff(ch.consecutive_retries));
}

sim::Duration Nic::nack_backoff(int consecutive) const {
  const int exp = std::min(consecutive, config_.max_backoff_exponent);
  const auto base = config_.nack_retry_delay << exp;
  const double jitter = 0.75 + 0.5 * const_cast<Nic*>(this)->rng_.uniform();
  return static_cast<sim::Duration>(static_cast<double>(base) * jitter);
}

void Nic::complete_fragment_ack(ChannelState& ch, const Frame& ack) {
  EndpointState& ep = *ch.src_ep;
  ch.busy = false;
  ch.timer_gen++;
  disarm_timer(ch);
  ch.consecutive_retries = 0;
  SendDescriptor* desc = find_descriptor(ep, ack.msg_id);
  work_.notify_all();  // a channel freed: senders may proceed
  if (desc == nullptr) return;  // descriptor aborted meanwhile
  const std::uint32_t idx = ch.pending.frag_index;
  if (idx >= desc->frag_state.size() ||
      desc->frag_state[idx] != SendDescriptor::FragState::kInFlight) {
    return;  // defensive: fragment already accounted for
  }
  desc->frag_state[idx] = SendDescriptor::FragState::kAcked;
  desc->frags_acked++;
  if (desc->complete()) {
    counters_.msgs_completed.inc();
    ++ep.msgs_sent;
    sweep_send_queue(ep);
    if (ep.on_send_progress) ep.on_send_progress();
  }
}

// ---------------------------------------------------------- retransmission

void Nic::arm_timer(ChannelState& ch, sim::Duration timeout) {
  // Capture the channel by key, not by reference: reboot() destroys the
  // channel table, and a timer closure holding a reference into the old
  // vectors would fire on freed memory.
  const NodeId peer = ch.peer;
  const std::uint16_t index = ch.index;
  const std::uint64_t gen = ch.timer_gen;
  const std::uint64_t table_gen = channel_table_gen_;
  ch.timer_ev = engine_->after(timeout, [this, peer, index, gen, table_gen] {
    if (table_gen != channel_table_gen_) return;  // armed before a reboot
    auto it = channels_.find(peer);
    if (it == channels_.end() || index >= it->second.size()) return;
    ChannelState& ch = it->second[index];
    if (ch.busy && ch.timer_gen == gen) {
      due_retransmits_.push_back(&ch);
      work_.notify_all();
    }
  });
}

void Nic::disarm_timer(ChannelState& ch) {
  // The timer_gen guard alone already makes a stale firing harmless; the
  // O(1) cancel additionally removes the dead event from the queue so acked
  // channels leave nothing behind. Cancelling a fired/stale handle is a
  // no-op.
  if (ch.timer_ev.valid()) {
    engine_->cancel(ch.timer_ev);
    ch.timer_ev = sim::EventHandle{};
  }
}

sim::Task<bool> Nic::handle_retransmit(ChannelState* ch) {
  if (!ch->busy) co_return false;  // acked while queued: stale
  // As in start_fragment: `ch` dies if reboot() runs while this coroutine
  // is suspended, so re-validate after every suspension.
  const std::uint64_t table_gen = channel_table_gen_;
  co_await charge(config_.instr_timer_scan);
  if (table_gen != channel_table_gen_) co_return true;
  EndpointState& ep = *ch->src_ep;
  SendDescriptor* desc = find_descriptor(ep, ch->pending.msg_id);
  if (desc == nullptr) {
    ch->busy = false;
    ch->timer_gen++;
    co_return true;
  }

  // Prolonged absence of acknowledgments: unrecoverable transport
  // condition — return the message to its sender (§3.2, §5.1).
  if (engine_->now() - desc->first_sent_at > config_.unreachable_timeout) {
    return_to_sender(ep, desc->msg_id, NackReason::kNone);
    co_return true;
  }

  counters_.timeouts.inc();
  ch->consecutive_retries++;
  if (ch->consecutive_retries > config_.retransmit_unbind_limit) {
    // Unbind the message from the channel so the channel can be reused;
    // a later retransmission reacquires and rebinds (§5.1).
    counters_.channel_unbinds.inc();
    ch->busy = false;
    ch->timer_gen++;
    const std::uint32_t idx = ch->pending.frag_index;
    if (idx < desc->frag_state.size()) {
      desc->frag_state[idx] = SendDescriptor::FragState::kUnsent;
    }
    work_.notify_all();
    co_return true;
  }

  co_await charge(config_.instr_build_packet);
  if (table_gen != channel_table_gen_) co_return true;
  ch->pending.timestamp = nic_timestamp();
  ch->timer_gen++;
  ch->sent_at = engine_->now();
  ch->was_retransmitted = true;  // Karn: no RTT sample from this exchange
  counters_.retransmissions.inc();
  if (engine_->spans().enabled()) {
    // Retransmission edge: the span keeps its first-pickup/first-inject
    // boundaries and records the retry as causal metadata instead.
    engine_->spans().edge(
        obs::SpanRecorder::key(static_cast<std::uint32_t>(node_), ep.id,
                               desc->msg_id),
        obs::SpanEdge::Kind::kRetransmit,
        static_cast<std::int64_t>(engine_->now()), ch->consecutive_retries);
  }
  co_await inject(ch->pending);
  if (table_gen != channel_table_gen_) co_return true;
  arm_timer(*ch, backoff_for(*ch, ch->consecutive_retries));
  co_return true;
}

sim::Duration Nic::data_timeout(NodeId peer) const {
  if (config_.adaptive_timeout) {
    auto it = rtt_.find(peer);
    if (it != rtt_.end() && it->second.valid) {
      return it->second.timeout(config_.adaptive_timeout_min);
    }
  }
  return config_.retransmit_timeout;
}

sim::Duration Nic::backoff_for(const ChannelState& ch, int consecutive) const {
  const int exp = std::min(consecutive, config_.max_backoff_exponent);
  const auto base = data_timeout(ch.peer) << exp;
  const double jitter = 0.75 + 0.5 * const_cast<Nic*>(this)->rng_.uniform();
  return static_cast<sim::Duration>(static_cast<double>(base) * jitter);
}

sim::Task<> Nic::apply_positive_ack(NodeId peer, const Frame::PiggyAck& pa,
                                    bool standalone) {
  co_await charge((standalone ? config_.instr_ack_process
                              : config_.instr_piggy_ack) +
                  (standalone && config_.defensive_checks
                       ? config_.instr_defensive
                       : 0));
  auto cit = channels_.find(peer);
  if (cit == channels_.end() || pa.channel >= cit->second.size()) co_return;
  ChannelState& ch = cit->second[pa.channel];
  if (!ch.busy || pa.epoch != ch.epoch || pa.seq != ch.pending.seq ||
      pa.timestamp != ch.pending.timestamp) {
    co_return;  // stale
  }
  counters_.acks_received.inc();
  if (config_.adaptive_timeout && !ch.was_retransmitted) {
    rtt_[peer].sample(engine_->now() - ch.sent_at);
    counters_.rtt_ns.record(static_cast<double>(engine_->now() - ch.sent_at));
  }
  Frame pseudo;
  pseudo.msg_id = pa.msg_id;
  pseudo.frag_index = pa.frag_index;
  complete_fragment_ack(ch, pseudo);
}

void Nic::schedule_piggy_flush(NodeId peer) {
  if (piggy_flush_scheduled_.count(peer) != 0) return;
  piggy_flush_scheduled_.insert(peer);
  engine_->after(config_.piggyback_delay, [this, peer] {
    piggy_flush_scheduled_.erase(peer);
    auto it = pending_acks_.find(peer);
    if (it == pending_acks_.end() || it->second.empty()) return;
    engine_->spawn([](Nic* nic, NodeId p) -> sim::Process {
      co_await nic->flush_pending_acks(p);
    }(this, peer));
  });
}

sim::Task<> Nic::flush_pending_acks(NodeId peer) {
  auto it = pending_acks_.find(peer);
  if (it == pending_acks_.end() || it->second.empty()) co_return;
  auto pending = std::move(it->second);
  it->second.clear();
  counters_.piggy_flushes.inc();
  co_await charge(config_.instr_ack_generate);
  // One standalone ack frame carries the first entry in its main fields
  // and the rest piggybacked.
  Frame a;
  a.kind = FrameKind::kAck;
  a.src_node = node_;
  a.dst_node = peer;
  a.channel = pending[0].channel;
  a.epoch = pending[0].epoch;
  a.acked_seq = pending[0].seq;
  a.timestamp = pending[0].timestamp;
  a.msg_id = pending[0].msg_id;
  a.frag_index = pending[0].frag_index;
  a.piggy_acks.assign(pending.begin() + 1, pending.end());
  counters_.acks_sent.inc();
  co_await inject(std::move(a));
}

// ------------------------------------------------------------- driver ops

sim::Task<> Nic::handle_driver(DriverOp op) {
  bump_lamport(op.lamport);
  counters_.driver_ops.inc();
  co_await charge(config_.instr_driver_op);
  switch (op.kind) {
    case DriverOp::Kind::kCreate:
      directory_[op.ep->id] = op.ep;
      if (op.done) op.done->open();
      break;
    case DriverOp::Kind::kLoad: {
      EndpointState& ep = *op.ep;
      if (!ep.resident()) {
        assert(op.frame >= 0 &&
               op.frame < static_cast<int>(frames_.size()) &&
               frames_[op.frame].ep == nullptr);
        // The endpoint image moves host -> NIC SRAM over the SBUS.
        co_await sbus_.transfer(kEndpointImageBytes, SbusDma::Dir::kReadHost);
        frames_[op.frame].ep = &ep;
        ep.frame = op.frame;
        counters_.frames_loaded.inc();
        VNET_TRACE_INSTANT(engine_->tracer(), "endpoint", "ep_load",
                           static_cast<int>(node_), 0,
                           {{"ep", static_cast<std::int64_t>(ep.id)},
                            {"frame", op.frame}});
        resident_requested_.erase(ep.id);
      }
      if (op.done) op.done->open();
      work_.notify_all();
      break;
    }
    case DriverOp::Kind::kUnload:
    case DriverOp::Kind::kDestroy:
      // Quiescence required first (§5.3): park it; the firmware loop
      // completes it once all in-flight fragments are accounted for.
      draining_.insert(op.ep->id);
      pending_unloads_.push_back(op);
      break;
  }
}

bool Nic::endpoint_quiescent(const EndpointState& ep) const {
  for (const auto& [peer, chans] : channels_) {
    for (const auto& ch : chans) {
      if (ch.busy && ch.src_ep == &ep) return false;
    }
  }
  return true;
}

sim::Task<bool> Nic::process_unloads() {
  for (std::size_t i = 0; i < pending_unloads_.size(); ++i) {
    EndpointState& ep = *pending_unloads_[i].ep;
    if (!endpoint_quiescent(ep)) continue;
    DriverOp op = pending_unloads_[i];
    pending_unloads_.erase(pending_unloads_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    co_await charge(config_.instr_driver_op);
    if (loiter_ep_ == &ep) loiter_ep_ = nullptr;  // about to unbind / free
    if (ep.resident()) {
      // Image moves NIC SRAM -> host memory.
      co_await sbus_.transfer(kEndpointImageBytes, SbusDma::Dir::kWriteHost);
      VNET_TRACE_INSTANT(engine_->tracer(), "endpoint", "ep_unload",
                         static_cast<int>(node_), 0,
                         {{"ep", static_cast<std::int64_t>(ep.id)},
                          {"frame", ep.frame}});
      frames_[ep.frame].ep = nullptr;
      ep.frame = -1;
      counters_.frames_unloaded.inc();
    }
    if (op.kind == DriverOp::Kind::kDestroy) {
      directory_.erase(ep.id);
      resident_requested_.erase(ep.id);
      // Receiver-side reassembly state lives in the endpoint itself, so it
      // dies with it; nothing NIC-side to purge.
    }
    draining_.erase(ep.id);
    if (op.done) op.done->open();
    co_return true;
  }
  co_return false;
}

void Nic::request_make_resident(EpId ep) {
  if (resident_requested_.count(ep) != 0) return;
  if (draining_.count(ep) != 0) return;  // being torn down: don't reload
  resident_requested_.insert(ep);
  counters_.remap_requests.inc();
  ++lamport_;
  if (on_nic_request) {
    on_nic_request(NicRequest{NicRequest::Kind::kMakeResident, ep, lamport_});
  }
}

// ----------------------------------------------------------------- helpers

Nic::ChannelState* Nic::find_free_channel(NodeId peer) {
  auto& chans = channels_to(peer);
  // Rotate through the channels instead of always reusing the lowest free
  // index: channels are statically bound to routes, so after a channel
  // unbind (dead spine, §5.1) the rebind must land on a *different*
  // channel/route or the message would retry into the same black hole.
  std::size_t& cursor = channel_cursor_[peer];
  for (std::size_t i = 0; i < chans.size(); ++i) {
    ChannelState& ch = chans[(cursor + i) % chans.size()];
    if (!ch.busy) {
      cursor = (static_cast<std::size_t>(ch.index) + 1) % chans.size();
      return &ch;
    }
  }
  return nullptr;
}

std::vector<Nic::ChannelState>& Nic::channels_to(NodeId peer) {
  auto it = channels_.find(peer);
  if (it == channels_.end()) {
    std::vector<ChannelState> chans(
        static_cast<std::size_t>(config_.channels_per_peer));
    for (std::size_t i = 0; i < chans.size(); ++i) {
      chans[i].peer = peer;
      chans[i].index = static_cast<std::uint16_t>(i);
      chans[i].epoch = epoch_base_;
    }
    it = channels_.emplace(peer, std::move(chans)).first;
  }
  return it->second;
}

SendDescriptor* Nic::find_descriptor(EndpointState& ep, std::uint64_t msg_id) {
  for (auto& d : ep.send_queue) {
    if (d.msg_id == msg_id && !d.finished()) return &d;
  }
  return nullptr;
}

void Nic::sweep_send_queue(EndpointState& ep) {
  while (!ep.send_queue.empty() && ep.send_queue.front().finished()) {
    ep.send_queue.pop_front();
  }
}

void Nic::abort_descriptor(EndpointState& ep, std::uint64_t msg_id) {
  for (auto& [peer, chans] : channels_) {
    for (auto& ch : chans) {
      if (ch.busy && ch.src_ep == &ep && ch.pending.msg_id == msg_id) {
        ch.busy = false;
        ch.timer_gen++;
        disarm_timer(ch);
      }
    }
  }
}

void Nic::return_to_sender(EndpointState& ep, std::uint64_t msg_id,
                           NackReason reason) {
  SendDescriptor* desc = find_descriptor(ep, msg_id);
  if (desc == nullptr) return;
  SendDescriptor copy = *desc;
  desc->returned = true;
  abort_descriptor(ep, msg_id);
  ++ep.msgs_returned;
  counters_.returned_to_sender.inc();
  sweep_send_queue(ep);
  if (ep.on_return_to_sender) ep.on_return_to_sender(std::move(copy), reason);
  if (ep.on_send_progress) ep.on_send_progress();
  work_.notify_all();
}

}  // namespace vnet::lanai
