#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "myrinet/packet.hpp"

namespace vnet::lanai {

using myrinet::NodeId;

/// Endpoint id, unique within one node.
using EpId = std::uint32_t;
inline constexpr EpId kInvalidEp = 0xffffffffu;

/// Maximum short-message word arguments (AM-II short messages carry up to
/// 4 64-bit arguments in our model; 16 "payload" bytes on the wire, which
/// is the message size used by the LogP microbenchmarks).
inline constexpr std::size_t kMaxArgs = 4;

/// Identifies the requester so a handler can issue its reply (split-phase
/// RPC, §3). Carried with every request and every delivered message.
struct ReplyToken {
  NodeId node = myrinet::kInvalidNode;
  EpId ep = kInvalidEp;
  std::uint64_t msg_id = 0;
  /// Return authorization: the requester's endpoint tag, granted to the
  /// handler by the act of sending the request. Replies are stamped with
  /// it so the requester's NIC accepts them (§3.1).
  std::uint64_t key = 0;
  bool valid() const { return node != myrinet::kInvalidNode; }
};

/// The user-visible message content, carried end-to-end.
struct MsgBody {
  std::uint8_t handler = 0;
  bool is_request = true;
  std::array<std::uint64_t, kMaxArgs> args{};
  /// Bulk-transfer byte count (0 for short messages). The bytes themselves
  /// are optional: benches count them, correctness tests carry them.
  std::uint32_t bulk_bytes = 0;
  std::uint32_t bulk_offset = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> bulk_data;
};

/// Why a message could not be delivered. Transient reasons are retried by
/// the transport; fatal ones trigger return-to-sender (§3.2).
enum class NackReason : std::uint8_t {
  kNone = 0,
  kNotResident,     // transient: destination endpoint not in a NIC frame
  kQueueFull,       // transient: receive queue overrun
  kNoSuchEndpoint,  // fatal
  kBadKey,          // fatal: protection tag mismatch
  kStaleEpoch,      // transient: channel re-synchronizing
};

constexpr bool is_fatal(NackReason r) {
  return r == NackReason::kNoSuchEndpoint || r == NackReason::kBadKey;
}

const char* to_string(NackReason r);

enum class FrameKind : std::uint8_t { kData = 0, kAck, kNack };

/// Transport header bytes added to every packet (addresses, key, channel,
/// sequence, 32-bit timestamp — §5.1).
inline constexpr std::uint32_t kTransportHeaderBytes = 32;
/// Wire size of an acknowledgment packet.
inline constexpr std::uint32_t kAckWireBytes =
    myrinet::kLinkHeaderBytes + 24;
/// Wire bytes of a short message's argument block.
inline constexpr std::uint32_t kShortPayloadBytes = 16;

/// One transport frame on the wire — the payload the Myrinet fabric
/// carries for us.
struct Frame : myrinet::Payload {
  FrameKind kind = FrameKind::kData;

  NodeId src_node = myrinet::kInvalidNode;
  EpId src_ep = kInvalidEp;
  NodeId dst_node = myrinet::kInvalidNode;
  EpId dst_ep = kInvalidEp;
  std::uint64_t key = 0;
  /// The sending endpoint's own tag (return authorization for replies).
  std::uint64_t src_tag = 0;

  // Stop-and-wait channel state (§5.1).
  std::uint16_t channel = 0;
  std::uint8_t seq = 0;
  /// Channel incarnation, for self-synchronizing re-initialization after a
  /// reboot or unbind (§5.1).
  std::uint32_t epoch = 0;
  /// 32-bit NIC clock stamped at (re)transmission and echoed by acks.
  std::uint32_t timestamp = 0;

  // Data frames.
  MsgBody body;
  ReplyToken reply_to;
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  std::uint32_t frag_bytes = 0;  ///< bulk bytes carried by this fragment

  // Ack/Nack frames.
  NackReason nack = NackReason::kNone;
  std::uint8_t acked_seq = 0;

  /// Not a wire field: when the carrying packet reached the destination
  /// station (copied from Packet::delivered_at by handle_rx), the wire
  /// boundary for latency attribution (obs/attr.hpp). -1 for local frames.
  sim::Time delivered_at = -1;
  /// Not a wire field: link hops the carrying packet traversed (copied
  /// from Packet::hops by handle_rx); annotates captured spans.
  std::uint8_t wire_hops = 0;

  /// §8 extension: acknowledgments piggybacked on a data frame (empty
  /// unless NicConfig::piggyback_acks is enabled).
  struct PiggyAck {
    std::uint16_t channel = 0;
    std::uint8_t seq = 0;
    std::uint32_t epoch = 0;
    std::uint32_t timestamp = 0;
    std::uint64_t msg_id = 0;
    std::uint32_t frag_index = 0;
  };
  std::vector<PiggyAck> piggy_acks;

  /// Total size of this frame on the wire (piggybacked acks cost 8 B each).
  std::uint32_t wire_bytes() const {
    if (kind != FrameKind::kData) return kAckWireBytes;
    return myrinet::kLinkHeaderBytes + kTransportHeaderBytes +
           kShortPayloadBytes + frag_bytes +
           static_cast<std::uint32_t>(piggy_acks.size()) * 8;
  }

  /// Frames are heap-allocated once per injected packet (Packet::payload);
  /// freed storage parks on a process-wide free list (the simulator is
  /// single-threaded) so steady-state sends allocate nothing.
  static void* operator new(std::size_t size);
  static void operator delete(void* p, std::size_t size) noexcept;
};

}  // namespace vnet::lanai
