#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lanai/config.hpp"
#include "lanai/endpoint_state.hpp"
#include "lanai/frame.hpp"
#include "lanai/sbus.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vnet::lanai {

/// Bytes occupied by one endpoint image: the LANai 4.3 reserves 64 KB of
/// SRAM for 8 endpoint frames (§4.1), so 8 KB each. Loading/unloading an
/// endpoint moves this much across the SBUS.
inline constexpr std::uint32_t kEndpointImageBytes = 8192;

/// An operation the segment driver asks the NIC to perform, sent over the
/// permanently-resident system endpoint (§4.3). The driver awaits `done`.
struct DriverOp {
  enum class Kind {
    kCreate,   ///< register an endpoint in the NIC directory (non-resident)
    kDestroy,  ///< quiesce, unbind and forget an endpoint
    kLoad,     ///< make resident: DMA the image in, bind to `frame`
    kUnload,   ///< quiesce, DMA the image out, unbind
  };
  Kind kind;
  EndpointState* ep = nullptr;
  int frame = -1;
  std::uint64_t lamport = 0;
  sim::Gate* done = nullptr;
};

/// A request the NIC makes of the driver (§4.3), e.g. activating a
/// non-resident endpoint in response to message arrival.
struct NicRequest {
  enum class Kind { kMakeResident };
  Kind kind = Kind::kMakeResident;
  EpId ep = kInvalidEp;
  std::uint64_t lamport = 0;
};

/// Registry-backed counter handles the firmware bumps on the hot path.
/// Field names double as the metric leaf names under "host.<node>.nic.".
struct NicCounters {
  obs::Counter data_sent, data_received, acks_sent, acks_received, nacks_sent,
      nacks_received, retransmissions, timeouts, channel_unbinds,
      returned_to_sender, crc_drops, gam_drops, duplicates_suppressed,
      local_deliveries, remap_requests, driver_ops, msgs_completed,
      frames_loaded, frames_unloaded, acks_piggybacked, piggy_flushes,
      firmware_wakeups;
  obs::Counter nacks_sent_by_reason[8];
  /// Transport round-trip samples (ack echo), in nanoseconds.
  obs::Histogram rtt_ns;

  void register_with(obs::MetricsRegistry& reg, const std::string& prefix);
};

/// The simulated LANai network interface.
///
/// One firmware coroutine implements the dispatch loop of §5: it drains
/// arriving packets, interleaves driver/NI protocol operations, retransmits
/// timed-out channels, and services resident endpoints with a weighted
/// round-robin discipline that loiters on busy endpoints for at most
/// `loiter_descriptors` messages / `loiter_time` (§5.2). Every action
/// charges instructions at 37.5 MHz, which is what makes the NIC — not the
/// host — the rate-limiting stage for small-message streams (Fig 3's g).
///
/// With `config.reliable_transport == false` the same device runs the
/// first-generation GAM firmware used as the baseline in Figs 3 and 4:
/// single endpoint, no keys, no acknowledgments or retransmission.
class Nic {
 public:
  Nic(sim::Engine& engine, myrinet::Fabric& fabric, NodeId node,
      NicConfig config);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Unregisters this NIC's pull-style gauges; they capture `this` and
  /// must not outlive it (the registry samples them at snapshot time).
  ~Nic();

  /// Spawns the firmware loop. Call once after construction.
  void start();

  NodeId node() const { return node_; }
  const NicConfig& config() const { return config_; }
  SbusDma& sbus() { return sbus_; }

  /// 32-bit NIC clock (~1 us granularity), stamped into link headers and
  /// echoed by acknowledgments (§5.1).
  std::uint32_t nic_timestamp() const {
    return static_cast<std::uint32_t>(engine_->now() >> 10);
  }

  // ---- host-side interface ----

  /// Doorbell: the host wrote a send descriptor into a resident endpoint.
  /// Returns the time the ring reaches the firmware — `now` when it passes
  /// straight through, the end of the coalesce window when it is folded
  /// into a deferred ring. Span capture stamps this as the kGateOpen
  /// boundary, splitting doorbell-moderation wait from tx queue wait.
  sim::Time doorbell(EndpointState& ep);

  // ---- driver/NI protocol (§4.3) ----

  /// Enqueues a driver operation; the NIC interleaves it with message
  /// processing and opens `op.done` when complete.
  void submit(DriverOp op);

  /// Upcall to the segment driver (make-resident requests).
  std::function<void(NicRequest)> on_nic_request;

  /// Lamport clock value of the NIC, for event-order resolution between
  /// the driver and NIC (§4.3).
  std::uint64_t lamport() const { return lamport_; }

  // ---- introspection ----

  int endpoint_frames() const { return static_cast<int>(frames_.size()); }
  EndpointState* frame_occupant(int i) const { return frames_[i].ep; }
  int free_frames() const;
  bool directory_contains(EpId ep) const {
    return directory_.count(ep) != 0;
  }

  // Debug introspection.
  std::size_t pending_unload_count() const { return pending_unloads_.size(); }
  int busy_channel_count() const {
    int n = 0;
    for (const auto& [peer, chans] : channels_) {
      for (const auto& ch : chans) {
        if (ch.busy) ++n;
      }
    }
    return n;
  }
  std::size_t resident_requested_count() const {
    return resident_requested_.size();
  }
  std::size_t draining_count() const { return draining_.size(); }

  /// Unfinished send descriptors across every endpoint this NIC knows;
  /// exported as the `send_backlog` gauge the frame-loiter watchdog reads.
  std::size_t send_backlog() const {
    std::size_t n = 0;
    for (const auto& [id, ep] : directory_) {
      for (const auto& d : ep->send_queue) {
        if (!d.finished()) ++n;
      }
    }
    return n;
  }

  /// Current smoothed RTT estimate to `peer` (0 if none yet); §8 extension.
  sim::Duration rtt_estimate(NodeId peer) const {
    auto it = rtt_.find(peer);
    return it != rtt_.end() && it->second.valid
               ? static_cast<sim::Duration>(it->second.srtt_ns)
               : 0;
  }

  /// Simulates a NIC reboot: all channel sequencing state (NIC SRAM) is
  /// lost and epochs advance, exercising the self-synchronizing
  /// re-initialization of §5.1. Endpoint bindings and message-level receive
  /// state (dedup windows, reassembly) survive — they belong to the
  /// endpoints, which live in host memory. In-flight fragments on the lost
  /// channels are marked unsent so the rebuilt channels retransmit them.
  void reboot();

 private:
  struct ChannelState {
    NodeId peer = myrinet::kInvalidNode;
    std::uint16_t index = 0;
    bool busy = false;
    std::uint8_t next_seq = 0;
    std::uint32_t epoch = 1;
    std::uint64_t timer_gen = 0;
    sim::EventHandle timer_ev;   // pending retransmit timer, if armed
    int consecutive_retries = 0;
    Frame pending;               // retransmission template
    EndpointState* src_ep = nullptr;
    std::size_t route_index = 0;
    sim::Time sent_at = 0;       // of the most recent (re)transmission
    bool was_retransmitted = false;  // Karn: skip RTT samples
  };

  /// §8 extension: per-peer Jacobson RTT estimator fed by ack timestamps.
  struct RttEstimator {
    bool valid = false;
    double srtt_ns = 0;
    double rttvar_ns = 0;
    void sample(sim::Duration rtt) {
      const auto r = static_cast<double>(rtt);
      if (!valid) {
        valid = true;
        srtt_ns = r;
        rttvar_ns = r / 2;
      } else {
        const double err = r - srtt_ns;
        srtt_ns += 0.125 * err;
        rttvar_ns += 0.25 * ((err < 0 ? -err : err) - rttvar_ns);
      }
    }
    sim::Duration timeout(sim::Duration floor_value) const {
      const auto t = static_cast<sim::Duration>(srtt_ns + 4 * rttvar_ns);
      return t < floor_value ? floor_value : t;
    }
  };

  /// Receive-side sequencing state per (peer, channel).
  struct RecvChannelState {
    bool have_seq = false;
    std::uint8_t last_seq = 0;
    std::uint32_t epoch = 0;
  };

  struct FrameSlot {
    EndpointState* ep = nullptr;
  };

  using PeerKey = std::uint64_t;
  static PeerKey peer_key(NodeId node, std::uint16_t ch) {
    return (static_cast<PeerKey>(static_cast<std::uint32_t>(node)) << 16) | ch;
  }

  // --- firmware ---
  sim::Process firmware_loop();
  bool work_pending() const;
  bool has_sendable(const EndpointState& ep) const;
  sim::Task<bool> service_step();
  sim::Task<bool> service_endpoint(EndpointState& ep);
  sim::Task<bool> start_fragment(EndpointState& ep, SendDescriptor& desc);
  sim::Task<bool> deliver_local(EndpointState& src, SendDescriptor& desc,
                                EpId dst_ep, std::uint64_t key);
  sim::Task<bool> handle_rx(myrinet::Packet pkt);
  sim::Task<> handle_data(Frame f);
  sim::Task<> handle_ack_or_nack(const Frame& f);
  sim::Task<> handle_driver(DriverOp op);
  sim::Task<bool> handle_retransmit(ChannelState* ch);
  sim::Task<> accept_fragment(EndpointState& ep, const Frame& f,
                              std::deque<RecvEntry>& queue,
                              std::uint32_t& reserved);
  sim::Task<> send_ack(const Frame& data);
  sim::Task<> send_nack(const Frame& data, NackReason r);
  sim::Task<> apply_positive_ack(NodeId peer, const Frame::PiggyAck& pa,
                                 bool standalone);
  void schedule_piggy_flush(NodeId peer);
  sim::Task<> flush_pending_acks(NodeId peer);
  sim::Duration data_timeout(NodeId peer) const;
  sim::Task<> inject(Frame f);
  sim::Task<bool> process_unloads();
  void request_make_resident(EpId ep);

  // --- helpers ---
  sim::Duration instr(int count) const { return config_.instr(count); }
  sim::Task<> charge(int instructions) {
    co_await engine_->delay(instr(instructions));
  }
  ChannelState* find_free_channel(NodeId peer);
  std::vector<ChannelState>& channels_to(NodeId peer);
  void arm_timer(ChannelState& ch, sim::Duration timeout);
  void disarm_timer(ChannelState& ch);
  sim::Duration backoff_for(const ChannelState& ch, int consecutive) const;
  sim::Duration nack_backoff(int consecutive) const;
  SendDescriptor* find_descriptor(EndpointState& ep, std::uint64_t msg_id);
  void sweep_send_queue(EndpointState& ep);
  void complete_fragment_ack(ChannelState& ch, const Frame& ack);
  void abort_descriptor(EndpointState& ep, std::uint64_t msg_id);
  void return_to_sender(EndpointState& ep, std::uint64_t msg_id,
                        NackReason reason);
  bool endpoint_quiescent(const EndpointState& ep) const;
  void bump_lamport(std::uint64_t seen) {
    lamport_ = (seen > lamport_ ? seen : lamport_) + 1;
  }

  sim::Engine* engine_;
  myrinet::Fabric* fabric_;
  myrinet::Station* station_;
  NodeId node_;
  NicConfig config_;
  SbusDma sbus_;

  sim::CondVar work_;
  /// Doorbell moderation state (see doorbell()): earliest time the next
  /// immediate ring may pass, and whether a deferred ring is in flight.
  sim::Time doorbell_gate_ = 0;
  bool doorbell_deferred_ = false;
  sim::Mailbox<myrinet::Packet> rx_;
  sim::Mailbox<DriverOp> driver_ops_;
  std::deque<ChannelState*> due_retransmits_;
  std::vector<DriverOp> pending_unloads_;

  std::vector<FrameSlot> frames_;
  std::size_t rr_cursor_ = 0;
  // Loiter state (§5.2): the endpoint currently being served, with its
  // remaining descriptor/time budget. Persists across dispatch-loop
  // iterations so receive processing interleaves with transmission.
  EndpointState* loiter_ep_ = nullptr;
  int loiter_budget_ = 0;
  sim::Time loiter_deadline_ = 0;
  std::unordered_map<EpId, EndpointState*> directory_;
  std::unordered_set<EpId> draining_;
  std::unordered_set<EpId> resident_requested_;

  std::unordered_map<NodeId, std::vector<ChannelState>> channels_;
  std::unordered_map<PeerKey, RecvChannelState> recv_channels_;
  // Per-peer rotation cursor for channel allocation, so a message unbound
  // from a dead route fails over to a different channel (and, on a
  // fat-tree, a different spine) when it rebinds.
  std::unordered_map<NodeId, std::size_t> channel_cursor_;
  // Bumped by reboot(); retransmit timers from before a reboot carry the
  // old value and disarm themselves instead of touching rebuilt channels.
  std::uint64_t channel_table_gen_ = 0;
  std::unordered_map<NodeId, RttEstimator> rtt_;
  std::unordered_map<NodeId, std::vector<Frame::PiggyAck>> pending_acks_;
  std::unordered_set<NodeId> piggy_flush_scheduled_;

  std::uint64_t lamport_ = 0;
  std::uint32_t epoch_base_ = 1;
  std::uint64_t next_packet_id_ = 1;
  sim::Rng rng_;
  std::string metric_prefix_;
  NicCounters counters_;
  bool started_ = false;
};

}  // namespace vnet::lanai
