#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vnet::lanai {

/// Instruction-cost and resource parameters of the simulated LANai 4.3
/// network interface (§2: 37.5 MHz embedded processor, 1 MB SRAM, two
/// network DMA engines and a single SBUS DMA engine).
///
/// The firmware charges these instruction counts for each action; all of
/// Fig 3's virtualization costs (gap x2.21, +23% round trip, +1.1 us of
/// defensive checks) emerge from them. The counts were calibrated against
/// the paper's measured LogP parameters — see EXPERIMENTS.md.
struct NicConfig {
  // ----- processor -----
  /// 37.5 MHz -> 26.67 ns per (average) instruction.
  double ns_per_instruction = 1000.0 / 37.5;

  /// Endpoint frames resident in NIC SRAM. The LANai 4.3 reserves 64 KB for
  /// 8 frames; newer interfaces support 96 (§4.1).
  int endpoint_frames = 8;

  // ----- transport (virtual-network firmware, §5.1) -----
  /// When false the NIC runs the first-generation GAM firmware: single
  /// endpoint, no keys, no acks/timeouts (assumes a reliable network).
  bool reliable_transport = true;

  /// Error checking and "defensive firmware practices" (§6.1) — adds
  /// roughly 1.1 us to L and g when enabled; ablatable.
  bool defensive_checks = true;

  /// Stop-and-wait logical channels per peer interface (§5.1): they mask
  /// ack latency and exploit multi-path routing.
  int channels_per_peer = 24;

  /// Base retransmission timeout (no response at all — must exceed worst
  /// case receive-side DMA queueing); backoff doubles it per consecutive
  /// loss (randomized +/-25%) up to max_backoff_exponent doublings.
  sim::Duration retransmit_timeout = 3 * sim::ms;
  /// Retry delay after an explicit transient NACK (queue overrun,
  /// non-resident endpoint): the receiver told us why, so retry sooner.
  sim::Duration nack_retry_delay = 100 * sim::us;

  /// §8 extension: estimate per-peer round-trip times from the echoed
  /// 32-bit timestamps and schedule retransmissions adaptively
  /// (Jacobson-style srtt + 4*rttvar) instead of the fixed timeout. The
  /// paper names this as enabled by "additional processing power"; it is
  /// off by default to match the published system.
  bool adaptive_timeout = false;
  /// Floor for the adaptive timeout.
  sim::Duration adaptive_timeout_min = 150 * sim::us;
  /// Extra firmware work per ack to maintain the estimator.
  int instr_rtt_estimate = 15;

  /// §8 extension: piggyback pending acknowledgments on reverse-direction
  /// data frames to reduce network occupancy; a standalone ack goes out
  /// only if no data frame departs within `piggyback_delay`. Off by
  /// default to match the published system.
  bool piggyback_acks = false;
  sim::Duration piggyback_delay = 25 * sim::us;
  /// Wire bytes added per piggybacked ack.
  std::uint32_t piggyback_bytes = 8;
  /// Max acks carried per data frame.
  int piggyback_max = 3;
  int max_backoff_exponent = 6;

  /// Consecutive retransmissions before the message is unbound from its
  /// channel so the channel can be reused (§5.1).
  int retransmit_unbind_limit = 8;

  /// Prolonged absence of acknowledgments -> unrecoverable transport
  /// condition -> return to sender (§5.1).
  sim::Duration unreachable_timeout = 1 * sim::sec;

  /// Largest transport payload per packet; longer transfers fragment.
  std::uint32_t max_packet_payload = 4096;

  // ----- service & queueing discipline (§5.2) -----
  /// The weighted round-robin loiter bounds: at most this many descriptors
  /// and this much time on one endpoint before moving on.
  int loiter_descriptors = 64;
  sim::Duration loiter_time = 4 * sim::ms;

  // ----- firmware instruction costs (counts, multiplied by
  //       ns_per_instruction). "vn" = virtual-network firmware,
  //       "gam" = first-generation firmware. -----
  int instr_send_descriptor = 85;  ///< fetch+validate descriptor, translate
  int instr_build_packet = 55;      ///< header build, channel bind, inject
  int instr_ack_process = 95;      ///< ack demux, channel release, timers
  int instr_recv_process = 95;     ///< demux, key check, queue write
  int instr_ack_generate = 75;      ///< build + inject ack/nack
  int instr_timer_scan = 30;        ///< per timer-wheel visit
  int instr_endpoint_visit = 25;    ///< WRR poll of one resident endpoint
  int instr_driver_op = 200;        ///< one driver/NI protocol operation
  int instr_defensive = 21;         ///< extra per packet handled, each side
  int instr_piggy_ack = 40;         ///< processing one piggybacked ack

  int gam_instr_send = 85;  ///< entire GAM send-side packet handling
  int gam_instr_recv = 50;   ///< entire GAM receive-side packet handling

  /// How long the firmware dozes between send-queue re-polls when every
  /// sendable descriptor is blocked on a busy channel (stop-and-wait frags
  /// awaiting acks). Every unblocking transition (ack arrival, channel
  /// release, reboot, link repair) rings the work condvar, so this is a
  /// liveness net, not the wakeup path; it bounds how stale a poll can be
  /// without burning an endpoint-visit charge per loop iteration.
  sim::Duration blocked_poll_interval = 25 * sim::us;

  // ----- batched datapath (doorbell moderation & burst service) -----
  /// Doorbell coalescing window: after a doorbell ring reaches the
  /// firmware, further rings within this interval are folded into one
  /// deferred ring at the window's end instead of notifying per
  /// descriptor. The firmware drains every pending descriptor per wakeup
  /// anyway, so this bounds wakeups — not service — and adds at most one
  /// window of latency to a doorbell that lands while the NIC idles
  /// mid-window. 0 rings on every doorbell (the unmoderated behavior).
  sim::Duration doorbell_coalesce = 2 * sim::us;
  /// Inbound frames drained per firmware dispatch iteration (burst
  /// service). Bounded so receive processing cannot starve sends.
  int burst_rx = 8;
  /// Send descriptors transmitted per dispatch iteration before the
  /// firmware re-drains the receive mailbox and timers.
  int burst_service = 4;

  // ----- SBUS (§6.1: asymmetric DMA rates; PIO for small accesses) -----
  /// NI writing host memory (receive path): 46.8 MB/s hardware limit.
  double sbus_write_ns_per_byte = 1000.0 / 46.8;
  /// NI reading host memory (send path): faster, ~61 MB/s.
  double sbus_read_ns_per_byte = 1000.0 / 61.0;
  /// Fixed per-DMA setup cost.
  sim::Duration sbus_dma_setup = 2 * sim::us;

  // ----- endpoint memory layout (§4.1 / §6.4) -----
  int send_queue_depth = 64;       ///< send descriptors per endpoint
  int recv_request_depth = 32;     ///< request receive queue entries
  int recv_reply_depth = 32;       ///< reply receive queue entries

  sim::Duration instr(int count) const {
    return static_cast<sim::Duration>(count * ns_per_instruction);
  }
};

}  // namespace vnet::lanai
