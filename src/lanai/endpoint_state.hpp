#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lanai/frame.hpp"
#include "sim/time.hpp"

namespace vnet::lanai {

/// One row of an endpoint's translation table (§3.1): maps a small integer
/// index to a (node, endpoint, key) triple. The protected part of the
/// system — the NIC — stamps outgoing messages with the key; the receiving
/// NIC verifies it against the destination endpoint's tag.
struct Translation {
  bool valid = false;
  NodeId node = myrinet::kInvalidNode;
  EpId ep = kInvalidEp;
  std::uint64_t key = 0;
};

/// A message the application has written into an endpoint's send queue.
/// The transport fields at the bottom are owned by the NIC while the
/// message is in flight.
struct SendDescriptor {
  /// For requests: index into the source endpoint's translation table.
  std::uint32_t dest_index = 0;
  /// For replies: the requester's address, taken from the ReplyToken.
  ReplyToken reply_to;
  MsgBody body;
  std::uint64_t msg_id = 0;

  // --- transport progress (NIC-owned) ---
  enum class FragState : std::uint8_t { kUnsent = 0, kInFlight, kAcked };

  /// Per-fragment state array with inline storage for short transfers.
  /// Fragments can be unbound from channels and rebound out of order
  /// (§5.1), so a counter is not enough; messages up to kInline fragments
  /// (16 KB at the default 4 KB payload) track state without touching the
  /// heap, so steady-state sends allocate nothing.
  class FragStates {
   public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    void assign(std::uint32_t n, FragState v) {
      size_ = n;
      if (n > kInline) {
        spill_.assign(n, v);
      } else {
        spill_.clear();
        inline_.fill(v);
      }
    }
    FragState& operator[](std::size_t i) {
      return size_ <= kInline ? inline_[i] : spill_[i];
    }
    FragState operator[](std::size_t i) const {
      return size_ <= kInline ? inline_[i] : spill_[i];
    }
    const FragState* begin() const {
      return size_ <= kInline ? inline_.data() : spill_.data();
    }
    const FragState* end() const { return begin() + size_; }

   private:
    static constexpr std::size_t kInline = 4;
    std::array<FragState, kInline> inline_{};
    std::uint32_t size_ = 0;
    std::vector<FragState> spill_;
  };

  std::uint32_t frag_count = 1;
  std::uint32_t frags_acked = 0;
  FragStates frag_state;
  sim::Time first_sent_at = -1;  ///< for the unreachable timeout
  bool returned = false;         ///< undeliverable; awaiting queue sweep

  bool complete() const { return frags_acked == frag_count; }
  bool finished() const { return returned || complete(); }

  bool has_unsent() const {
    if (finished()) return false;
    if (frag_state.empty()) return true;  // nothing transmitted yet
    for (FragState s : frag_state) {
      if (s == FragState::kUnsent) return true;
    }
    return false;
  }

  /// First fragment not yet handed to a channel, or -1 if none.
  /// Lazily initializes the per-fragment state array.
  int next_unsent() {
    if (frag_state.empty()) {
      frag_state.assign(frag_count, FragState::kUnsent);
    }
    for (std::size_t i = 0; i < frag_state.size(); ++i) {
      if (frag_state[i] == FragState::kUnsent) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A delivered message awaiting the application (one receive-queue entry).
struct RecvEntry {
  MsgBody body;
  ReplyToken reply_to;
  NodeId src_node = myrinet::kInvalidNode;
  EpId src_ep = kInvalidEp;
  /// Sender-side message id (unique per source endpoint); together with
  /// (src_node, src_ep) this names the message end to end, which is what
  /// the chaos delivery ledger keys on.
  std::uint64_t msg_id = 0;
  sim::Time arrived_at = 0;
};

/// Key identifying a remote source endpoint (node, ep) in dedup windows.
inline std::uint64_t source_key(NodeId node, EpId ep) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
         static_cast<std::uint32_t>(ep);
}

/// Recently delivered message ids from one source endpoint, for
/// exactly-once delivery across channel rebinds and NIC reboots.
struct DeliveredWindow {
  static constexpr std::size_t kCapacity = 128;
  std::deque<std::uint64_t> order;
  std::unordered_set<std::uint64_t> set;
  void remember(std::uint64_t id) {
    if (!set.insert(id).second) return;
    order.push_back(id);
    if (order.size() > kCapacity) {
      set.erase(order.front());
      order.pop_front();
    }
  }
  bool contains(std::uint64_t id) const { return set.count(id) != 0; }
};

/// In-progress multi-fragment message at the receiver.
struct Reassembly {
  RecvEntry entry;
  std::unordered_set<std::uint32_t> frags;
  bool is_request = true;
};

/// (src_node, src_ep, msg_id) key for the reassembly table.
using ReassemblyKey = std::tuple<NodeId, EpId, std::uint64_t>;

/// The hardware-visible endpoint: message queues and associated state that
/// reside beneath the programming interface (§3). This exact object is what
/// migrates between host memory and a NIC endpoint frame; in the simulation
/// the *object* stays put and `frame` records where it currently "lives",
/// with the residency-dependent costs charged by the accessing layer.
struct EndpointState {
  NodeId node = myrinet::kInvalidNode;
  EpId id = kInvalidEp;

  /// Protection tag that senders' keys must match for delivery (§3.1).
  std::uint64_t tag = 0;

  /// NIC frame index, or -1 while non-resident.
  int frame = -1;
  bool resident() const { return frame >= 0; }

  std::vector<Translation> translations;

  // Queues; depths are enforced by the writers (see NicConfig).
  std::deque<SendDescriptor> send_queue;
  std::deque<RecvEntry> recv_requests;
  std::deque<RecvEntry> recv_replies;

  // Receive-queue slots reserved by in-progress multi-fragment messages
  // (NIC-owned; counted against the queue depths).
  std::uint32_t nic_reserved_requests = 0;
  std::uint32_t nic_reserved_replies = 0;

  // Message-level receive state. This lives with the endpoint — it pages to
  // host memory with it and survives a NIC reboot — unlike the channel
  // sequencing state, which is NIC-SRAM-volatile and rebuilt by the
  // self-synchronizing re-initialization of §5.1. Keeping the dedup window
  // here is what preserves exactly-once delivery across a receiver reboot:
  // a retransmission whose ack was lost pre-reboot is still recognized.
  std::unordered_map<std::uint64_t, DeliveredWindow> delivered_from;
  std::map<ReassemblyKey, Reassembly> reassembly;

  // --- statistics ---
  std::uint64_t msgs_sent = 0;        ///< fully acknowledged
  std::uint64_t msgs_delivered = 0;   ///< written into our receive queues
  std::uint64_t msgs_returned = 0;    ///< returned to sender
  std::uint64_t recv_overruns = 0;    ///< arrivals nacked for a full queue
  std::uint64_t next_msg_id = 1;

  // --- upcalls into the layers above (wired by am::Endpoint / driver) ---
  /// A message was written into a receive queue.
  std::function<void()> on_arrival;
  /// A send completed (acked) or space appeared in the send queue.
  std::function<void()> on_send_progress;
  /// A message came back undeliverable; the application's handler decides
  /// whether to abort or re-issue (§3.2).
  std::function<void(SendDescriptor, NackReason)> on_return_to_sender;

  std::uint64_t alloc_msg_id() { return next_msg_id++; }
};

}  // namespace vnet::lanai
