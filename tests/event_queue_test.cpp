// EventQueue unit tests: ordering guarantees under the calendar/overflow
// layout, O(1) cancellation semantics, arena block reuse, and a same-seed
// golden run pinning the Fig 3 LogP numbers. The pop order of the queue is
// a pure function of (time, sequence); everything downstream (chaos-matrix
// byte determinism, the checked-in figure numbers) leans on that, so these
// tests treat any ordering deviation as a correctness bug, not a tuning
// regression.

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "apps/logp.hpp"
#include "cluster/config.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"

namespace {

using namespace vnet;

// Interleaves pushes, cancels, and pops against a reference model (a sorted
// list of live (time, seq) pairs) across times spanning the calendar
// horizon, the overflow heap, and rebase migrations. The queue must pop
// exactly the model's order.
TEST(EventQueue, InterleavedScheduleCancelMatchesReferenceModel) {
  sim::EventQueue q;
  std::mt19937 rng(0xC0FFEE);
  // Times up to 100 ms: the calendar window is ~4.2 ms, so this exercises
  // bucket inserts, overflow inserts, and several rebases.
  std::uniform_int_distribution<sim::Time> time_dist(0, 100'000'000);
  std::uniform_int_distribution<int> op_dist(0, 99);

  struct ModelEvent {
    sim::Time time;
    std::uint64_t seq;
  };
  std::vector<ModelEvent> model;               // live events
  std::vector<sim::EventHandle> handles;       // parallel to pushes
  std::vector<std::uint64_t> handle_seq;       // seq for each handle
  std::vector<bool> handle_live;
  std::uint64_t next_seq = 0;
  sim::Time now = 0;
  std::vector<std::uint64_t> popped;

  auto pop_one = [&] {
    ASSERT_FALSE(q.empty());
    auto [t, fn] = q.pop();
    ASSERT_GE(t, now);
    now = t;
    fn();
  };

  for (int step = 0; step < 20'000; ++step) {
    const int op = op_dist(rng);
    if (op < 55 || q.empty()) {
      // Push at a uniformly random future time.
      const sim::Time t = now + time_dist(rng);
      const std::uint64_t seq = next_seq++;
      handles.push_back(q.push(t, [seq, &popped] { popped.push_back(seq); }));
      handle_seq.push_back(seq);
      handle_live.push_back(true);
      model.push_back({t, seq});
    } else if (op < 75 && !handles.empty()) {
      // Cancel a random previously pushed event (it may already be gone).
      std::uniform_int_distribution<std::size_t> pick(0, handles.size() - 1);
      const std::size_t i = pick(rng);
      const auto outcome = q.cancel(handles[i]);
      if (handle_live[i]) {
        ASSERT_EQ(outcome, sim::CancelOutcome::kCancelled);
        handle_live[i] = false;
        const std::uint64_t seq = handle_seq[i];
        model.erase(std::find_if(model.begin(), model.end(),
                                 [seq](const ModelEvent& e) {
                                   return e.seq == seq;
                                 }));
      } else {
        ASSERT_NE(outcome, sim::CancelOutcome::kCancelled);
      }
    } else {
      pop_one();
    }
    // Keep handle_live in sync with pops (events fire in model order, so
    // mark fired seqs dead lazily below).
    while (!popped.empty()) {
      const std::uint64_t seq = popped.back();
      popped.pop_back();
      for (std::size_t i = 0; i < handle_seq.size(); ++i) {
        if (handle_seq[i] == seq) handle_live[i] = false;
      }
      // The fired event must have been the model's minimum.
      auto min_it = std::min_element(model.begin(), model.end(),
                                     [](const ModelEvent& a,
                                        const ModelEvent& b) {
                                       return a.time < b.time ||
                                              (a.time == b.time &&
                                               a.seq < b.seq);
                                     });
      ASSERT_NE(min_it, model.end());
      ASSERT_EQ(min_it->seq, seq);
      model.erase(min_it);
    }
    ASSERT_EQ(q.size(), model.size());
  }

  // Drain; remaining events must come out in exact (time, seq) order.
  std::stable_sort(model.begin(), model.end(),
                   [](const ModelEvent& a, const ModelEvent& b) {
                     return a.time < b.time ||
                            (a.time == b.time && a.seq < b.seq);
                   });
  for (const ModelEvent& expect : model) {
    ASSERT_FALSE(q.empty());
    popped.clear();
    auto [t, fn] = q.pop();
    fn();
    ASSERT_EQ(t, expect.time);
    ASSERT_EQ(popped.size(), 1u);
    ASSERT_EQ(popped.front(), expect.seq);
  }
  EXPECT_TRUE(q.empty());
}

// 10k events at one timestamp must fire in exact insertion order — the FIFO
// tie-break that makes whole-cluster runs reproducible.
TEST(EventQueue, SameTimestampTieBreakIsInsertionOrder) {
  sim::EventQueue q;
  constexpr int kEvents = 10'000;
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    q.push(42 * sim::us, [i, &order] { order.push_back(i); });
  }
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    EXPECT_EQ(t, 42 * sim::us);
    fn();
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(order[i], i);
}

// Oversized closures must cycle through the arena's free list rather than
// the heap: under steady churn the block population stops growing, and
// draining the queue returns every block. Run under ASan (scripts/check.sh
// asan) this also proves the arena's recycle path is clean.
TEST(EventQueue, ArenaReusesBlocksUnderChurn) {
  sim::EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes: past SBO, into arena
  std::uint64_t sum = 0;

  for (int i = 0; i < 64; ++i) {
    q.push(i, [big, &sum] { sum += big[0]; });
  }
  const auto warm = q.arena_stats();
  EXPECT_EQ(warm.fallbacks, 0u);
  EXPECT_GE(warm.hits, 64u);

  for (int round = 0; round < 1'000; ++round) {
    sim::Time t;
    {
      auto [when, fn] = q.pop();
      t = when;
      fn();  // destroying fn at scope end returns its block to the arena
    }
    q.push(t + 1000, [big, &sum] { sum += big[1]; });
  }
  const auto churned = q.arena_stats();
  EXPECT_EQ(churned.fallbacks, 0u);
  EXPECT_EQ(churned.hits, warm.hits + 1'000);
  // Steady-state churn must not grow the block population.
  EXPECT_EQ(churned.blocks_total, warm.blocks_total);

  while (!q.empty()) q.pop();
  const auto drained = q.arena_stats();
  EXPECT_EQ(drained.blocks_free, drained.blocks_total);
}

// The four cancel outcomes are distinct, and in particular cancelling an
// event that already fired reports kFired (not kCancelled, not a crash) —
// a regression test for the ack-after-timeout race in the NIC's retransmit
// path.
TEST(EventQueue, CancelOutcomesAreDistinct) {
  sim::EventQueue q;

  // kCancelled then kAlreadyCancelled.
  bool ran = false;
  auto h1 = q.push(100, [&ran] { ran = true; });
  EXPECT_EQ(q.cancel(h1), sim::CancelOutcome::kCancelled);
  EXPECT_EQ(q.cancel(h1), sim::CancelOutcome::kAlreadyCancelled);

  // kFired: cancel after the event ran.
  auto h2 = q.push(200, [&ran] { ran = true; });
  {
    auto [t, fn] = q.pop();
    EXPECT_EQ(t, 200);
    fn();
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.cancel(h2), sim::CancelOutcome::kFired);

  // kUnknown: default handle, and a stale handle whose slot was recycled.
  EXPECT_EQ(q.cancel(sim::EventHandle{}), sim::CancelOutcome::kUnknown);
  auto h3 = q.push(300, [] {});  // reuses h2's slot, bumping its generation
  EXPECT_EQ(h3.slot, h2.slot);
  EXPECT_NE(h3.gen, h2.gen);
  EXPECT_EQ(q.cancel(h2), sim::CancelOutcome::kUnknown);
  EXPECT_EQ(q.cancel(h3), sim::CancelOutcome::kCancelled);
}

// Engine-level handle plumbing: Engine::after returns a cancellable handle
// and Engine::cancel suppresses the callback.
TEST(EventQueue, EngineAfterReturnsCancellableHandle) {
  sim::Engine eng;
  int fired = 0;
  auto h = eng.after(10 * sim::us, [&fired] { ++fired; });
  eng.after(20 * sim::us, [&fired] { fired += 10; });
  EXPECT_EQ(eng.cancel(h), sim::CancelOutcome::kCancelled);
  eng.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(eng.now(), 20 * sim::us);
}

// Same-seed golden run: the queue rewrite (calendar buckets, arena, O(1)
// cancel) must not move a single timestamp in the Fig 3 LogP
// characterization; any drift means the (time, seq) pop order changed.
// g was re-pinned once for the batched datapath: merging the preamble and
// build-packet charges into one delay event removes an event boundary on
// the non-bulk send path, shaving ~0.1 us off the streaming gap. os, or,
// L and rtt were byte-identical across that change.
TEST(EventQueue, Fig3LogpGoldenRunUnchanged) {
  const apps::LogpResult r =
      apps::measure_logp(cluster::NowConfig(2), /*pingpongs=*/40,
                         /*stream=*/200, /*attribute=*/false);
  EXPECT_NEAR(r.os_us, 2.900000000, 1e-8);
  EXPECT_NEAR(r.or_us, 2.600000000, 1e-8);
  EXPECT_NEAR(r.l_us, 8.950000000, 1e-8);
  EXPECT_NEAR(r.g_us, 12.319095477386934, 1e-8);
  EXPECT_NEAR(r.rtt_us, 28.900000000, 1e-8);
}

}  // namespace
