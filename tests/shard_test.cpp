// Parallel deterministic simulation (sim/shard.hpp): the shard router's
// merge order and lookahead guard, cross-shard link FIFO + flow control,
// the shards=1 windowed oracle (digest-identical to the serial engine),
// multi-shard run-to-run determinism, and a 1000-host smoke run.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "am/endpoint.hpp"
#include "chaos/scenario.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "myrinet/link.hpp"
#include "sim/process.hpp"
#include "sim/shard.hpp"
#include "sim/task.hpp"

namespace {

using namespace vnet;

TEST(ShardRouter, MergesInTimeSourceSeqOrder) {
  sim::ShardGroup g(2, 1, 25);
  std::vector<int> order;
  // Same-timestamp records from both shards plus an earlier one: delivery
  // order must be (when, src, seq), independent of post order.
  g.router().post(1, 0, 100, [&] { order.push_back(10); });
  g.router().post(0, 0, 100, [&] { order.push_back(1); });
  g.router().post(0, 0, 100, [&] { order.push_back(2); });
  g.router().post(1, 0, 50, [&] { order.push_back(5); });
  g.router().deliver(g);
  g.engine(0).run();
  EXPECT_EQ(order, (std::vector<int>{5, 1, 2, 10}));
  EXPECT_EQ(g.router().crossings(), 4u);
}

TEST(ShardRouter, RejectsLookaheadViolation) {
  sim::ShardGroup g(2, 1, 25);
  g.router().begin_window(1000);
  // A record strictly inside the executing window could land in a
  // neighbour's already-executed past; post() must refuse it.
  EXPECT_THROW(g.router().post(0, 1, 999, [] {}), std::logic_error);
  // Exactly at the horizon is legal (>= window end).
  EXPECT_NO_THROW(g.router().post(0, 1, 1000, [] {}));
  g.router().end_window();
  // No window active: unconstrained (setup/teardown time).
  EXPECT_NO_THROW(g.router().post(0, 1, 1, [] {}));
}

TEST(ShardGroup, RejectsBadConfig) {
  EXPECT_THROW(sim::ShardGroup(0, 1, 25), std::invalid_argument);
  EXPECT_THROW(sim::ShardGroup(2, 1, 0), std::invalid_argument);
  EXPECT_NO_THROW(sim::ShardGroup(1, 1, 0));  // serial needs no lookahead
}

// A split channel must deliver packets in send order with credit-based
// flow control working across the shard boundary in both directions.
TEST(ShardChannel, CrossShardFifoAndFlowControl) {
  sim::ShardGroup g(2, 1, 25);
  myrinet::LinkParams lp;  // 2 credits, 25 ns propagation
  myrinet::Channel tx(g.engine(0), lp);
  myrinet::Channel rx(g.engine(1), lp);
  tx.make_remote_tx(&g.router(), 0, 1, &rx);
  rx.make_remote_rx(&g.router(), 1, 0, &tx);

  constexpr int kPackets = 32;
  std::vector<myrinet::NodeId> got;
  rx.on_deliver = [&](myrinet::Packet p) {
    got.push_back(p.src);  // src carries the send sequence number
    rx.release_credit();
  };

  int sent = 0;
  std::function<void()> pump = [&] {
    while (sent < kPackets && tx.can_send()) {
      myrinet::Packet p;
      p.src = sent++;
      p.wire_bytes = 64;
      tx.send(std::move(p));
    }
    if (sent < kPackets) tx.notify_when_ready();
  };
  tx.on_tx_ready = pump;
  g.engine(0).at(0, [&] { pump(); });

  g.run_to_completion();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) EXPECT_EQ(got[i], i) << "at " << i;
  // With only 2 credits the sender must have stalled and been woken by
  // routed credit returns, so records crossed in both directions.
  EXPECT_GT(g.router().crossings(), static_cast<std::uint64_t>(kPackets));
}

// The CI determinism oracle: a 1-shard group in force-windows mode runs
// the identical (time, seq)-ordered event stream as the plain serial
// engine, so a full chaos scenario must produce the same replay digest,
// event count, and verdict.
TEST(ShardOracle, ForceWindowsMatchesSerialChaosRun) {
  chaos::ScenarioSpec serial_spec = chaos::standard_scenario("link_flap", 7);
  const chaos::ScenarioResult serial = chaos::run_scenario(serial_spec);

  chaos::ScenarioSpec windowed_spec = chaos::standard_scenario("link_flap", 7);
  auto base = windowed_spec.tweak;
  windowed_spec.tweak = [base](cluster::ClusterConfig& cfg) {
    if (base) base(cfg);
    cfg.shards = 1;
    cfg.shard_force_windows = true;
  };
  const chaos::ScenarioResult windowed = chaos::run_scenario(windowed_spec);

  EXPECT_EQ(serial.replay_digest, windowed.replay_digest);
  EXPECT_EQ(serial.events_processed, windowed.events_processed);
  EXPECT_EQ(serial.counts.injected, windowed.counts.injected);
  EXPECT_EQ(serial.counts.delivered, windowed.counts.delivered);
  EXPECT_EQ(serial.violations, windowed.violations);
  EXPECT_EQ(serial.resolved_at, windowed.resolved_at);
}

// Multi-shard chaos runs (sequential windows — scenarios share host state
// across shards) must be run-to-run deterministic for a fixed seed, and
// the transport invariants must still hold on the sharded fabric.
TEST(ShardDeterminism, TwoShardChaosRunIsReproducible) {
  const auto run = [] {
    chaos::ScenarioSpec spec = chaos::standard_scenario("burst_loss", 3);
    auto base = spec.tweak;
    spec.tweak = [base](cluster::ClusterConfig& cfg) {
      if (base) base(cfg);
      cfg.shards = 2;
      cfg.shard_force_windows = true;
      cfg.shard_threads = false;
    };
    return chaos::run_scenario(spec);
  };
  const chaos::ScenarioResult a = run();
  const chaos::ScenarioResult b = run();
  EXPECT_EQ(a.replay_digest, b.replay_digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.counts.injected, b.counts.injected);
  EXPECT_EQ(a.counts.delivered, b.counts.delivered);
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
  EXPECT_TRUE(b.violations.empty());
}

// A fully in-band AM workload (no cross-thread shared memory: peers are
// found via map_raw's static rendezvous — the first endpoint on every host
// gets EpId 1 — and completion is signalled with "done" messages), safe to
// run on threaded shards.
struct WorkloadOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t handled = 0;
};

WorkloadOutcome run_threaded_workload(int shards, bool threads, int clients,
                                      int requests) {
  cluster::ClusterConfig cfg = cluster::NowConfig(1 + clients);
  cfg.topology = cluster::ClusterConfig::Topology::kFatTree;
  cfg.hosts_per_leaf = 2;
  cfg.spines = 2;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  cluster::Cluster cl(cfg);

  constexpr std::uint64_t kTag = 0xABCD;
  constexpr std::uint32_t kWork = 1, kDone = 2, kReply = 3;
  auto handled = std::make_shared<std::uint64_t>(0);  // server-thread only

  cl.spawn_thread(0, "server", [=](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, kTag);
    int done = 0;
    ep->set_handler(kWork, [=](am::Endpoint&, const am::Message& m) {
      ++*handled;
      m.reply(kReply, {m.arg(0) * 2 + 1});
    });
    ep->set_handler(kDone, [&done](am::Endpoint&, const am::Message&) {
      ++done;
    });
    while (done < clients) {
      if (co_await ep->wait_events_for(t, am::kEventArrivals, 1 * sim::ms)) {
        co_await ep->poll(t, 32);
      }
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  });

  for (int c = 1; c <= clients; ++c) {
    cl.spawn_thread(c, "client", [=](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, kTag + c);
      ep->map_raw(0, /*node=*/0, /*ep=*/1, kTag);
      int replies = 0;
      ep->set_handler(kReply, [&replies](am::Endpoint&, const am::Message&) {
        ++replies;
      });
      for (int i = 0; i < requests; ++i) {
        co_await ep->request(t, 0, kWork, static_cast<std::uint32_t>(i));
      }
      while (replies < requests) co_await ep->poll(t, 16);
      co_await ep->request(t, 0, kDone, 0);
      while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
    });
  }

  cl.run_to_completion();
  WorkloadOutcome out;
  out.digest = cl.replay_digest();
  out.events = cl.events_processed();
  out.handled = *handled;
  return out;
}

TEST(ShardDeterminism, ThreadedRunsAreReproducible) {
  const WorkloadOutcome a = run_threaded_workload(2, true, 6, 40);
  const WorkloadOutcome b = run_threaded_workload(2, true, 6, 40);
  EXPECT_EQ(a.handled, static_cast<std::uint64_t>(6 * 40));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.handled, b.handled);
}

// The threaded scheduler executes the same window schedule as the
// sequential one, so their digests must match exactly — worker threads can
// change wall-clock interleaving but never simulated outcomes.
TEST(ShardDeterminism, ThreadedMatchesSequentialSchedule) {
  const WorkloadOutcome threaded = run_threaded_workload(4, true, 6, 25);
  const WorkloadOutcome sequential = run_threaded_workload(4, false, 6, 25);
  EXPECT_EQ(threaded.digest, sequential.digest);
  EXPECT_EQ(threaded.events, sequential.events);
  EXPECT_EQ(threaded.handled, sequential.handled);
}

TEST(ShardScale, ThousandHostSmoke) {
  cluster::ClusterConfig cfg = cluster::NowConfig(1000);
  cfg.topology = cluster::ClusterConfig::Topology::kFatTree;
  cfg.hosts_per_leaf = 8;
  cfg.spines = 4;
  cfg.shards = 4;
  cfg.shard_threads = true;
  cluster::Cluster cl(cfg);
  EXPECT_EQ(cl.fabric().num_hosts(), 1000);
  EXPECT_EQ(cl.shards(), 4);

  // A cross-leaf (and cross-shard) ping between distant hosts, plus the
  // idle bring-up of the other 998 NICs.
  constexpr std::uint64_t kTag = 0x517E;
  auto got = std::make_shared<std::uint64_t>(0);
  cl.spawn_thread(999, "server", [=](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, kTag);
    ep->set_handler(1, [=](am::Endpoint&, const am::Message& m) {
      ++*got;
      m.reply(2, {m.arg(0)});
    });
    while (*got < 50) {
      if (co_await ep->wait_events_for(t, am::kEventArrivals, 1 * sim::ms)) {
        co_await ep->poll(t, 32);
      }
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  });
  cl.spawn_thread(0, "client", [=](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, kTag + 1);
    ep->map_raw(0, /*node=*/999, /*ep=*/1, kTag);
    for (int i = 0; i < 50; ++i) co_await ep->request(t, 0, 1, 1);
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  });
  cl.run_to_completion();
  EXPECT_EQ(*got, 50u);
  EXPECT_GT(cl.shard_group().router().crossings(), 0u);
}

}  // namespace
