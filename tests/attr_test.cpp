// Tests for the PR's latency-attribution stack (DESIGN.md §8): the
// AttrRecorder flight recorder, the periodic time-series Sampler, the stall
// Watchdog rules, the registry's survival of component teardown, and the
// end-to-end LogP attribution of a real ping-pong run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/logp.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/scenario.hpp"
#include "cluster/config.hpp"
#include "lanai/config.hpp"
#include "lanai/nic.hpp"
#include "myrinet/fabric.hpp"
#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/watchdog.hpp"
#include "sim/engine.hpp"

namespace vnet::obs {
namespace {

// ------------------------------------------------------------ AttrRecorder

TEST(Attr, FoldsStageDeltasIntoEndpointHistograms) {
  MetricsRegistry reg;
  AttrRecorder rec(reg);
  rec.set_sample_interval(1);

  const std::uint64_t k = AttrRecorder::key(3, 7, 42);
  ASSERT_TRUE(rec.begin(3, 7, 42, 1000));
  rec.stamp(k, Stage::kDoorbell, 1100);
  rec.stamp(k, Stage::kNicPickup, 1150);
  rec.stamp(k, Stage::kWireInject, 1400);
  rec.stamp(k, Stage::kWireDeliver, 1900);
  rec.stamp(k, Stage::kRxDeposit, 2200);
  rec.stamp(k, Stage::kHandlerWake, 2300);
  rec.finish(k, 2550);

  EXPECT_EQ(rec.completed(), 1u);
  EXPECT_EQ(rec.inflight(), 0u);

  const Snapshot snap = reg.snapshot(3000);
  const std::string p = "host.3.ep.7.attr.";
  struct Want {
    const char* leaf;
    double mean;
  } wants[] = {{"os", 100},     {"nic_tx_wait", 50}, {"nic_tx", 250},
               {"wire", 500},   {"nic_rx", 300},     {"wake", 100},
               {"or", 250},     {"e2e", 1550}};
  for (const Want& w : wants) {
    const HistogramData* h = snap.histogram(p + w.leaf);
    ASSERT_NE(h, nullptr) << w.leaf;
    EXPECT_EQ(h->count, 1u) << w.leaf;
    EXPECT_DOUBLE_EQ(h->mean(), w.mean) << w.leaf;
  }

  const AttrSummary sum = summarize_attr(snap);
  EXPECT_DOUBLE_EQ(sum.stage_sum_mean_ns(), 1550.0);
  EXPECT_DOUBLE_EQ(sum.e2e.mean(), 1550.0);
  EXPECT_NE(render_attr_report(snap), "");
}

TEST(Attr, SampleIntervalAdmitsOneInN) {
  MetricsRegistry reg;
  AttrRecorder rec(reg);

  // Disabled: nothing is ever tracked.
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.begin(0, 0, 0, 0));
  EXPECT_EQ(rec.tracked(), 0u);

  rec.set_sample_interval(2);
  int admitted = 0;
  for (std::uint64_t id = 0; id < 8; ++id) {
    if (rec.begin(0, 0, id, 0)) ++admitted;
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(rec.tracked(), 4u);
}

TEST(Attr, FirstStampWinsAndGapsAreSkipped) {
  MetricsRegistry reg;
  AttrRecorder rec(reg);
  rec.set_sample_interval(1);

  const std::uint64_t k = AttrRecorder::key(0, 1, 5);
  ASSERT_TRUE(rec.begin(0, 1, 5, 100));
  rec.stamp(k, Stage::kDoorbell, 200);
  rec.stamp(k, Stage::kDoorbell, 900);  // retransmission path: ignored
  // kNicPickup..kHandlerWake never stamped (e.g. local delivery).
  rec.finish(k, 1100);

  const Snapshot snap = reg.snapshot(0);
  const HistogramData* os = snap.histogram("host.0.ep.1.attr.os");
  ASSERT_NE(os, nullptr);
  EXPECT_DOUBLE_EQ(os->mean(), 100.0);  // 200 - 100, not 900 - 100
  // Intervals with a missing endpoint are not attributed.
  const HistogramData* wire = snap.histogram("host.0.ep.1.attr.wire");
  ASSERT_NE(wire, nullptr);
  EXPECT_EQ(wire->count, 0u);
  const HistogramData* e2e = snap.histogram("host.0.ep.1.attr.e2e");
  ASSERT_NE(e2e, nullptr);
  EXPECT_DOUBLE_EQ(e2e->mean(), 1000.0);
}

TEST(Attr, DropForgetsFlightWithoutRecording) {
  MetricsRegistry reg;
  AttrRecorder rec(reg);
  rec.set_sample_interval(1);

  const std::uint64_t k = AttrRecorder::key(1, 2, 3);
  ASSERT_TRUE(rec.begin(1, 2, 3, 0));
  rec.stamp(k, Stage::kDoorbell, 10);
  rec.drop(k);  // returned to sender
  rec.finish(k, 99);  // unknown key now: ignored

  EXPECT_EQ(rec.completed(), 0u);
  EXPECT_EQ(rec.inflight(), 0u);
  EXPECT_EQ(render_attr_report(reg.snapshot(0)), "");
}

// The acceptance criterion of this PR: a pure ping-pong run, every flight
// tracked, must decompose the one-way latency into stages whose sum
// reconciles with the end-to-end mean, and two one-way flights must
// reconcile with the independently measured round trip within 5%.
TEST(Attr, LogpAttributionIsDeterministicAndReconciles) {
  const apps::LogpResult a = apps::measure_logp(
      cluster::NowConfig(2), /*pingpongs=*/300, /*stream=*/0, true);
  const apps::LogpResult b = apps::measure_logp(
      cluster::NowConfig(2), /*pingpongs=*/300, /*stream=*/0, true);

  // Same seed, same config: bit-identical attribution.
  EXPECT_EQ(a.attr_report, b.attr_report);
  EXPECT_DOUBLE_EQ(a.attr_e2e_us, b.attr_e2e_us);
  EXPECT_DOUBLE_EQ(a.attr_stage_sum_us, b.attr_stage_sum_us);

  ASSERT_GT(a.attr_e2e_us, 0.0);
  EXPECT_NEAR(a.attr_stage_sum_us, a.attr_e2e_us, 0.01 * a.attr_e2e_us);
  EXPECT_NEAR(2.0 * a.attr_e2e_us, a.rtt_us, 0.05 * a.rtt_us);
  EXPECT_NE(a.attr_report.find("e2e"), std::string::npos);
}

// ---------------------------------------------------------------- Sampler

TEST(Sampler, CsvGoldenWithPrefixFilterAndWindowDeltas) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.c");
  Gauge g = reg.gauge("x.g");
  Histogram h = reg.histogram("x.h");
  Counter skip = reg.counter("y.skip");

  SamplerConfig cfg;
  cfg.prefixes = {"x."};
  Sampler s(reg, cfg);

  s.sample(1000);  // baseline only
  EXPECT_EQ(s.rows(), 0u);

  c.inc(5);
  g.set(2.5);
  h.record(10);
  h.record(20);
  skip.inc(9);
  s.sample(2000);

  c.inc(1);
  g.set(-1);
  h.record(40);
  s.sample(3500);

  // Histograms additionally export sketch quantiles of each window's delta:
  // window 1 holds {10, 20} (p50 interpolates inside 10's sub-bucket), and
  // window 2 holds the single sample {40} (all quantiles clamp to it).
  EXPECT_EQ(s.csv(),
            "window_end_ns,window_ns,x.c,x.g,x.h.count,x.h.mean"
            ",x.h.p50,x.h.p99,x.h.p999\n"
            "2000,1000,5,2.5,2,15,10.25,10.3725,10.37475\n"
            "3500,1500,1,-1,1,40,40,40,40\n");
}

TEST(Sampler, EmptyPrefixListExportsEverything) {
  MetricsRegistry reg;
  Counter c = reg.counter("a.c");
  Sampler s(reg, SamplerConfig{});
  s.sample(0);
  c.inc(3);
  s.sample(10);
  EXPECT_EQ(s.csv(), "window_end_ns,window_ns,a.c\n10,10,3\n");
}

// ---------------------------------------------------------------- Watchdog

TEST(Watchdog, ChannelStallFiresOnlyWhileProgressIsZero) {
  MetricsRegistry reg;
  Gauge busy = reg.gauge("host.0.nic.busy_channels");
  Counter acks = reg.counter("host.0.nic.acks_received");

  WatchdogConfig cfg;
  cfg.window_ns = 500'000;
  Watchdog wd(reg, cfg);
  int fired = 0;
  wd.set_on_fire([&fired](const WatchdogEvent&) { ++fired; });

  busy.set(2);
  wd.check(0);  // baseline
  EXPECT_TRUE(wd.events().empty());

  wd.check(500'000);  // busy, no acks in window -> stall
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].rule, "channel-stall");
  EXPECT_EQ(wd.events()[0].subject, "host.0.nic");
  EXPECT_EQ(fired, 1);

  acks.inc();
  wd.check(1'000'000);  // progress resumed -> quiet
  busy.set(0);
  wd.check(1'500'000);  // idle -> quiet
  EXPECT_EQ(wd.events().size(), 1u);

  const std::string summary = wd.render_summary();
  EXPECT_NE(summary.find("channel-stall"), std::string::npos);
  EXPECT_NE(summary.find("host.0.nic"), std::string::npos);
}

TEST(Watchdog, FrameLoiterAndLinkPeggedRules) {
  MetricsRegistry reg;
  Gauge backlog = reg.gauge("host.2.nic.send_backlog");
  Counter sent = reg.counter("host.2.nic.data_sent");
  Counter bytes = reg.counter("fabric.link.h0->sw.bytes_tx");

  WatchdogConfig cfg;
  cfg.window_ns = 500'000;
  cfg.link_ns_per_byte = 1.0;
  Watchdog wd(reg, cfg);

  backlog.set(3);
  wd.check(0);
  bytes.inc(500'000);  // 500k bytes x 1 ns/B over a 500us window: pegged
  wd.check(500'000);

  ASSERT_EQ(wd.events().size(), 2u);
  EXPECT_EQ(wd.events()[0].rule, "frame-loiter");
  EXPECT_EQ(wd.events()[0].subject, "host.2.nic");
  EXPECT_EQ(wd.events()[1].rule, "link-pegged");
  EXPECT_EQ(wd.events()[1].subject, "fabric.link.h0->sw");

  // A transmission (even a retransmission) clears the loiter rule.
  sent.inc();
  wd.check(1'000'000);
  EXPECT_EQ(wd.events().size(), 2u);
}

// A scripted outage through the real stack: the server's only routes die
// for 6ms mid-run, so client channels hold messages with no acks coming
// back and the scenario's watchdog must name the stall.
TEST(Watchdog, FiresDuringInjectedTrunkOutage) {
  chaos::ScenarioSpec s;
  s.name = "watchdog_trunk_outage";
  s.seed = 1;
  s.fat_tree = true;  // leaf 0 holds controller+server, leaf 1+ the clients
  s.clients = 2;
  s.requests_per_client = 20;
  s.plan = [](cluster::Cluster&, sim::Rng&) {
    return chaos::FaultPlan{}
        .trunk_flap(1 * sim::ms, 0, 0, 6 * sim::ms)
        .trunk_flap(1 * sim::ms, 0, 1, 6 * sim::ms);
  };
  const chaos::ScenarioResult res = chaos::run_scenario(s);

  ASSERT_FALSE(res.watchdog_events.empty())
      << "no stall detected across a 6ms total outage";
  bool stall = false;
  for (const WatchdogEvent& e : res.watchdog_events) {
    if (e.rule == "channel-stall") stall = true;
  }
  EXPECT_TRUE(stall);
  EXPECT_NE(res.watchdog_summary.find("channel-stall"), std::string::npos);
}

// ------------------------------------------------- registry vs teardown

// Regression for the pull-callback hazard: a NIC registers gauge_fns whose
// lambdas capture `this`; destroying the NIC (the reboot/teardown path)
// must unregister them, or the next snapshot() calls through a dangling
// pointer (ASan catches the use-after-free without the fix).
TEST(Metrics, SnapshotSafeAfterNicTeardown) {
  sim::Engine eng{11};
  auto fabric = myrinet::Fabric::crossbar(eng, 2, {});
  std::vector<std::unique_ptr<lanai::Nic>> nics;
  for (myrinet::NodeId n = 0; n < 2; ++n) {
    nics.push_back(
        std::make_unique<lanai::Nic>(eng, *fabric, n, lanai::NicConfig{}));
    nics.back()->start();
  }
  eng.run();

  const Snapshot before = eng.snapshot();
  ASSERT_EQ(before.gauges.count("host.1.nic.busy_channels"), 1u);

  nics[1].reset();  // NIC dies mid-engine-lifetime

  const Snapshot after = eng.snapshot();
  EXPECT_EQ(after.gauges.count("host.1.nic.busy_channels"), 0u);
  EXPECT_EQ(after.gauges.count("host.1.nic.send_backlog"), 0u);
  EXPECT_EQ(after.gauges.count("host.0.nic.busy_channels"), 1u);
}

}  // namespace
}  // namespace vnet::obs
