// Unit tests for the LANai NIC model: end-to-end delivery, the reliable
// transport (acks, nacks, retransmission, backoff, epochs, exactly-once),
// fragmentation/reassembly, the driver/NI protocol (load/unload/destroy with
// quiescence), the service discipline, and the GAM baseline firmware.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "lanai/config.hpp"
#include "lanai/endpoint_state.hpp"
#include "lanai/frame.hpp"
#include "lanai/nic.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace vnet::lanai {
namespace {

std::uint32_t frag_count_for(std::uint32_t bulk_bytes, const NicConfig& cfg) {
  if (bulk_bytes == 0) return 1;
  return (bulk_bytes + cfg.max_packet_payload - 1) / cfg.max_packet_payload;
}

class NicTest : public ::testing::Test {
 public:
  void build(int nodes, NicConfig cfg = {}, myrinet::FabricParams fp = {}) {
    cfg_ = cfg;
    fabric_ = myrinet::Fabric::crossbar(eng_, nodes, fp);
    for (myrinet::NodeId n = 0; n < nodes; ++n) {
      nics_.push_back(std::make_unique<Nic>(eng_, *fabric_, n, cfg));
      nics_.back()->start();
    }
  }

  /// Creates an endpoint and registers it with its node's NIC; binds it to
  /// `frame` unless frame < 0 (then it stays non-resident).
  EndpointState* make_ep(myrinet::NodeId node, EpId id, std::uint64_t tag,
                         int frame) {
    auto ep = std::make_unique<EndpointState>();
    ep->node = node;
    ep->id = id;
    ep->tag = tag;
    ep->translations.resize(16);
    EndpointState* raw = ep.get();
    eps_.push_back(std::move(ep));
    nics_[node]->submit({DriverOp::Kind::kCreate, raw, -1, 0, nullptr});
    if (frame >= 0) {
      nics_[node]->submit({DriverOp::Kind::kLoad, raw, frame, 0, nullptr});
    }
    eng_.run();
    return raw;
  }

  static void map(EndpointState* ep, std::uint32_t idx, myrinet::NodeId node,
                  EpId dst, std::uint64_t key) {
    ep->translations[idx] = Translation{true, node, dst, key};
  }

  /// Writes a request descriptor and rings the doorbell.
  std::uint64_t post_request(EndpointState* ep, std::uint32_t dest_idx,
                             std::uint8_t handler, std::uint64_t arg0 = 0,
                             std::uint32_t bulk_bytes = 0) {
    SendDescriptor d;
    d.dest_index = dest_idx;
    d.body.is_request = true;
    d.body.handler = handler;
    d.body.args[0] = arg0;
    d.body.bulk_bytes = bulk_bytes;
    d.msg_id = ep->alloc_msg_id();
    d.frag_count = frag_count_for(bulk_bytes, cfg_);
    const std::uint64_t id = d.msg_id;
    ep->send_queue.push_back(std::move(d));
    nics_[ep->node]->doorbell(*ep);
    return id;
  }

  std::uint64_t post_reply(EndpointState* ep, const RecvEntry& to,
                           std::uint8_t handler, std::uint64_t arg0 = 0) {
    SendDescriptor d;
    d.reply_to = to.reply_to;
    d.body.is_request = false;
    d.body.handler = handler;
    d.body.args[0] = arg0;
    d.msg_id = ep->alloc_msg_id();
    const std::uint64_t id = d.msg_id;
    ep->send_queue.push_back(std::move(d));
    nics_[ep->node]->doorbell(*ep);
    return id;
  }

  /// Reads one NIC counter for `node` from the engine's metric registry
  /// (the NIC publishes under `host.<node>.nic.*`).
  std::uint64_t nic_counter(int node, const std::string& leaf) {
    return eng_.snapshot().counter("host." + std::to_string(node) + ".nic." +
                                   leaf);
  }

  sim::Engine eng_{7};
  NicConfig cfg_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<EndpointState>> eps_;
};

// -------------------------------------------------------------- delivery

TEST_F(NicTest, ShortMessageDeliversEndToEnd) {
  build(2);
  auto* src = make_ep(0, 1, 0x11, 0);
  auto* dst = make_ep(1, 2, 0x22, 0);
  map(src, 3, 1, 2, 0x22);

  post_request(src, 3, /*handler=*/7, /*arg0=*/42);
  eng_.run();

  ASSERT_EQ(dst->recv_requests.size(), 1u);
  const RecvEntry& e = dst->recv_requests.front();
  EXPECT_EQ(e.body.handler, 7);
  EXPECT_EQ(e.body.args[0], 42u);
  EXPECT_EQ(e.src_node, 0);
  EXPECT_EQ(e.src_ep, 1u);
  EXPECT_TRUE(e.reply_to.valid());
  EXPECT_EQ(e.reply_to.node, 0);
  EXPECT_EQ(e.reply_to.ep, 1u);

  EXPECT_EQ(src->msgs_sent, 1u);
  EXPECT_TRUE(src->send_queue.empty());  // swept after the ack
  EXPECT_EQ(dst->msgs_delivered, 1u);
  EXPECT_EQ(nic_counter(0, "acks_received"), 1u);
  EXPECT_EQ(nic_counter(1, "acks_sent"), 1u);
  EXPECT_EQ(nic_counter(0, "retransmissions"), 0u);
}

TEST_F(NicTest, ReplyDeliversToReplyQueue) {
  build(2);
  auto* src = make_ep(0, 1, 0x11, 0);
  auto* dst = make_ep(1, 2, 0x22, 0);
  map(src, 0, 1, 2, 0x22);

  post_request(src, 0, 1, 5);
  eng_.run();
  ASSERT_EQ(dst->recv_requests.size(), 1u);

  post_reply(dst, dst->recv_requests.front(), /*handler=*/9, /*arg0=*/99);
  eng_.run();

  ASSERT_EQ(src->recv_replies.size(), 1u);
  EXPECT_EQ(src->recv_replies.front().body.handler, 9);
  EXPECT_EQ(src->recv_replies.front().body.args[0], 99u);
  EXPECT_FALSE(src->recv_replies.front().reply_to.valid());
  EXPECT_TRUE(src->recv_requests.empty());
}

TEST_F(NicTest, DeliveryLatencyIsMicroseconds) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  const sim::Time t0 = eng_.now();
  post_request(src, 0, 1);
  while (dst->recv_requests.empty() && eng_.step()) {
  }
  const double usec = sim::to_usec(eng_.now() - t0);
  EXPECT_GT(usec, 3.0);
  EXPECT_LT(usec, 40.0);
}

TEST_F(NicTest, LocalLoopbackBypassesFabric) {
  build(2);
  auto* a = make_ep(0, 1, 0xa, 0);
  auto* b = make_ep(0, 2, 0xb, 1);
  map(a, 0, 0, 2, 0xb);
  post_request(a, 0, 4, 11);
  eng_.run();
  ASSERT_EQ(b->recv_requests.size(), 1u);
  EXPECT_EQ(b->recv_requests.front().body.args[0], 11u);
  EXPECT_EQ(nic_counter(0, "local_deliveries"), 1u);
  EXPECT_EQ(fabric_->station(0).packets_injected(), 0u);
  EXPECT_EQ(a->msgs_sent, 1u);
}

// --------------------------------------------------------- fragmentation

TEST_F(NicTest, BulkMessageFragmentsAndReassembles) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  post_request(src, 0, 2, 0, /*bulk_bytes=*/10'000);  // 3 fragments @4096
  eng_.run();

  ASSERT_EQ(dst->recv_requests.size(), 1u);  // delivered exactly once
  EXPECT_EQ(dst->recv_requests.front().body.bulk_bytes, 10'000u);
  EXPECT_EQ(nic_counter(0, "data_sent"), 3u);
  EXPECT_EQ(nic_counter(1, "acks_sent"), 3u);
  EXPECT_EQ(dst->msgs_delivered, 1u);
  EXPECT_EQ(src->msgs_sent, 1u);
  // Receive-side SBUS DMA moved the payload to host memory.
  EXPECT_EQ(nics_[1]->sbus().bytes_written(), 10'000u);
  // (the endpoint-image load also crossed the send-side SBUS)
  EXPECT_EQ(nics_[0]->sbus().bytes_read(), 10'000u + kEndpointImageBytes);
}

TEST_F(NicTest, BulkCarriesRealBytes) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  auto data = std::make_shared<std::vector<std::uint8_t>>(5000);
  for (std::size_t i = 0; i < data->size(); ++i) {
    (*data)[i] = static_cast<std::uint8_t>(i * 31);
  }
  SendDescriptor d;
  d.dest_index = 0;
  d.body.handler = 1;
  d.body.bulk_bytes = 5000;
  d.body.bulk_data = data;
  d.msg_id = src->alloc_msg_id();
  d.frag_count = frag_count_for(5000, cfg_);
  src->send_queue.push_back(std::move(d));
  nics_[0]->doorbell(*src);
  eng_.run();

  ASSERT_EQ(dst->recv_requests.size(), 1u);
  ASSERT_TRUE(dst->recv_requests.front().body.bulk_data);
  EXPECT_EQ(*dst->recv_requests.front().body.bulk_data, *data);
}

// --------------------------------------------- protection & error model

TEST_F(NicTest, BadKeyReturnsToSender) {
  build(2);
  auto* src = make_ep(0, 1, 0x11, 0);
  auto* dst = make_ep(1, 2, 0x22, 0);
  map(src, 0, 1, 2, /*wrong key=*/0xdead);

  NackReason reason = NackReason::kNone;
  int returns = 0;
  src->on_return_to_sender = [&](SendDescriptor, NackReason r) {
    reason = r;
    ++returns;
  };
  post_request(src, 0, 1);
  eng_.run();

  EXPECT_EQ(returns, 1);
  EXPECT_EQ(reason, NackReason::kBadKey);
  EXPECT_TRUE(dst->recv_requests.empty());
  EXPECT_EQ(src->msgs_returned, 1u);
  EXPECT_EQ(src->msgs_sent, 0u);
  EXPECT_TRUE(src->send_queue.empty());
}

TEST_F(NicTest, NoSuchEndpointReturnsToSender) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  map(src, 0, 1, /*nonexistent=*/77, 0);
  NackReason reason = NackReason::kNone;
  src->on_return_to_sender = [&](SendDescriptor, NackReason r) { reason = r; };
  post_request(src, 0, 1);
  eng_.run();
  EXPECT_EQ(reason, NackReason::kNoSuchEndpoint);
}

TEST_F(NicTest, InvalidTranslationReturnsToSender) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  NackReason reason = NackReason::kNone;
  src->on_return_to_sender = [&](SendDescriptor, NackReason r) { reason = r; };
  post_request(src, /*unmapped index=*/5, 1);
  eng_.run();
  EXPECT_EQ(reason, NackReason::kNoSuchEndpoint);
  EXPECT_EQ(src->msgs_returned, 1u);
}

// ------------------------------------------------- residency interaction

TEST_F(NicTest, NonResidentDestinationNacksAndRequestsRemap) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, /*frame=*/-1);  // created but not loaded
  map(src, 0, 1, 2, 0);

  std::vector<EpId> remap_requests;
  nics_[1]->on_nic_request = [&](NicRequest r) {
    remap_requests.push_back(r.ep);
  };

  post_request(src, 0, 1, 5);
  eng_.run_for(5 * sim::ms);

  EXPECT_TRUE(dst->recv_requests.empty());
  ASSERT_EQ(remap_requests.size(), 1u);  // deduplicated
  EXPECT_EQ(remap_requests[0], 2u);
  EXPECT_GT(nic_counter(1, "nacks_sent_by_reason." +
                               std::to_string(static_cast<int>(
                                   NackReason::kNotResident))),
            0u);

  // Driver responds: load the endpoint; the retransmission delivers it.
  nics_[1]->submit({DriverOp::Kind::kLoad, dst, 0, 1, nullptr});
  eng_.run();
  ASSERT_EQ(dst->recv_requests.size(), 1u);
  EXPECT_EQ(dst->recv_requests.front().body.args[0], 5u);
  EXPECT_EQ(dst->msgs_delivered, 1u);
  EXPECT_EQ(src->msgs_sent, 1u);
}

// ------------------------------------------------------- queue overruns

TEST_F(NicTest, ReceiveQueueOverrunNacksThenRecovers) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  const int total = 40;  // recv_request_depth is 32
  for (int i = 0; i < total; ++i) {
    post_request(src, 0, 1, static_cast<std::uint64_t>(i));
  }

  // Host-side consumer drains the queue slowly.
  std::multiset<std::uint64_t> seen;
  eng_.spawn([](sim::Engine& e, EndpointState& ep,
                std::multiset<std::uint64_t>& s, int n) -> sim::Process {
    co_await e.delay(2 * sim::ms);  // let the queue overrun first
    while (static_cast<int>(s.size()) < n) {
      while (!ep.recv_requests.empty()) {
        s.insert(ep.recv_requests.front().body.args[0]);
        ep.recv_requests.pop_front();
      }
      co_await e.delay(200 * sim::us);
    }
  }(eng_, *dst, seen, total));
  eng_.run();

  EXPECT_EQ(seen.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(seen.count(static_cast<std::uint64_t>(i)), 1u) << i;
  }
  EXPECT_GT(dst->recv_overruns, 0u);
  EXPECT_GT(nic_counter(1, "nacks_sent_by_reason." +
                               std::to_string(static_cast<int>(
                                   NackReason::kQueueFull))),
            0u);
}

// -------------------------------------------------- loss and corruption

struct LossCase {
  double drop;
  double corrupt;
};

class NicLossTest : public NicTest,
                    public ::testing::WithParamInterface<LossCase> {};

TEST_P(NicLossTest, ExactlyOnceUnderFaults) {
  myrinet::FabricParams fp;
  fp.faults.drop_probability = GetParam().drop;
  fp.faults.corrupt_probability = GetParam().corrupt;
  NicConfig cfg;
  cfg.retransmit_timeout = 100 * sim::us;  // speed the test up
  build(2, cfg, fp);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  const int total = 150;
  std::multiset<std::uint64_t> seen;
  // Producer paces itself so the send queue never exceeds its depth.
  eng_.spawn([](sim::Engine& e, NicTest* t, EndpointState& ep,
                int n) -> sim::Process {
    for (int i = 0; i < n; ++i) {
      while (ep.send_queue.size() >=
             static_cast<std::size_t>(t->cfg_.send_queue_depth)) {
        co_await e.delay(100 * sim::us);
      }
      t->post_request(&ep, 0, 1, static_cast<std::uint64_t>(i));
    }
  }(eng_, this, *src, total));
  eng_.spawn([](sim::Engine& e, EndpointState& ep,
                std::multiset<std::uint64_t>& s, int n) -> sim::Process {
    while (static_cast<int>(s.size()) < n) {
      while (!ep.recv_requests.empty()) {
        s.insert(ep.recv_requests.front().body.args[0]);
        ep.recv_requests.pop_front();
      }
      co_await e.delay(100 * sim::us);
    }
  }(eng_, *dst, seen, total));
  eng_.run();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(seen.count(static_cast<std::uint64_t>(i)), 1u)
        << "message " << i << " not delivered exactly once";
  }
  if (GetParam().drop + GetParam().corrupt > 0) {
    EXPECT_GT(nic_counter(0, "retransmissions"), 0u);
  }
  if (GetParam().corrupt > 0) {
    EXPECT_GT(nic_counter(1, "crc_drops"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultRates, NicLossTest,
    ::testing::Values(LossCase{0.0, 0.0}, LossCase{0.05, 0.0},
                      LossCase{0.2, 0.0}, LossCase{0.0, 0.1},
                      LossCase{0.1, 0.1}, LossCase{0.3, 0.0}),
    [](const ::testing::TestParamInfo<LossCase>& info) {
      return "drop" + std::to_string(static_cast<int>(info.param.drop * 100)) +
             "corrupt" +
             std::to_string(static_cast<int>(info.param.corrupt * 100));
    });

TEST_F(NicTest, HeavyAckLossSuppressesDuplicates) {
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.35;
  NicConfig cfg;
  cfg.retransmit_timeout = 100 * sim::us;
  build(2, cfg, fp);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  for (int i = 0; i < 20; ++i) post_request(src, 0, 1, i);
  eng_.spawn([](sim::Engine& e, EndpointState& ep) -> sim::Process {
    for (;;) {
      while (!ep.recv_requests.empty()) ep.recv_requests.pop_front();
      if (ep.msgs_delivered >= 20) co_return;
      co_await e.delay(100 * sim::us);
    }
  }(eng_, *dst));
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 20u);
  // With 35% loss, some data frames were accepted but their acks were
  // lost; the retransmitted copies must be recognized as duplicates.
  EXPECT_GT(nic_counter(1, "duplicates_suppressed"), 0u);
}

// ---------------------------------------------------- unreachable peers

TEST_F(NicTest, UnreachableDestinationReturnsToSender) {
  NicConfig cfg;
  cfg.retransmit_timeout = 100 * sim::us;
  cfg.unreachable_timeout = 20 * sim::ms;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  fabric_->set_host_link(1, false);  // crash the destination
  NackReason reason = NackReason::kBadKey;  // sentinel
  sim::Time returned_at = -1;
  src->on_return_to_sender = [&](SendDescriptor, NackReason r) {
    reason = r;
    returned_at = eng_.now();
  };
  post_request(src, 0, 1);
  eng_.run();

  EXPECT_EQ(reason, NackReason::kNone);  // "unreachable", not a peer nack
  EXPECT_GE(returned_at, 20 * sim::ms);
  EXPECT_LT(returned_at, 200 * sim::ms);
  EXPECT_TRUE(dst->recv_requests.empty());
  EXPECT_GT(nic_counter(0, "retransmissions"), 0u);
}

TEST_F(NicTest, StuckChannelUnbindsAndOtherTrafficFlows) {
  NicConfig cfg;
  cfg.retransmit_timeout = 100 * sim::us;
  cfg.retransmit_unbind_limit = 3;
  cfg.max_backoff_exponent = 2;
  cfg.unreachable_timeout = 1 * sim::sec;
  build(3, cfg);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dead = make_ep(1, 2, 0, 0);
  auto* alive = make_ep(2, 3, 0, 0);
  map(src, 0, 1, 2, 0);
  map(src, 1, 2, 3, 0);

  fabric_->set_host_link(1, false);
  alive->on_arrival = [&] { alive->recv_requests.clear(); };  // instant drain
  post_request(src, 0, 1);  // will never be delivered promptly
  for (int i = 0; i < 50; ++i) post_request(src, 1, 1, i);
  eng_.run_for(100 * sim::ms);

  EXPECT_EQ(alive->msgs_delivered, 50u);  // unaffected by the dead peer
  EXPECT_GT(nic_counter(0, "channel_unbinds"), 0u);
  EXPECT_TRUE(dead->recv_requests.empty());
}

// --------------------------------------------------------- epoch resync

TEST_F(NicTest, ReceiverRebootResynchronizes) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  for (int i = 0; i < 5; ++i) post_request(src, 0, 1, i);
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 5u);

  nics_[1]->reboot();
  for (int i = 5; i < 10; ++i) post_request(src, 0, 1, i);
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 10u);
}

TEST_F(NicTest, SenderRebootResynchronizes) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  for (int i = 0; i < 5; ++i) post_request(src, 0, 1, i);
  eng_.run();

  nics_[0]->reboot();  // sender loses all channel state; epoch advances
  for (int i = 5; i < 10; ++i) post_request(src, 0, 1, i);
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 10u);
}

// ------------------------------------------------------ driver protocol

TEST_F(NicTest, LoadOpensGateAndBindsFrame) {
  build(1);
  auto* ep = make_ep(0, 1, 0, -1);
  EXPECT_FALSE(ep->resident());
  sim::Gate done(eng_);
  nics_[0]->submit({DriverOp::Kind::kLoad, ep, 3, 1, &done});
  eng_.run();
  EXPECT_TRUE(done.is_open());
  EXPECT_TRUE(ep->resident());
  EXPECT_EQ(ep->frame, 3);
  EXPECT_EQ(nics_[0]->frame_occupant(3), ep);
  EXPECT_EQ(nics_[0]->free_frames(), 7);
}

TEST_F(NicTest, UnloadQuiescesInFlightMessagesFirst) {
  NicConfig cfg;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  // Start a multi-fragment bulk send and let some fragments get in flight,
  // then request unload. Draining must stop *new* fragments while the
  // in-flight ones are retransmitted/acknowledged to quiescence (§5.3).
  post_request(src, 0, 1, 0, /*bulk_bytes=*/32'768);  // 8 fragments
  eng_.run_for(100 * sim::us);
  sim::Gate done(eng_);
  nics_[0]->submit({DriverOp::Kind::kUnload, src, -1, 2, &done});
  eng_.run();

  EXPECT_TRUE(done.is_open());
  EXPECT_FALSE(src->resident());
  EXPECT_EQ(nic_counter(0, "frames_unloaded"), 1u);
  // The message is incomplete: its unsent fragments were stranded when the
  // endpoint was unloaded, exactly like a de-scheduled process's endpoint.
  EXPECT_EQ(src->msgs_sent, 0u);
  EXPECT_EQ(dst->msgs_delivered, 0u);

  // Re-loading the endpoint resumes the transfer where it stopped.
  nics_[0]->submit({DriverOp::Kind::kLoad, src, 0, 3, nullptr});
  eng_.run();
  EXPECT_EQ(src->msgs_sent, 1u);
  EXPECT_EQ(dst->msgs_delivered, 1u);
  EXPECT_EQ(dst->recv_requests.front().body.bulk_bytes, 32'768u);
}

TEST_F(NicTest, DestroyedEndpointNacksNoSuchEndpoint) {
  build(2);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);

  sim::Gate done(eng_);
  nics_[1]->submit({DriverOp::Kind::kDestroy, dst, -1, 1, &done});
  eng_.run();
  EXPECT_TRUE(done.is_open());
  EXPECT_FALSE(nics_[1]->directory_contains(2));

  NackReason reason = NackReason::kNone;
  src->on_return_to_sender = [&](SendDescriptor, NackReason r) { reason = r; };
  post_request(src, 0, 1);
  eng_.run();
  EXPECT_EQ(reason, NackReason::kNoSuchEndpoint);
}

// ------------------------------------------------------ service discipline

TEST_F(NicTest, TwoEndpointsShareTheWireFairly) {
  build(3);
  auto* a = make_ep(0, 1, 0, 0);
  auto* b = make_ep(0, 2, 0, 1);
  auto* da = make_ep(1, 3, 0, 0);
  auto* db = make_ep(2, 4, 0, 0);
  map(a, 0, 1, 3, 0);
  map(b, 0, 2, 4, 0);

  // Both endpoints keep 32 descriptors queued; run for a fixed window.
  for (int i = 0; i < 32; ++i) {
    post_request(a, 0, 1, i);
    post_request(b, 0, 1, i);
  }
  eng_.run_for(2 * sim::ms);
  const auto got_a = da->msgs_delivered;
  const auto got_b = db->msgs_delivered;
  EXPECT_GT(got_a, 0u);
  EXPECT_GT(got_b, 0u);
  const double ratio = static_cast<double>(got_a) /
                       static_cast<double>(got_b ? got_b : 1);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(NicTest, LoiterBoundPreventsBulkMonopoly) {
  NicConfig cfg;
  cfg.loiter_descriptors = 4;  // tighten so the effect is visible quickly
  build(3, cfg);
  auto* bulk = make_ep(0, 1, 0, 0);
  auto* latency = make_ep(0, 2, 0, 1);
  auto* dbulk = make_ep(1, 3, 0, 0);
  auto* dlat = make_ep(2, 4, 0, 0);
  map(bulk, 0, 1, 3, 0);
  map(latency, 0, 2, 4, 0);

  dbulk->on_arrival = [&] { dbulk->recv_requests.clear(); };  // instant drain
  for (int i = 0; i < 60; ++i) post_request(bulk, 0, 1, i);
  post_request(latency, 0, 1, 7);
  sim::Time delivered_at = -1;
  dlat->on_arrival = [&] { delivered_at = eng_.now(); };
  eng_.run();
  EXPECT_EQ(dbulk->msgs_delivered, 60u);
  ASSERT_GE(delivered_at, 0);
  // The small message must not wait behind all 60 bulk descriptors.
  EXPECT_LT(delivered_at, 1 * sim::ms);
}

// ----------------------------------------------------------- GAM baseline

TEST_F(NicTest, GamModeDeliversWithoutAcks) {
  NicConfig cfg;
  cfg.reliable_transport = false;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  for (int i = 0; i < 10; ++i) post_request(src, 0, 1, i);
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 10u);
  EXPECT_EQ(nic_counter(1, "acks_sent"), 0u);
  EXPECT_EQ(nic_counter(0, "acks_received"), 0u);
  EXPECT_EQ(src->msgs_sent, 10u);
}

TEST_F(NicTest, GamModeDropsOnOverrun) {
  NicConfig cfg;
  cfg.reliable_transport = false;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  for (int i = 0; i < 40; ++i) post_request(src, 0, 1, i);  // depth is 32
  eng_.run();
  EXPECT_EQ(dst->recv_requests.size(), 32u);
  EXPECT_EQ(nic_counter(1, "gam_drops"), 8u);
  EXPECT_EQ(dst->recv_overruns, 8u);
}

TEST_F(NicTest, GamModeLosesMessagesOnLossyNetwork) {
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.2;
  NicConfig cfg;
  cfg.reliable_transport = false;
  build(2, cfg, fp);
  auto* src = make_ep(0, 1, 0, 0);
  auto* dst = make_ep(1, 2, 0, 0);
  map(src, 0, 1, 2, 0);
  eng_.spawn([](sim::Engine& e, EndpointState& ep) -> sim::Process {
    for (int i = 0; i < 200; ++i) {
      while (!ep.recv_requests.empty()) ep.recv_requests.pop_front();
      co_await e.delay(50 * sim::us);
    }
  }(eng_, *dst));
  for (int i = 0; i < 100; ++i) post_request(src, 0, 1, i);
  eng_.run();
  // No retransmission: a lossy network visibly loses GAM messages.
  EXPECT_LT(dst->msgs_delivered, 100u);
  EXPECT_GT(dst->msgs_delivered, 30u);
}

// ------------------------------------------------------------ determinism

TEST_F(NicTest, RunsAreDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine eng(seed);
    myrinet::FabricParams fp;
    fp.faults.drop_probability = 0.1;
    auto fabric = myrinet::Fabric::crossbar(eng, 2, fp);
    NicConfig cfg;
    cfg.retransmit_timeout = 100 * sim::us;
    Nic n0(eng, *fabric, 0, cfg), n1(eng, *fabric, 1, cfg);
    n0.start();
    n1.start();
    EndpointState a, b;
    a.node = 0;
    a.id = 1;
    a.translations.resize(4);
    b.node = 1;
    b.id = 2;
    n0.submit({DriverOp::Kind::kCreate, &a, -1, 0, nullptr});
    n0.submit({DriverOp::Kind::kLoad, &a, 0, 0, nullptr});
    n1.submit({DriverOp::Kind::kCreate, &b, -1, 0, nullptr});
    n1.submit({DriverOp::Kind::kLoad, &b, 0, 0, nullptr});
    eng.run();
    a.translations[0] = Translation{true, 1, 2, 0};
    for (int i = 0; i < 30; ++i) {
      SendDescriptor d;
      d.dest_index = 0;
      d.body.handler = 1;
      d.body.args[0] = static_cast<std::uint64_t>(i);
      d.msg_id = a.alloc_msg_id();
      a.send_queue.push_back(std::move(d));
    }
    n0.doorbell(a);
    eng.run();
    return std::make_tuple(eng.now(), eng.events_processed(),
                           eng.snapshot().counter("host.0.nic.retransmissions"),
                           b.msgs_delivered);
  };
  EXPECT_EQ(run_once(5), run_once(5));
  // A different seed changes the loss pattern, so the run as a whole (end
  // time, event count, retransmissions) must differ somewhere.
  EXPECT_NE(run_once(5), run_once(6));
}

// ----------------- batched datapath (doorbell coalescing, burst service)

// Regression: the blocked-doze (`blocked_poll_interval`) and the coalesced
// doorbell must compose. A doorbell landing while the firmware dozes on
// blocked channels has to wake it exactly once — a lost wakeup would park
// the new descriptor until the doze times out; a doubled one would charge
// a phantom service pass.
TEST_F(NicTest, DoorbellMidDozeWakesFirmwareExactlyOnce) {
  NicConfig cfg;
  cfg.channels_per_peer = 2;            // small: a bulk send parks them all
  cfg.max_packet_payload = 512;
  cfg.blocked_poll_interval = 500 * sim::us;
  myrinet::FabricParams fp;
  fp.link.propagation = 100 * sim::us;  // acks ~200 us away: doze is long
  build(3, cfg, fp);
  auto* src = make_ep(0, 1, 0x1, 0);
  auto* src2 = make_ep(0, 4, 0x4, 1);   // second endpoint: its own doorbell
  auto* d1 = make_ep(1, 2, 0x2, 0);
  auto* d2 = make_ep(2, 3, 0x3, 0);
  map(src, 0, 1, 2, 0x2);
  map(src2, 0, 2, 3, 0x3);

  // 4-fragment bulk: frags 0-1 depart and park both channels to node 1
  // until their acks return; frags 2-3 stay unsent, so the firmware is in
  // the blocked doze well before the 50 us mark.
  post_request(src, 0, 1, 0, /*bulk_bytes=*/2048);
  eng_.run_for(50 * sim::us);
  ASSERT_EQ(nics_[0]->busy_channel_count(), 2);
  const std::uint64_t w0 = nic_counter(0, "firmware_wakeups");
  const std::uint64_t sent0 = nic_counter(0, "data_sent");

  // Doorbell mid-doze from the other endpoint, whose channel (node 2) is
  // free.
  post_request(src2, 0, 5, 77);
  eng_.run_for(20 * sim::us);  // << ack RTT, << blocked_poll_interval

  EXPECT_EQ(nic_counter(0, "firmware_wakeups"), w0 + 1);
  EXPECT_EQ(nic_counter(0, "data_sent"), sent0 + 1);

  eng_.run();
  ASSERT_EQ(d2->recv_requests.size(), 1u);
  EXPECT_EQ(d2->recv_requests.front().body.args[0], 77u);
  ASSERT_EQ(d1->recv_requests.size(), 1u);
  EXPECT_EQ(nic_counter(0, "retransmissions"), 0u);
}

// Two rings inside one coalescing window fold into an immediate ring plus
// one deferred ring at the window's end. Both descriptors are drained on
// the first wakeup; the deferred ring may wake the dozing firmware once
// more but must not re-service anything.
TEST_F(NicTest, CoalescedDoorbellFoldsRingsWithoutDoubleService) {
  NicConfig cfg;
  cfg.channels_per_peer = 2;
  cfg.max_packet_payload = 512;
  cfg.blocked_poll_interval = 500 * sim::us;
  cfg.doorbell_coalesce = 10 * sim::us;
  myrinet::FabricParams fp;
  fp.link.propagation = 100 * sim::us;
  build(3, cfg, fp);
  auto* src = make_ep(0, 1, 0x1, 0);
  auto* src2 = make_ep(0, 4, 0x4, 1);
  auto* src3 = make_ep(0, 5, 0x5, 2);
  make_ep(1, 2, 0x2, 0);
  auto* d2 = make_ep(2, 3, 0x3, 0);
  map(src, 0, 1, 2, 0x2);
  map(src2, 0, 2, 3, 0x3);
  map(src3, 0, 2, 3, 0x3);

  post_request(src, 0, 1, 0, /*bulk_bytes=*/2048);  // parks channels to 1
  eng_.run_for(50 * sim::us);
  const std::uint64_t w0 = nic_counter(0, "firmware_wakeups");
  const std::uint64_t sent0 = nic_counter(0, "data_sent");

  // Back-to-back rings from two endpoints aimed at the free peer: the
  // first passes through, the second is folded into the deferred ring —
  // but the first wakeup's service pass drains both descriptors.
  post_request(src2, 0, 5, 1);
  post_request(src3, 0, 5, 2);
  eng_.run_for(20 * sim::us);  // past the 10 us window

  // One wakeup serviced both descriptors; the deferred ring's wakeup (if
  // the firmware was back in its doze) found nothing to send.
  EXPECT_EQ(nic_counter(0, "data_sent"), sent0 + 2);
  EXPECT_LE(nic_counter(0, "firmware_wakeups"), w0 + 2);

  eng_.run();
  ASSERT_EQ(d2->recv_requests.size(), 2u);
  EXPECT_EQ(d2->recv_requests[0].body.args[0], 1u);
  EXPECT_EQ(d2->recv_requests[1].body.args[0], 2u);
  EXPECT_EQ(nic_counter(0, "retransmissions"), 0u);
}

// Doorbell-then-reboot race: descriptors posted (one ring immediate, one
// deferred and still in flight when the NIC reboots) live in host memory
// and must survive the reboot; the rebuilt channels deliver them exactly
// once in the new epoch, and the stale deferred ring must not disturb the
// rebooted NIC.
TEST_F(NicTest, DoorbellThenRebootDeliversExactlyOnce) {
  NicConfig cfg;
  cfg.doorbell_coalesce = 5 * sim::us;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0x11, 0);
  auto* dst = make_ep(1, 2, 0x22, 0);
  map(src, 0, 1, 2, 0x22);

  post_request(src, 0, 1, 1);
  post_request(src, 0, 1, 2);  // same instant: folded into a deferred ring
  nics_[0]->reboot();          // races the deferred ring
  eng_.run();

  ASSERT_EQ(dst->recv_requests.size(), 2u);
  EXPECT_EQ(dst->recv_requests[0].body.args[0], 1u);
  EXPECT_EQ(dst->recv_requests[1].body.args[0], 2u);
  EXPECT_EQ(dst->msgs_delivered, 2u);
  EXPECT_EQ(src->msgs_sent, 2u);
  EXPECT_TRUE(src->send_queue.empty());
}

// FIFO per channel across burst boundaries: with a single logical channel
// and a burst_service smaller than the backlog, the firmware needs several
// bursts (and doze/wake cycles between acks) to drain the queue — arrival
// order must still match post order exactly.
TEST_F(NicTest, BurstBoundaryPreservesPerChannelFifo) {
  NicConfig cfg;
  cfg.channels_per_peer = 1;
  cfg.burst_service = 2;
  build(2, cfg);
  auto* src = make_ep(0, 1, 0x11, 0);
  auto* dst = make_ep(1, 2, 0x22, 0);
  map(src, 0, 1, 2, 0x22);

  constexpr int kMsgs = 7;  // 4 burst boundaries at burst_service=2
  for (int i = 0; i < kMsgs; ++i) {
    post_request(src, 0, 1, static_cast<std::uint64_t>(i));
  }
  eng_.run();

  ASSERT_EQ(dst->recv_requests.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(dst->recv_requests[static_cast<std::size_t>(i)].body.args[0],
              static_cast<std::uint64_t>(i))
        << "message " << i << " out of order";
  }
  EXPECT_EQ(nic_counter(1, "duplicates_suppressed"), 0u);
}

}  // namespace
}  // namespace vnet::lanai
