// Tests for the causal span stack (DESIGN.md §12): the SpanRecorder flight
// recorder and its per-endpoint rings, critical-path extraction (stage sums
// telescope to e2e even with missing boundaries), the differential tail
// profiler's cohort math and rendering, and the end-to-end capture of a
// real ping-pong run.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/logp.hpp"
#include "cluster/config.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace vnet::obs {
namespace {

// Builds a complete synthetic trace with every boundary present and the
// given per-stage durations starting at `t0`.
SpanTrace make_trace(std::uint32_t node, std::uint32_t ep, std::uint64_t id,
                     std::int64_t t0,
                     const std::array<std::int64_t, kSpanStageCount>& stages) {
  SpanTrace t;
  t.node = node;
  t.ep = ep;
  t.msg_id = id;
  std::int64_t at = t0;
  for (unsigned i = 0; i < kSpanPointCount; ++i) {
    t.at[i] = at;
    if (i < kSpanStageCount) at += stages[i];
  }
  t.complete = true;
  return t;
}

// ------------------------------------------------------------ SpanRecorder

TEST(Span, SamplingIntervalAdmitsOneInN) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.begin(0, 1, 99, 10));  // disabled: nothing tracked

  rec.set_sample_interval(3);
  int admitted = 0;
  for (std::uint64_t id = 0; id < 9; ++id) {
    if (rec.begin(0, 1, id, static_cast<std::int64_t>(id))) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(rec.tracked(), 3u);
  EXPECT_EQ(rec.inflight(), 3u);
  // The admission counter is published through the registry.
  EXPECT_EQ(reg.snapshot().counter("obs.span.tracked"), 3u);
}

TEST(Span, FirstWinsStampsSurviveRetransmission) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  rec.set_sample_interval(1);
  const std::uint64_t k = SpanRecorder::key(2, 5, 7);
  ASSERT_TRUE(rec.begin(2, 5, 7, 100));
  rec.point(k, SpanPoint::kNicPickup, 200);
  rec.point(k, SpanPoint::kNicPickup, 900);  // retransmit re-crosses: ignored
  rec.edge(k, SpanEdge::Kind::kRetransmit, 900, 1);
  rec.finish(k, 1000);

  const auto traces = rec.collect();
  ASSERT_EQ(traces.size(), 1u);
  const SpanTrace& t = traces[0];
  EXPECT_EQ(t.node, 2u);
  EXPECT_EQ(t.ep, 5u);
  EXPECT_EQ(t.msg_id, 7u);
  EXPECT_EQ(t.at[static_cast<unsigned>(SpanPoint::kNicPickup)], 200);
  EXPECT_EQ(t.retransmits, 1u);
  ASSERT_EQ(t.edge_count, 1u);
  EXPECT_EQ(t.edges[0].at_ns, 900);
  EXPECT_TRUE(t.complete);
  EXPECT_EQ(rec.completed(), 1u);
  EXPECT_EQ(rec.inflight(), 0u);
}

TEST(Span, EdgeArrayOverflowKeepsCounting) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  rec.set_sample_interval(1);
  const std::uint64_t k = SpanRecorder::key(0, 0, 1);
  ASSERT_TRUE(rec.begin(0, 0, 1, 0));
  for (int i = 0; i < 6; ++i) {
    rec.edge(k, SpanEdge::Kind::kRetransmit, 10 * (i + 1), i);
  }
  rec.finish(k, 100);
  const auto traces = rec.collect();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].edge_count, SpanTrace::kMaxEdges);
  EXPECT_EQ(traces[0].retransmits, 6u);  // counted past the inline array
}

TEST(Span, PerEndpointRingOverwritesOldest) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  rec.set_sample_interval(1);
  rec.set_ring_capacity(2);
  for (std::uint64_t id = 0; id < 5; ++id) {
    const std::uint64_t k = SpanRecorder::key(1, 1, id);
    ASSERT_TRUE(rec.begin(1, 1, id, static_cast<std::int64_t>(10 * id)));
    rec.finish(k, static_cast<std::int64_t>(10 * id + 5));
  }
  EXPECT_EQ(rec.completed(), 5u);
  EXPECT_EQ(rec.overwritten(), 3u);
  EXPECT_EQ(reg.snapshot().counter("obs.span.overwritten"), 3u);
  const auto traces = rec.collect();
  ASSERT_EQ(traces.size(), 2u);  // newest two retained, oldest first
  EXPECT_EQ(traces[0].msg_id, 3u);
  EXPECT_EQ(traces[1].msg_id, 4u);
}

TEST(Span, CollectOrdersEndpointsDeterministically) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  rec.set_sample_interval(1);
  // Commit in scrambled endpoint order; collect() must come back sorted by
  // (node, ep) so two identical runs produce identical vectors.
  for (auto [node, ep, id] : {std::array<std::uint32_t, 3>{3, 1, 30},
                              std::array<std::uint32_t, 3>{0, 2, 2},
                              std::array<std::uint32_t, 3>{0, 1, 1}}) {
    const std::uint64_t k = SpanRecorder::key(node, ep, id);
    ASSERT_TRUE(rec.begin(node, ep, id, 0));
    rec.finish(k, 10);
  }
  const auto traces = rec.collect();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].msg_id, 1u);
  EXPECT_EQ(traces[1].msg_id, 2u);
  EXPECT_EQ(traces[2].msg_id, 30u);
}

TEST(Span, ReturnedTraceIsCommittedAndFlagged) {
  MetricsRegistry reg;
  SpanRecorder rec(reg);
  rec.set_sample_interval(1);
  const std::uint64_t k = SpanRecorder::key(0, 3, 9);
  ASSERT_TRUE(rec.begin(0, 3, 9, 50));
  rec.point(k, SpanPoint::kWireInject, 80);
  rec.drop_returned(k, 500, /*reason=*/2);

  const auto traces = rec.collect();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].returned);
  EXPECT_FALSE(traces[0].complete);
  ASSERT_EQ(traces[0].edge_count, 1u);
  EXPECT_EQ(traces[0].edges[0].kind, SpanEdge::Kind::kReturnToSender);
  EXPECT_EQ(traces[0].edges[0].arg, 2);
  EXPECT_EQ(reg.snapshot().counter("obs.span.returned"), 1u);
}

// --------------------------------------------------------- critical path

TEST(Span, CriticalPathTelescopesToE2e) {
  const std::array<std::int64_t, kSpanStageCount> stages = {10, 20, 30, 40,
                                                            50, 60, 70, 80};
  const SpanTrace t = make_trace(0, 0, 1, 1000, stages);
  EXPECT_EQ(t.e2e_ns(), 360);
  const auto cp = t.critical_path();
  std::int64_t sum = 0;
  for (unsigned i = 0; i < kSpanStageCount; ++i) {
    EXPECT_EQ(cp[i], stages[i]) << span_stage_name(i);
    sum += cp[i];
  }
  EXPECT_EQ(sum, t.e2e_ns());
}

TEST(Span, CriticalPathChargesGapsToEarlierStage) {
  // Local delivery: the wire boundaries are never crossed. The pickup→
  // deposit gap must charge wholly to tx_service and still telescope.
  SpanTrace t;
  t.at.fill(-1);
  t.at[static_cast<unsigned>(SpanPoint::kEnqueue)] = 0;
  t.at[static_cast<unsigned>(SpanPoint::kDoorbell)] = 10;
  t.at[static_cast<unsigned>(SpanPoint::kNicPickup)] = 25;
  t.at[static_cast<unsigned>(SpanPoint::kRxDeposit)] = 125;
  t.at[static_cast<unsigned>(SpanPoint::kHandlerDone)] = 200;
  t.complete = true;

  const auto cp = t.critical_path();
  EXPECT_EQ(cp[0], 10);   // host_enqueue
  EXPECT_EQ(cp[1], 15);   // doorbell_gate: doorbell→pickup (gate missing)
  EXPECT_EQ(cp[2], 0);    // tx_queue: boundary missing, nothing charged
  EXPECT_EQ(cp[3], 100);  // tx_service absorbs the skipped wire stages
  EXPECT_EQ(cp[4], 0);    // wire
  EXPECT_EQ(cp[5], 0);    // rx_service: its starting boundary is missing
  EXPECT_EQ(cp[6], 75);   // wake absorbs deposit→done (handler-wake missing)
  std::int64_t sum = 0;
  for (auto v : cp) sum += v;
  EXPECT_EQ(sum, t.e2e_ns());
  EXPECT_EQ(t.e2e_ns(), 200);
}

TEST(Span, StageNamesAndWaitSplit) {
  EXPECT_STREQ(span_stage_name(0), "host_enqueue");
  EXPECT_STREQ(span_stage_name(4), "wire");
  EXPECT_STREQ(span_stage_name(7), "handler");
  EXPECT_FALSE(span_stage_is_wait(0));
  EXPECT_TRUE(span_stage_is_wait(1));  // doorbell_gate
  EXPECT_TRUE(span_stage_is_wait(2));  // tx_queue
  EXPECT_FALSE(span_stage_is_wait(4));
  EXPECT_TRUE(span_stage_is_wait(6));  // wake
}

// ----------------------------------------------------------- tail report

TEST(Tail, DifferentialReportIsolatesTheSlowStage) {
  // 99 fast traces (all stages 100ns) and one slow one whose wake stage
  // carries an extra 10us: the report must put `wake` first among culprits
  // and reconcile both cohorts exactly.
  std::vector<SpanTrace> traces;
  const std::array<std::int64_t, kSpanStageCount> fast = {100, 100, 100, 100,
                                                          100, 100, 100, 100};
  for (std::uint64_t i = 0; i < 99; ++i) {
    traces.push_back(make_trace(0, 1, i, 1000 * static_cast<std::int64_t>(i),
                                fast));
  }
  auto slow = fast;
  slow[6] += 10000;  // wake
  traces.push_back(make_trace(0, 1, 99, 990000, slow));

  const TailReport r = tail_report(traces);
  EXPECT_EQ(r.total, 100u);
  EXPECT_EQ(r.excluded, 0u);
  EXPECT_EQ(r.tail_count, 1u);
  EXPECT_GT(r.p50_count, 0u);
  EXPECT_DOUBLE_EQ(r.e2e_p50_ns, 800.0);
  EXPECT_DOUBLE_EQ(r.e2e_max_ns, 10800.0);
  EXPECT_DOUBLE_EQ(r.tail_e2e_mean_ns, 10800.0);
  EXPECT_DOUBLE_EQ(r.p50_e2e_mean_ns, 800.0);
  EXPECT_EQ(r.culprits[0], 6u);  // wake is the top culprit
  EXPECT_NEAR(r.stages[6].delta_ns, 10000.0, 1e-9);
  EXPECT_NEAR(r.stages[6].share, 1.0, 1e-9);
  // Reconciliation is an identity: stage sums equal cohort e2e means.
  EXPECT_LT(r.p50_recon_err(), 1e-12);
  EXPECT_LT(r.tail_recon_err(), 1e-12);

  const std::string rendered = render_tail_report(r);
  EXPECT_NE(rendered.find("wake"), std::string::npos);
  EXPECT_NE(rendered.find("top p99 culprits:"), std::string::npos);
  // The culprit line leads with the slow stage.
  const auto pos = rendered.find("top p99 culprits:");
  EXPECT_NE(rendered.find("wake", pos), std::string::npos);
}

TEST(Tail, ExcludesReturnedAndIncompleteTraces) {
  std::vector<SpanTrace> traces;
  const std::array<std::int64_t, kSpanStageCount> s = {1, 1, 1, 1, 1, 1, 1, 1};
  traces.push_back(make_trace(0, 0, 0, 0, s));
  SpanTrace returned = make_trace(0, 0, 1, 0, s);
  returned.returned = true;
  traces.push_back(returned);
  SpanTrace incomplete;
  incomplete.at.fill(-1);
  traces.push_back(incomplete);

  const TailReport r = tail_report(traces);
  EXPECT_EQ(r.total, 1u);
  EXPECT_EQ(r.excluded, 2u);
  EXPECT_EQ(r.tail_count, 1u);
}

TEST(Tail, EmptyInputRendersEmpty) {
  const TailReport r = tail_report({});
  EXPECT_EQ(r.total, 0u);
  EXPECT_EQ(render_tail_report(r), "");
}

TEST(Tail, RetransmitAndHopAnnotationsSegregateByCohort) {
  std::vector<SpanTrace> traces;
  const std::array<std::int64_t, kSpanStageCount> fast = {10, 10, 10, 10,
                                                          10, 10, 10, 10};
  for (std::uint64_t i = 0; i < 50; ++i) {
    SpanTrace t = make_trace(0, 0, i, 0, fast);
    t.wire_hops = 2;
    traces.push_back(t);
  }
  auto slow = fast;
  slow[3] += 5000;
  SpanTrace t = make_trace(0, 0, 50, 0, slow);
  t.retransmits = 3;
  t.wire_hops = 4;
  traces.push_back(t);

  const TailReport r = tail_report(traces);
  EXPECT_EQ(r.tail_retransmits, 3u);
  EXPECT_EQ(r.p50_retransmits, 0u);
  EXPECT_DOUBLE_EQ(r.tail_wire_hops, 4.0);
  EXPECT_DOUBLE_EQ(r.p50_wire_hops, 2.0);
}

// ------------------------------------------------------------ end-to-end

cluster::ClusterConfig small_config() {
  cluster::ClusterConfig cfg;
  cfg.nodes = 2;
  return cfg;
}

TEST(SpanIntegration, LogpRunCapturesAndReconcilesTailProfile) {
  const apps::LogpResult r =
      apps::measure_logp(small_config(), /*pingpongs=*/60, /*stream=*/0,
                         /*attribute=*/true);
  ASSERT_FALSE(r.tail_report.empty());
  EXPECT_NE(r.tail_report.find("top p99 culprits:"), std::string::npos);
  EXPECT_NE(r.tail_report.find("host_enqueue"), std::string::npos);
  // ISSUE acceptance: the profiler's cohort stage sums reconcile with the
  // cohort e2e means to within 5% at p50 and in the tail (an identity by
  // construction, so in practice ~0).
  EXPECT_LE(r.tail_recon_p50, 0.05);
  EXPECT_LE(r.tail_recon_tail, 0.05);
}

TEST(SpanIntegration, SameSeedRunsProduceIdenticalTailReports) {
  const apps::LogpResult a =
      apps::measure_logp(small_config(), 40, 0, true);
  const apps::LogpResult b =
      apps::measure_logp(small_config(), 40, 0, true);
  EXPECT_EQ(a.tail_report, b.tail_report);
  ASSERT_FALSE(a.tail_report.empty());
}

}  // namespace
}  // namespace vnet::obs
