// Unit tests for the discrete-event engine: event ordering, coroutine
// processes, synchronization primitives, RNG determinism, and statistics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace vnet::sim {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, UnitConstants) {
  EXPECT_EQ(1 * us, 1000 * ns);
  EXPECT_EQ(1 * ms, 1000 * us);
  EXPECT_EQ(1 * sec, 1000 * ms);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_msec(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(3 * sec), 3.0);
  EXPECT_EQ(from_usec(2.5), 2500);
  EXPECT_EQ(from_usec(0.0004), 0);  // rounds to nearest
  EXPECT_EQ(from_usec(0.0006), 1);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1500), "1.500us");
  EXPECT_EQ(format_time(2'000'000), "2.000ms");
  EXPECT_EQ(format_time(3 * sec), "3.000000s");
  EXPECT_EQ(format_time(kTimeNever), "never");
}

// ------------------------------------------------------ UniqueFunction

TEST(UniqueFunction, EmptyIsFalsy) {
  UniqueFunction f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesSmallLambda) {
  int hits = 0;
  UniqueFunction f = [&hits] { ++hits; };
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(42);
  int got = 0;
  UniqueFunction f = [p = std::move(p), &got] { got = *p; };
  f();
  EXPECT_EQ(got, 42);
}

TEST(UniqueFunction, LargeCaptureGoesToHeapAndStillWorks) {
  struct Big {
    char data[512];
  };
  Big big{};
  big.data[0] = 'x';
  char got = 0;
  UniqueFunction f = [big, &got] { got = big.data[0]; };
  UniqueFunction g = std::move(f);
  g();
  EXPECT_EQ(got, 'x');
}

TEST(UniqueFunction, MoveAssignReleasesOldTarget) {
  auto counter = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> c;
    ~Bump() {
      if (c) ++*c;
    }
    Bump(std::shared_ptr<int> c) : c(std::move(c)) {}
    Bump(Bump&&) = default;
    void operator()() {}
  };
  UniqueFunction f = Bump{counter};
  f = UniqueFunction([] {});
  EXPECT_EQ(*counter, 1);  // the old Bump target was destroyed
}

// ----------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  int hits = 0;
  auto h = q.push(10, [&] { ++hits; });
  q.push(20, [&] { ++hits; });
  EXPECT_EQ(q.cancel(h), CancelOutcome::kCancelled);
  EXPECT_EQ(q.cancel(h), CancelOutcome::kAlreadyCancelled);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(10, [] {});
  q.push(20, [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 20);
}

// ---------------------------------------------------------------- Engine

TEST(Engine, RunsEventsAndAdvancesClock) {
  Engine eng;
  std::vector<Time> seen;
  eng.after(100, [&] { seen.push_back(eng.now()); });
  eng.after(50, [&] { seen.push_back(eng.now()); });
  eng.run();
  EXPECT_EQ(seen, (std::vector<Time>{50, 100}));
  EXPECT_EQ(eng.now(), 100);
  EXPECT_EQ(eng.events_processed(), 2u);
}

TEST(Engine, RunUntilStopsAtBoundaryAndSetsNow) {
  Engine eng;
  int hits = 0;
  eng.at(10, [&] { ++hits; });
  eng.at(100, [&] { ++hits; });
  eng.run_until(50);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(eng.now(), 50);
  eng.run();
  EXPECT_EQ(hits, 2);
}

TEST(Engine, RunForIsRelative) {
  Engine eng;
  int hits = 0;
  eng.at(10, [&] { ++hits; });
  eng.run_for(5);
  EXPECT_EQ(hits, 0);
  eng.run_for(5);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(eng.now(), 10);
}

TEST(Engine, PastTimesClampToNow) {
  Engine eng;
  eng.at(100, [] {});
  eng.run();
  Time seen = -1;
  eng.at(5, [&] { seen = eng.now(); });  // in the past: clamps
  eng.run();
  EXPECT_EQ(seen, 100);
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine eng;
  std::vector<int> order;
  eng.after(10, [&] {
    order.push_back(1);
    eng.after(5, [&] { order.push_back(2); });
  });
  eng.after(12, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// --------------------------------------------------------------- Process

Process simple_proc(Engine& eng, std::vector<Time>& log) {
  log.push_back(eng.now());
  co_await eng.delay(7 * us);
  log.push_back(eng.now());
}

TEST(Process, DelayAdvancesTime) {
  Engine eng;
  std::vector<Time> log;
  eng.spawn(simple_proc(eng, log));
  eng.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 0);
  EXPECT_EQ(log[1], 7 * us);
  EXPECT_EQ(eng.live_processes(), 0u);  // frame reclaimed at completion
}

Process forever_proc(Engine& eng) {
  for (;;) co_await eng.delay(1 * ms);
}

TEST(Process, EngineDestructionReclaimsLiveProcesses) {
  auto eng = std::make_unique<Engine>();
  eng->spawn(forever_proc(*eng));
  eng->run_for(10 * ms);
  EXPECT_EQ(eng->live_processes(), 1u);
  eng.reset();  // must not leak or crash (ASAN-clean)
}

TEST(Process, UnspawnedProcessIsDestroyedCleanly) {
  Engine eng;
  std::vector<Time> log;
  { Process p = simple_proc(eng, log); }  // never spawned
  eng.run();
  EXPECT_TRUE(log.empty());
}

TEST(Process, ManyProcessesInterleaveDeterministically) {
  auto run_once = [] {
    Engine eng(42);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      eng.spawn([](Engine& e, std::vector<int>& ord, int id) -> Process {
        co_await e.delay((id % 3) * us);
        ord.push_back(id);
        co_await e.delay((id % 2) * us);
        ord.push_back(100 + id);
      }(eng, order, i));
    }
    eng.run();
    return order;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
}

// ------------------------------------------------------------------ Task

Task<int> add_later(Engine& eng, int a, int b) {
  co_await eng.delay(3 * us);
  co_return a + b;
}

Task<int> double_of(Engine& eng, int x) {
  int v = co_await add_later(eng, x, x);
  co_return v;
}

TEST(Task, ReturnsValueThroughAwait) {
  Engine eng;
  int got = 0;
  eng.spawn([](Engine& e, int& g) -> Process {
    g = co_await add_later(e, 2, 3);
  }(eng, got));
  eng.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(eng.now(), 3 * us);
}

TEST(Task, NestedTasksCompose) {
  Engine eng;
  int got = 0;
  eng.spawn([](Engine& e, int& g) -> Process {
    g = co_await double_of(e, 21);
  }(eng, got));
  eng.run();
  EXPECT_EQ(got, 42);
}

Task<> set_flag(Engine& eng, bool& flag) {
  co_await eng.delay(1 * us);
  flag = true;
}

TEST(Task, VoidTaskRuns) {
  Engine eng;
  bool flag = false;
  eng.spawn([](Engine& e, bool& f) -> Process {
    co_await set_flag(e, f);
    EXPECT_TRUE(f);
  }(eng, flag));
  eng.run();
  EXPECT_TRUE(flag);
}

TEST(Task, UnawaitedTaskNeverRuns) {
  Engine eng;
  bool flag = false;
  { Task<> t = set_flag(eng, flag); }  // lazily started: dropped unrun
  eng.run();
  EXPECT_FALSE(flag);
}

TEST(Task, MoveOnlyReturnType) {
  Engine eng;
  std::unique_ptr<int> got;
  eng.spawn([](Engine& e, std::unique_ptr<int>& g) -> Process {
    g = co_await [](Engine& eng2) -> Task<std::unique_ptr<int>> {
      co_await eng2.delay(1);
      co_return std::make_unique<int>(9);
    }(e);
  }(eng, got));
  eng.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 9);
}

// --------------------------------------------------------------- CondVar

Process waiter_proc(Engine& eng, CondVar& cv, int& wakes) {
  co_await cv.wait();
  ++wakes;
  (void)eng;
}

TEST(CondVar, NotifyOneWakesInFifoOrder) {
  Engine eng;
  CondVar cv(eng);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine&, CondVar& c, std::vector<int>& ord,
                 int id) -> Process {
      co_await c.wait();
      ord.push_back(id);
    }(eng, cv, order, i));
  }
  eng.run();  // all suspended now
  EXPECT_EQ(cv.waiter_count(), 3u);
  cv.notify_one();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  cv.notify_all();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CondVar, NotifyWithNoWaitersIsLost) {
  Engine eng;
  CondVar cv(eng);
  cv.notify_all();  // nothing waiting: signal is not latched
  int wakes = 0;
  eng.spawn(waiter_proc(eng, cv, wakes));
  eng.run();
  EXPECT_EQ(wakes, 0);
  cv.notify_one();
  eng.run();
  EXPECT_EQ(wakes, 1);
}

TEST(CondVar, WaitForTimesOut) {
  Engine eng;
  CondVar cv(eng);
  bool notified = true;
  Time woke_at = -1;
  eng.spawn([](Engine& e, CondVar& c, bool& n, Time& w) -> Process {
    n = co_await c.wait_for(10 * us);
    w = e.now();
  }(eng, cv, notified, woke_at));
  eng.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(woke_at, 10 * us);
  EXPECT_EQ(cv.waiter_count(), 0u);
  // A later notify must not touch the timed-out (stale) entry.
  cv.notify_all();
  eng.run();
}

TEST(CondVar, WaitForNotifiedBeforeTimeout) {
  Engine eng;
  CondVar cv(eng);
  bool notified = false;
  Time woke_at = -1;
  eng.spawn([](Engine& e, CondVar& c, bool& n, Time& w) -> Process {
    n = co_await c.wait_for(10 * us);
    w = e.now();
  }(eng, cv, notified, woke_at));
  eng.after(3 * us, [&] { cv.notify_one(); });
  eng.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(woke_at, 3 * us);
}

TEST(CondVar, TimedOutWaiterDoesNotConsumeNotify) {
  Engine eng;
  CondVar cv(eng);
  bool first = true, second = false;
  eng.spawn([](Engine&, CondVar& c, bool& r) -> Process {
    r = co_await c.wait_for(5 * us);
  }(eng, cv, first));
  eng.spawn([](Engine&, CondVar& c, bool& r) -> Process {
    r = co_await c.wait_for(100 * us);
  }(eng, cv, second));
  eng.after(10 * us, [&] { cv.notify_one(); });
  eng.run();
  EXPECT_FALSE(first);   // timed out at 5us
  EXPECT_TRUE(second);   // got the notify despite being second in line
}

// ------------------------------------------------------------------ Gate

TEST(Gate, WaitersReleaseOnOpenAndLateWaitsPass) {
  Engine eng;
  Gate gate(eng);
  std::vector<int> order;
  eng.spawn([](Engine&, Gate& g, std::vector<int>& ord) -> Process {
    co_await g.wait();
    ord.push_back(1);
  }(eng, gate, order));
  eng.run();
  EXPECT_TRUE(order.empty());
  gate.open();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  // After open, waits complete immediately (same timestamp).
  eng.spawn([](Engine&, Gate& g, std::vector<int>& ord) -> Process {
    co_await g.wait();
    ord.push_back(2);
  }(eng, gate, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  gate.open();  // idempotent
}

// ------------------------------------------------------------- Semaphore

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  int active = 0, peak = 0, done = 0;
  for (int i = 0; i < 6; ++i) {
    eng.spawn([](Engine& e, Semaphore& s, int& a, int& p, int& d) -> Process {
      co_await s.acquire();
      ++a;
      p = std::max(p, a);
      co_await e.delay(10 * us);
      --a;
      ++d;
      s.release();
    }(eng, sem, active, peak, done));
  }
  eng.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, TryAcquire) {
  Engine eng;
  Semaphore sem(eng, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, HandoffIsFifo) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Semaphore& s, std::vector<int>& ord,
                 int id) -> Process {
      co_await s.acquire();
      ord.push_back(id);
      co_await e.delay(1 * us);
      s.release();
    }(eng, sem, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --------------------------------------------------------------- Mailbox

TEST(Mailbox, ReceiveQueuedValue) {
  Engine eng;
  Mailbox<int> box(eng);
  box.post(7);
  int got = 0;
  eng.spawn([](Engine&, Mailbox<int>& b, int& g) -> Process {
    g = co_await b.receive();
  }(eng, box, got));
  eng.run();
  EXPECT_EQ(got, 7);
}

TEST(Mailbox, ReceiverBlocksUntilPost) {
  Engine eng;
  Mailbox<std::string> box(eng);
  std::string got;
  Time when = -1;
  eng.spawn([](Engine& e, Mailbox<std::string>& b, std::string& g,
               Time& w) -> Process {
    g = co_await b.receive();
    w = e.now();
  }(eng, box, got, when));
  eng.after(5 * us, [&] { box.post("hello"); });
  eng.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, 5 * us);
}

TEST(Mailbox, MultipleReceiversServedFifo) {
  Engine eng;
  Mailbox<int> box(eng);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine&, Mailbox<int>& b, std::vector<std::pair<int, int>>& g,
                 int id) -> Process {
      int v = co_await b.receive();
      g.emplace_back(id, v);
    }(eng, box, got, i));
  }
  eng.run();
  box.post(10);
  box.post(20);
  box.post(30);
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(0, 10));
  EXPECT_EQ(got[1], std::make_pair(1, 20));
  EXPECT_EQ(got[2], std::make_pair(2, 30));
}

TEST(Mailbox, TryReceive) {
  Engine eng;
  Mailbox<int> box(eng);
  EXPECT_FALSE(box.try_receive().has_value());
  box.post(1);
  box.post(2);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.try_receive().value(), 1);
  EXPECT_EQ(box.try_receive().value(), 2);
  EXPECT_TRUE(box.empty());
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(7);
  Rng child = parent.split();
  // Drawing from the child must not perturb the parent relative to a
  // parent that splits but never uses the child.
  Rng parent2(7);
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) (void)child2.next();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(parent.next(), parent2.next());
  (void)child;
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    auto v = rng.range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 1.0);
}

// ----------------------------------------------------------------- Stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, QuantilesRoughlyCorrect) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 500, 300);  // log buckets: coarse but sane
  EXPECT_GE(h.quantile(0.99), 500);
  EXPECT_LE(h.quantile(0.0), 2.0);
}

TEST(Histogram, DetectsBimodality) {
  Histogram h;
  // Fast mode around 30, slow mode around 30000 — like the bimodal RTTs of
  // §6.4.1 (resident vs re-mapping endpoints).
  for (int i = 0; i < 1000; ++i) h.add(30.0 + (i % 7));
  for (int i = 0; i < 100; ++i) h.add(30'000.0 + (i % 500));
  EXPECT_GE(h.mode_count(), 2u);
}

TEST(LinearFit, RecoversLine) {
  LinearFit fit;
  for (int n = 128; n <= 8192; n *= 2) {
    fit.add(n, 0.1112 * n + 61.02);
  }
  EXPECT_NEAR(fit.slope(), 0.1112, 1e-9);
  EXPECT_NEAR(fit.intercept(), 61.02, 1e-6);
  EXPECT_NEAR(fit.r_squared(), 1.0, 1e-12);
}

}  // namespace
}  // namespace vnet::sim
