// Tests for the minimal VIA layer (§7/§8): connected VIs, explicit memory
// registration, shared completion queues, and the per-connection resource
// provisioning the paper critiques.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "via/via.hpp"

namespace vnet::via {
namespace {

TEST(Via, ConnectAndTransferWithImmediateData) {
  cluster::Cluster cl(cluster::NowConfig(2));
  ViAddress addr[2];
  bool got_recv = false, got_send = false;
  std::uint64_t immediate = 0;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 1);
    addr[1] = vi->address();
    while (!addr[0].valid()) co_await t.sleep(20 * sim::us);
    vi->connect(addr[0]);
    auto buf = co_await vi->register_memory(t, 4096);
    vi->post_recv(buf);
    const Completion c = co_await cq.wait(t);
    EXPECT_EQ(c.kind, Completion::Kind::kRecv);
    EXPECT_EQ(c.vi_id, 1);
    immediate = c.immediate;
    got_recv = true;
    co_await t.sleep(1 * sim::ms);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 0);
    addr[0] = vi->address();
    while (!addr[1].valid()) co_await t.sleep(20 * sim::us);
    vi->connect(addr[1]);
    auto buf = co_await vi->register_memory(t, 4096);
    EXPECT_TRUE(co_await vi->post_send(t, buf, 2048, 0xabcdefULL));
    const Completion c = co_await cq.wait(t);
    EXPECT_EQ(c.kind, Completion::Kind::kSend);
    got_send = true;
  });
  cl.run_to_completion();
  EXPECT_TRUE(got_recv);
  EXPECT_TRUE(got_send);
  EXPECT_EQ(immediate, 0xabcdefULL);
}

TEST(Via, PostingErrorsAreReported) {
  cluster::Cluster cl(cluster::NowConfig(2));
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 0);
    auto buf = co_await vi->register_memory(t, 1024);
    // Unconnected VI.
    EXPECT_FALSE(co_await vi->post_send(t, buf, 100));
    vi->connect(ViAddress{1, 99, 0});
    // Unregistered handle.
    EXPECT_FALSE(co_await vi->post_send(t, MemoryHandle{77, 4096}, 100));
    // Larger than the registered region.
    EXPECT_FALSE(co_await vi->post_send(t, buf, 2048));
    // Deregistered memory can no longer be used.
    co_await vi->deregister_memory(t, buf);
    EXPECT_FALSE(co_await vi->post_send(t, buf, 100));
  });
  cl.run_to_completion();
}

TEST(Via, RegistrationCostScalesWithPages) {
  cluster::Cluster cl(cluster::NowConfig(1));
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 0);
    const sim::Time t0 = t.engine().now();
    (void)co_await vi->register_memory(t, 64 * 1024);  // 8 pages
    const sim::Duration big = t.engine().now() - t0;
    const sim::Time t1 = t.engine().now();
    (void)co_await vi->register_memory(t, 100);  // 1 page
    const sim::Duration small = t.engine().now() - t1;
    EXPECT_GE(big, 8 * ViaCosts::kRegisterPerPage);
    EXPECT_GE(static_cast<double>(big) / static_cast<double>(small), 4.0);
  });
  cl.run_to_completion();
}

TEST(Via, SharedCompletionQueueAggregatesVis) {
  // One server node with 3 VIs on one CQ; 3 client nodes send over their
  // own connections; the single CQ surfaces all arrivals with VI ids.
  cluster::Cluster cl(cluster::NowConfig(4));
  ViAddress server_addr[3];
  ViAddress client_addr[3];
  std::multiset<int> seen_vis;

  cl.spawn_thread(0, "server", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    std::vector<std::unique_ptr<Vi>> vis;
    for (int i = 0; i < 3; ++i) {
      auto vi = co_await Vi::create(t, cq, i);
      server_addr[i] = vi->address();
      auto buf = co_await vi->register_memory(t, 4096);
      for (int r = 0; r < 4; ++r) vi->post_recv(buf);
      vis.push_back(std::move(vi));
    }
    for (int i = 0; i < 3; ++i) {
      while (!client_addr[i].valid()) co_await t.sleep(20 * sim::us);
      vis[static_cast<std::size_t>(i)]->connect(client_addr[i]);
    }
    for (int n = 0; n < 9; ++n) {
      const Completion c = co_await cq.wait(t);
      EXPECT_EQ(c.kind, Completion::Kind::kRecv);
      seen_vis.insert(c.vi_id);
    }
    co_await t.sleep(1 * sim::ms);
  });
  for (int i = 0; i < 3; ++i) {
    cl.spawn_thread(i + 1, "client", [&, i](host::HostThread& t)
                                         -> sim::Task<> {
      CompletionQueue cq(t.engine());
      auto vi = co_await Vi::create(t, cq, 10 + i);
      client_addr[i] = vi->address();
      while (!server_addr[i].valid()) co_await t.sleep(20 * sim::us);
      vi->connect(server_addr[i]);
      auto buf = co_await vi->register_memory(t, 256);
      for (int m = 0; m < 3; ++m) {
        EXPECT_TRUE(co_await vi->post_send(t, buf, 64));
      }
      for (int m = 0; m < 3; ++m) (void)co_await cq.wait(t);
    });
  }
  cl.run_to_completion();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(seen_vis.count(i), 3u) << "vi " << i;
  }
}

TEST(Via, EachViConsumesAnEndpoint) {
  // The §7 critique quantified: n VIs = n endpoints, so a 12-connection
  // node overcommits the 8-frame NIC and the driver must thrash frames,
  // where a single virtual-network endpoint would have sufficed.
  cluster::Cluster cl(cluster::NowConfig(2));
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    std::vector<std::unique_ptr<Vi>> vis;
    for (int i = 0; i < 12; ++i) {
      vis.push_back(co_await Vi::create(t, cq, i));
    }
    EXPECT_EQ(t.engine().snapshot().counter("host.0.driver.endpoints_created"),
              12u);
  });
  cl.run_to_completion();
}

TEST(Via, BulkTransfersFragmentAndComplete) {
  cluster::Cluster cl(cluster::NowConfig(2));
  ViAddress addr[2];
  std::uint32_t got_bytes = 0;
  cl.spawn_thread(1, "rx", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 1);
    addr[1] = vi->address();
    while (!addr[0].valid()) co_await t.sleep(20 * sim::us);
    vi->connect(addr[0]);
    auto buf = co_await vi->register_memory(t, 64 * 1024);
    vi->post_recv(buf);
    const Completion c = co_await cq.wait(t);
    got_bytes = c.bytes;
    co_await t.sleep(2 * sim::ms);
  });
  cl.spawn_thread(0, "tx", [&](host::HostThread& t) -> sim::Task<> {
    CompletionQueue cq(t.engine());
    auto vi = co_await Vi::create(t, cq, 0);
    addr[0] = vi->address();
    while (!addr[1].valid()) co_await t.sleep(20 * sim::us);
    vi->connect(addr[1]);
    auto buf = co_await vi->register_memory(t, 64 * 1024);
    EXPECT_TRUE(co_await vi->post_send(t, buf, 40'000));
    (void)co_await cq.wait(t);
  });
  cl.run_to_completion();
  EXPECT_EQ(got_bytes, 40'000u);
}

}  // namespace
}  // namespace vnet::via
