// Parameterized property tests sweeping the main invariants across
// configuration space: fabric topologies, transport fragment sizes and
// fault rates, frame counts, scheduler loads, and API event masks.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "lanai/nic.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace vnet {
namespace {

// -------------------------------------------------- fat-tree construction

class FatTreeShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FatTreeShape, BuildsAndRoutesAllPairs) {
  const auto [hosts, per_leaf, spines] = GetParam();
  sim::Engine eng;
  auto f = myrinet::Fabric::fat_tree(eng, hosts, per_leaf, spines);
  ASSERT_EQ(f->num_hosts(), hosts);
  const int leaves = (hosts + per_leaf - 1) / per_leaf;
  EXPECT_EQ(f->num_switches(), leaves + spines);
  EXPECT_EQ(f->num_links(), hosts + leaves * spines);

  for (myrinet::NodeId s = 0; s < hosts; ++s) {
    for (myrinet::NodeId d = 0; d < hosts; ++d) {
      const auto& routes = f->routes(s, d);
      if (s == d) {
        EXPECT_TRUE(routes.empty());
        continue;
      }
      ASSERT_FALSE(routes.empty());
      const bool same_leaf = s / per_leaf == d / per_leaf;
      for (const auto& r : routes) {
        EXPECT_EQ(r.size(), same_leaf ? 1u : 3u);
      }
      // Cross-leaf pairs get one distinct route per spine.
      if (!same_leaf) {
        EXPECT_EQ(routes.size(), static_cast<std::size_t>(spines));
        std::set<std::uint8_t> first_hops;
        for (const auto& r : routes) first_hops.insert(r[0]);
        EXPECT_EQ(first_hops.size(), routes.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FatTreeShape,
    ::testing::Values(std::make_tuple(4, 2, 1), std::make_tuple(10, 5, 1),
                      std::make_tuple(16, 4, 2), std::make_tuple(25, 5, 5),
                      std::make_tuple(40, 5, 3), std::make_tuple(100, 5, 3),
                      std::make_tuple(7, 3, 2)));

// --------------------------------------------- transport fragment sweeps

class FragmentSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FragmentSizes, BulkDeliveredExactlyOnce) {
  const std::uint32_t bytes = GetParam();
  sim::Engine eng(11);
  auto fabric = myrinet::Fabric::crossbar(eng, 2);
  lanai::NicConfig cfg;
  lanai::Nic n0(eng, *fabric, 0, cfg), n1(eng, *fabric, 1, cfg);
  n0.start();
  n1.start();
  lanai::EndpointState src, dst;
  src.node = 0;
  src.id = 1;
  src.translations.resize(2);
  src.translations[0] = lanai::Translation{true, 1, 2, 0};
  dst.node = 1;
  dst.id = 2;
  n0.submit({lanai::DriverOp::Kind::kCreate, &src, -1, 0, nullptr});
  n0.submit({lanai::DriverOp::Kind::kLoad, &src, 0, 0, nullptr});
  n1.submit({lanai::DriverOp::Kind::kCreate, &dst, -1, 0, nullptr});
  n1.submit({lanai::DriverOp::Kind::kLoad, &dst, 0, 0, nullptr});
  eng.run();

  lanai::SendDescriptor d;
  d.dest_index = 0;
  d.body.handler = 1;
  d.body.bulk_bytes = bytes;
  d.msg_id = src.alloc_msg_id();
  d.frag_count = bytes == 0 ? 1 : (bytes + cfg.max_packet_payload - 1) /
                                      cfg.max_packet_payload;
  src.send_queue.push_back(std::move(d));
  n0.doorbell(src);
  eng.run();

  ASSERT_EQ(dst.recv_requests.size(), 1u);
  EXPECT_EQ(dst.recv_requests.front().body.bulk_bytes, bytes);
  EXPECT_EQ(dst.msgs_delivered, 1u);
  EXPECT_EQ(src.msgs_sent, 1u);
  // Reserved slots must be fully released after reassembly.
  EXPECT_EQ(dst.nic_reserved_requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentSizes,
                         ::testing::Values(0u, 1u, 4095u, 4096u, 4097u,
                                           8192u, 12'288u, 65'536u,
                                           262'144u));

// ------------------------------------------ reliability parameter sweeps

class RetransmitTuning
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RetransmitTuning, LossyDeliveryRobustToKnobs) {
  const auto [channels, unbind_limit] = GetParam();
  sim::Engine eng(23);
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.15;
  auto fabric = myrinet::Fabric::crossbar(eng, 2, fp);
  lanai::NicConfig cfg;
  cfg.channels_per_peer = channels;
  cfg.retransmit_unbind_limit = unbind_limit;
  cfg.retransmit_timeout = 150 * sim::us;
  lanai::Nic n0(eng, *fabric, 0, cfg), n1(eng, *fabric, 1, cfg);
  n0.start();
  n1.start();
  lanai::EndpointState src, dst;
  src.node = 0;
  src.id = 1;
  src.translations.resize(2);
  src.translations[0] = lanai::Translation{true, 1, 2, 0};
  dst.node = 1;
  dst.id = 2;
  n0.submit({lanai::DriverOp::Kind::kCreate, &src, -1, 0, nullptr});
  n0.submit({lanai::DriverOp::Kind::kLoad, &src, 0, 0, nullptr});
  n1.submit({lanai::DriverOp::Kind::kCreate, &dst, -1, 0, nullptr});
  n1.submit({lanai::DriverOp::Kind::kLoad, &dst, 0, 0, nullptr});
  eng.run();

  const int total = 60;
  std::multiset<std::uint64_t> seen;
  eng.spawn([](sim::Engine& e, lanai::EndpointState& ep,
               std::multiset<std::uint64_t>& s, int n) -> sim::Process {
    while (static_cast<int>(s.size()) < n) {
      while (!ep.recv_requests.empty()) {
        s.insert(ep.recv_requests.front().body.args[0]);
        ep.recv_requests.pop_front();
      }
      co_await e.delay(100 * sim::us);
    }
  }(eng, dst, seen, total));
  for (int i = 0; i < total; ++i) {
    lanai::SendDescriptor d;
    d.dest_index = 0;
    d.body.handler = 1;
    d.body.args[0] = static_cast<std::uint64_t>(i);
    d.msg_id = src.alloc_msg_id();
    src.send_queue.push_back(std::move(d));
  }
  n0.doorbell(src);
  eng.run();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(seen.count(static_cast<std::uint64_t>(i)), 1u) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, RetransmitTuning,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 8),
                      std::make_tuple(8, 3), std::make_tuple(24, 8),
                      std::make_tuple(32, 1)));

// ----------------------------------------------------- frame-count sweep

class FrameCounts : public ::testing::TestWithParam<int> {};

TEST_P(FrameCounts, OvercommitAlwaysDelivers) {
  const int frames = GetParam();
  auto cfg = cluster::NowConfig(2);
  cfg.nic.endpoint_frames = frames;
  cluster::Cluster cl(cfg);
  const int eps = frames + 3;  // always overcommitted
  std::uint64_t served = 0;
  std::vector<am::Name> names(static_cast<std::size_t>(eps));
  bool ready = false;

  // All target endpoints on node 1, owned by one thread that polls them.
  auto server_eps =
      std::make_shared<std::vector<std::unique_ptr<am::Endpoint>>>();
  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    for (int i = 0; i < eps; ++i) {
      auto ep = co_await am::Endpoint::create(t, 50 + i);
      ep->set_handler(1, [&](am::Endpoint&, const am::Message&) { ++served; });
      names[static_cast<std::size_t>(i)] = ep->name();
      server_eps->push_back(std::move(ep));
    }
    ready = true;
    while (served < static_cast<std::uint64_t>(eps * 3)) {
      for (auto& ep : *server_eps) co_await ep->poll(t, 8);
      co_await t.compute(500);
    }
    co_await t.sleep(2 * sim::ms);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 7);
    while (!ready) co_await t.sleep(50 * sim::us);
    for (int i = 0; i < eps; ++i) {
      ep->map(static_cast<std::uint32_t>(i),
              names[static_cast<std::size_t>(i)]);
    }
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < eps; ++i) {
        co_await ep->request(t, static_cast<std::uint32_t>(i), 1, 1);
      }
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  });
  cl.run_to_completion();
  EXPECT_EQ(served, static_cast<std::uint64_t>(eps * 3));
  EXPECT_GT(cl.engine().snapshot().counter("host.1.driver.evictions"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Frames, FrameCounts, ::testing::Values(1, 2, 4, 8));

// ------------------------------------------------------ scheduler sweeps

class CpuLoads : public ::testing::TestWithParam<int> {};

TEST_P(CpuLoads, FairShareAcrossThreads) {
  const int threads = GetParam();
  sim::Engine eng;
  host::HostConfig hc;
  host::Cpu cpu(eng, hc);
  std::vector<host::ThreadCtx> ctx(static_cast<std::size_t>(threads));
  int done = 0;
  for (int i = 0; i < threads; ++i) {
    ctx[static_cast<std::size_t>(i)].name = "w" + std::to_string(i);
    eng.spawn([](host::Cpu& c, host::ThreadCtx& t, int& d) -> sim::Process {
      co_await c.run(t, 20 * sim::ms);
      ++d;
    }(cpu, ctx[static_cast<std::size_t>(i)], done));
  }
  eng.run();
  EXPECT_EQ(done, threads);
  // Wall time ~ threads * 20ms (+switch costs), i.e. full utilization.
  EXPECT_GE(eng.now(), threads * 20 * sim::ms);
  EXPECT_LE(eng.now(), threads * 22 * sim::ms);
  for (const auto& c : ctx) EXPECT_EQ(c.cpu_used, 20 * sim::ms);
}

INSTANTIATE_TEST_SUITE_P(Loads, CpuLoads, ::testing::Values(1, 2, 3, 7, 16));

// ---------------------------------------------------------- event masks

TEST(EventMasks, ReturnedMaskWakesOnlyOnReturn) {
  auto cfg = cluster::NowConfig(2);
  cfg.nic.retransmit_timeout = 100 * sim::us;
  cfg.nic.unreachable_timeout = 5 * sim::ms;
  cluster::Cluster cl(cfg);
  bool woke = false;
  sim::Time woke_at = -1;
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 1);
    ep->map_raw(0, 1, /*nonexistent ep=*/99, 0);
    co_await ep->request(t, 0, 1, 1);
    // Only a returned message may wake us.
    co_await ep->wait_events(t, am::kEventReturned);
    woke = true;
    woke_at = t.engine().now();
    co_await ep->poll(t);
    EXPECT_EQ(t.engine().snapshot().counter(
                  "host.0.ep." + std::to_string(ep->name().ep) +
                  ".returns_handled"),
              1u);
  });
  cl.run_to_completion();
  EXPECT_TRUE(woke);
  EXPECT_GT(woke_at, 0);
}

TEST(EventMasks, SendSpaceMaskSignalsWhenWindowFrees) {
  // Exhaust the 32-credit window against a server that only starts
  // serving at t=5ms; a send-space wait must block until replies return
  // credits.
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name server;
  sim::Time space_at = -1;
  bool served_any = false;
  cl.spawn_thread(1, "s", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 1);
    ep->set_handler(1, [&](am::Endpoint&, const am::Message& m) {
      served_any = true;
      m.reply(2, {m.arg(0)});
    });
    server = ep->name();
    co_await t.sleep(5 * sim::ms);  // ignore the flood for a while
    for (int i = 0; i < 400; ++i) {
      co_await ep->poll(t, 16);
      co_await t.compute(2000);
    }
  });
  cl.spawn_thread(0, "c", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 2);
    while (!server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, server);
    // Requests are delivered into the server's queue (32 deep) but never
    // replied to until t=5ms, so the credit window pins at 32.
    for (int i = 0; i < 32; ++i) co_await ep->request(t, 0, 1, 1);
    EXPECT_EQ(ep->credits_in_use(), 32);
    co_await ep->wait_events(t, am::kEventSendSpace);
    space_at = t.engine().now();
    co_await ep->poll(t, 8);
    EXPECT_LT(ep->credits_in_use(), 32);
  });
  cl.run_to_completion();
  EXPECT_TRUE(served_any);
  EXPECT_GE(space_at, 5 * sim::ms);  // no space until the server served
}

// ------------------------------------------------------- args round-trip

class ArgFidelity : public ::testing::TestWithParam<int> {};

TEST_P(ArgFidelity, AllFourArgsArriveIntact) {
  const int seed = GetParam();
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name server;
  std::array<std::uint64_t, 4> got{};
  bool done = false;
  const std::uint64_t base = 0x0123456789abcdefULL * (seed + 1);
  cl.spawn_thread(1, "s", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 3);
    ep->set_handler(1, [&](am::Endpoint&, const am::Message& m) {
      got = m.args();
      done = true;
    });
    server = ep->name();
    while (!done) {
      (void)co_await ep->wait_events_for(t, am::kEventArrivals,
                                         500 * sim::us);
      co_await ep->poll(t);
    }
    co_await t.sleep(1 * sim::ms);
  });
  cl.spawn_thread(0, "c", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 4);
    while (!server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, server);
    co_await ep->request(t, 0, 1, base, base + 1, base + 2, base + 3);
    co_await t.sleep(2 * sim::ms);
    co_await ep->poll(t, 8);
  });
  cl.run_to_completion();
  EXPECT_EQ(got[0], base);
  EXPECT_EQ(got[1], base + 1);
  EXPECT_EQ(got[2], base + 2);
  EXPECT_EQ(got[3], base + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArgFidelity, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace vnet
