// Unit tests for the vnet::obs observability layer: metric registration /
// snapshot / diff semantics, histogram quantiles, table rendering, trace
// export (round-tripped through a JSON parser), the compile-out guarantee
// of the VNET_TRACE_* macros, and whole-stack determinism (same seed =>
// identical snapshots and traces).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vnet::obs {
namespace {

// ------------------------------------------------------------ registry

TEST(Metrics, CounterRegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter a = reg.counter("host.0.nic.retransmissions");
  Counter b = reg.counter("host.0.nic.retransmissions");
  a.inc();
  b.inc(2);
  // Same name => same cell: both handles see the combined count.
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.snapshot().counter("host.0.nic.retransmissions"), 3u);
}

TEST(Metrics, UnboundHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5.0);
  h.record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, SnapshotAndDiff) {
  MetricsRegistry reg;
  Counter c = reg.counter("a.events");
  Gauge g = reg.gauge("a.level");
  c.inc(10);
  g.set(3.0);
  const Snapshot before = reg.snapshot(1000);
  c.inc(7);
  g.set(9.0);
  const Snapshot after = reg.snapshot(2500);

  const Snapshot d = diff(after, before);
  EXPECT_EQ(d.at_ns, 1500);
  EXPECT_EQ(d.counter("a.events"), 7u);   // counters subtract
  EXPECT_EQ(d.gauge("a.level"), 9.0);     // gauges keep the newer level
  EXPECT_EQ(d.counter("missing"), 0u);
}

TEST(Metrics, SumCountersByPrefixAndSuffix) {
  MetricsRegistry reg;
  reg.counter("host.0.nic.retransmissions").inc(2);
  reg.counter("host.1.nic.retransmissions").inc(3);
  reg.counter("host.1.nic.timeouts").inc(100);
  reg.counter("fabric.link.a.retransmissions").inc(50);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.sum_counters("host.", ".nic.retransmissions"), 5u);
  EXPECT_EQ(s.sum_counters("host."), 105u);
  EXPECT_EQ(s.sum_counters("", ".retransmissions"), 55u);
}

TEST(Metrics, PullCallbacksAndRemoval) {
  MetricsRegistry reg;
  std::uint64_t external = 42;
  reg.counter_fn("fabric.link.x.packets_tx", [&] { return external; });
  reg.gauge_fn("fabric.switch.0.queue_watermark", [] { return 7.0; });
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counter("fabric.link.x.packets_tx"), 42u);
  EXPECT_EQ(s.gauge("fabric.switch.0.queue_watermark"), 7.0);

  external = 50;
  EXPECT_EQ(reg.snapshot().counter("fabric.link.x.packets_tx"), 50u);

  // After removal the callbacks are gone (and never again sampled — the
  // component they read from may be destroyed).
  reg.remove_fn_prefix("fabric.");
  s = reg.snapshot();
  EXPECT_EQ(s.counters.count("fabric.link.x.packets_tx"), 0u);
  EXPECT_EQ(s.gauges.count("fabric.switch.0.queue_watermark"), 0u);
}

// ----------------------------------------------------------- histogram

TEST(Metrics, HistogramStatsAndQuantiles) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("host.0.nic.rtt_ns");
  for (int i = 0; i < 100; ++i) h.record(8.0);
  const Snapshot s = reg.snapshot();
  const HistogramData* d = s.histogram("host.0.nic.rtt_ns");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 100u);
  EXPECT_DOUBLE_EQ(d->mean(), 8.0);
  EXPECT_DOUBLE_EQ(d->min_seen, 8.0);
  EXPECT_DOUBLE_EQ(d->max_seen, 8.0);
  // Every sample is 8.0, so the interpolated estimate is clamped to the
  // observed [min_seen, max_seen] range and comes back exact.
  EXPECT_DOUBLE_EQ(d->quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(d->quantile(0.99), 8.0);
}

TEST(Metrics, HistogramQuantileOrdersBuckets) {
  HistogramData d;
  for (int i = 0; i < 90; ++i) d.record(2.0);     // sub-bucket [2, 2.0625)
  for (int i = 0; i < 10; ++i) d.record(1000.0);  // sub-bucket [992, 1008)
  // Sub-bucketed sketch: estimates land within the 1/32-wide sub-bucket of
  // the true value (<= ~1.6% relative error), not at a power-of-two midpoint.
  EXPECT_NEAR(d.quantile(0.5), 2.0, 2.0 * 0.05);
  EXPECT_NEAR(d.quantile(0.95), 1000.0, 1000.0 * 0.05);
  EXPECT_NEAR(d.quantile(0.0), 2.0, 2.0 * 0.01);
  EXPECT_GE(d.quantile(0.0), 2.0);  // clamped to min_seen
}

TEST(Metrics, HistogramQuantileEdgeCases) {
  // Empty histogram: every quantile is 0, not NaN or a crash.
  HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // Single sample: every quantile is that sample (clamped to min==max).
  HistogramData one;
  one.record(7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.0);

  // Bucket 0 holds [0, 1): sub-unit samples interpolate inside it and the
  // estimates stay clamped to the observed [0, 0.5] range.
  HistogramData tiny;
  tiny.record(0.0);
  tiny.record(0.5);
  EXPECT_GE(tiny.quantile(0.0), 0.0);
  EXPECT_LE(tiny.quantile(0.0), 0.5);
  EXPECT_GE(tiny.quantile(1.0), 0.0);
  EXPECT_LE(tiny.quantile(1.0), 0.5 + 1e-12);

  // Out-of-range q is clamped rather than reading past the mass.
  EXPECT_DOUBLE_EQ(one.quantile(-0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.5), 7.0);
}

TEST(Metrics, HistogramQuantileOnDiffedWindow) {
  // A diffed window can be empty (count diffs to zero) while min/max carry
  // the cumulative values — quantile must return 0, not min_seen garbage.
  MetricsRegistry reg;
  Histogram h = reg.histogram("x");
  h.record(4.0);
  const Snapshot a = reg.snapshot();
  const Snapshot b = reg.snapshot();
  const Snapshot zero = diff(b, a);
  const HistogramData* zd = zero.histogram("x");
  ASSERT_NE(zd, nullptr);
  EXPECT_EQ(zd->count, 0u);
  EXPECT_DOUBLE_EQ(zd->quantile(0.5), 0.0);

  // A diffed window whose samples all fall in one sub-bucket stays within
  // the clamp range even though min/max are cumulative, not per-window.
  h.record(100.0);
  h.record(100.0);
  const Snapshot c = reg.snapshot();
  const Snapshot win = diff(c, b);
  const HistogramData* wd = win.histogram("x");
  ASSERT_NE(wd, nullptr);
  EXPECT_EQ(wd->count, 2u);
  EXPECT_NEAR(wd->quantile(0.99), 100.0, 100.0 * 0.05);
}

TEST(Metrics, HistogramQuantileWithinFivePercentOfExact) {
  // Golden accuracy check for the sub-bucketed sketch: against an exact
  // sorted-sample computation over a deterministic heavy-tailed set, every
  // tracked quantile through p99.9 must be within 5% relative error.
  std::vector<double> samples;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 20000; ++i) {
    // xorshift64* — deterministic pseudo-random draw in [0, 1).
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const double u =
        static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) / 9007199254740992.0;
    // Heavy tail: mostly ~1e3, a long tail out to ~1e6.
    samples.push_back(1e3 + 1e6 * u * u * u * u);
  }
  HistogramData d;
  for (double s : samples) d.record(s);

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  auto exact = [&](double q) {
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double want = exact(q);
    EXPECT_NEAR(d.quantile(q), want, want * 0.05) << "q=" << q;
  }
}

TEST(Metrics, HistogramDiffSubtractsCounts) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("x");
  h.record(4.0);
  h.record(4.0);
  const Snapshot before = reg.snapshot();
  h.record(4.0);
  const Snapshot after = reg.snapshot();
  const Snapshot d = diff(after, before);
  const HistogramData* hd = d.histogram("x");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 1u);
  EXPECT_DOUBLE_EQ(hd->sum, 4.0);
}

// ---------------------------------------------------------- render_table

TEST(Metrics, RenderTablePivotsRowsAndColumns) {
  MetricsRegistry reg;
  reg.counter("fabric.link.h0->sw.packets_tx").inc(12);
  reg.counter("fabric.link.h0->sw.drops_down").inc(0);
  reg.counter("fabric.link.sw->h0.packets_tx").inc(9);
  reg.counter("fabric.link.idle.packets_tx");  // all-zero row
  const std::string table = render_table(reg.snapshot(), "fabric.link");

  EXPECT_NE(table.find("packets_tx"), std::string::npos);  // column header
  EXPECT_NE(table.find("h0->sw"), std::string::npos);      // row label
  EXPECT_NE(table.find("12"), std::string::npos);
  EXPECT_EQ(table.find("idle"), std::string::npos);  // zero row skipped

  const std::string all = render_table(reg.snapshot(), "fabric.link",
                                       /*skip_zero_rows=*/false);
  EXPECT_NE(all.find("idle"), std::string::npos);
}

// --------------------------------------------------- minimal JSON parser
//
// Enough of RFC 8259 to round-trip the exporter's output: validates the
// whole document and records the size of the top-level "traceEvents" array.

class JsonParser {
 public:
  explicit JsonParser(std::string s) : s_(std::move(s)) {}

  bool parse() {
    skip_ws();
    if (!value(/*depth=*/0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  int trace_events() const { return trace_events_; }

 private:
  bool value(int depth) {
    if (depth > 64 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object(depth);
      case '[':
        return array(depth, nullptr);
      case '"':
        return string(nullptr);
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (depth == 0 && key == "traceEvents" && peek() == '[') {
        int n = 0;
        if (!array(depth + 1, &n)) return false;
        trace_events_ = n;
      } else {
        if (!value(depth + 1)) return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array(int depth, int* count) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      if (count != nullptr) ++*count;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
        continue;
      }
      if (out != nullptr) out->push_back(s_[pos_]);
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
  int trace_events_ = 0;
};

// -------------------------------------------------------------- tracer

TEST(Trace, ExportRoundTripsThroughJsonParse) {
  Tracer tr;
  std::int64_t t = 0;
  tr.set_clock([&] { return t; });
  tr.set_enabled(true);
  tr.set_process_name(0, "node 0");
  tr.set_thread_name(0, 1, "wire \"rx\"\n");  // exercise escaping

  t = 1500;
  tr.instant("endpoint", "ep_load", 0, 0, {{"ep", 3}, {"frame", -1}});
  t = 4750;
  tr.complete("wire", "packet", 1500, 0, 1, {{"bytes", 4096}});

  ASSERT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.events()[0].ph, 'i');
  EXPECT_EQ(tr.events()[1].ph, 'X');
  EXPECT_EQ(tr.events()[1].dur_ns, 3250);

  const std::string json = tr.chrome_trace_json();
  JsonParser p(json);
  ASSERT_TRUE(p.parse()) << json;
  // 2 metadata events (process_name, thread_name) + 2 recorded events.
  EXPECT_EQ(p.trace_events(), 4);
  // Sub-microsecond times survive as fractional microseconds.
  EXPECT_NE(json.find("1.500"), std::string::npos);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  Tracer tr;
  std::int64_t t = 0;
  tr.set_clock([&] { return t; });
  tr.set_enabled(true);
  tr.set_capacity(4);
  EXPECT_EQ(tr.capacity(), 4u);

  for (int i = 0; i < 10; ++i) {
    t = i;
    tr.instant("cat", "e", 0, 0, {{"i", i}});
  }
  // 10 events into a 4-slot ring: 6 overwritten, newest 4 retained in
  // chronological order.
  EXPECT_EQ(tr.dropped(), 6u);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].ts_ns, static_cast<std::int64_t>(6 + i));
  }
  // The export of a wrapped ring is still well-formed JSON.
  JsonParser p(tr.chrome_trace_json());
  EXPECT_TRUE(p.parse());
  EXPECT_EQ(p.trace_events(), 4);

  // clear() empties the buffer but keeps the lifetime drop counter.
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.dropped(), 6u);
}

TEST(Trace, ShrinkingCapacityKeepsNewestEvents) {
  Tracer tr;
  std::int64_t t = 0;
  tr.set_clock([&] { return t; });
  tr.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    t = i;
    tr.instant("cat", "e");
  }
  EXPECT_EQ(tr.dropped(), 0u);
  tr.set_capacity(2);  // discards the 4 oldest
  EXPECT_EQ(tr.dropped(), 4u);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].ts_ns, 4);
  EXPECT_EQ(evs[1].ts_ns, 5);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tr;
  tr.instant("cat", "x");
  tr.complete("cat", "y", 0);
  EXPECT_TRUE(tr.events().empty());
  JsonParser p(tr.chrome_trace_json());
  EXPECT_TRUE(p.parse());
  EXPECT_EQ(p.trace_events(), 0);
}

// The compile-out guarantee: with VNET_TRACING=OFF the macros expand to
// ((void)0) and must not evaluate their arguments, let alone record; with
// it ON a disabled tracer must also skip argument evaluation.
TEST(Trace, MacroCompileConfigIsZeroCost) {
  Tracer tr;
  int evaluations = 0;
  // [[maybe_unused]]: with tracing compiled out the macros discard their
  // arguments, so nothing references the lambda.
  [[maybe_unused]] auto arg = [&]() -> std::int64_t { return ++evaluations; };

  tr.set_enabled(false);
  VNET_TRACE_INSTANT(tr, "cat", "off", 0, 0, {{"v", arg()}});
  EXPECT_EQ(evaluations, 0);  // both configs: disabled => unevaluated
  EXPECT_TRUE(tr.events().empty());

  tr.set_enabled(true);
  VNET_TRACE_INSTANT(tr, "cat", "on", 0, 0, {{"v", arg()}});
  VNET_TRACE_COMPLETE(tr, "cat", "span", 0, 0, 0);
#if VNET_OBS_TRACING
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(tr.events().size(), 2u);
#else
  // Compiled out: nothing is evaluated or recorded even when enabled.
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(tr.events().empty());
#endif
}

// ----------------------------------------------- whole-stack integration

struct RunArtifacts {
  std::map<std::string, std::uint64_t> counters;
  std::string trace_json;
  std::uint64_t handled = 0;
};

// A 2-node request/reply workload with tracing on; returns everything an
// identical run must reproduce exactly.
RunArtifacts traced_ping_pong() {
  RunArtifacts out;
  cluster::Cluster cl(cluster::NowConfig(2));
  cl.engine().tracer().set_enabled(true);

  struct Shared {
    am::Name server;
    std::uint64_t got_request = 0;
    std::uint64_t got_reply = 0;
  };
  auto sh = std::make_shared<Shared>();

  cl.spawn_thread(1, "server", [sh](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xbeef);
    ep->set_handler(1, [sh](am::Endpoint&, const am::Message& m) {
      sh->got_request = m.arg(0);
      m.reply(2, {m.arg(0) + 1});
    });
    sh->server = ep->name();
    while (sh->got_request == 0) {
      co_await ep->wait_events(t, am::kEventArrivals);
      co_await ep->poll(t);
    }
    co_await t.sleep(1 * sim::ms);
    co_await ep->destroy(t);
  });

  cl.spawn_thread(0, "client", [sh](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xcafe);
    ep->set_handler(2, [sh](am::Endpoint&, const am::Message& m) {
      sh->got_reply = m.arg(0);
    });
    while (!sh->server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, sh->server);
    co_await ep->request(t, 0, 1, 41);
    while (sh->got_reply == 0) co_await ep->poll(t);
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
  const Snapshot snap = cl.engine().snapshot();
  out.counters = snap.counters;
  out.trace_json = cl.engine().tracer().chrome_trace_json();
  out.handled = snap.sum_counters("host.", ".messages_handled");
  return out;
}

TEST(ObsIntegration, RegistrySeesWholeStack) {
  cluster::Cluster cl(cluster::NowConfig(2));

  struct Shared {
    am::Name server;
    std::uint64_t got_request = 0;
    std::uint64_t got_reply = 0;
  };
  auto sh = std::make_shared<Shared>();

  cl.spawn_thread(1, "server", [sh](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 1);
    ep->set_handler(1, [sh](am::Endpoint&, const am::Message& m) {
      sh->got_request = m.arg(0);
      m.reply(2, {m.arg(0) + 1});
    });
    sh->server = ep->name();
    while (sh->got_request == 0) {
      co_await ep->wait_events(t, am::kEventArrivals);
      co_await ep->poll(t);
    }
    co_await t.sleep(1 * sim::ms);
    co_await ep->destroy(t);
  });
  cl.spawn_thread(0, "client", [sh](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 2);
    ep->set_handler(2, [sh](am::Endpoint&, const am::Message& m) {
      sh->got_reply = m.arg(0);
    });
    while (!sh->server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, sh->server);
    co_await ep->request(t, 0, 1, 41);
    while (sh->got_reply == 0) co_await ep->poll(t);

    // Every layer publishes into the one registry namespace.
    const Snapshot snap = t.engine().snapshot();
    const std::string prefix =
        "host.0.ep." + std::to_string(ep->name().ep) + ".";
    EXPECT_EQ(snap.counter(prefix + "requests_sent"), 1u);
    EXPECT_EQ(snap.counter(prefix + "messages_handled"), 1u);
    EXPECT_GE(snap.counter("host.0.nic.data_sent"), 1u);
    EXPECT_GE(snap.counter("host.0.driver.remaps"), 1u);
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
  const Snapshot snap = cl.engine().snapshot();
  EXPECT_GE(snap.sum_counters("host.", ".requests_sent"), 1u);
  EXPECT_GE(snap.sum_counters("fabric.link.", ".packets_tx"), 1u);
  EXPECT_GE(snap.counter("sim.events_processed"), 1u);
  EXPECT_GE(snap.counter("host.0.driver.endpoints_created"), 1u);
  // The tracer's ring-drop counter is exported through the registry; no
  // drops here (capacity is large), but the metric must exist.
  EXPECT_EQ(snap.counter("obs.trace.dropped"), 0u);
  cl.engine().tracer().set_capacity(1);
  cl.engine().tracer().set_enabled(true);
  cl.engine().tracer().instant("t", "a");
  cl.engine().tracer().instant("t", "b");
  EXPECT_EQ(cl.engine().snapshot().counter("obs.trace.dropped"), 1u);
}

TEST(ObsIntegration, SameSeedRunsProduceIdenticalSnapshotsAndTraces) {
  const RunArtifacts a = traced_ping_pong();
  const RunArtifacts b = traced_ping_pong();
  EXPECT_EQ(a.handled, b.handled);
  EXPECT_GT(a.handled, 0u);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.trace_json, b.trace_json);

  JsonParser p(a.trace_json);
  ASSERT_TRUE(p.parse());
#if VNET_OBS_TRACING
  EXPECT_GT(p.trace_events(), 0);
#endif
}

}  // namespace
}  // namespace vnet::obs
