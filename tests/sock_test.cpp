// Tests for the stream-socket layer over Active Messages (Fig 1b): the
// handshake, ordered byte delivery across the reordering transport,
// bidirectional streams, multiple connections per listener, and close.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "sock/socket.hpp"

namespace vnet::sock {
namespace {

TEST(Sockets, ConnectSendRecvClose) {
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name listener_name;
  std::uint64_t received = 0;
  bool saw_fin = false;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await Listener::create(t, 0x1157);
    listener_name = listener->name();
    auto sock = co_await listener->accept(t);
    while (received < 100'000 && !sock->peer_closed()) {
      received += co_await sock->recv(t, 1);
    }
    // Drain to the FIN.
    while (!sock->peer_closed()) {
      (void)co_await sock->recv(t, 1);
    }
    received += co_await sock->recv(t, 0);
    saw_fin = true;
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
    auto sock = co_await Socket::connect(t, listener_name);
    co_await sock->send(t, 100'000);
    EXPECT_EQ(sock->bytes_sent(), 100'000u);
    co_await sock->close(t);
  });

  cl.run_to_completion();
  EXPECT_EQ(received, 100'000u);
  EXPECT_TRUE(saw_fin);
}

TEST(Sockets, OrderedDeliveryAcrossManySegments) {
  // 40 segments stream through 24 logical channels (which reorder whole
  // messages); recv() must only ever surface a growing contiguous prefix.
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name listener_name;
  std::uint64_t last_total = 0;
  bool monotonic = true;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await Listener::create(t, 0x1157);
    listener_name = listener->name();
    auto sock = co_await listener->accept(t);
    std::uint64_t total = 0;
    while (total < 40u * Socket::kSegmentBytes) {
      total += co_await sock->recv(t, 1);
      if (sock->bytes_received() < last_total) monotonic = false;
      last_total = sock->bytes_received();
    }
    EXPECT_EQ(total, 40u * Socket::kSegmentBytes);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
    auto sock = co_await Socket::connect(t, listener_name);
    co_await sock->send(t, 40u * Socket::kSegmentBytes);
    co_await sock->close(t);
  });
  cl.run_to_completion();
  EXPECT_TRUE(monotonic);
}

TEST(Sockets, BidirectionalEcho) {
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name listener_name;
  std::uint64_t client_got = 0;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await Listener::create(t, 0x2257);
    listener_name = listener->name();
    auto sock = co_await listener->accept(t);
    std::uint64_t got = 0;
    while (got < 30'000) got += co_await sock->recv(t, 1);
    co_await sock->send(t, got);  // echo the same volume back
    co_await sock->close(t);
    co_await t.sleep(2 * sim::ms);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
    auto sock = co_await Socket::connect(t, listener_name);
    co_await sock->send(t, 30'000);
    while (client_got < 30'000 && !sock->peer_closed()) {
      client_got += co_await sock->recv(t, 1);
    }
  });
  cl.run_to_completion();
  EXPECT_EQ(client_got, 30'000u);
}

TEST(Sockets, ListenerAcceptsMultipleClients) {
  cluster::Cluster cl(cluster::NowConfig(4));
  am::Name listener_name;
  std::uint64_t totals[3] = {0, 0, 0};

  cl.spawn_thread(0, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await Listener::create(t, 0x3357);
    listener_name = listener->name();
    std::vector<std::unique_ptr<Socket>> socks;
    for (int i = 0; i < 3; ++i) {
      socks.push_back(co_await listener->accept(t));
    }
    // Serve all three round-robin until each delivered its volume.
    bool done = false;
    while (!done) {
      done = true;
      for (int i = 0; i < 3; ++i) {
        totals[i] = socks[static_cast<std::size_t>(i)]->bytes_received();
        if (totals[i] < 20'000) done = false;
        (void)co_await socks[static_cast<std::size_t>(i)]->recv(t, 0);
      }
      co_await t.compute(2000);
    }
  });
  for (int c = 0; c < 3; ++c) {
    cl.spawn_thread(c + 1, "client", [&](host::HostThread& t) -> sim::Task<> {
      while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
      auto sock = co_await Socket::connect(t, listener_name);
      co_await sock->send(t, 20'000);
      co_await sock->close(t);
      co_await t.sleep(2 * sim::ms);
    });
  }
  cl.run_to_completion();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(totals[i], 20'000u) << i;
}

TEST(Sockets, SmallWritesCoalesceIntoStream) {
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name listener_name;
  std::uint64_t received = 0;
  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await Listener::create(t, 0x4457);
    listener_name = listener->name();
    auto sock = co_await listener->accept(t);
    while (received < 50 * 100) received += co_await sock->recv(t, 1);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
    auto sock = co_await Socket::connect(t, listener_name);
    for (int i = 0; i < 50; ++i) co_await sock->send(t, 100);
    co_await sock->close(t);
  });
  cl.run_to_completion();
  EXPECT_EQ(received, 5'000u);
}

}  // namespace
}  // namespace vnet::sock
