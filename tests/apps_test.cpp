// Tests for the application layer: SPMD collectives (correctness across
// rank counts, including non-powers-of-two), the NPB/linpack/timeshare
// harnesses, and regression bounds pinning the LogP / bandwidth
// calibration to the paper's measured values.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/bandwidth.hpp"
#include "apps/linpack.hpp"
#include "apps/logp.hpp"
#include "apps/npb.hpp"
#include "apps/parallel.hpp"
#include "apps/timeshare.hpp"
#include "apps/workloads.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

namespace vnet::apps {
namespace {

// ----------------------------------------------------------- collectives

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BarrierSynchronizes) {
  const int n = GetParam();
  cluster::Cluster cl(cluster::NowConfig(std::max(n, 2)));
  std::vector<sim::Time> entered(n), exited(n);
  launch_spmd(cl, n, [&](Par& par) -> sim::Task<> {
    // Stagger arrival so the barrier has real work to do.
    co_await par.thread().sleep((par.rank() % 5) * 300 * sim::us);
    entered[par.rank()] = par.thread().engine().now();
    co_await par.barrier();
    exited[par.rank()] = par.thread().engine().now();
  });
  cl.run_to_completion();
  const sim::Time last_enter = *std::max_element(entered.begin(), entered.end());
  const sim::Time first_exit = *std::min_element(exited.begin(), exited.end());
  EXPECT_GE(first_exit, last_enter) << "a rank left the barrier early";
}

TEST_P(Collectives, AllreduceSumsAllContributions) {
  const int n = GetParam();
  cluster::Cluster cl(cluster::NowConfig(std::max(n, 2)));
  const double expect = n * (n - 1) / 2.0;
  std::vector<double> results(n, -1);
  launch_spmd(cl, n, [&](Par& par) -> sim::Task<> {
    results[par.rank()] =
        co_await par.allreduce_sum(static_cast<double>(par.rank()));
  });
  cl.run_to_completion();
  for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(results[r], expect) << r;
}

TEST_P(Collectives, AlltoallDeliversFromEveryPeer) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  cluster::Cluster cl(cluster::NowConfig(n));
  int completed = 0;
  launch_spmd(cl, n, [&](Par& par) -> sim::Task<> {
    co_await par.alltoall(2048);
    co_await par.barrier();
    ++completed;
  });
  cl.run_to_completion();
  EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Collectives, SequentialBarriersDoNotInterfere) {
  const int n = 4;
  cluster::Cluster cl(cluster::NowConfig(n));
  std::vector<int> rounds(n, 0);
  launch_spmd(cl, n, [&](Par& par) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await par.barrier();
      ++rounds[par.rank()];
      // Every rank must have completed at least round i by now.
      for (int r = 0; r < n; ++r) EXPECT_GE(rounds[r], i);
    }
  });
  cl.run_to_completion();
  for (int r = 0; r < n; ++r) EXPECT_EQ(rounds[r], 10);
}

TEST(Collectives, ExchangePairsUp) {
  cluster::Cluster cl(cluster::NowConfig(4));
  int done = 0;
  launch_spmd(cl, 4, [&](Par& par) -> sim::Task<> {
    const int peer = par.rank() ^ 1;
    for (int i = 0; i < 5; ++i) co_await par.exchange(peer, 10'000);
    ++done;
  });
  cl.run_to_completion();
  EXPECT_EQ(done, 4);
}

// ------------------------------------------------------------------- NPB

TEST(Npb, EpScalesLinearly) {
  auto cfg = cluster::NowConfig(4);
  const double t1 = run_npb(cfg, NpbKernel::kEP, 1);
  const double t4 = run_npb(cfg, NpbKernel::kEP, 4);
  EXPECT_NEAR(t1 / t4, 4.0, 0.15);
}

TEST(Npb, IsCommunicationBound) {
  auto cfg = cluster::NowConfig(4);
  const double t1 = run_npb(cfg, NpbKernel::kIS, 1);
  const double t4 = run_npb(cfg, NpbKernel::kIS, 4);
  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 1.8);
  EXPECT_LT(speedup, 3.7);  // visibly sub-linear: the transposes cost
}

TEST(Npb, DeterministicAcrossRuns) {
  auto cfg = cluster::NowConfig(4);
  EXPECT_EQ(run_npb(cfg, NpbKernel::kCG, 4), run_npb(cfg, NpbKernel::kCG, 4));
}

// --------------------------------------------------------------- linpack

TEST(Linpack, SmallRunProducesSaneNumbers) {
  LinpackParams lp;
  lp.nodes = 4;
  lp.grid_p = 2;
  lp.grid_q = 2;
  lp.n = 1200;
  lp.nb = 300;
  const auto r = run_linpack(cluster::NowConfig(4), lp);
  EXPECT_GT(r.gflops, 0.05);
  EXPECT_LT(r.gflops, 4 * 0.334);  // cannot beat 4 nodes' peak
  EXPECT_GT(r.seconds, 0.0);
}

// ------------------------------------------------------------- timeshare

TEST(Timeshare, TwoAppsWithinPaperBound) {
  TimeshareParams p;
  p.nodes = 4;
  p.iterations = 5;
  const auto r = run_timeshare(p);
  EXPECT_GT(r.t_a_alone_sec, 0);
  EXPECT_GT(r.t_b_alone_sec, 0);
  // Paper: time-shared execution within 15% of running in sequence.
  EXPECT_LT(r.overhead_ratio, 1.15);
  EXPECT_GT(r.overhead_ratio, 0.5);
}

// ------------------------------------------------------------- workloads

TEST(Contention, OneVnSharesFairly) {
  ContentionParams p;
  p.clients = 2;
  p.warmup = 10 * sim::ms;
  p.window = 30 * sim::ms;
  p.collect_rtt = false;
  const auto r = run_contention(p);
  EXPECT_GT(r.aggregate_per_sec, 50'000);
  const double lo = r.min_client_per_sec(), hi = r.max_client_per_sec();
  EXPECT_GT(lo / hi, 0.8);  // proportional shares
}

TEST(Contention, OvercommittedFramesStillServe) {
  ContentionParams p;
  p.mode = ContentionParams::Mode::kSingleThread;
  p.clients = 10;  // 10 endpoints > 8 frames
  p.server_frames = 8;
  p.warmup = 50 * sim::ms;
  p.window = 40 * sim::ms;
  p.collect_rtt = false;
  const auto r = run_contention(p);
  EXPECT_GT(r.aggregate_per_sec, 20'000);  // robust, not collapsed
  EXPECT_GT(r.remaps_per_sec, 50);         // virtualization really active
}

// ---------------------------------------------- calibration regressions

TEST(Calibration, LogpMatchesPaperShape) {
  const LogpResult am = measure_logp(cluster::NowConfig(2), 150, 1500);
  const LogpResult gam = measure_logp(cluster::GamConfig(2), 150, 1500);
  // Fig 3 (paper values in comments).
  EXPECT_NEAR(am.os_us, 2.9, 0.8);    // ~2.9
  EXPECT_NEAR(am.g_us, 12.8, 2.5);    // ~12.8
  EXPECT_NEAR(gam.g_us, 5.8, 2.0);    // ~5.8
  const double rtt_ratio = am.rtt_us / gam.rtt_us;
  EXPECT_GT(rtt_ratio, 1.05);  // paper: 1.23
  EXPECT_LT(rtt_ratio, 1.5);
  const double gap_ratio = am.g_us / gam.g_us;
  EXPECT_GT(gap_ratio, 1.8);  // paper: 2.21
  EXPECT_LT(gap_ratio, 3.2);
}

TEST(Calibration, DefensiveChecksCostAboutAMicrosecond) {
  auto on = cluster::NowConfig(2);
  auto off = cluster::NowConfig(2);
  off.nic.defensive_checks = false;
  const auto with = measure_logp(on, 100, 800);
  const auto without = measure_logp(off, 100, 800);
  EXPECT_NEAR(with.l_us - without.l_us, 1.1, 0.6);  // paper: ~1.1us
  EXPECT_GT(with.g_us - without.g_us, 0.8);
}

TEST(Calibration, BandwidthMatchesPaperShape) {
  const auto am = measure_bandwidth(cluster::NowConfig(2), {512, 8192}, 100, 10);
  // Fig 4: 43.9 MB/s at 8KB (93% of the 46.8 MB/s SBUS limit).
  EXPECT_GT(am.points[1].mbps, 38.0);
  EXPECT_LT(am.points[1].mbps, 46.8);
  // RTT slope ~0.1112 us/B.
  EXPECT_NEAR(am.slope_us_per_byte, 0.1112, 0.02);
}

}  // namespace
}  // namespace vnet::apps
