// Fork-server tests: fork() must be a proven determinism-preserving
// snapshot (fork-at-checkpoint digest == straight-through digest, for every
// standard scenario), the bisector must reduce a deliberately planted
// ledger violation to exactly its triggering action, and a crashing child
// must be contained — reported as a failed cell, never a dead matrix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "chaos/forkserver.hpp"
#include "chaos/scenario.hpp"
#include "lanai/config.hpp"

namespace vnet::chaos {
namespace {

// ---------------------------------------------- fork-vs-straight digests

// For each standard scenario: warm once, fork a child that runs the fault
// timeline to completion, then run the parent's copy of the same image
// straight through. The child inherited the simulation by copy-on-write,
// so any digest divergence means hidden nondeterminism (address-dependent
// ordering, uninitialized reads, wall-clock leakage).
TEST(ForkServer, ForkAtCheckpointMatchesStraightThroughDigest) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  for (const std::string& name : standard_scenario_names()) {
    ForkServer server(standard_scenario(name, 1));
    const FaultPlan plan = server.default_plan();
    const ForkOutcome forked = server.run_child(plan);
    ASSERT_FALSE(forked.crashed)
        << name << ": child died: " << forked.detail << "\n"
        << forked.stderr_tail;
    const ScenarioResult straight = server.run_inline(plan);

    EXPECT_NE(straight.replay_digest, 0u) << name;
    EXPECT_EQ(forked.result.replay_digest, straight.replay_digest)
        << name << ": forked timeline diverged from straight-through run";
    EXPECT_EQ(forked.result.events_processed, straight.events_processed)
        << name;
    EXPECT_EQ(forked.result.counts.injected, straight.counts.injected);
    EXPECT_EQ(forked.result.counts.delivered, straight.counts.delivered);
    EXPECT_EQ(forked.result.total_time, straight.total_time) << name;
    EXPECT_EQ(forked.result.campaign_log, straight.campaign_log) << name;
  }
}

// A fresh straight-through run in a new engine must also match: the digest
// is address-independent, not merely fork-stable.
TEST(ForkServer, DigestMatchesAcrossProcessesAndFreshRuns) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  const ScenarioSpec spec = standard_scenario("link_flap", 2);
  ForkServer server(spec);
  const ForkOutcome forked = server.run_child(server.default_plan());
  ASSERT_FALSE(forked.crashed) << forked.detail;
  const ScenarioResult fresh = run_scenario(spec);
  // The warmed image ran run_until(checkpoint) before the campaign was
  // scheduled, so its event seq history differs from run_scenario's — the
  // counts must agree even though the digests legitimately differ.
  EXPECT_EQ(forked.result.counts.injected, fresh.counts.injected);
  EXPECT_EQ(forked.result.counts.delivered, fresh.counts.delivered);
  EXPECT_EQ(forked.result.replies_received, fresh.replies_received);
  EXPECT_TRUE(verdict_ok(forked.result));
  EXPECT_TRUE(verdict_ok(fresh));
}

// --------------------------------------------------- planted-break bisect

ScenarioSpec planted_spec() {
  ScenarioSpec s;
  s.name = "planted";
  s.seed = 5;
  s.clients = 1;
  s.requests_per_client = 6;
  s.plan = [](cluster::Cluster&, sim::Rng&) {
    // Seven benign actions around one poison: the phantom delivery at 3 ms
    // is the only action that breaks an invariant.
    return FaultPlan{}
        .host_flap(1 * sim::ms, 1, 300 * sim::us)
        .fault_rates(2 * sim::ms, 0.02, 0.0)
        .fault_rates(2500 * sim::us, 0.0, 0.0)
        .poison(3 * sim::ms)
        .host_flap(4 * sim::ms, 1, 200 * sim::us);
  };
  return s;
}

TEST(ForkServer, BisectIsolatesPlantedViolationToSingleAction) {
  const BisectReport report = bisect_invariant_break(planted_spec());
  ASSERT_TRUE(report.found) << "planted poison never broke an invariant";
  EXPECT_EQ(report.trigger_time, 3 * sim::ms);
  ASSERT_EQ(report.minimal_plan.size(), 1u)
      << "repro still carries non-triggering actions:\n"
      << render_repro(report);
  EXPECT_EQ(report.minimal_plan.actions()[0].kind,
            FaultAction::Kind::kPoison);
  EXPECT_FALSE(verdict_ok(report.failing));
  EXPECT_GT(report.failing.counts.orphan_events, 0u);

  // The artifact must round-trip into a re-runnable plan.
  const json::Value repro = repro_json(report);
  const FaultPlan replanned = plan_from_json(repro["minimal_plan"]);
  ASSERT_EQ(replanned.size(), 1u);
  EXPECT_EQ(replanned.actions()[0].at, 3 * sim::ms);
  const ScenarioResult rerun = ScenarioRun(planted_spec()).finish(replanned);
  EXPECT_FALSE(verdict_ok(rerun))
      << "deserialized minimal repro no longer reproduces the break";
}

TEST(ForkServer, BisectReportsCleanPlanAsNoBreak) {
  const BisectReport report =
      bisect_invariant_break(standard_scenario("link_flap", 1));
  EXPECT_FALSE(report.found);
  EXPECT_EQ(report.minimal_plan.size(), 0u);
}

// ----------------------------------------------------- crash containment

TEST(ForkServer, ChildCrashIsContainedAndServerStaysUsable) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  ForkServer server(standard_scenario("link_flap", 1));
  server.child_hook = [] { std::abort(); };
  const ForkOutcome crashed = server.run_child(server.default_plan());
  EXPECT_TRUE(crashed.crashed);
  EXPECT_NE(crashed.detail.find("signal"), std::string::npos)
      << "detail: " << crashed.detail;
  ASSERT_FALSE(crashed.result.violations.empty());
  EXPECT_FALSE(verdict_ok(crashed.result));
  EXPECT_EQ(crashed.result.name, "link_flap");

  // The parent image survived; the matrix can go on.
  server.child_hook = nullptr;
  const ForkOutcome ok = server.run_child(server.default_plan());
  ASSERT_FALSE(ok.crashed) << ok.detail << "\n" << ok.stderr_tail;
  EXPECT_TRUE(verdict_ok(ok.result));
}

// The fork matrix must stay green with doorbell moderation on — it is on
// by default, and this cell also widens the window 5x to stress the
// deferred-ring path under faults. A lost coalesced ring would surface as
// unresolved messages or a stalled client in the verdict.
TEST(ForkServer, MatrixHoldsWithDoorbellCoalescingOn) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  ASSERT_GT(lanai::NicConfig{}.doorbell_coalesce, 0)
      << "doorbell coalescing is expected to be on by default";
  std::vector<ScenarioSpec> specs;
  for (const char* name : {"chaos", "link_flap", "nic_reboot"}) {
    ScenarioSpec spec = standard_scenario(name, 3);
    auto inner = spec.tweak;
    spec.tweak = [inner = std::move(inner)](cluster::ClusterConfig& cfg) {
      if (inner) inner(cfg);
      cfg.nic.doorbell_coalesce = 10 * sim::us;
    };
    specs.push_back(std::move(spec));
  }
  const std::vector<ForkOutcome> outcomes = run_matrix(specs, 2);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_FALSE(outcomes[i].crashed)
        << specs[i].name << ": " << outcomes[i].detail;
    EXPECT_TRUE(verdict_ok(outcomes[i].result)) << specs[i].name;
  }
}

// A child whose stall watchdog fires must carry the stall report across
// the fork boundary: the events ride the canonical-JSON verdict over the
// result pipe, so the parent (and CI, which uploads the same bytes) sees
// which component stalled and when, not just a pass/fail bit.
TEST(ForkServer, ChildWatchdogStallCrossesTheForkBoundary) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  ScenarioSpec s;
  s.name = "watchdog_trunk_outage";
  s.seed = 1;
  s.fat_tree = true;  // leaf 0 holds controller+server, leaf 1+ the clients
  s.clients = 2;
  s.requests_per_client = 20;
  s.plan = [](cluster::Cluster&, sim::Rng&) {
    return FaultPlan{}
        .trunk_flap(1 * sim::ms, 0, 0, 6 * sim::ms)
        .trunk_flap(1 * sim::ms, 0, 1, 6 * sim::ms);
  };

  ForkServer server(s);
  const ForkOutcome out = server.run_child(server.default_plan());
  ASSERT_FALSE(out.crashed) << out.detail << "\n" << out.stderr_tail;
  ASSERT_FALSE(out.result.watchdog_events.empty())
      << "stall report did not survive the child->parent verdict pipe";
  bool stall = false;
  for (const obs::WatchdogEvent& e : out.result.watchdog_events) {
    if (e.rule == "channel-stall") stall = true;
  }
  EXPECT_TRUE(stall);
  EXPECT_NE(out.result.watchdog_summary.find("channel-stall"),
            std::string::npos);

  // The verdict's canonical JSON round-trips the stalls losslessly.
  const json::Value v = verdict_json(out.result);
  ASSERT_FALSE(v["stalls"].as_array().empty());
  json::Value reparsed;
  std::string err;
  ASSERT_TRUE(json::parse(v.dump(), &reparsed, &err)) << err;
  const ScenarioResult rt = verdict_from_json(reparsed);
  ASSERT_EQ(rt.watchdog_events.size(), out.result.watchdog_events.size());
  EXPECT_EQ(rt.watchdog_events[0].rule, out.result.watchdog_events[0].rule);
  EXPECT_EQ(rt.watchdog_summary, out.result.watchdog_summary);
}

TEST(ForkServer, MatrixFinishesInOrderAroundManyCells) {
  if (!fork_available()) GTEST_SKIP() << "no fork() on this platform";
  std::vector<ScenarioSpec> specs;
  specs.push_back(standard_scenario("link_flap", 1));
  specs.push_back(standard_scenario("nic_reboot", 1));
  specs.push_back(standard_scenario("host_failover", 1));
  const std::vector<ForkOutcome> outcomes = run_matrix(specs, 2);
  ASSERT_EQ(outcomes.size(), specs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_FALSE(outcomes[i].crashed)
        << specs[i].name << ": " << outcomes[i].detail;
    EXPECT_EQ(outcomes[i].result.name, specs[i].name);
    EXPECT_TRUE(verdict_ok(outcomes[i].result)) << specs[i].name;
  }
}

}  // namespace
}  // namespace vnet::chaos
