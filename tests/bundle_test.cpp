// Tests for am::Bundle: the per-process endpoint collection with a shared
// event channel (§3; the pooled analogue of VIA's completion queues).

#include <gtest/gtest.h>

#include <set>

#include "am/bundle.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

namespace vnet::am {
namespace {

TEST(Bundle, WaitAnyReturnsTheEndpointWithTraffic) {
  cluster::Cluster cl(cluster::NowConfig(2));
  std::vector<Name> names(3);
  int served_on = -1;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    Bundle bundle(t.host());
    for (int i = 0; i < 3; ++i) {
      Endpoint* ep = co_await bundle.create_endpoint(t, 0x80 + i);
      ep->set_handler(1, [&, i](Endpoint&, const Message&) {
        served_on = i;
      });
      names[static_cast<std::size_t>(i)] = ep->name();
    }
    Endpoint* hot = co_await bundle.wait_any(t, kEventReceive);
    EXPECT_EQ(hot, bundle.at(1));  // traffic goes to endpoint #1
    co_await bundle.poll_all(t);
    co_await t.sleep(2 * sim::ms);
    co_await bundle.destroy_all(t);
    EXPECT_EQ(bundle.size(), 0u);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 0x9);
    while (!names[1].valid()) co_await t.sleep(20 * sim::us);
    co_await t.sleep(1 * sim::ms);  // make the server block first
    ep->map(0, names[1]);
    co_await ep->request(t, 0, 1, 42);
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 8);
  });
  cl.run_to_completion();
  EXPECT_EQ(served_on, 1);
}

TEST(Bundle, WaitAnyForTimesOutQuietly) {
  cluster::Cluster cl(cluster::NowConfig(1));
  bool timed_out = false;
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    Bundle bundle(t.host());
    for (int i = 0; i < 2; ++i) {
      (void)co_await bundle.create_endpoint(t, i);
    }
    Endpoint* hot = co_await bundle.wait_any_for(t, kEventReceive, 3 * sim::ms);
    timed_out = (hot == nullptr);
    co_await bundle.destroy_all(t);
  });
  cl.run_to_completion();
  EXPECT_TRUE(timed_out);
}

TEST(Bundle, PollAllSweepsEveryEndpoint) {
  cluster::Cluster cl(cluster::NowConfig(2));
  std::vector<Name> names(4);
  std::multiset<int> hits;
  bool server_ready = false;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    Bundle bundle(t.host());
    for (int i = 0; i < 4; ++i) {
      Endpoint* ep = co_await bundle.create_endpoint(t, 0x90 + i);
      ep->set_handler(1, [&, i](Endpoint&, const Message&) {
        hits.insert(i);
      });
      names[static_cast<std::size_t>(i)] = ep->name();
    }
    server_ready = true;
    while (hits.size() < 8) {
      (void)co_await bundle.wait_any_for(t, kEventReceive, 1 * sim::ms);
      co_await bundle.poll_all(t);
    }
    co_await t.sleep(2 * sim::ms);
  });
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 0xa);
    while (!server_ready) co_await t.sleep(20 * sim::us);
    for (int i = 0; i < 4; ++i) {
      ep->map(static_cast<std::uint32_t>(i),
              names[static_cast<std::size_t>(i)]);
    }
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < 4; ++i) {
        co_await ep->request(t, static_cast<std::uint32_t>(i), 1, 1);
      }
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
  });
  cl.run_to_completion();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hits.count(i), 2u) << i;
}

}  // namespace
}  // namespace vnet::am
