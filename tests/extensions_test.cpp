// Tests for the §8 "future work" extensions implemented beyond the
// published system: adaptive RTT-based retransmission timeouts and
// piggybacked acknowledgments.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "lanai/config.hpp"
#include "lanai/endpoint_state.hpp"
#include "lanai/nic.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace vnet::lanai {
namespace {

/// Two-NIC fixture with one endpoint per node, fully wired.
class ExtensionTest : public ::testing::Test {
 public:
  void build(NicConfig cfg, myrinet::FabricParams fp = {}) {
    cfg_ = cfg;
    fabric_ = myrinet::Fabric::crossbar(eng_, 2, fp);
    for (myrinet::NodeId n = 0; n < 2; ++n) {
      nics_.push_back(std::make_unique<Nic>(eng_, *fabric_, n, cfg));
      nics_.back()->start();
    }
    for (int i = 0; i < 2; ++i) {
      eps_[i].node = i;
      eps_[i].id = static_cast<EpId>(i + 1);
      eps_[i].translations.resize(4);
      nics_[i]->submit({DriverOp::Kind::kCreate, &eps_[i], -1, 0, nullptr});
      nics_[i]->submit({DriverOp::Kind::kLoad, &eps_[i], 0, 0, nullptr});
    }
    eng_.run();
    eps_[0].translations[0] = Translation{true, 1, 2, 0};
    eps_[1].translations[0] = Translation{true, 0, 1, 0};
  }

  void post(int side, std::uint64_t arg, std::uint32_t bulk = 0) {
    SendDescriptor d;
    d.dest_index = 0;
    d.body.handler = 1;
    d.body.args[0] = arg;
    d.body.bulk_bytes = bulk;
    d.msg_id = eps_[side].alloc_msg_id();
    d.frag_count = bulk == 0 ? 1
                             : (bulk + cfg_.max_packet_payload - 1) /
                                   cfg_.max_packet_payload;
    eps_[side].send_queue.push_back(std::move(d));
    nics_[side]->doorbell(eps_[side]);
  }

  /// Reads one NIC counter for `node` from the engine's metric registry.
  std::uint64_t nic_counter(int node, const std::string& leaf) {
    return eng_.snapshot().counter("host." + std::to_string(node) + ".nic." +
                                   leaf);
  }

  sim::Engine eng_{17};
  NicConfig cfg_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<Nic>> nics_;
  EndpointState eps_[2];
};

// ------------------------------------------------------------- piggyback

TEST_F(ExtensionTest, PiggybackReducesStandaloneAcks) {
  NicConfig cfg;
  cfg.piggyback_acks = true;
  build(cfg);
  // Bidirectional stream: plenty of reverse data frames to carry acks.
  for (int i = 0; i < 100; ++i) {
    post(0, i);
    post(1, i);
    eps_[0].recv_requests.clear();
    eps_[1].recv_requests.clear();
  }
  eps_[0].on_arrival = [&] { eps_[0].recv_requests.clear(); };
  eps_[1].on_arrival = [&] { eps_[1].recv_requests.clear(); };
  eng_.run();
  EXPECT_EQ(eps_[0].msgs_sent, 100u);
  EXPECT_EQ(eps_[1].msgs_sent, 100u);
  EXPECT_GT(nic_counter(0, "acks_piggybacked"), 40u);  // rode data frames
  // Far fewer standalone ack packets than messages received.
  EXPECT_LT(nic_counter(0, "acks_sent"), 60u);
}

TEST_F(ExtensionTest, PiggybackFlushCoversOneWayTraffic) {
  NicConfig cfg;
  cfg.piggyback_acks = true;
  build(cfg);
  eps_[1].on_arrival = [&] { eps_[1].recv_requests.clear(); };
  for (int i = 0; i < 50; ++i) post(0, i);
  eng_.run();
  // No reverse data: every ack needed a deadline flush, and the sender
  // still completed every message.
  EXPECT_EQ(eps_[0].msgs_sent, 50u);
  EXPECT_GT(nic_counter(1, "piggy_flushes"), 0u);
  EXPECT_EQ(nic_counter(1, "acks_piggybacked"), 0u);
}

TEST_F(ExtensionTest, PiggybackExactlyOnceUnderLoss) {
  NicConfig cfg;
  cfg.piggyback_acks = true;
  cfg.retransmit_timeout = 200 * sim::us;
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.15;
  build(cfg, fp);
  std::multiset<std::uint64_t> seen0, seen1;
  eps_[0].on_arrival = [&] {
    while (!eps_[0].recv_requests.empty()) {
      seen0.insert(eps_[0].recv_requests.front().body.args[0]);
      eps_[0].recv_requests.pop_front();
    }
  };
  eps_[1].on_arrival = [&] {
    while (!eps_[1].recv_requests.empty()) {
      seen1.insert(eps_[1].recv_requests.front().body.args[0]);
      eps_[1].recv_requests.pop_front();
    }
  };
  for (int i = 0; i < 80; ++i) {
    post(0, i);
    post(1, i);
  }
  eng_.run();
  ASSERT_EQ(seen0.size(), 80u);
  ASSERT_EQ(seen1.size(), 80u);
  for (int i = 0; i < 80; ++i) {
    EXPECT_EQ(seen0.count(i), 1u) << i;
    EXPECT_EQ(seen1.count(i), 1u) << i;
  }
}

// ------------------------------------------------------- adaptive timeout

TEST_F(ExtensionTest, AdaptiveEstimatorLearnsRtt) {
  NicConfig cfg;
  cfg.adaptive_timeout = true;
  build(cfg);
  eps_[1].on_arrival = [&] { eps_[1].recv_requests.clear(); };
  for (int i = 0; i < 50; ++i) post(0, i);
  eng_.run();
  const sim::Duration est = nics_[0]->rtt_estimate(1);
  // One-hop data + ack round trip is on the order of ~10us here.
  EXPECT_GT(est, 2 * sim::us);
  EXPECT_LT(est, 200 * sim::us);
}

TEST_F(ExtensionTest, AdaptiveAvoidsSpuriousBulkRetransmissions) {
  // Receive-side DMA queueing of 16 in-flight 4KB fragments exceeds an
  // aggressive fixed timeout; the adaptive estimator rides it out.
  auto run_case = [](bool adaptive) {
    sim::Engine eng(5);
    auto fabric = myrinet::Fabric::crossbar(eng, 2);
    NicConfig cfg;
    cfg.adaptive_timeout = adaptive;
    cfg.retransmit_timeout = 400 * sim::us;  // aggressive fixed value
    cfg.adaptive_timeout_min = 400 * sim::us;
    Nic n0(eng, *fabric, 0, cfg), n1(eng, *fabric, 1, cfg);
    n0.start();
    n1.start();
    EndpointState a, b;
    a.node = 0;
    a.id = 1;
    a.translations.resize(2);
    a.translations[0] = Translation{true, 1, 2, 0};
    b.node = 1;
    b.id = 2;
    b.on_arrival = [&b] { b.recv_requests.clear(); };
    n0.submit({DriverOp::Kind::kCreate, &a, -1, 0, nullptr});
    n0.submit({DriverOp::Kind::kLoad, &a, 0, 0, nullptr});
    n1.submit({DriverOp::Kind::kCreate, &b, -1, 0, nullptr});
    n1.submit({DriverOp::Kind::kLoad, &b, 0, 0, nullptr});
    eng.run();
    for (int i = 0; i < 40; ++i) {
      SendDescriptor d;
      d.dest_index = 0;
      d.body.handler = 1;
      d.body.bulk_bytes = 8192;
      d.msg_id = a.alloc_msg_id();
      d.frag_count = 2;
      a.send_queue.push_back(std::move(d));
    }
    n0.doorbell(a);
    eng.run();
    EXPECT_EQ(a.msgs_sent, 40u);
    return eng.snapshot().counter("host.0.nic.retransmissions");
  };
  const auto fixed = run_case(false);
  const auto adaptive = run_case(true);
  EXPECT_GT(fixed, 20u);           // the aggressive timeout misfires a lot
  EXPECT_LT(adaptive, fixed / 4);  // the estimator adapts past the queueing
}

TEST_F(ExtensionTest, AdaptiveStillRecoversFromRealLoss) {
  NicConfig cfg;
  cfg.adaptive_timeout = true;
  cfg.retransmit_timeout = 500 * sim::us;
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.2;
  build(cfg, fp);
  std::multiset<std::uint64_t> seen;
  eps_[1].on_arrival = [&] {
    while (!eps_[1].recv_requests.empty()) {
      seen.insert(eps_[1].recv_requests.front().body.args[0]);
      eps_[1].recv_requests.pop_front();
    }
  };
  for (int i = 0; i < 60; ++i) post(0, i);
  eng_.run();
  ASSERT_EQ(seen.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
  EXPECT_GT(nic_counter(0, "retransmissions"), 0u);
}

TEST_F(ExtensionTest, BothExtensionsComposeUnderLoss) {
  NicConfig cfg;
  cfg.adaptive_timeout = true;
  cfg.piggyback_acks = true;
  cfg.retransmit_timeout = 300 * sim::us;
  myrinet::FabricParams fp;
  fp.faults.drop_probability = 0.1;
  build(cfg, fp);
  std::multiset<std::uint64_t> seen0, seen1;
  eps_[0].on_arrival = [&] {
    while (!eps_[0].recv_requests.empty()) {
      seen0.insert(eps_[0].recv_requests.front().body.args[0]);
      eps_[0].recv_requests.pop_front();
    }
  };
  eps_[1].on_arrival = [&] {
    while (!eps_[1].recv_requests.empty()) {
      seen1.insert(eps_[1].recv_requests.front().body.args[0]);
      eps_[1].recv_requests.pop_front();
    }
  };
  for (int i = 0; i < 60; ++i) {
    post(0, i);
    post(1, i, /*bulk=*/(i % 4 == 0) ? 6000u : 0u);
  }
  eng_.run();
  ASSERT_EQ(seen0.size(), 60u);
  ASSERT_EQ(seen1.size(), 60u);
}

}  // namespace
}  // namespace vnet::lanai
