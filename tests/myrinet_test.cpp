// Unit tests for the Myrinet fabric model: topology construction, source
// routing, latency arithmetic, credit back-pressure, congestion spreading,
// fault injection, and host hot-unplug.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "myrinet/fabric.hpp"
#include "myrinet/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace vnet::myrinet {
namespace {

Packet make_packet(Fabric& fabric, NodeId src, NodeId dst,
                   std::uint32_t wire_bytes, std::size_t route_choice = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  const auto& rts = fabric.routes(src, dst);
  p.route = rts[route_choice % rts.size()];
  p.wire_bytes = wire_bytes;
  return p;
}

struct Collector {
  std::vector<Packet> packets;
  std::vector<sim::Time> times;
  void attach(Station& st, sim::Engine& eng) {
    st.on_receive = [this, &eng](Packet p) {
      packets.push_back(std::move(p));
      times.push_back(eng.now());
    };
  }
};

// ---------------------------------------------------------- construction

TEST(Crossbar, Dimensions) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 4);
  EXPECT_EQ(f->num_hosts(), 4);
  EXPECT_EQ(f->num_switches(), 1);
  EXPECT_EQ(f->num_links(), 4);  // one full-duplex link per host
}

TEST(FatTree, PaperScaleDimensions) {
  sim::Engine eng;
  auto f = Fabric::fat_tree(eng, 100, /*hosts_per_leaf=*/5, /*spines=*/3);
  EXPECT_EQ(f->num_hosts(), 100);
  // 20 leaves + 3 spines = 23 switches; 100 host links + 60 leaf-spine
  // links = 160 full-duplex links (paper: 25 switches, 185 links).
  EXPECT_EQ(f->num_switches(), 23);
  EXPECT_EQ(f->num_links(), 160);
}

TEST(FatTree, RejectsBadArguments) {
  sim::Engine eng;
  EXPECT_THROW(Fabric::fat_tree(eng, 0, 5, 3), std::invalid_argument);
  EXPECT_THROW(Fabric::fat_tree(eng, 10, 0, 3), std::invalid_argument);
  EXPECT_THROW(Fabric::crossbar(eng, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- routing

TEST(Routing, CrossbarSingleHop) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 4);
  const auto& rts = f->routes(1, 3);
  ASSERT_EQ(rts.size(), 1u);
  EXPECT_EQ(rts[0], (Route{3}));
  EXPECT_TRUE(f->routes(2, 2).empty());  // loopback never enters the fabric
}

TEST(Routing, FatTreeSameLeafIsOneHop) {
  sim::Engine eng;
  auto f = Fabric::fat_tree(eng, 100, 5, 3);
  // Hosts 0 and 4 share leaf 0.
  const auto& rts = f->routes(0, 4);
  ASSERT_EQ(rts.size(), 1u);
  EXPECT_EQ(rts[0], (Route{4}));
}

TEST(Routing, FatTreeCrossLeafHasOneRoutePerSpine) {
  sim::Engine eng;
  auto f = Fabric::fat_tree(eng, 100, 5, 3);
  const auto& rts = f->routes(0, 99);  // leaf 0 -> leaf 19
  ASSERT_EQ(rts.size(), 3u);
  std::set<std::uint8_t> first_hops;
  for (const auto& r : rts) {
    ASSERT_EQ(r.size(), 3u);
    EXPECT_GE(r[0], 5);  // uplink ports start after the 5 host ports
    EXPECT_LT(r[0], 8);
    EXPECT_EQ(r[1], 19);    // spine port toward leaf 19
    EXPECT_EQ(r[2], 99 % 5);  // host port on destination leaf
    first_hops.insert(r[0]);
  }
  EXPECT_EQ(first_hops.size(), 3u);  // the routes really use distinct spines
}

TEST(Routing, AllPairsDeliverable) {
  sim::Engine eng;
  auto f = Fabric::fat_tree(eng, 20, 4, 2);
  std::vector<Collector> sinks(20);
  for (NodeId h = 0; h < 20; ++h) sinks[h].attach(f->station(h), eng);
  for (NodeId s = 0; s < 20; ++s) {
    for (NodeId d = 0; d < 20; ++d) {
      if (s == d) continue;
      f->station(s).inject(make_packet(*f, s, d, 64));
    }
  }
  eng.run();
  for (NodeId d = 0; d < 20; ++d) {
    EXPECT_EQ(sinks[d].packets.size(), 19u) << "dst " << d;
    for (const auto& p : sinks[d].packets) EXPECT_EQ(p.dst, d);
  }
}

// ---------------------------------------------------------------- latency

TEST(Latency, CrossbarMatchesAnalyticModel) {
  sim::Engine eng;
  FabricParams params;  // defaults: 6.25 ns/B, 25 ns prop, 300 ns cut-through
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  f->station(0).inject(make_packet(*f, 0, 1, 100));
  eng.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // host->switch: 625 ser + 25 prop; switch: 300 cut-through;
  // switch->host: 625 ser + 25 prop.
  EXPECT_EQ(sink.times[0], 625 + 25 + 300 + 625 + 25);
}

TEST(Latency, FatTreeCrossLeafAddsTwoSwitchHops) {
  sim::Engine eng;
  auto f = Fabric::fat_tree(eng, 10, 5, 1);
  Collector sink;
  sink.attach(f->station(9), eng);
  f->station(0).inject(make_packet(*f, 0, 9, 100));
  eng.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // 4 wire crossings (host->leaf, leaf->spine, spine->leaf, leaf->host) and
  // 3 switch traversals.
  EXPECT_EQ(sink.times[0], 4 * (625 + 25) + 3 * 300);
}

// ----------------------------------------------------------- backpressure

TEST(Throughput, LinkRateBoundsDelivery) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 2);
  Collector sink;
  sink.attach(f->station(1), eng);
  // Saturate: inject whenever the station accepts more.
  eng.spawn([](sim::Engine& e, Fabric& fab) -> sim::Process {
    for (int i = 0; i < 200; ++i) {
      while (!fab.station(0).can_inject()) {
        co_await fab.station(0).drained().wait();
      }
      fab.station(0).inject(make_packet(fab, 0, 1, 1000));
    }
    (void)e;
  }(eng, *f));
  eng.run();
  ASSERT_EQ(sink.packets.size(), 200u);
  // Steady-state spacing must equal the serialization time of one packet
  // (6250 ns at 6.25 ns/B): the link, not the switch, is the bottleneck.
  const sim::Time spacing = sink.times.back() - sink.times[100];
  EXPECT_NEAR(static_cast<double>(spacing) / (200 - 101), 6250.0, 1.0);
}

TEST(Congestion, FanInSharesEgressLinkFairly) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 5);
  Collector sink;
  sink.attach(f->station(4), eng);
  // Four senders blast the same destination.
  for (NodeId s = 0; s < 4; ++s) {
    eng.spawn([](sim::Engine&, Fabric& fab, NodeId src) -> sim::Process {
      for (int i = 0; i < 100; ++i) {
        while (!fab.station(src).can_inject()) {
          co_await fab.station(src).drained().wait();
        }
        fab.station(src).inject(make_packet(fab, src, 4, 1000));
      }
    }(eng, *f, s));
  }
  eng.run();
  ASSERT_EQ(sink.packets.size(), 400u);
  // Egress serialization is the bottleneck: total time >= 400 * 6250 ns.
  EXPECT_GE(sink.times.back(), 400 * 6250 - 6250);
  // And back-pressure must deliver approximate per-sender fairness.
  int per_src[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < 200; ++i) ++per_src[sink.packets[i].src];
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(per_src[s], 20) << "sender " << s << " starved";
  }
}

TEST(Congestion, BackpressureStallsSender) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 3);
  Collector sink;
  sink.attach(f->station(2), eng);
  // Station 0 fills the egress; its injection queue must back up.
  for (int i = 0; i < 8; ++i) {
    f->station(0).inject(make_packet(*f, 0, 2, 4000));
  }
  EXPECT_FALSE(f->station(0).can_inject());
  eng.run();
  EXPECT_EQ(sink.packets.size(), 8u);
  EXPECT_TRUE(f->station(0).can_inject());
}

// -------------------------------------------------------- fault injection

TEST(Faults, DropAllLosesEverything) {
  sim::Engine eng;
  FabricParams params;
  params.faults.drop_probability = 1.0;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  for (int i = 0; i < 10; ++i) f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_GE(f->injected_drops(), 10u);
}

TEST(Faults, CorruptionFlagsArrivingPackets) {
  sim::Engine eng;
  FabricParams params;
  params.faults.corrupt_probability = 1.0;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_TRUE(sink.packets[0].corrupt);
  EXPECT_GE(f->injected_corruptions(), 1u);
}

TEST(Faults, PartialDropRateIsApproximatelyHonored) {
  sim::Engine eng;
  FabricParams params;
  params.faults.drop_probability = 0.25;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  eng.spawn([](sim::Engine&, Fabric& fab) -> sim::Process {
    for (int i = 0; i < 1000; ++i) {
      while (!fab.station(0).can_inject()) {
        co_await fab.station(0).drained().wait();
      }
      fab.station(0).inject(make_packet(fab, 0, 1, 64));
    }
  }(eng, *f));
  eng.run();
  // Two wire crossings per packet; survival ~ 0.75^2 = 56%.
  EXPECT_NEAR(static_cast<double>(sink.packets.size()), 562.0, 80.0);
}

namespace {

// Sends `count` sequence-tagged packets 0 -> 1 and returns the ids that
// made it through.
std::set<std::uint64_t> send_tagged(sim::Engine& eng, Fabric& fab,
                                    Collector& sink, int count) {
  eng.spawn([](sim::Engine&, Fabric& f, int n) -> sim::Process {
    for (int i = 0; i < n; ++i) {
      while (!f.station(0).can_inject()) {
        co_await f.station(0).drained().wait();
      }
      Packet p = make_packet(f, 0, 1, 64);
      p.id = static_cast<std::uint64_t>(i);
      f.station(0).inject(std::move(p));
    }
  }(eng, fab, count));
  eng.run();
  std::set<std::uint64_t> delivered;
  for (const Packet& p : sink.packets) delivered.insert(p.id);
  return delivered;
}

}  // namespace

TEST(Faults, BurstLossDisabledDropsNothing) {
  sim::Engine eng;
  FabricParams params;  // burst.enabled defaults to false
  params.faults.burst.loss_bad = 1.0;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  const auto delivered = send_tagged(eng, *f, sink, 200);
  EXPECT_EQ(delivered.size(), 200u);
  EXPECT_EQ(f->injected_drops(), 0u);
}

TEST(Faults, BurstLossIsCorrelated) {
  sim::Engine eng;
  FabricParams params;
  params.faults.burst.enabled = true;
  params.faults.burst.p_good_to_bad = 0.02;
  params.faults.burst.p_bad_to_good = 0.1;  // mean bad dwell ~ 10 crossings
  params.faults.burst.loss_good = 0.0;
  params.faults.burst.loss_bad = 1.0;  // drops exactly trace the bad state
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  const int kCount = 3000;
  const auto delivered = send_tagged(eng, *f, sink, kCount);

  const std::size_t dropped = kCount - delivered.size();
  ASSERT_GT(dropped, 50u) << "burst process never entered the bad state";
  ASSERT_LT(delivered.size(), static_cast<std::size_t>(kCount));
  ASSERT_GT(delivered.size(), 0u) << "burst process never recovered";

  // Burstiness: drops must arrive in runs. Mean run length of consecutive
  // dropped ids is ~1/p_bad_to_good per link chain; uniform Bernoulli loss
  // at the same rate would give runs barely above 1.
  std::size_t runs = 0;
  bool in_run = false;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const bool lost = delivered.find(i) == delivered.end();
    if (lost && !in_run) ++runs;
    in_run = lost;
  }
  ASSERT_GT(runs, 0u);
  const double mean_run =
      static_cast<double>(dropped) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 3.0) << "losses are not bursty (mean run "
                           << mean_run << ")";
}

TEST(Faults, BurstLossCanBeTurnedOffAtRuntime) {
  sim::Engine eng;
  FabricParams params;
  params.faults.burst.enabled = true;
  params.faults.burst.p_good_to_bad = 1.0;  // pinned bad
  params.faults.burst.p_bad_to_good = 0.0;
  params.faults.burst.loss_bad = 1.0;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  for (int i = 0; i < 5; ++i) f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_TRUE(sink.packets.empty());
  GilbertElliottParams off;  // enabled = false
  f->set_burst_loss(off);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Faults, PerLinkDropAccountingSplitsDownFromFault) {
  sim::Engine eng;
  FabricParams params;
  params.faults.drop_probability = 1.0;
  auto f = Fabric::crossbar(eng, 2, params);
  Collector sink;
  sink.attach(f->station(1), eng);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_EQ(f->total_dropped_fault(), 1u);
  EXPECT_EQ(f->total_dropped_down(), 0u);

  f->set_fault_rates(0.0, 0.0);
  f->set_host_link(1, false);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_EQ(f->total_dropped_down(), 1u);
  EXPECT_EQ(f->total_dropped_fault(), 1u);

  const obs::Snapshot snap = eng.snapshot();
  EXPECT_EQ(snap.sum_counters("fabric.link.", ".drops_down"), 1u);
  EXPECT_EQ(snap.sum_counters("fabric.link.", ".drops_fault"), 1u);
}

TEST(Faults, HostUnplugAndReplug) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 2);
  Collector sink;
  sink.attach(f->station(1), eng);
  f->set_host_link(1, false);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_TRUE(sink.packets.empty());  // dropped at the dead link
  f->set_host_link(1, true);
  f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Faults, MalformedRouteCountsAsRouteError) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 2);
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.route = RouteBytes{};  // no route bytes at all
  p.wire_bytes = 64;
  f->station(0).inject(std::move(p));
  eng.run();
  EXPECT_EQ(f->switches()[0]->route_errors(), 1u);
}

// ------------------------------------------------------------ accounting

TEST(Accounting, CountersTrackTraffic) {
  sim::Engine eng;
  auto f = Fabric::crossbar(eng, 2);
  Collector sink;
  sink.attach(f->station(1), eng);
  for (int i = 0; i < 5; ++i) f->station(0).inject(make_packet(*f, 0, 1, 64));
  eng.run();
  EXPECT_EQ(f->station(0).packets_injected(), 5u);
  EXPECT_EQ(f->station(1).packets_received(), 5u);
  EXPECT_EQ(f->switches()[0]->packets_routed(), 5u);
  EXPECT_GE(f->max_queue_watermark(), 1);
}

}  // namespace
}  // namespace vnet::myrinet
