// Integration tests for the public vnet::am API over the full stack
// (cluster -> host -> segment driver -> NIC -> fabric): naming/protection,
// request/reply with handlers, credits, events, residency under frame
// pressure, and the return-to-sender error model.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "am/endpoint.hpp"
#include "am/message.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

namespace vnet::am {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::GamConfig;
using cluster::NowConfig;

/// Out-of-band rendezvous: ranks publish endpoint names here (the paper
/// allows any rendezvous mechanism for name exchange, §3.1).
struct Rendezvous {
  std::vector<Name> names;
  explicit Rendezvous(int n) : names(static_cast<std::size_t>(n)) {}
  bool all_ready() const {
    for (const auto& n : names) {
      if (!n.valid()) return false;
    }
    return true;
  }
};

TEST(AmApi, PingPongRequestReply) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  std::uint64_t got_request = 0, got_reply = 0;

  // Server on node 1.
  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, /*tag=*/0xbeef);
    ep->set_handler(1, [&](Endpoint&, const Message& m) {
      got_request = m.arg(0);
      m.reply(2, {m.arg(0) + 1});
    });
    rv.names[1] = ep->name();
    while (got_request == 0) {
      co_await ep->wait_events(t, kEventArrivals);
      co_await ep->poll(t);
    }
    // Keep polling briefly so the reply's transport completes cleanly.
    co_await t.sleep(1 * sim::ms);
    co_await ep->destroy(t);
  });

  // Client on node 0.
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 0xcafe);
    ep->set_handler(2, [&](Endpoint&, const Message& m) {
      got_reply = m.arg(0);
    });
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    co_await ep->request(t, 0, /*handler=*/1, 41);
    while (got_reply == 0) co_await ep->poll(t);
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
  EXPECT_EQ(got_request, 41u);
  EXPECT_EQ(got_reply, 42u);
}

TEST(AmApi, CreditWindowBoundsOutstandingRequests) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  int max_outstanding = 0;
  std::uint64_t served = 0;
  const int total = 200;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    ep->set_handler(1, [&](Endpoint&, const Message&) { ++served; });
    rv.names[1] = ep->name();
    while (served < static_cast<std::uint64_t>(total)) {
      co_await ep->wait_events(t, kEventArrivals);
      co_await ep->poll(t, 32);
    }
    co_await t.sleep(2 * sim::ms);  // drain trailing credit replies
  });

  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 2);
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    for (int i = 0; i < total; ++i) {
      co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
      max_outstanding = std::max(max_outstanding, ep->credits_in_use());
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t);
    // The window really bound us.
    EXPECT_GT(t.engine().snapshot().counter(
                  "host.0.ep." + std::to_string(ep->name().ep) +
                  ".send_stalls"),
              0u);
  });

  cl.run_to_completion();
  EXPECT_EQ(served, static_cast<std::uint64_t>(total));
  EXPECT_LE(max_outstanding, 32);
  EXPECT_GE(max_outstanding, 16);  // pipeline actually fills
}

TEST(AmApi, BadKeyTriggersUndeliverableHandler) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  lanai::NackReason reason = lanai::NackReason::kNone;
  bool returned = false;

  cl.spawn_thread(1, "victim", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, /*tag=*/0x1234);
    rv.names[1] = ep->name();
    co_await t.sleep(5 * sim::ms);
    co_await ep->destroy(t);
  });

  cl.spawn_thread(0, "attacker", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    ep->set_undeliverable_handler([&](Endpoint&, ReturnedMessage r) {
      returned = true;
      reason = r.reason;
    });
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    // Deliberately present the wrong key.
    ep->map_raw(0, rv.names[1].node, rv.names[1].ep, /*key=*/0x666);
    co_await ep->request(t, 0, 1, 7);
    while (!returned) co_await ep->poll(t);
  });

  cl.run_to_completion();
  EXPECT_TRUE(returned);
  EXPECT_EQ(reason, lanai::NackReason::kBadKey);
}

TEST(AmApi, CrashedNodeReturnsMessagesToSender) {
  auto cfg = NowConfig(2);
  cfg.nic.retransmit_timeout = 100 * sim::us;
  cfg.nic.unreachable_timeout = 10 * sim::ms;
  Cluster cl(cfg);
  Rendezvous rv(2);
  int returned = 0;

  cl.spawn_thread(1, "doomed", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    rv.names[1] = ep->name();
    co_await t.sleep(100 * sim::ms);
  });

  cl.spawn_thread(0, "sender", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 2);
    ep->set_undeliverable_handler([&](Endpoint&, ReturnedMessage r) {
      EXPECT_TRUE(r.unreachable());
      ++returned;
    });
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    co_await t.sleep(2 * sim::ms);  // wait until node 1's cable is pulled
    co_await ep->request(t, 0, 1, 1);
    co_await ep->request(t, 0, 1, 2);
    while (returned < 2) co_await ep->poll(t);
  });

  // Pull node 1's cable just after the threads start.
  cl.engine().after(1 * sim::ms, [&] { cl.fabric().set_host_link(1, false); });
  cl.run_to_completion();
  EXPECT_EQ(returned, 2);
}

TEST(AmApi, EventDrivenServerSleepsUntilArrival) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  sim::Time woke_at = -1;
  std::uint64_t got = 0;

  cl.spawn_thread(1, "sleeper", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    ep->set_handler(1, [&](Endpoint&, const Message& m) { got = m.arg(0); });
    rv.names[1] = ep->name();
    co_await ep->wait_events(t, kEventReceive);  // sleeps, no CPU burn
    woke_at = t.engine().now();
    co_await ep->poll(t);
    co_await t.sleep(1 * sim::ms);
  });

  cl.spawn_thread(0, "sender", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 2);
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    co_await t.sleep(5 * sim::ms);  // let the server block first
    ep->map(0, rv.names[1]);
    co_await ep->request(t, 0, 1, 77);
    co_await t.sleep(1 * sim::ms);
    while (ep->credits_in_use() > 0) co_await ep->poll(t);
  });

  cl.run_to_completion();
  EXPECT_EQ(got, 77u);
  EXPECT_GE(woke_at, 5 * sim::ms);  // really slept until the message came
}

TEST(AmApi, WaitForTimesOutWithoutTraffic) {
  Cluster cl(NowConfig(1));
  bool notified = true;
  cl.spawn_thread(0, "t", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    // An explicit receive-only mask: send-space would be trivially true.
    notified = co_await ep->wait_events_for(t, kEventReceive, 2 * sim::ms);
    co_await ep->destroy(t);
  });
  cl.run_to_completion();
  EXPECT_FALSE(notified);
}

TEST(AmApi, ManyEndpointsOvercommitFramesAndStillDeliver) {
  // 12 client endpoints all talking to one server endpoint on a NIC with
  // only 8 frames: residency churn must not lose messages.
  auto cfg = NowConfig(2);
  ASSERT_EQ(cfg.nic.endpoint_frames, 8);
  Cluster cl(cfg);
  const int kClients = 12;
  Rendezvous rv(1);
  std::map<std::uint64_t, int> seen;
  std::uint64_t served = 0;
  const int per_client = 5;

  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 9);
    ep->set_handler(1, [&](Endpoint&, const Message& m) {
      ++seen[m.arg(0)];
      ++served;
    });
    rv.names[0] = ep->name();
    while (served < static_cast<std::uint64_t>(kClients * per_client)) {
      co_await ep->wait_events(t, kEventArrivals);
      co_await ep->poll(t, 32);
    }
    co_await t.sleep(5 * sim::ms);
  });

  for (int c = 0; c < kClients; ++c) {
    cl.spawn_thread(0, "client" + std::to_string(c),
                    [&, c](host::HostThread& t) -> sim::Task<> {
                      auto ep = co_await Endpoint::create(t, 100 + c);
                      while (!rv.all_ready()) co_await t.sleep(20 * sim::us);
                      ep->map(0, rv.names[0]);
                      for (int i = 0; i < per_client; ++i) {
                        co_await ep->request(
                            t, 0, 1,
                            static_cast<std::uint64_t>(c * 1000 + i));
                      }
                      while (ep->credits_in_use() > 0) {
                        co_await ep->poll(t);
                      }
                    });
  }

  cl.run_to_completion();
  EXPECT_EQ(served, static_cast<std::uint64_t>(kClients * per_client));
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "message " << key << " duplicated";
  }
  // 12 client endpoints + 1 elsewhere exceed 8 frames: eviction happened.
  EXPECT_GT(cl.engine().snapshot().counter("host.0.driver.evictions"), 0u);
}

TEST(AmApi, SharedEndpointServesTwoThreads) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  std::uint64_t served = 0;
  const int total = 40;
  std::unique_ptr<Endpoint> server_ep;

  cl.spawn_thread(1, "creator", [&](host::HostThread& t) -> sim::Task<> {
    server_ep = co_await Endpoint::create(t, 1, /*shared=*/true);
    server_ep->set_handler(1, [&](Endpoint&, const Message&) { ++served; });
    rv.names[1] = server_ep->name();
    co_return;
  });
  for (int w = 0; w < 2; ++w) {
    cl.spawn_thread(1, "worker" + std::to_string(w),
                    [&](host::HostThread& t) -> sim::Task<> {
                      while (server_ep == nullptr) {
                        co_await t.sleep(10 * sim::us);
                      }
                      while (served < static_cast<std::uint64_t>(total)) {
                        (void)co_await server_ep->wait_events_for(
                            t, kEventArrivals, 500 * sim::us);
                        co_await server_ep->poll(t, 8);
                      }
                    });
  }
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 2);
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    for (int i = 0; i < total; ++i) {
      co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t);
  });

  cl.run_to_completion();
  EXPECT_EQ(served, static_cast<std::uint64_t>(total));
}

TEST(AmApi, BulkTransferDeliversPayload) {
  Cluster cl(NowConfig(2));
  Rendezvous rv(2);
  std::uint32_t got_bytes = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> got_data;

  cl.spawn_thread(1, "recv", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 1);
    ep->set_handler(3, [&](Endpoint&, const Message& m) {
      got_bytes = m.bulk_bytes();
      got_data = m.bulk_data();
    });
    rv.names[1] = ep->name();
    while (got_bytes == 0) {
      co_await ep->wait_events(t, kEventArrivals);
      co_await ep->poll(t);
    }
    co_await t.sleep(2 * sim::ms);
  });
  cl.spawn_thread(0, "send", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 2);
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    auto payload = std::make_shared<std::vector<std::uint8_t>>(20'000, 0x5a);
    co_await ep->request_bulk(t, 0, 3, 20'000, payload, 1);
    while (ep->credits_in_use() > 0) co_await ep->poll(t);
  });

  cl.run_to_completion();
  EXPECT_EQ(got_bytes, 20'000u);
  ASSERT_TRUE(got_data);
  EXPECT_EQ(got_data->size(), 20'000u);
  EXPECT_EQ((*got_data)[12345], 0x5a);
}

TEST(AmApi, GamClusterStillServesTheApi) {
  Cluster cl(GamConfig(2));
  Rendezvous rv(2);
  std::uint64_t got = 0;

  cl.spawn_thread(1, "recv", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 0);
    ep->set_handler(1, [&](Endpoint&, const Message& m) { got = m.arg(0); });
    rv.names[1] = ep->name();
    while (got == 0) {
      (void)co_await ep->wait_events_for(t, kEventArrivals, 200 * sim::us);
      co_await ep->poll(t);
    }
    co_await t.sleep(1 * sim::ms);
  });
  cl.spawn_thread(0, "send", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await Endpoint::create(t, 0);
    rv.names[0] = ep->name();
    while (!rv.all_ready()) co_await t.sleep(10 * sim::us);
    ep->map(0, rv.names[1]);
    co_await ep->request(t, 0, 1, 123);
    co_await t.sleep(1 * sim::ms);
    co_await ep->poll(t, 8);
  });

  cl.run_to_completion();
  EXPECT_EQ(got, 123u);
}

TEST(AmApi, FatTreeClusterAllPairs) {
  auto cfg = NowConfig(10);  // 2 leaves x 5 hosts, 3 spines
  ASSERT_EQ(cfg.topology, ClusterConfig::Topology::kFatTree);
  Cluster cl(cfg);
  const int n = cl.size();
  Rendezvous rv(n);
  std::vector<std::uint64_t> received(static_cast<std::size_t>(n), 0);

  for (int r = 0; r < n; ++r) {
    cl.spawn_thread(r, "rank" + std::to_string(r),
                    [&, r](host::HostThread& t) -> sim::Task<> {
                      auto ep = co_await Endpoint::create(t, 40 + r);
                      ep->set_handler(1, [&, r](Endpoint&, const Message&) {
                        ++received[r];
                      });
                      rv.names[r] = ep->name();
                      while (!rv.all_ready()) co_await t.sleep(20 * sim::us);
                      for (int p = 0; p < n; ++p) {
                        ep->map(static_cast<std::uint32_t>(p), rv.names[p]);
                      }
                      for (int p = 0; p < n; ++p) {
                        if (p == r) continue;
                        co_await ep->request(t, static_cast<std::uint32_t>(p),
                                             1, static_cast<std::uint64_t>(r));
                      }
                      // Serve incoming traffic until everyone is done.
                      while (received[r] <
                                 static_cast<std::uint64_t>(n - 1) ||
                             ep->credits_in_use() > 0) {
                        co_await ep->poll(t, 16);
                        co_await t.compute(500);
                      }
                    });
  }
  cl.run_to_completion();
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(received[r], static_cast<std::uint64_t>(n - 1)) << "rank " << r;
  }
}

}  // namespace
}  // namespace vnet::am
