// Regression: the bench/repro_lost reply-loss reproducer, promoted to a
// seed-swept ctest. Three event-driven services share node 0; three clients
// on distinct nodes issue explicit-reply requests. Every client must get
// every reply back — zero lost replies, on every seed.

#include <gtest/gtest.h>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

namespace vnet {
namespace {

struct ReproOutcome {
  std::uint64_t served[3] = {0, 0, 0};
  std::uint64_t replies[3] = {0, 0, 0};
  int expected[3] = {0, 0, 0};
};

ReproOutcome run_repro(std::uint64_t seed) {
  auto cfg = cluster::NowConfig(4);
  cfg.seed = seed;
  cluster::Cluster cl(cfg);

  ReproOutcome oc;
  am::Name sname[3];
  bool stop = false;
  int done = 0;

  for (int sidx = 0; sidx < 3; ++sidx) {
    cl.spawn_thread(0, "svc", [&, sidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 7 + sidx);
      ep->set_handler(1, [&oc, sidx](am::Endpoint&, const am::Message& m) {
        ++oc.served[sidx];
        m.reply(2, {m.arg(0)});
      });
      sname[sidx] = ep->name();
      while (!stop) {
        if (co_await ep->wait_events_for(t, am::kEventReceive, 2 * sim::ms)) {
          while (co_await ep->poll(t, 16) > 0) {
          }
        }
      }
      co_await ep->destroy(t);
    });
  }
  for (int cidx = 0; cidx < 3; ++cidx) {
    cl.spawn_thread(1 + cidx, "cli",
                    [&, cidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 90 + cidx);
      ep->set_handler(2, [&oc, cidx](am::Endpoint&, const am::Message&) {
        ++oc.replies[cidx];
      });
      while (!sname[0].valid() || !sname[1].valid() || !sname[2].valid()) {
        co_await t.sleep(20 * sim::us);
      }
      ep->map(0, sname[cidx]);
      const int my_total = 120 - cidx * 40;  // 120 / 80 / 40
      oc.expected[cidx] = my_total;
      for (int i = 0; i < my_total; ++i) {
        co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
      }
      const sim::Time deadline = t.engine().now() + 300 * sim::ms;
      while (oc.replies[cidx] < static_cast<std::uint64_t>(my_total) &&
             t.engine().now() < deadline) {
        co_await ep->poll(t, 16);
        co_await t.compute(1000);
      }
      co_await ep->destroy(t);
      if (++done == 3) stop = true;
    });
  }
  cl.run_to_completion();
  return oc;
}

TEST(ReproLost, NoRepliesLostAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ReproOutcome oc = run_repro(seed);
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(oc.replies[c], static_cast<std::uint64_t>(oc.expected[c]))
          << "seed " << seed << " client " << c << " lost replies (served="
          << oc.served[c] << ")";
      EXPECT_EQ(oc.served[c], static_cast<std::uint64_t>(oc.expected[c]))
          << "seed " << seed << " service " << c
          << " saw a duplicate or missing request";
    }
  }
}

}  // namespace
}  // namespace vnet
