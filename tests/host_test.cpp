// Unit tests for the host layer: CPU time-sharing, kernel-priority
// scheduling, and the endpoint segment driver's four-state protocol with
// eviction policies.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/config.hpp"
#include "host/cpu.hpp"
#include "host/host.hpp"
#include "host/segment_driver.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace vnet::host {
namespace {

// ------------------------------------------------------------------- Cpu

TEST(Cpu, SingleThreadRunsAtFullSpeed) {
  sim::Engine eng;
  HostConfig hc;
  Cpu cpu(eng, hc);
  ThreadCtx t{"a", false, 0, 0};
  sim::Time done = -1;
  eng.spawn([](sim::Engine& e, Cpu& c, ThreadCtx& t, sim::Time& d)
                -> sim::Process {
    co_await c.run(t, 50 * sim::ms);
    d = e.now();
  }(eng, cpu, t, done));
  eng.run();
  // One context switch in, then uninterrupted.
  EXPECT_EQ(done, 50 * sim::ms + hc.context_switch);
  EXPECT_EQ(t.cpu_used, 50 * sim::ms);
}

TEST(Cpu, TwoThreadsTimeShareFairly) {
  sim::Engine eng;
  HostConfig hc;
  Cpu cpu(eng, hc);
  ThreadCtx ta{"a", false, 0, 0}, tb{"b", false, 0, 0};
  sim::Time done_a = -1, done_b = -1;
  auto worker = [](sim::Engine& e, Cpu& c, ThreadCtx& t,
                   sim::Time& d) -> sim::Process {
    co_await c.run(t, 100 * sim::ms);
    d = e.now();
  };
  eng.spawn(worker(eng, cpu, ta, done_a));
  eng.spawn(worker(eng, cpu, tb, done_b));
  eng.run();
  // Both need ~200 ms of wall time; they interleave at quantum boundaries.
  EXPECT_GT(done_a, 190 * sim::ms);
  EXPECT_GT(done_b, 190 * sim::ms);
  EXPECT_EQ(ta.cpu_used, 100 * sim::ms);
  EXPECT_EQ(tb.cpu_used, 100 * sim::ms);
  EXPECT_GT(ta.dispatches, 5u);  // really interleaved, not run-to-completion
}

TEST(Cpu, KernelThreadJumpsTheQueue) {
  sim::Engine eng;
  HostConfig hc;
  Cpu cpu(eng, hc);
  ThreadCtx user1{"u1", false, 0, 0}, user2{"u2", false, 0, 0};
  ThreadCtx kern{"k", true, 0, 0};
  std::vector<char> order;
  auto worker = [](Cpu& c, ThreadCtx& t, std::vector<char>& ord,
                   char id) -> sim::Process {
    co_await c.run(t, 5 * sim::ms);
    ord.push_back(id);
  };
  eng.spawn(worker(cpu, user1, order, 'a'));
  eng.spawn(worker(cpu, user2, order, 'b'));
  eng.spawn(worker(cpu, kern, order, 'K'));
  eng.run();
  // The kernel thread was spawned last but finishes first: after user1's
  // first quantum expires, the kernel queue is always served ahead of
  // user2, so K completes its 5ms before either user thread.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 'K');
  EXPECT_EQ(order[1], 'a');
  EXPECT_EQ(order[2], 'b');
}

TEST(Cpu, QuantumOnlySlicesUnderContention) {
  sim::Engine eng;
  HostConfig hc;
  Cpu cpu(eng, hc);
  ThreadCtx t{"solo", false, 0, 0};
  eng.spawn([](Cpu& c, ThreadCtx& t) -> sim::Process {
    co_await c.run(t, 100 * sim::ms);
  }(cpu, t));
  eng.run();
  EXPECT_EQ(t.dispatches, 1u);  // no contention: no re-dispatching
}

// --------------------------------------------------------- SegmentDriver

class DriverTest : public ::testing::Test {
 public:
  void build(int frames = 8, HostConfig hc = {}) {
    fabric_ = myrinet::Fabric::crossbar(eng_, 2);
    lanai::NicConfig nc;
    nc.endpoint_frames = frames;
    for (int n = 0; n < 2; ++n) {
      hosts_.push_back(
          std::make_unique<Host>(eng_, *fabric_, n, hc, nc));
      hosts_.back()->start();
    }
  }

  /// Runs `body` as a host thread on node `n` and drives the sim to done.
  void on_host(int n, std::function<sim::Task<>(HostThread&)> body) {
    bool done = false;
    eng_.spawn([](Host& h, std::function<sim::Task<>(HostThread&)> body,
                  bool& done) -> sim::Process {
      HostThread t(h, "test");
      co_await body(t);
      done = true;
    }(*hosts_[n], std::move(body), done));
    eng_.run();
    ASSERT_TRUE(done);
  }

  /// Reads one driver counter for `node` from the engine's registry (the
  /// driver publishes under `host.<node>.driver.*`).
  std::uint64_t driver_counter(int node, const std::string& leaf) {
    return eng_.snapshot().counter("host." + std::to_string(node) +
                                   ".driver." + leaf);
  }

  sim::Engine eng_{3};
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

TEST_F(DriverTest, CreateStartsOnHostReadOnly) {
  build();
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    auto* ep = co_await t.host().driver().create_endpoint(t.ctx(), 0x1);
    EXPECT_EQ(t.host().driver().residency(ep), Residency::kOnHostRO);
    EXPECT_FALSE(ep->resident());
    EXPECT_TRUE(t.host().nic().directory_contains(ep->id));
  });
}

TEST_F(DriverTest, WriteFaultSchedulesAsyncRemap) {
  build();
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    auto* ep = co_await drv.create_endpoint(t.ctx(), 0x1);
    co_await drv.ensure_writable(t.ctx(), ep);
    // The faulting thread continues immediately in the on-host r/w state;
    // the background kernel thread does the binding.
    EXPECT_EQ(drv.residency(ep), Residency::kOnHostRW);
    EXPECT_EQ(driver_counter(0, "write_faults"), 1u);
    while (drv.residency(ep) != Residency::kOnNic) {
      co_await drv.residency_cv(ep).wait();
    }
    EXPECT_TRUE(ep->resident());
    EXPECT_EQ(driver_counter(0, "remaps"), 1u);
    // A second write is free: no new fault.
    co_await drv.ensure_writable(t.ctx(), ep);
    EXPECT_EQ(driver_counter(0, "write_faults"), 1u);
  });
}

TEST_F(DriverTest, SyncFaultModeBlocksUntilResident) {
  // Ablation A: no on-host r/w state.
  HostConfig hc;
  hc.async_write_faults = false;
  build(8, hc);
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    auto* ep = co_await drv.create_endpoint(t.ctx(), 0x1);
    co_await drv.ensure_writable(t.ctx(), ep);
    // Synchronous fault: by the time we return, the endpoint is resident.
    EXPECT_EQ(drv.residency(ep), Residency::kOnNic);
  });
}

TEST_F(DriverTest, EvictionOnFrameExhaustion) {
  build(/*frames=*/2);
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    std::vector<lanai::EndpointState*> eps;
    for (int i = 0; i < 4; ++i) {
      eps.push_back(co_await drv.create_endpoint(t.ctx(), i));
    }
    for (auto* ep : eps) {
      co_await drv.ensure_writable(t.ctx(), ep);
      while (drv.residency(ep) != Residency::kOnNic) {
        co_await drv.residency_cv(ep).wait();
      }
    }
    // Only 2 frames: later bindings must have evicted earlier ones.
    EXPECT_EQ(drv.resident_count(), 2);
    EXPECT_GE(driver_counter(0, "evictions"), 2u);
    // Evicted endpoints return to the on-host r/o state (Fig 2).
    int ro = 0;
    for (auto* ep : eps) {
      if (drv.residency(ep) == Residency::kOnHostRO) ++ro;
    }
    EXPECT_EQ(ro, 2);
  });
}

TEST_F(DriverTest, LruPolicyEvictsLeastRecentlyTouched) {
  build(/*frames=*/2);
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    drv.set_policy(SegmentDriver::Policy::kLru);
    auto* e1 = co_await drv.create_endpoint(t.ctx(), 1);
    auto* e2 = co_await drv.create_endpoint(t.ctx(), 2);
    auto* e3 = co_await drv.create_endpoint(t.ctx(), 3);
    for (auto* ep : {e1, e2}) {
      co_await drv.ensure_writable(t.ctx(), ep);
      while (drv.residency(ep) != Residency::kOnNic) {
        co_await drv.residency_cv(ep).wait();
      }
    }
    co_await t.sleep(1 * sim::ms);
    drv.touch(e1);  // e2 becomes the least recently used
    co_await drv.ensure_writable(t.ctx(), e3);
    while (drv.residency(e3) != Residency::kOnNic) {
      co_await drv.residency_cv(e3).wait();
    }
    EXPECT_EQ(drv.residency(e1), Residency::kOnNic);
    EXPECT_EQ(drv.residency(e2), Residency::kOnHostRO);
  });
}

TEST_F(DriverTest, FifoPolicyEvictsOldestLoad) {
  build(/*frames=*/2);
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    drv.set_policy(SegmentDriver::Policy::kFifo);
    auto* e1 = co_await drv.create_endpoint(t.ctx(), 1);
    auto* e2 = co_await drv.create_endpoint(t.ctx(), 2);
    auto* e3 = co_await drv.create_endpoint(t.ctx(), 3);
    for (auto* ep : {e1, e2, e3}) {
      co_await drv.ensure_writable(t.ctx(), ep);
      while (drv.residency(ep) != Residency::kOnNic) {
        co_await drv.residency_cv(ep).wait();
      }
    }
    // e1 was loaded first, so it went first.
    EXPECT_EQ(drv.residency(e1), Residency::kOnHostRO);
    EXPECT_EQ(drv.residency(e2), Residency::kOnNic);
    EXPECT_EQ(drv.residency(e3), Residency::kOnNic);
  });
}

TEST_F(DriverTest, PageoutAndDiskFault) {
  build();
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    auto* ep = co_await drv.create_endpoint(t.ctx(), 1);
    drv.page_out(ep);
    EXPECT_EQ(drv.residency(ep), Residency::kOnDisk);
    EXPECT_EQ(driver_counter(0, "pageouts"), 1u);
    const sim::Time t0 = t.engine().now();
    co_await drv.ensure_writable(t.ctx(), ep);
    // The major fault costs at least the disk latency.
    EXPECT_GE(t.engine().now() - t0, t.host().config().disk_fault_latency);
    EXPECT_EQ(driver_counter(0, "disk_faults"), 1u);
    EXPECT_EQ(drv.residency(ep), Residency::kOnHostRW);
  });
}

TEST_F(DriverTest, PageoutRefusesResidentEndpoints) {
  build();
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    auto* ep = co_await drv.create_endpoint(t.ctx(), 1);
    co_await drv.ensure_writable(t.ctx(), ep);
    while (drv.residency(ep) != Residency::kOnNic) {
      co_await drv.residency_cv(ep).wait();
    }
    drv.page_out(ep);  // must be a no-op
    EXPECT_EQ(drv.residency(ep), Residency::kOnNic);
    EXPECT_EQ(driver_counter(0, "pageouts"), 0u);
  });
}

TEST_F(DriverTest, DestroySynchronizesWithNic) {
  build();
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    SegmentDriver& drv = t.host().driver();
    auto* ep = co_await drv.create_endpoint(t.ctx(), 1);
    const lanai::EpId id = ep->id;
    co_await drv.destroy_endpoint(t.ctx(), ep);
    EXPECT_FALSE(t.host().nic().directory_contains(id));
    EXPECT_EQ(driver_counter(0, "endpoints_destroyed"), 1u);
  });
}

TEST_F(DriverTest, ArrivalActivatesNonResidentEndpoint) {
  build();
  // Endpoint on host 1, never written locally; host 0 sends to it. The
  // message arrival must drive the proxy-fault -> load path (§4.2).
  lanai::EndpointState* dst = nullptr;
  on_host(1, [&](HostThread& t) -> sim::Task<> {
    dst = co_await t.host().driver().create_endpoint(t.ctx(), 0x7);
  });
  ASSERT_NE(dst, nullptr);
  on_host(0, [&](HostThread& t) -> sim::Task<> {
    auto* src = co_await t.host().driver().create_endpoint(t.ctx(), 0x1);
    src->translations[0] = lanai::Translation{true, 1, dst->id, 0x7};
    lanai::SendDescriptor d;
    d.dest_index = 0;
    d.body.handler = 1;
    d.msg_id = src->alloc_msg_id();
    co_await t.host().driver().ensure_writable(t.ctx(), src);
    src->send_queue.push_back(std::move(d));
    t.host().nic().doorbell(*src);
    co_return;
  });
  eng_.run();
  EXPECT_EQ(dst->msgs_delivered, 1u);
  EXPECT_TRUE(dst->resident());
  EXPECT_GE(driver_counter(1, "proxy_faults"), 1u);
}

}  // namespace
}  // namespace vnet::host
