// Chaos campaign tests: the scenario matrix (every standard scenario across
// a seed sweep must uphold the end-to-end delivery invariants), plus focused
// regressions for NIC reboot under in-flight bulk transfers and for
// bounded-retransmission unbinding / return-to-sender past the unreachable
// timeout.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chaos/fault_plan.hpp"
#include "chaos/scenario.hpp"

namespace vnet::chaos {
namespace {

void expect_invariants(const ScenarioResult& res) {
  for (const std::string& v : res.violations) {
    ADD_FAILURE() << res.name << " seed " << res.seed << ": " << v;
  }
  EXPECT_EQ(res.counts.duplicate_deliveries, 0u)
      << "exactly-once violated in " << res.name << " seed " << res.seed;
  EXPECT_EQ(res.counts.unresolved, 0u)
      << "silently lost messages in " << res.name << " seed " << res.seed;
  EXPECT_EQ(res.counts.orphan_events, 0u);
  EXPECT_GT(res.counts.injected, 0u) << "scenario sent no traffic";
  EXPECT_GT(res.replies_received, 0u) << "no request ever completed";
}

// ------------------------------------------------------------ the matrix

using MatrixParam = std::tuple<std::string, std::uint64_t>;

class ChaosMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ChaosMatrix, InvariantsHoldUnderFaults) {
  const auto& [name, seed] = GetParam();
  const ScenarioResult res = run_scenario(standard_scenario(name, seed));
  expect_invariants(res);

  // Per-scenario teeth: the faults must actually have bitten, otherwise a
  // regression that stops injecting them would pass vacuously.
  if (name == "link_flap") {
    EXPECT_GT(res.dropped_down, 0u) << "flap never dropped a packet";
    EXPECT_GT(res.retransmissions, 0u);
  } else if (name == "burst_loss") {
    EXPECT_GT(res.dropped_fault, 0u) << "burst model never dropped";
    EXPECT_GT(res.retransmissions, 0u);
  } else if (name == "nic_reboot") {
    EXPECT_GT(res.retransmissions, 0u)
        << "reboot lost no in-flight traffic";
  } else if (name == "host_failover") {
    EXPECT_GT(res.returns_seen, 0u) << "nothing was returned to sender";
    EXPECT_GT(res.reissued, 0u) << "client never failed over";
    EXPECT_EQ(res.unfinished, 0u)
        << "failover to the healthy replica did not complete";
  } else if (name == "trunk_flap") {
    EXPECT_GT(res.dropped_down, 0u) << "trunk fault never dropped a packet";
    EXPECT_GT(res.channel_unbinds, 0u)
        << "no channel ever unbound off the dead route";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ChaosMatrix,
    ::testing::Combine(::testing::Values("link_flap", "burst_loss",
                                         "nic_reboot", "host_failover",
                                         "trunk_flap", "chaos"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------- determinism

TEST(ChaosDeterminism, SameSeedSameResult) {
  const ScenarioResult a = run_scenario(standard_scenario("chaos", 7));
  const ScenarioResult b = run_scenario(standard_scenario("chaos", 7));
  EXPECT_EQ(a.counts.injected, b.counts.injected);
  EXPECT_EQ(a.counts.delivered, b.counts.delivered);
  EXPECT_EQ(a.counts.returned, b.counts.returned);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped_down + a.dropped_fault,
            b.dropped_down + b.dropped_fault);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.campaign_log, b.campaign_log);
}

TEST(ChaosDeterminism, DifferentSeedsDifferentTimelines) {
  const ScenarioResult a = run_scenario(standard_scenario("chaos", 11));
  const ScenarioResult b = run_scenario(standard_scenario("chaos", 12));
  EXPECT_NE(a.campaign_log, b.campaign_log);
}

// --------------------------------------------------- verdict round-trip

// The machine-readable verdict (fork-server pipe format, CI artifact) must
// carry the full scenario result: serialize a real run, parse the bytes
// back, and compare every field the matrix and the digest checks consume.
TEST(ChaosVerdict, JsonRoundTripPreservesResult) {
  const ScenarioResult res = run_scenario(standard_scenario("link_flap", 1));
  const std::string bytes = verdict_json(res).dump();

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::parse(bytes, &parsed, &error)) << error;
  const ScenarioResult back = verdict_from_json(parsed);

  EXPECT_EQ(back.name, res.name);
  EXPECT_EQ(back.seed, res.seed);
  EXPECT_EQ(back.counts.injected, res.counts.injected);
  EXPECT_EQ(back.counts.delivered, res.counts.delivered);
  EXPECT_EQ(back.counts.returned, res.counts.returned);
  EXPECT_EQ(back.counts.duplicate_deliveries,
            res.counts.duplicate_deliveries);
  EXPECT_EQ(back.counts.unresolved, res.counts.unresolved);
  EXPECT_EQ(back.counts.orphan_events, res.counts.orphan_events);
  EXPECT_EQ(back.violations, res.violations);
  EXPECT_EQ(back.requests_issued, res.requests_issued);
  EXPECT_EQ(back.replies_received, res.replies_received);
  EXPECT_EQ(back.retransmissions, res.retransmissions);
  EXPECT_EQ(back.channel_unbinds, res.channel_unbinds);
  EXPECT_EQ(back.dropped_down, res.dropped_down);
  EXPECT_EQ(back.dropped_fault, res.dropped_fault);
  EXPECT_EQ(back.recovery_time, res.recovery_time);
  EXPECT_EQ(back.total_time, res.total_time);
  EXPECT_EQ(back.campaign_log, res.campaign_log);
  EXPECT_EQ(back.link_stats, res.link_stats);
  ASSERT_EQ(back.watchdog_events.size(), res.watchdog_events.size());
  for (std::size_t i = 0; i < back.watchdog_events.size(); ++i) {
    EXPECT_EQ(back.watchdog_events[i].at_ns, res.watchdog_events[i].at_ns);
    EXPECT_EQ(back.watchdog_events[i].rule, res.watchdog_events[i].rule);
    EXPECT_EQ(back.watchdog_events[i].subject,
              res.watchdog_events[i].subject);
  }
  EXPECT_EQ(back.replay_digest, res.replay_digest);
  EXPECT_EQ(back.events_processed, res.events_processed);
  EXPECT_EQ(verdict_ok(back), verdict_ok(res));

  // Canonical serialization: re-dumping the parsed document reproduces the
  // same bytes (sorted keys, stable number formatting).
  EXPECT_EQ(verdict_json(back).dump(), bytes);
}

// -------------------------------------- NIC reboot under in-flight bulk

// SRAM channel state, epochs, and the in-flight fragment bindings die with
// the NIC; the reassembly and dedup windows (host memory) must not. Both
// the receiving and a sending NIC reboot mid-bulk-transfer; every transfer
// must still complete exactly once.
TEST(NicRebootChaos, BulkTransfersSurviveReceiverAndSenderReboots) {
  ScenarioSpec spec;
  spec.name = "reboot_bulk";
  spec.seed = 3;
  spec.clients = 1;
  spec.requests_per_client = 6;
  spec.bulk_bytes = 32768;  // 8 fragments per request at the 4 KB MTU
  spec.send_spacing = 400 * sim::us;  // keep transfers in flight past 3 ms
  spec.plan = [](cluster::Cluster&, sim::Rng&) {
    return FaultPlan{}
        .nic_reboot(1 * sim::ms, 1)       // receiver, mid-reassembly
        .nic_reboot(2200 * sim::us, 1)    // receiver again (stale epochs)
        .nic_reboot(3 * sim::ms, 3);      // sender, with frags in flight
  };
  const ScenarioResult res = run_scenario(spec);
  expect_invariants(res);
  EXPECT_EQ(res.unfinished, 0u)
      << "a bulk transfer never completed after the reboots";
  EXPECT_EQ(res.returns_seen, 0u)
      << "a momentary reboot must not escalate to return-to-sender";
}

// ------------------- bounded retransmission: unbind, then return-to-sender

// With the peer gone for good, retransmission must not loop forever on one
// channel: after retransmit_unbind_limit consecutive losses the message is
// unbound (freeing the channel), and past unreachable_timeout it comes back
// through the undeliverable path. The send queue must be fully swept.
TEST(UnreachableChaos, UnbindsThenReturnsWhenPeerStaysDown) {
  ScenarioSpec spec;
  spec.name = "peer_down";
  spec.seed = 2;
  spec.clients = 2;
  spec.requests_per_client = 20;
  spec.failover = false;
  spec.tweak = [](cluster::ClusterConfig& cfg) {
    cfg.nic.retransmit_unbind_limit = 3;
    cfg.nic.max_backoff_exponent = 2;
  };
  spec.plan = [](cluster::Cluster&, sim::Rng&) {
    return FaultPlan{}.host_link(1 * sim::ms, 1, false);  // permanent
  };
  const ScenarioResult res = run_scenario(spec);
  for (const std::string& v : res.violations) {
    ADD_FAILURE() << res.name << ": " << v;
  }
  EXPECT_EQ(res.counts.duplicate_deliveries, 0u);
  EXPECT_EQ(res.counts.unresolved, 0u)
      << "messages to a dead peer must be returned, not lost";
  EXPECT_GT(res.channel_unbinds, 0u)
      << "bounded retransmission never unbound a channel";
  EXPECT_GT(res.returned_to_sender, 0u);
  EXPECT_GT(res.returns_seen, 0u)
      << "returns never reached the application handler";
}

}  // namespace
}  // namespace vnet::chaos
