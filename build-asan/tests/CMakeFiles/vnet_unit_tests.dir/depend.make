# Empty dependencies file for vnet_unit_tests.
# This may be replaced when dependencies are built.
