file(REMOVE_RECURSE
  "CMakeFiles/vnet_unit_tests.dir/am_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/am_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/apps_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/apps_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/bundle_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/bundle_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/chaos_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/chaos_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/host_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/host_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/lanai_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/lanai_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/myrinet_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/myrinet_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/property_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/repro_lost_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/repro_lost_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/sim_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/sock_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/sock_test.cpp.o.d"
  "CMakeFiles/vnet_unit_tests.dir/via_test.cpp.o"
  "CMakeFiles/vnet_unit_tests.dir/via_test.cpp.o.d"
  "vnet_unit_tests"
  "vnet_unit_tests.pdb"
  "vnet_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
