file(REMOVE_RECURSE
  "CMakeFiles/parallel_program.dir/parallel_program.cpp.o"
  "CMakeFiles/parallel_program.dir/parallel_program.cpp.o.d"
  "parallel_program"
  "parallel_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
