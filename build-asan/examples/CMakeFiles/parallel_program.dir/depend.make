# Empty dependencies file for parallel_program.
# This may be replaced when dependencies are built.
