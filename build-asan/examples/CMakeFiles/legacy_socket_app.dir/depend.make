# Empty dependencies file for legacy_socket_app.
# This may be replaced when dependencies are built.
