file(REMOVE_RECURSE
  "CMakeFiles/legacy_socket_app.dir/legacy_socket_app.cpp.o"
  "CMakeFiles/legacy_socket_app.dir/legacy_socket_app.cpp.o.d"
  "legacy_socket_app"
  "legacy_socket_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_socket_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
