# Empty dependencies file for multi_service_node.
# This may be replaced when dependencies are built.
