
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_service_node.cpp" "examples/CMakeFiles/multi_service_node.dir/multi_service_node.cpp.o" "gcc" "examples/CMakeFiles/multi_service_node.dir/multi_service_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/apps/CMakeFiles/vnet_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/vnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/am/CMakeFiles/vnet_am.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sock/CMakeFiles/vnet_sock.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/host/CMakeFiles/vnet_host.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
