file(REMOVE_RECURSE
  "CMakeFiles/multi_service_node.dir/multi_service_node.cpp.o"
  "CMakeFiles/multi_service_node.dir/multi_service_node.cpp.o.d"
  "multi_service_node"
  "multi_service_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_service_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
