# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-asan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fault_tolerance_example "/root/repo/build-asan/examples/fault_tolerance")
set_tests_properties(fault_tolerance_example PROPERTIES  PASS_REGULAR_EXPRESSION "all 40 requests completed \\([1-9][0-9]* via replica\\); returned=[1-9]" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
