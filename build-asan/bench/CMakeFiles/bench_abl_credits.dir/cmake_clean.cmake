file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_credits.dir/bench_abl_credits.cpp.o"
  "CMakeFiles/bench_abl_credits.dir/bench_abl_credits.cpp.o.d"
  "bench_abl_credits"
  "bench_abl_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
