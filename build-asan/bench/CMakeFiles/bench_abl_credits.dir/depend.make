# Empty dependencies file for bench_abl_credits.
# This may be replaced when dependencies are built.
