# Empty dependencies file for smoke_contention.
# This may be replaced when dependencies are built.
