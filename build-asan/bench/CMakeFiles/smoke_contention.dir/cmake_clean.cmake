file(REMOVE_RECURSE
  "CMakeFiles/smoke_contention.dir/smoke_contention.cpp.o"
  "CMakeFiles/smoke_contention.dir/smoke_contention.cpp.o.d"
  "smoke_contention"
  "smoke_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
