file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_logp.dir/bench_fig3_logp.cpp.o"
  "CMakeFiles/bench_fig3_logp.dir/bench_fig3_logp.cpp.o.d"
  "bench_fig3_logp"
  "bench_fig3_logp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
