# Empty dependencies file for bench_fig3_logp.
# This may be replaced when dependencies are built.
