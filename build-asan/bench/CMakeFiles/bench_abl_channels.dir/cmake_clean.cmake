file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_channels.dir/bench_abl_channels.cpp.o"
  "CMakeFiles/bench_abl_channels.dir/bench_abl_channels.cpp.o.d"
  "bench_abl_channels"
  "bench_abl_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
