# Empty dependencies file for bench_abl_channels.
# This may be replaced when dependencies are built.
