file(REMOVE_RECURSE
  "CMakeFiles/bench_t62_linpack.dir/bench_t62_linpack.cpp.o"
  "CMakeFiles/bench_t62_linpack.dir/bench_t62_linpack.cpp.o.d"
  "bench_t62_linpack"
  "bench_t62_linpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t62_linpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
