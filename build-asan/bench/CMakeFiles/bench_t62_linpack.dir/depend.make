# Empty dependencies file for bench_t62_linpack.
# This may be replaced when dependencies are built.
