# Empty dependencies file for bench_fig6_small.
# This may be replaced when dependencies are built.
