# Empty dependencies file for bench_chaos_matrix.
# This may be replaced when dependencies are built.
