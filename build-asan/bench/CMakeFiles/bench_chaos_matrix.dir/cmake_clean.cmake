file(REMOVE_RECURSE
  "CMakeFiles/bench_chaos_matrix.dir/bench_chaos_matrix.cpp.o"
  "CMakeFiles/bench_chaos_matrix.dir/bench_chaos_matrix.cpp.o.d"
  "bench_chaos_matrix"
  "bench_chaos_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
