file(REMOVE_RECURSE
  "CMakeFiles/lp_probe.dir/lp_probe.cpp.o"
  "CMakeFiles/lp_probe.dir/lp_probe.cpp.o.d"
  "lp_probe"
  "lp_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
