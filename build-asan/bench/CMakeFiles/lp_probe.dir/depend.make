# Empty dependencies file for lp_probe.
# This may be replaced when dependencies are built.
