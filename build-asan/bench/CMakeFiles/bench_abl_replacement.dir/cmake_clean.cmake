file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_replacement.dir/bench_abl_replacement.cpp.o"
  "CMakeFiles/bench_abl_replacement.dir/bench_abl_replacement.cpp.o.d"
  "bench_abl_replacement"
  "bench_abl_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
