# Empty dependencies file for bench_abl_replacement.
# This may be replaced when dependencies are built.
