# Empty dependencies file for repro_lost.
# This may be replaced when dependencies are built.
