file(REMOVE_RECURSE
  "CMakeFiles/repro_lost.dir/repro_lost.cpp.o"
  "CMakeFiles/repro_lost.dir/repro_lost.cpp.o.d"
  "repro_lost"
  "repro_lost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_lost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
