file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_extensions.dir/bench_abl_extensions.cpp.o"
  "CMakeFiles/bench_abl_extensions.dir/bench_abl_extensions.cpp.o.d"
  "bench_abl_extensions"
  "bench_abl_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
