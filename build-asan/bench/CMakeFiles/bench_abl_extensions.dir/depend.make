# Empty dependencies file for bench_abl_extensions.
# This may be replaced when dependencies are built.
