# Empty dependencies file for bench_fig7_bulk.
# This may be replaced when dependencies are built.
