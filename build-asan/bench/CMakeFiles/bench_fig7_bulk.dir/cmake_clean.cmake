file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_bulk.dir/bench_fig7_bulk.cpp.o"
  "CMakeFiles/bench_fig7_bulk.dir/bench_fig7_bulk.cpp.o.d"
  "bench_fig7_bulk"
  "bench_fig7_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
