# Empty dependencies file for bench_abl_hostrw.
# This may be replaced when dependencies are built.
