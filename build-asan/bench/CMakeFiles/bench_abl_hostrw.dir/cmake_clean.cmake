file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hostrw.dir/bench_abl_hostrw.cpp.o"
  "CMakeFiles/bench_abl_hostrw.dir/bench_abl_hostrw.cpp.o.d"
  "bench_abl_hostrw"
  "bench_abl_hostrw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hostrw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
