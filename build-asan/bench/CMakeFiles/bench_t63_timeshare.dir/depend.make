# Empty dependencies file for bench_t63_timeshare.
# This may be replaced when dependencies are built.
