file(REMOVE_RECURSE
  "CMakeFiles/bench_t63_timeshare.dir/bench_t63_timeshare.cpp.o"
  "CMakeFiles/bench_t63_timeshare.dir/bench_t63_timeshare.cpp.o.d"
  "bench_t63_timeshare"
  "bench_t63_timeshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t63_timeshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
