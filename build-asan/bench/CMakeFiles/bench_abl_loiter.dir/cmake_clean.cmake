file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_loiter.dir/bench_abl_loiter.cpp.o"
  "CMakeFiles/bench_abl_loiter.dir/bench_abl_loiter.cpp.o.d"
  "bench_abl_loiter"
  "bench_abl_loiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_loiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
