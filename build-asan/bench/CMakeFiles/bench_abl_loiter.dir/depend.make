# Empty dependencies file for bench_abl_loiter.
# This may be replaced when dependencies are built.
