# Empty dependencies file for bench_abl_via.
# This may be replaced when dependencies are built.
