file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_via.dir/bench_abl_via.cpp.o"
  "CMakeFiles/bench_abl_via.dir/bench_abl_via.cpp.o.d"
  "bench_abl_via"
  "bench_abl_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
