# Empty dependencies file for bench_fig5_npb.
# This may be replaced when dependencies are built.
