file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_npb.dir/bench_fig5_npb.cpp.o"
  "CMakeFiles/bench_fig5_npb.dir/bench_fig5_npb.cpp.o.d"
  "bench_fig5_npb"
  "bench_fig5_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
