# Empty dependencies file for bench_fig4_bandwidth.
# This may be replaced when dependencies are built.
