
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_bandwidth.cpp" "bench/CMakeFiles/bench_fig4_bandwidth.dir/bench_fig4_bandwidth.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_bandwidth.dir/bench_fig4_bandwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/apps/CMakeFiles/vnet_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/vnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/am/CMakeFiles/vnet_am.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/via/CMakeFiles/vnet_via.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/host/CMakeFiles/vnet_host.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
