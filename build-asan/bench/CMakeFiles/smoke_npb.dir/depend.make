# Empty dependencies file for smoke_npb.
# This may be replaced when dependencies are built.
