file(REMOVE_RECURSE
  "CMakeFiles/smoke_npb.dir/smoke_npb.cpp.o"
  "CMakeFiles/smoke_npb.dir/smoke_npb.cpp.o.d"
  "smoke_npb"
  "smoke_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
