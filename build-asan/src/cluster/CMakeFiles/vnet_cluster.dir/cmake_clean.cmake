file(REMOVE_RECURSE
  "CMakeFiles/vnet_cluster.dir/cluster.cpp.o"
  "CMakeFiles/vnet_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/vnet_cluster.dir/config.cpp.o"
  "CMakeFiles/vnet_cluster.dir/config.cpp.o.d"
  "libvnet_cluster.a"
  "libvnet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
