# Empty dependencies file for vnet_cluster.
# This may be replaced when dependencies are built.
