file(REMOVE_RECURSE
  "libvnet_cluster.a"
)
