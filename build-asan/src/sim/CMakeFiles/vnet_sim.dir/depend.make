# Empty dependencies file for vnet_sim.
# This may be replaced when dependencies are built.
