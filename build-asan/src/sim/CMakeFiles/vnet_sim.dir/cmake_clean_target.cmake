file(REMOVE_RECURSE
  "libvnet_sim.a"
)
