file(REMOVE_RECURSE
  "CMakeFiles/vnet_sim.dir/time.cpp.o"
  "CMakeFiles/vnet_sim.dir/time.cpp.o.d"
  "libvnet_sim.a"
  "libvnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
