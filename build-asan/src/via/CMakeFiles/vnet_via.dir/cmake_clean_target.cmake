file(REMOVE_RECURSE
  "libvnet_via.a"
)
