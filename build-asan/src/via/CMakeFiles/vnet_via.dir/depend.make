# Empty dependencies file for vnet_via.
# This may be replaced when dependencies are built.
