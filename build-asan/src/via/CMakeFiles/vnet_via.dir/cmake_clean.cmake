file(REMOVE_RECURSE
  "CMakeFiles/vnet_via.dir/via.cpp.o"
  "CMakeFiles/vnet_via.dir/via.cpp.o.d"
  "libvnet_via.a"
  "libvnet_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
