file(REMOVE_RECURSE
  "libvnet_am.a"
)
