# Empty dependencies file for vnet_am.
# This may be replaced when dependencies are built.
