file(REMOVE_RECURSE
  "CMakeFiles/vnet_am.dir/endpoint.cpp.o"
  "CMakeFiles/vnet_am.dir/endpoint.cpp.o.d"
  "libvnet_am.a"
  "libvnet_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
