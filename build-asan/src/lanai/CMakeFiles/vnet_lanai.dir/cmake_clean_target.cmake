file(REMOVE_RECURSE
  "libvnet_lanai.a"
)
