file(REMOVE_RECURSE
  "CMakeFiles/vnet_lanai.dir/nic.cpp.o"
  "CMakeFiles/vnet_lanai.dir/nic.cpp.o.d"
  "libvnet_lanai.a"
  "libvnet_lanai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_lanai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
