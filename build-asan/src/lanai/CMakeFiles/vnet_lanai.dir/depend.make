# Empty dependencies file for vnet_lanai.
# This may be replaced when dependencies are built.
