# CMake generated Testfile for 
# Source directory: /root/repo/src/lanai
# Build directory: /root/repo/build-asan/src/lanai
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
