file(REMOVE_RECURSE
  "CMakeFiles/vnet_apps.dir/bandwidth.cpp.o"
  "CMakeFiles/vnet_apps.dir/bandwidth.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/linpack.cpp.o"
  "CMakeFiles/vnet_apps.dir/linpack.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/logp.cpp.o"
  "CMakeFiles/vnet_apps.dir/logp.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/npb.cpp.o"
  "CMakeFiles/vnet_apps.dir/npb.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/parallel.cpp.o"
  "CMakeFiles/vnet_apps.dir/parallel.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/timeshare.cpp.o"
  "CMakeFiles/vnet_apps.dir/timeshare.cpp.o.d"
  "CMakeFiles/vnet_apps.dir/workloads.cpp.o"
  "CMakeFiles/vnet_apps.dir/workloads.cpp.o.d"
  "libvnet_apps.a"
  "libvnet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
