
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bandwidth.cpp" "src/apps/CMakeFiles/vnet_apps.dir/bandwidth.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/bandwidth.cpp.o.d"
  "/root/repo/src/apps/linpack.cpp" "src/apps/CMakeFiles/vnet_apps.dir/linpack.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/linpack.cpp.o.d"
  "/root/repo/src/apps/logp.cpp" "src/apps/CMakeFiles/vnet_apps.dir/logp.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/logp.cpp.o.d"
  "/root/repo/src/apps/npb.cpp" "src/apps/CMakeFiles/vnet_apps.dir/npb.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/npb.cpp.o.d"
  "/root/repo/src/apps/parallel.cpp" "src/apps/CMakeFiles/vnet_apps.dir/parallel.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/parallel.cpp.o.d"
  "/root/repo/src/apps/timeshare.cpp" "src/apps/CMakeFiles/vnet_apps.dir/timeshare.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/timeshare.cpp.o.d"
  "/root/repo/src/apps/workloads.cpp" "src/apps/CMakeFiles/vnet_apps.dir/workloads.cpp.o" "gcc" "src/apps/CMakeFiles/vnet_apps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/cluster/CMakeFiles/vnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/am/CMakeFiles/vnet_am.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/host/CMakeFiles/vnet_host.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
