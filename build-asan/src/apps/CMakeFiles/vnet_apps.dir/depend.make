# Empty dependencies file for vnet_apps.
# This may be replaced when dependencies are built.
