file(REMOVE_RECURSE
  "libvnet_apps.a"
)
