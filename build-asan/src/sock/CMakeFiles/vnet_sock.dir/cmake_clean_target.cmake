file(REMOVE_RECURSE
  "libvnet_sock.a"
)
