# Empty dependencies file for vnet_sock.
# This may be replaced when dependencies are built.
