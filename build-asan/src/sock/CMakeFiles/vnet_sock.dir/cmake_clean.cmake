file(REMOVE_RECURSE
  "CMakeFiles/vnet_sock.dir/socket.cpp.o"
  "CMakeFiles/vnet_sock.dir/socket.cpp.o.d"
  "libvnet_sock.a"
  "libvnet_sock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_sock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
