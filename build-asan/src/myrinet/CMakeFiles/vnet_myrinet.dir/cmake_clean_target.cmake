file(REMOVE_RECURSE
  "libvnet_myrinet.a"
)
