# Empty dependencies file for vnet_myrinet.
# This may be replaced when dependencies are built.
