file(REMOVE_RECURSE
  "CMakeFiles/vnet_myrinet.dir/fabric.cpp.o"
  "CMakeFiles/vnet_myrinet.dir/fabric.cpp.o.d"
  "libvnet_myrinet.a"
  "libvnet_myrinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
