
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaos/campaign.cpp" "src/chaos/CMakeFiles/vnet_chaos.dir/campaign.cpp.o" "gcc" "src/chaos/CMakeFiles/vnet_chaos.dir/campaign.cpp.o.d"
  "/root/repo/src/chaos/fault_plan.cpp" "src/chaos/CMakeFiles/vnet_chaos.dir/fault_plan.cpp.o" "gcc" "src/chaos/CMakeFiles/vnet_chaos.dir/fault_plan.cpp.o.d"
  "/root/repo/src/chaos/ledger.cpp" "src/chaos/CMakeFiles/vnet_chaos.dir/ledger.cpp.o" "gcc" "src/chaos/CMakeFiles/vnet_chaos.dir/ledger.cpp.o.d"
  "/root/repo/src/chaos/scenario.cpp" "src/chaos/CMakeFiles/vnet_chaos.dir/scenario.cpp.o" "gcc" "src/chaos/CMakeFiles/vnet_chaos.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/cluster/CMakeFiles/vnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/am/CMakeFiles/vnet_am.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/host/CMakeFiles/vnet_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
