file(REMOVE_RECURSE
  "libvnet_chaos.a"
)
