# Empty dependencies file for vnet_chaos.
# This may be replaced when dependencies are built.
