file(REMOVE_RECURSE
  "CMakeFiles/vnet_chaos.dir/campaign.cpp.o"
  "CMakeFiles/vnet_chaos.dir/campaign.cpp.o.d"
  "CMakeFiles/vnet_chaos.dir/fault_plan.cpp.o"
  "CMakeFiles/vnet_chaos.dir/fault_plan.cpp.o.d"
  "CMakeFiles/vnet_chaos.dir/ledger.cpp.o"
  "CMakeFiles/vnet_chaos.dir/ledger.cpp.o.d"
  "CMakeFiles/vnet_chaos.dir/scenario.cpp.o"
  "CMakeFiles/vnet_chaos.dir/scenario.cpp.o.d"
  "libvnet_chaos.a"
  "libvnet_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
