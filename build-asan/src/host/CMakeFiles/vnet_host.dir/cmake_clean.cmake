file(REMOVE_RECURSE
  "CMakeFiles/vnet_host.dir/segment_driver.cpp.o"
  "CMakeFiles/vnet_host.dir/segment_driver.cpp.o.d"
  "libvnet_host.a"
  "libvnet_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnet_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
