# Empty dependencies file for vnet_host.
# This may be replaced when dependencies are built.
