file(REMOVE_RECURSE
  "libvnet_host.a"
)
