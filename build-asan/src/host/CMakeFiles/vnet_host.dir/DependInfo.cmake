
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/segment_driver.cpp" "src/host/CMakeFiles/vnet_host.dir/segment_driver.cpp.o" "gcc" "src/host/CMakeFiles/vnet_host.dir/segment_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
