
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/am_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/am_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/am_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/bundle_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/bundle_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/bundle_test.cpp.o.d"
  "/root/repo/tests/chaos_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/chaos_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/host_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/host_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/host_test.cpp.o.d"
  "/root/repo/tests/lanai_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/lanai_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/lanai_test.cpp.o.d"
  "/root/repo/tests/myrinet_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/myrinet_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/myrinet_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/repro_lost_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/repro_lost_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/repro_lost_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/sock_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/sock_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/sock_test.cpp.o.d"
  "/root/repo/tests/via_test.cpp" "tests/CMakeFiles/vnet_unit_tests.dir/via_test.cpp.o" "gcc" "tests/CMakeFiles/vnet_unit_tests.dir/via_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/vnet_myrinet.dir/DependInfo.cmake"
  "/root/repo/build/src/lanai/CMakeFiles/vnet_lanai.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/vnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/vnet_am.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vnet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/chaos/CMakeFiles/vnet_chaos.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vnet_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/vnet_via.dir/DependInfo.cmake"
  "/root/repo/build/src/sock/CMakeFiles/vnet_sock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
