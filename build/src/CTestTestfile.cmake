# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("myrinet")
subdirs("lanai")
subdirs("host")
subdirs("am")
subdirs("via")
subdirs("sock")
subdirs("cluster")
subdirs("chaos")
subdirs("apps")
