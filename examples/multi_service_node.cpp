// A general-purpose node (the paper's §1 motivation): several independent
// services share one NIC with only 8 endpoint frames — a parallel program
// rank, an NFS-like file service, and a performance monitor — while
// clients on other nodes use them all concurrently. The segment driver
// multiplexes the frames on demand; nothing needs to be prearranged.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "obs/metrics.hpp"

using namespace vnet;

namespace {

struct Services {
  am::Name compute, files, monitor;
  bool up() const {
    return compute.valid() && files.valid() && monitor.valid();
  }
  bool stop = false;
};

sim::Task<> service(host::HostThread& t, Services& sv, am::Name* slot,
                    std::uint64_t tag, const char* name,
                    std::uint64_t* served) {
  auto ep = co_await am::Endpoint::create(t, tag);
  ep->set_handler(1, [served, name](am::Endpoint&, const am::Message& m) {
    ++*served;
    m.reply(2, {m.arg(0) + 1});
    (void)name;
  });
  *slot = ep->name();
  while (!sv.stop) {
    if (co_await ep->wait_events_for(t, am::kEventReceive, 2 * sim::ms)) {
      while (co_await ep->poll(t, 16) > 0) {
      }
    }
  }
  co_await ep->destroy(t);
}

sim::Task<> client(host::HostThread& t, Services& sv, const am::Name* target,
                   int requests, const char* label) {
  auto ep = co_await am::Endpoint::create(t, 0x9999);
  std::uint64_t replies = 0;
  ep->set_handler(2,
                  [&replies](am::Endpoint&, const am::Message&) { ++replies; });
  while (!sv.up()) co_await t.sleep(20 * sim::us);
  ep->map(0, *target);
  const sim::Time t0 = t.engine().now();
  for (int i = 0; i < requests; ++i) {
    co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
  }
  sim::Time last_report = 0;
  while (replies < static_cast<std::uint64_t>(requests)) {
    co_await ep->poll(t, 16);
    if (std::getenv("VNET_TRACE") != nullptr &&
        t.engine().now() - last_report > 50 * sim::ms) {
      last_report = t.engine().now();
      std::printf("  [%s] draining: replies=%llu credits=%d returned=%llu\n",
                  label, (unsigned long long)replies, ep->credits_in_use(),
                  (unsigned long long)t.engine().snapshot().counter(
                      "host." + std::to_string(ep->name().node) + ".ep." +
                      std::to_string(ep->name().ep) + ".returns_handled"));
    }
  }
  std::printf("  [%s] %d requests served in %s\n", label, requests,
              sim::format_time(t.engine().now() - t0).c_str());
  co_await ep->destroy(t);
}

}  // namespace

int main() {
  std::setbuf(stdout, nullptr);  // progress lines appear immediately
  auto cfg = cluster::NowConfig(4);
  std::printf("multi-service node: 3 services + local rank share %d endpoint "
              "frames on node 0\n",
              cfg.nic.endpoint_frames);
  cluster::Cluster cl(cfg);
  Services sv;
  std::uint64_t served_compute = 0, served_files = 0, served_mon = 0;

  // Three independent services, all on node 0 — different processes in
  // spirit, each with its own protected endpoint.
  cl.spawn_thread(0, "compute-svc", [&](host::HostThread& t) -> sim::Task<> {
    co_await service(t, sv, &sv.compute, 0x100, "compute", &served_compute);
  });
  cl.spawn_thread(0, "file-svc", [&](host::HostThread& t) -> sim::Task<> {
    co_await service(t, sv, &sv.files, 0x200, "files", &served_files);
  });
  cl.spawn_thread(0, "monitor-svc", [&](host::HostThread& t) -> sim::Task<> {
    co_await service(t, sv, &sv.monitor, 0x300, "monitor", &served_mon);
  });

  // Clients on the other nodes hammer different services concurrently.
  cl.spawn_thread(1, "mpi-client", [&](host::HostThread& t) -> sim::Task<> {
    co_await client(t, sv, &sv.compute, 400, "parallel client -> compute");
  });
  cl.spawn_thread(2, "nfs-client", [&](host::HostThread& t) -> sim::Task<> {
    co_await client(t, sv, &sv.files, 300, "legacy app -> file service");
  });
  cl.spawn_thread(3, "perf-client", [&](host::HostThread& t) -> sim::Task<> {
    co_await client(t, sv, &sv.monitor, 200, "analyzer -> monitor");
  });

  // Stop services once the clients are done (hard cap at 2 sim-seconds).
  cl.engine().after(2 * sim::sec, [&] { sv.stop = true; });
  for (int msi = 100; msi < 2000; msi += 100) {
    cl.engine().at(msi * sim::ms, [&, msi] {
      if (std::getenv("VNET_TRACE") != nullptr) {
        const obs::Snapshot snap = cl.engine().snapshot();
        auto c = [&snap](const char* name) {
          return (unsigned long long)snap.counter(name);
        };
        std::printf("  t=%dms served c=%llu f=%llu m=%llu | n0: sent=%llu "
                    "done=%llu rts=%llu nacks=%llu dup=%llu unb=%llu | n3: "
                    "recv=%llu acks=%llu nackqf=%llu nacknr=%llu\n",
                    msi, (unsigned long long)served_compute,
                    (unsigned long long)served_files,
                    (unsigned long long)served_mon,
                    c("host.0.nic.data_sent"),
                    c("host.0.nic.msgs_completed"),
                    c("host.0.nic.returned_to_sender"),
                    c("host.0.nic.nacks_received"),
                    c("host.0.nic.duplicates_suppressed"),
                    c("host.0.nic.channel_unbinds"),
                    c("host.3.nic.data_received"),
                    c("host.3.nic.acks_sent"),
                    c("host.3.nic.nacks_sent_by_reason.2"),
                    c("host.3.nic.nacks_sent_by_reason.1"));
      }
    });
  }
  while (!cl.all_threads_done() && cl.engine().step()) {
    if (served_compute >= 400 && served_files >= 300 && served_mon >= 200) {
      sv.stop = true;
    }
  }

  std::printf("served: compute=%llu files=%llu monitor=%llu\n",
              static_cast<unsigned long long>(served_compute),
              static_cast<unsigned long long>(served_files),
              static_cast<unsigned long long>(served_mon));
  std::printf("node-0 endpoint re-mappings: %llu (driver), frames: %d\n",
              static_cast<unsigned long long>(cl.engine().snapshot().counter(
                  "host.0.driver.remaps")),
              cl.host(0).nic().endpoint_frames());
  std::printf("\nper-endpoint activity on node 0:\n%s",
              obs::render_table(cl.engine().snapshot(), "host.0.ep").c_str());
  return 0;
}
