// The delivery/error model in action (§3.2): a client talks to a primary
// server; the primary's node is unplugged mid-run; the transport masks
// transient losses, but once the peer is unreachable the in-flight
// requests come back through the undeliverable-message handler and the
// client fails over to a replica — no timeouts or message logging in the
// application's fast path.

#include <cstdio>
#include <cstdlib>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

using namespace vnet;

int main() {
  std::setbuf(stdout, nullptr);
  auto cfg = cluster::NowConfig(3);
  cfg.nic.retransmit_timeout = 200 * sim::us;
  cfg.nic.unreachable_timeout = 15 * sim::ms;  // declare death after 15 ms
  cluster::Cluster cl(cfg);

  am::Name primary_name, replica_name;
  bool stop = false;

  auto server = [&](am::Name* slot, std::uint64_t tag,
                    const char* label) -> cluster::Cluster::ThreadBody {
    return [&, slot, tag, label](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, tag);
      ep->set_handler(1, [label](am::Endpoint&, const am::Message& m) {
        m.reply(2, {m.arg(0)});
        (void)label;
      });
      *slot = ep->name();
      while (!stop) {
        if (co_await ep->wait_events_for(t, am::kEventReceive, 2 * sim::ms)) {
          co_await ep->poll(t, 16);
        }
      }
    };
  };
  cl.spawn_thread(1, "primary", server(&primary_name, 0x111, "primary"));
  cl.spawn_thread(2, "replica", server(&replica_name, 0x222, "replica"));

  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xc);
    int acked = 0, returned = 0, reissued = 0;
    ep->set_handler(2, [&](am::Endpoint&, const am::Message&) { ++acked; });
    ep->set_undeliverable_handler(
        [&](am::Endpoint&, am::ReturnedMessage r) {
          // Error-aware application policy: re-issue to the replica.
          ++returned;
          std::printf("[client] t=%s: request %llu returned (%s) -> "
                      "failing over\n",
                      sim::format_time(t.engine().now()).c_str(),
                      static_cast<unsigned long long>(
                          r.descriptor.body.args[0]),
                      r.unreachable() ? "unreachable"
                                      : lanai::to_string(r.reason));
        });
    while (!primary_name.valid() || !replica_name.valid()) {
      co_await t.sleep(20 * sim::us);
    }
    ep->map(0, primary_name);
    ep->map(1, replica_name);

    // Send to the primary; its node dies at t = 2 ms.
    for (std::uint64_t i = 0; i < 40; ++i) {
      co_await ep->request(t, 0, 1, i);
      co_await ep->poll(t, 8);
      co_await t.sleep(200 * sim::us);
    }
    // Collect replies and returned messages. A request delivered just
    // before the crash whose *reply* died is neither acked nor returned —
    // only an application deadline can catch those (the transport
    // guarantees exactly-once delivery, not request/response atomicity).
    const sim::Time deadline = t.engine().now() + 60 * sim::ms;
    while (acked + returned < 40 && t.engine().now() < deadline) {
      co_await ep->poll(t, 16);
      co_await t.sleep(100 * sim::us);
    }
    std::printf("[client] t=%s: %d acked, %d returned-to-sender, %d "
                "missing -> fail over to replica\n",
                sim::format_time(t.engine().now()).c_str(), acked, returned,
                40 - acked - returned);
    // Re-issue everything not positively acknowledged to the replica.
    const int to_reissue = 40 - acked;
    const int base_acked = acked;
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(to_reissue);
         ++i) {
      co_await ep->request(t, 1, 1, 1000 + i);
      ++reissued;
    }
    while (acked < base_acked + to_reissue) {
      co_await ep->poll(t, 16);
      co_await t.sleep(50 * sim::us);
    }
    std::printf("[client] all %d requests completed (%d via replica); "
                "returned=%d\n",
                acked, reissued, returned);
    stop = true;
  });

  // Pull the primary's cable mid-run.
  cl.engine().after(2 * sim::ms, [&] {
    std::printf("[fabric] t=2ms: node 1 (primary) unplugged\n");
    cl.fabric().set_host_link(1, false);
  });

  cl.run_to_completion();
  return 0;
}
