// A dedicated parallel program (the paper's classic use case): an 8-rank
// SPMD Jacobi-style iteration using the mini parallel runtime layered on
// Active Messages — ghost exchanges, a global residual allreduce, and a
// barrier per step, like the Split-C / MPI programs of §6.2.
//
// Also demonstrates the observability layer: the run records a simulated-
// time trace (open parallel_program.trace.json in Perfetto or
// chrome://tracing) and finishes with a metric-registry table dump.

#include <cstdio>
#include <fstream>

#include "apps/parallel.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace vnet;

int main() {
  constexpr int kRanks = 8;
  constexpr int kIters = 10;
  cluster::Cluster cl(cluster::NowConfig(kRanks));
  cl.engine().tracer().set_enabled(true);
  for (int r = 0; r < kRanks; ++r) {
    cl.engine().tracer().set_process_name(r, "node " + std::to_string(r));
    cl.engine().tracer().set_thread_name(r, 1, "wire rx");
    cl.engine().tracer().set_thread_name(r, 2, "threads");
  }

  apps::launch_spmd(cl, kRanks, [](apps::Par& par) -> sim::Task<> {
    const int r = par.rank();
    const int n = par.size();
    double residual = 1.0;
    for (int it = 0; it < kIters && residual > 1e-3; ++it) {
      // Local relaxation sweep: ~4 ms of FLOPs on this rank's panel.
      co_await par.compute(4 * sim::ms);
      // Ghost-cell exchange with both neighbours (64 KB faces).
      co_await par.exchange((r + 1) % n, 64 * 1024);
      co_await par.exchange((r + n - 1) % n, 64 * 1024);
      // Global residual: everyone contributes, everyone gets the sum.
      const double my_residual = 1.0 / (it + 1) / n;
      residual = co_await par.allreduce_sum(my_residual);
      co_await par.barrier();
      if (r == 0) {
        std::printf("iter %2d  residual %.5f  t=%s\n", it, residual,
                    sim::format_time(par.thread().engine().now()).c_str());
      }
    }
    if (r == 0) {
      std::printf("rank 0: comm time %s of total %s\n",
                  sim::format_time(par.comm_time()).c_str(),
                  sim::format_time(par.thread().engine().now()).c_str());
    }
  });

  cl.run_to_completion();
  std::printf("done at %s (%llu events)\n",
              sim::format_time(cl.engine().now()).c_str(),
              static_cast<unsigned long long>(cl.engine().events_processed()));

  const obs::Snapshot snap = cl.engine().snapshot();
  std::printf("\ncluster totals: %llu packets injected-to-wire, "
              "%llu retransmissions, %llu messages handled\n",
              static_cast<unsigned long long>(
                  snap.sum_counters("fabric.link.", ".packets_tx")),
              static_cast<unsigned long long>(
                  snap.sum_counters("host.", ".nic.retransmissions")),
              static_cast<unsigned long long>(
                  snap.sum_counters("host.", ".messages_handled")));
  std::printf("\n%s\n", obs::render_table(snap, "fabric.link").c_str());
  {
    std::ofstream out("parallel_program.trace.json");
    cl.engine().tracer().write_chrome_trace(out);
  }
  std::printf("trace: parallel_program.trace.json (%zu events)\n",
              cl.engine().tracer().events().size());
  return 0;
}
