// Quickstart: two nodes, one endpoint each, a request and its reply.
//
// Demonstrates the core API surface: building a simulated cluster,
// creating endpoints, establishing the virtual network (map with the
// peer's name+tag), registering handlers, and split-phase request/reply.

#include <cstdio>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

using namespace vnet;

int main() {
  // A 2-node cluster with the calibrated Berkeley-NOW parameters.
  cluster::Cluster cl(cluster::NowConfig(2));

  // Out-of-band rendezvous for endpoint names (any mechanism works; §3.1).
  am::Name server_name;
  bool done = false;

  // --- server on node 1 ---
  cl.spawn_thread(1, "server", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, /*tag=*/0xfeed);
    ep->set_handler(1, [](am::Endpoint&, const am::Message& m) {
      std::printf("[server] got request: %llu (from node %d)\n",
                  static_cast<unsigned long long>(m.arg(0)), m.src_node());
      m.reply(2, {m.arg(0) * 2});
    });
    server_name = ep->name();
    // Event-driven: sleep until a message arrives, then handle it (§3.3).
    while (!done) {
      if (co_await ep->wait_events_for(t, am::kEventReceive, 1 * sim::ms)) {
        co_await ep->poll(t);
      }
    }
    co_await ep->destroy(t);
  });

  // --- client on node 0 ---
  cl.spawn_thread(0, "client", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xcafe);
    ep->set_handler(2, [&](am::Endpoint&, const am::Message& m) {
      std::printf("[client] got reply:   %llu (rtt measured at the API)\n",
                  static_cast<unsigned long long>(m.arg(0)));
      done = true;
    });
    while (!server_name.valid()) co_await t.sleep(10 * sim::us);
    ep->map(/*index=*/0, server_name);  // present the server's tag as key

    const sim::Time t0 = t.engine().now();
    co_await ep->request(t, 0, /*handler=*/1, 21);
    while (!done) co_await ep->poll(t);
    std::printf("[client] round trip: %s\n",
                sim::format_time(t.engine().now() - t0).c_str());
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
  std::printf("simulated time: %s, events: %llu\n",
              sim::format_time(cl.engine().now()).c_str(),
              static_cast<unsigned long long>(cl.engine().events_processed()));
  return 0;
}
