// A "legacy application" (Fig 1): a client/server file transfer written
// against stream sockets, unknowingly riding the virtual-network stack —
// the generality half of the paper's performance-and-generality story.

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "sock/socket.hpp"

using namespace vnet;

int main() {
  std::setbuf(stdout, nullptr);
  constexpr std::uint32_t kFileBytes = 2 * 1024 * 1024;  // a 2 MB "file"
  cluster::Cluster cl(cluster::NowConfig(2));
  am::Name listener_name;

  cl.spawn_thread(1, "file-server", [&](host::HostThread& t) -> sim::Task<> {
    auto listener = co_await sock::Listener::create(t, 0xf11e);
    listener_name = listener->name();
    auto s = co_await listener->accept(t);
    std::printf("[server] connection accepted at t=%s\n",
                sim::format_time(t.engine().now()).c_str());
    std::uint64_t got = 0;
    const sim::Time t0 = t.engine().now();
    while (got < kFileBytes) got += co_await s->recv(t, 1);
    const double secs = sim::to_sec(t.engine().now() - t0);
    std::printf("[server] received %.1f MB in %s (%.1f MB/s through the "
                "socket layer; paper's raw AM peak: 43.9 MB/s)\n",
                got / 1048576.0,
                sim::format_time(t.engine().now() - t0).c_str(),
                got / 1048576.0 / secs);
  });

  cl.spawn_thread(0, "file-client", [&](host::HostThread& t) -> sim::Task<> {
    while (!listener_name.valid()) co_await t.sleep(30 * sim::us);
    auto s = co_await sock::Socket::connect(t, listener_name);
    std::printf("[client] connected; sending %u bytes\n", kFileBytes);
    co_await s->send(t, kFileBytes);
    co_await s->close(t);
  });

  cl.run_to_completion();
  return 0;
}
