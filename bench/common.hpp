#pragma once
// Shared command-line surface for the bench binaries.
//
// Every bench_* main used to hand-roll the same strcmp/atoi loop; this
// header gives them one declarative parser so scripts and CI see a uniform
// flag vocabulary. Canonical names (use these when a binary grows the
// concept, rather than inventing a synonym):
//
//   --json PATH    machine-readable output file
//   --csv PATH     time-series / tabular CSV output file
//   --seeds N      number of seeds to sweep
//   --jobs N       parallel worker processes
//   --quick        cut the run short for smoke-testing (binary-defined)
//
// `--help`/`-h` and unknown-flag handling come for free. parse() returns
// false on bad usage after printing the usage text; mains `return 2`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace vnet::bench {

class Args {
 public:
  explicit Args(std::string summary) : summary_(std::move(summary)) {}

  /// Boolean switch: present -> *out = true.
  Args& flag(const char* name, bool* out, const char* help) {
    opts_.push_back({name, "", help, false, [out](const char*) { *out = true; }});
    return *this;
  }

  Args& option(const char* name, std::string* out, const char* metavar,
               const char* help) {
    opts_.push_back(
        {name, metavar, help, true, [out](const char* v) { *out = v; }});
    return *this;
  }

  Args& option(const char* name, int* out, const char* metavar,
               const char* help) {
    opts_.push_back({name, metavar, help, true,
                     [out](const char* v) { *out = std::atoi(v); }});
    return *this;
  }

  Args& option(const char* name, std::uint64_t* out, const char* metavar,
               const char* help) {
    opts_.push_back({name, metavar, help, true, [out](const char* v) {
                       *out = std::strtoull(v, nullptr, 10);
                     }});
    return *this;
  }

  Args& option(const char* name, double* out, const char* metavar,
               const char* help) {
    opts_.push_back({name, metavar, help, true,
                     [out](const char* v) { *out = std::atof(v); }});
    return *this;
  }

  /// Collects non-flag arguments instead of rejecting them.
  Args& positionals(std::vector<std::string>* out, const char* metavar) {
    positional_ = out;
    positional_metavar_ = metavar;
    return *this;
  }

  /// True on success. On bad usage, prints the usage text to stderr and
  /// returns false; `--help` prints to stdout and exits 0.
  bool parse(int argc, char** argv) {
    prog_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
        usage(stdout);
        std::exit(0);
      }
      const Opt* o = find(a);
      if (o == nullptr) {
        if (positional_ != nullptr && a[0] != '-') {
          positional_->push_back(a);
          continue;
        }
        std::fprintf(stderr, "%s: unknown argument '%s'\n", prog_, a);
        usage(stderr);
        return false;
      }
      const char* v = "";
      if (o->takes_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: %s requires a value\n", prog_, a);
          usage(stderr);
          return false;
        }
        v = argv[++i];
      }
      o->apply(v);
    }
    return true;
  }

  void usage(std::FILE* f) const {
    std::fprintf(f, "usage: %s", prog_ != nullptr ? prog_ : "bench");
    for (const Opt& o : opts_) {
      if (o.takes_value) {
        std::fprintf(f, " [%s %s]", o.name, o.metavar);
      } else {
        std::fprintf(f, " [%s]", o.name);
      }
    }
    if (positional_ != nullptr) std::fprintf(f, " [%s...]", positional_metavar_);
    std::fprintf(f, "\n");
    if (!summary_.empty()) std::fprintf(f, "%s\n", summary_.c_str());
    for (const Opt& o : opts_) {
      char lhs[64];
      std::snprintf(lhs, sizeof lhs, "%s %s", o.name,
                    o.takes_value ? o.metavar : "");
      std::fprintf(f, "  %-22s %s\n", lhs, o.help);
    }
  }

 private:
  struct Opt {
    const char* name;
    const char* metavar;
    const char* help;
    bool takes_value;
    std::function<void(const char*)> apply;
  };

  const Opt* find(const char* a) const {
    for (const Opt& o : opts_) {
      if (!std::strcmp(o.name, a)) return &o;
    }
    return nullptr;
  }

  std::string summary_;
  const char* prog_ = nullptr;
  std::vector<Opt> opts_;
  std::vector<std::string>* positional_ = nullptr;
  const char* positional_metavar_ = "ARG";
};

}  // namespace vnet::bench
