// Interactive probe for the Linpack model.
// Usage: lp_probe [node_mflops] [N] [NB]
#include <cstdio>
#include <cstdlib>
#include "apps/linpack.hpp"
#include "cluster/config.hpp"
int main(int argc, char** argv) {
  using namespace vnet;
  apps::LinpackParams lp;
  if (argc > 1) lp.node_mflops = atof(argv[1]);
  if (argc > 2) lp.n = atoi(argv[2]);
  if (argc > 3) lp.nb = atoi(argv[3]);
  auto r = apps::run_linpack(cluster::NowConfig(lp.nodes), lp);
  std::printf("mflops=%.0f n=%d nb=%d -> %.2f GF in %.2fs\n", lp.node_mflops, lp.n, lp.nb, r.gflops, r.seconds);
  return 0;
}
