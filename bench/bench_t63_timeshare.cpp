// Section 6.3: multiple time-shared parallel applications.
//
// Paper: the execution time of multiple time-shared Split-C applications
// on 16 nodes is within 15% of running them in sequence; time spent in
// communication stays nearly constant (applications get full network
// performance when they run); with load imbalance, time-sharing improves
// throughput of some workloads by up to 20%.

#include <cstdio>

#include "apps/timeshare.hpp"

int main() {
  using namespace vnet;
  apps::TimeshareParams p;
  const auto r = apps::run_timeshare(p);
  std::printf("Section 6.3: two BSP apps time-sharing %d nodes\n", p.nodes);
  std::printf("  app A alone: %.3fs   app B alone: %.3fs   together: %.3fs\n",
              r.t_a_alone_sec, r.t_b_alone_sec, r.t_together_sec);
  std::printf("  together / sequential = %.3f (paper: <= 1.15)\n",
              r.overhead_ratio);
  std::printf("  app A mean comm time: alone %.3fs, shared %.3fs "
              "(paper: nearly constant)\n",
              r.a_comm_alone_sec, r.a_comm_shared_sec);

  apps::TimeshareParams imb = p;
  imb.imbalance = 0.40;
  const auto ri = apps::run_timeshare(imb);
  std::printf("\nwith 40%% per-rank load imbalance:\n");
  std::printf("  together / sequential = %.3f "
              "(paper: time-sharing gains up to 20%% under imbalance)\n",
              ri.overhead_ratio);

  apps::TimeshareParams nospin = p;
  nospin.spin_limit = 0;  // pure spinning: no implicit co-scheduling
  const auto rs = apps::run_timeshare(nospin);
  std::printf("\nablation - pure spin waiting (no two-phase blocking):\n");
  std::printf("  together / sequential = %.3f\n", rs.overhead_ratio);
  return 0;
}
