// Ablation D (§5.2): the service discipline's loiter bounds (64
// descriptors / 4 ms in the paper). A bulk endpoint and a small-message
// endpoint share a NIC; excessive loitering starves the latency-sensitive
// endpoint, while no loitering costs throughput on the bulk one.

#include <cstdio>
#include <memory>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "sim/stats.hpp"

using namespace vnet;

int main() {
  std::printf("Ablation D: WRR loiter bounds (bulk + latency endpoints on "
              "one NIC)\n");
  std::printf("%-18s %14s %16s\n", "loiter (desc/ms)", "bulk (MB/s)",
              "small RTT p99(us)");
  struct Case {
    int desc;
    sim::Duration time;
  };
  for (Case c : {Case{1, 1 * sim::ms}, Case{8, 1 * sim::ms},
                 Case{64, 4 * sim::ms}, Case{512, 64 * sim::ms}}) {
    auto cfg = cluster::NowConfig(3);
    cfg.nic.loiter_descriptors = c.desc;
    cfg.nic.loiter_time = c.time;
    cluster::Cluster cl(cfg);

    am::Name bulk_sink, lat_sink;
    std::uint64_t bulk_bytes = 0;
    bool stop = false;
    sim::Summary rtt;

    auto sink = [&](am::Name* slot, std::uint64_t* bytes,
                    std::uint64_t tag) -> cluster::Cluster::ThreadBody {
      return [&, slot, bytes, tag](host::HostThread& t) -> sim::Task<> {
        auto ep = co_await am::Endpoint::create(t, tag);
        ep->set_handler(1, [bytes](am::Endpoint&, const am::Message& m) {
          if (bytes != nullptr) *bytes += m.bulk_bytes();
          m.reply(2, {m.arg(0)});
        });
        *slot = ep->name();
        while (!stop) {
          if (co_await ep->wait_events_for(t, am::kEventArrivals, 1 * sim::ms)) {
            co_await ep->poll(t, 32);
          }
        }
      };
    };
    cl.spawn_thread(1, "bulk-sink", sink(&bulk_sink, &bulk_bytes, 0xb));
    cl.spawn_thread(2, "lat-sink", sink(&lat_sink, nullptr, 0x1));

    // Both senders live on node 0 and share its NIC.
    cl.spawn_thread(0, "bulk-src", [&](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 0xb0);
      while (!bulk_sink.valid()) co_await t.sleep(20 * sim::us);
      ep->map(0, bulk_sink);
      while (!stop) {
        co_await ep->request_bulk(t, 0, 1, 8192);
        co_await ep->poll(t, 8);
      }
    });
    cl.spawn_thread(0, "lat-src", [&](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 0x10);
      std::uint64_t replies = 0;
      ep->set_handler(2, [&](am::Endpoint&, const am::Message&) {
        ++replies;
      });
      while (!lat_sink.valid()) co_await t.sleep(20 * sim::us);
      ep->map(0, lat_sink);
      co_await t.sleep(5 * sim::ms);  // let the bulk stream saturate
      for (int i = 0; i < 150 && !stop; ++i) {
        const sim::Time t0 = t.engine().now();
        co_await ep->request(t, 0, 1, 1);
        const auto want = static_cast<std::uint64_t>(i) + 1;
        while (replies < want) co_await ep->poll(t, 4);
        rtt.add(sim::to_usec(t.engine().now() - t0));
        co_await t.sleep(100 * sim::us);
      }
      stop = true;
    });
    const sim::Time t0 = cl.engine().now();
    cl.run_to_completion();
    const double secs = sim::to_sec(cl.engine().now() - t0);
    std::printf("%6d/%-11lld %14.1f %16.0f\n", c.desc,
                static_cast<long long>(c.time / sim::ms),
                bulk_bytes / secs / (1024 * 1024), rtt.max());
    std::fflush(stdout);
  }
  std::printf("(tiny loiter bounds cost bulk throughput; unbounded "
              "loitering lets bulk senders monopolize the interface)\n");
  return 0;
}
