// Figure 6: small-message client/server throughput under contention.
//
// Paper (PPoPP'99 §6.4): one server, k clients streaming 16-byte requests.
//  * OneVN: all clients share one server endpoint. Peak ~78K msgs/s; drops
//    to ~60K msgs/s around 3 clients when user-level credits stop
//    preventing receive-queue overruns; each client gets its proportional
//    share.
//  * ST (one endpoint per client, one polling thread): with 8 frames the
//    server suffers once re-mapping begins past 8 clients; with 96 frames
//    polling resident (uncached) endpoints costs more than polling
//    non-resident cacheable ones.
//  * MT (thread per endpoint): resilient to the number of frames — threads
//    with empty endpoints sleep; threads with resident endpoints run.
// The OS sustains hundreds of re-mappings per second while the system
// still delivers a large fraction of peak; client RTTs become bimodal.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/workloads.hpp"

int main() {
  using namespace vnet;
  using apps::ContentionParams;

  const bool quick = std::getenv("VNET_QUICK") != nullptr;
  const bool full = std::getenv("VNET_FULL") != nullptr;
  std::vector<int> clients =
      quick ? std::vector<int>{1, 3, 9, 16}
            : (full ? std::vector<int>{1, 2, 3, 4, 8, 9, 12, 16, 24, 32}
                    : std::vector<int>{1, 2, 3, 4, 8, 9, 12, 16});

  struct Config {
    const char* name;
    ContentionParams::Mode mode;
    int frames;
  };
  const Config configs[] = {
      {"OneVN", ContentionParams::Mode::kOneVN, 8},
      {"ST-8", ContentionParams::Mode::kSingleThread, 8},
      {"ST-96", ContentionParams::Mode::kSingleThread, 96},
      {"MT-8", ContentionParams::Mode::kMultiThread, 8},
      {"MT-96", ContentionParams::Mode::kMultiThread, 96},
  };

  std::printf("Figure 6: small-message throughput under contention "
              "(window %s)\n",
              quick ? "50ms" : "100ms");
  std::printf("%-7s %8s | %12s %14s %14s | %9s %7s %7s | %9s %9s\n", "config",
              "clients", "agg msg/s", "client min/s", "client max/s",
              "remaps/s", "qfull", "notres", "rtt p50us", "rtt p99us");

  for (const Config& c : configs) {
    for (int k : clients) {
      ContentionParams p;
      p.mode = c.mode;
      p.server_frames = c.frames;
      p.clients = k;
      p.request_bytes = 0;
      p.warmup = 20 * sim::ms + k * 3 * sim::ms;  // cover initial binding
      p.window = (quick ? 50 : 100) * sim::ms;
      const auto r = apps::run_contention(p);
      std::printf("%-7s %8d | %12.0f %14.0f %14.0f | %9.0f %7llu %7llu | "
                  "%9.0f %9.0f\n",
                  c.name, k, r.aggregate_per_sec, r.min_client_per_sec(),
                  r.max_client_per_sec(), r.remaps_per_sec,
                  static_cast<unsigned long long>(r.queue_full_nacks),
                  static_cast<unsigned long long>(r.not_resident_nacks),
                  r.rtt_us.quantile(0.5), r.rtt_us.quantile(0.99));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("paper reference: OneVN peak 78K msg/s dropping to ~60K at 3+ "
              "clients; ST-8 degrades once >8 clients force re-mapping "
              "(200-300 remaps/s, 50-75%% delivered); MT resilient to frame "
              "count; RTT strongly bimodal under re-mapping.\n");
  return 0;
}
