// Figure 3: LogP performance characterization of virtual-network Active
// Messages (AM) vs the first-generation single-endpoint interface (GAM).
//
// Paper (PPoPP'99 §6.1): virtualization raises the round-trip time by 23%
// and the gap by 2.21x while total per-packet overhead (o_s + o_r) stays
// the same; defensive checks contribute ~1.1us to L and g.
//
// The attribution section re-runs the AM ping-pongs (no streaming phase)
// with the flight recorder tracking every message and prints the per-stage
// decomposition of the one-way latency; the stage sums must reconcile with
// the measured RTT — each round trip is two one-way flights (request +
// reply) — within a few percent.

#include <cmath>
#include <cstdio>

#include "apps/logp.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  std::printf("Figure 3: LogP parameters (16-byte messages, 2 nodes)\n");
  std::printf("%-6s %8s %8s %8s %8s %10s\n", "iface", "o_s(us)", "o_r(us)",
              "L(us)", "g(us)", "RTT(us)");

  const apps::LogpResult gam = apps::measure_logp(cluster::GamConfig(2));
  std::printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "GAM", gam.os_us,
              gam.or_us, gam.l_us, gam.g_us, gam.rtt_us);

  const apps::LogpResult am = apps::measure_logp(cluster::NowConfig(2));
  std::printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "AM", am.os_us,
              am.or_us, am.l_us, am.g_us, am.rtt_us);

  std::printf("\nratios (AM/GAM):  RTT %.2fx (paper: 1.23x)   gap %.2fx "
              "(paper: 2.21x)\n",
              am.rtt_us / gam.rtt_us, am.g_us / gam.g_us);
  std::printf("total overhead o_s+o_r:  GAM %.2fus  AM %.2fus (paper: equal)\n",
              gam.os_us + gam.or_us, am.os_us + am.or_us);

  // Ablation: defensive checks / error checking (~1.1us on L and g).
  auto cfg = cluster::NowConfig(2);
  cfg.nic.defensive_checks = false;
  const apps::LogpResult nodef = apps::measure_logp(cfg);
  std::printf("defensive checks off:  L %.2fus (-%.2f)   g %.2fus (-%.2f) "
              "(paper: ~1.1us each)\n",
              nodef.l_us, am.l_us - nodef.l_us, nodef.g_us,
              am.g_us - nodef.g_us);

  // --- per-stage LogP attribution (pure ping-pong, every flight tracked) ---
  const apps::LogpResult attr = apps::measure_logp(
      cluster::NowConfig(2), /*pingpongs=*/300, /*stream=*/0,
      /*attribute=*/true);
  std::printf("\nAM one-way latency attribution (300 ping-pongs, "
              "stage boundaries of obs/attr.hpp):\n%s",
              attr.attr_report.c_str());
  const double two_way = 2.0 * attr.attr_e2e_us;
  const double delta_pct =
      attr.rtt_us > 0 ? 100.0 * (two_way - attr.rtt_us) / attr.rtt_us : 0.0;
  std::printf("2 x e2e mean %.2fus vs measured RTT %.2fus (delta %+.2f%%)\n",
              two_way, attr.rtt_us, delta_pct);
  if (std::fabs(delta_pct) > 5.0) {
    std::printf("ATTRIBUTION MISMATCH: stage decomposition does not "
                "reconcile with the measured round trip\n");
    return 1;
  }

  // --- differential tail profile of the same ping-pongs (obs/span.hpp) ---
  std::printf("\n%s", attr.tail_report.c_str());
  if (attr.tail_recon_p50 > 0.05 || attr.tail_recon_tail > 0.05) {
    std::printf("TAIL RECONCILIATION MISMATCH: cohort critical-path sums "
                "diverge from cohort e2e means (p50 %.1f%%, tail %.1f%%)\n",
                100.0 * attr.tail_recon_p50, 100.0 * attr.tail_recon_tail);
    return 1;
  }
  return 0;
}
