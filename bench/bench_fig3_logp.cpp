// Figure 3: LogP performance characterization of virtual-network Active
// Messages (AM) vs the first-generation single-endpoint interface (GAM).
//
// Paper (PPoPP'99 §6.1): virtualization raises the round-trip time by 23%
// and the gap by 2.21x while total per-packet overhead (o_s + o_r) stays
// the same; defensive checks contribute ~1.1us to L and g.

#include <cstdio>

#include "apps/logp.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  std::printf("Figure 3: LogP parameters (16-byte messages, 2 nodes)\n");
  std::printf("%-6s %8s %8s %8s %8s %10s\n", "iface", "o_s(us)", "o_r(us)",
              "L(us)", "g(us)", "RTT(us)");

  const apps::LogpResult gam = apps::measure_logp(cluster::GamConfig(2));
  std::printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "GAM", gam.os_us,
              gam.or_us, gam.l_us, gam.g_us, gam.rtt_us);

  const apps::LogpResult am = apps::measure_logp(cluster::NowConfig(2));
  std::printf("%-6s %8.2f %8.2f %8.2f %8.2f %10.2f\n", "AM", am.os_us,
              am.or_us, am.l_us, am.g_us, am.rtt_us);

  std::printf("\nratios (AM/GAM):  RTT %.2fx (paper: 1.23x)   gap %.2fx "
              "(paper: 2.21x)\n",
              am.rtt_us / gam.rtt_us, am.g_us / gam.g_us);
  std::printf("total overhead o_s+o_r:  GAM %.2fus  AM %.2fus (paper: equal)\n",
              gam.os_us + gam.or_us, am.os_us + am.or_us);

  // Ablation: defensive checks / error checking (~1.1us on L and g).
  auto cfg = cluster::NowConfig(2);
  cfg.nic.defensive_checks = false;
  const apps::LogpResult nodef = apps::measure_logp(cfg);
  std::printf("defensive checks off:  L %.2fus (-%.2f)   g %.2fus (-%.2f) "
              "(paper: ~1.1us each)\n",
              nodef.l_us, am.l_us - nodef.l_us, nodef.g_us,
              am.g_us - nodef.g_us);
  return 0;
}
