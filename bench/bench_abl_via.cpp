// §7 comparison: virtual networks vs the Virtual Interface Architecture's
// connection-oriented provisioning. "A parallel program on n nodes
// requires n^2 total VI's for complete connectivity, rather than a single
// endpoint [per process]. Resource provisioning is also done on a
// connection basis rather than pooling resources across a set."
//
// Both stacks run over the same NIC (8 endpoint frames): an n-node
// all-pairs exchange needs one endpoint per node under virtual networks
// but n-1 VIs (= endpoints) per node under VIA, so past 9 nodes the VIA
// version thrashes the frame pool.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "via/via.hpp"

using namespace vnet;

namespace {

struct Result {
  double seconds = 0;
  std::uint64_t remaps_node0 = 0;
};

Result run_vn(int n, int rounds) {
  cluster::Cluster cl(cluster::NowConfig(n));
  std::vector<am::Name> names(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> got(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    cl.spawn_thread(r, "rank" + std::to_string(r),
                    [&, r](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 0x60 + r);
      ep->set_handler(1, [&, r](am::Endpoint&, const am::Message&) {
        ++got[static_cast<std::size_t>(r)];
      });
      names[static_cast<std::size_t>(r)] = ep->name();
      auto all_ready = [&] {
        for (const auto& nm : names) {
          if (!nm.valid()) return false;
        }
        return true;
      };
      while (!all_ready()) co_await t.sleep(30 * sim::us);
      for (int p = 0; p < n; ++p) {
        ep->map(static_cast<std::uint32_t>(p),
                names[static_cast<std::size_t>(p)]);
      }
      const auto expect = static_cast<std::uint64_t>(rounds) * (n - 1);
      for (int round = 0; round < rounds; ++round) {
        for (int p = 0; p < n; ++p) {
          if (p == r) continue;
          co_await ep->request(t, static_cast<std::uint32_t>(p), 1, 1);
        }
        co_await ep->poll(t, 32);
      }
      while (got[static_cast<std::size_t>(r)] < expect ||
             ep->credits_in_use() > 0) {
        co_await ep->poll(t, 32);
        co_await t.compute(500);
      }
    });
  }
  Result res;
  res.seconds = sim::to_sec(cl.run_to_completion());
  res.remaps_node0 = cl.engine().snapshot().counter("host.0.driver.remaps");
  return res;
}

Result run_via(int n, int rounds) {
  cluster::Cluster cl(cluster::NowConfig(n));
  // addr[a][b]: address of node a's VI for talking to node b.
  auto addr = std::make_unique<std::vector<std::vector<via::ViAddress>>>(
      static_cast<std::size_t>(n),
      std::vector<via::ViAddress>(static_cast<std::size_t>(n)));
  for (int r = 0; r < n; ++r) {
    cl.spawn_thread(r, "rank" + std::to_string(r),
                    [&, r](host::HostThread& t) -> sim::Task<> {
      via::CompletionQueue cq(t.engine());
      std::vector<std::unique_ptr<via::Vi>> vis(static_cast<std::size_t>(n));
      std::vector<via::MemoryHandle> bufs(static_cast<std::size_t>(n));
      for (int p = 0; p < n; ++p) {
        if (p == r) continue;
        vis[static_cast<std::size_t>(p)] = co_await via::Vi::create(t, cq, p);
        (*addr)[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] =
            vis[static_cast<std::size_t>(p)]->address();
        bufs[static_cast<std::size_t>(p)] =
            co_await vis[static_cast<std::size_t>(p)]->register_memory(t, 256);
        for (int q = 0; q < rounds; ++q) {
          vis[static_cast<std::size_t>(p)]->post_recv(
              bufs[static_cast<std::size_t>(p)]);
        }
      }
      auto peer_ready = [&](int p) {
        return (*addr)[static_cast<std::size_t>(p)][static_cast<std::size_t>(
                   r)]
            .valid();
      };
      for (int p = 0; p < n; ++p) {
        if (p == r) continue;
        while (!peer_ready(p)) co_await t.sleep(30 * sim::us);
        vis[static_cast<std::size_t>(p)]->connect(
            (*addr)[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)]);
      }
      std::uint64_t recvs = 0, sends = 0;
      const auto expect = static_cast<std::uint64_t>(rounds) * (n - 1);
      for (int round = 0; round < rounds; ++round) {
        for (int p = 0; p < n; ++p) {
          if (p == r) continue;
          (void)co_await vis[static_cast<std::size_t>(p)]->post_send(
              t, bufs[static_cast<std::size_t>(p)], 64);
        }
        via::Completion c;
        while (cq.try_pop(&c)) {
          (c.kind == via::Completion::Kind::kRecv ? recvs : sends)++;
        }
      }
      while (recvs < expect || sends < expect) {
        const via::Completion c = co_await cq.wait(t);
        (c.kind == via::Completion::Kind::kRecv ? recvs : sends)++;
      }
    });
  }
  Result res;
  res.seconds = sim::to_sec(cl.run_to_completion());
  res.remaps_node0 = cl.engine().snapshot().counter("host.0.driver.remaps");
  return res;
}

}  // namespace

int main() {
  const int rounds = 30;
  std::printf("S7 comparison: virtual networks vs VIA connection "
              "provisioning (all-pairs, %d rounds, 8 frames)\n",
              rounds);
  std::printf("%-6s | %12s %10s | %12s %10s | %7s\n", "nodes", "VN time(s)",
              "VN remaps", "VIA time(s)", "VIA remaps", "slowdown");
  for (int n : {4, 8, 12, 16}) {
    const Result vn = run_vn(n, rounds);
    const Result via_r = run_via(n, rounds);
    std::printf("%-6d | %12.4f %10llu | %12.4f %10llu | %6.2fx\n", n,
                vn.seconds, static_cast<unsigned long long>(vn.remaps_node0),
                via_r.seconds,
                static_cast<unsigned long long>(via_r.remaps_node0),
                via_r.seconds / vn.seconds);
    std::fflush(stdout);
  }
  std::printf("(VIA needs n-1 endpoints per node; past the 8-frame pool the "
              "driver must thrash, while one pooled endpoint never does)\n");
  return 0;
}
