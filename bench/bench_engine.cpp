// Engine microbenchmark suite: raw throughput of the discrete-event queue,
// the coroutine machinery, and wall-clock passes over the two heaviest real
// workloads (the Fig 4 bandwidth sweep and the chaos matrix). These bound
// how large a cluster/workload the repository can simulate per second of
// real time — simulator self-time is the denominator of every figure.
//
// Emits both a human table (stdout) and a machine-readable JSON file that
// scripts/bench_gate.sh diffs against the checked-in BENCH_engine.json
// baseline. Rates are absolute; the JSON also carries a `calib_spin`
// benchmark (fixed ALU workload) so the gate can normalize away machine
// speed differences and compare shape, not silicon.
//
// Usage: bench_engine [--json PATH] [--repeats N] [--min-secs S] [--quick]
// (--out is a legacy alias for --json kept for existing scripts.)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "am/endpoint.hpp"
#include "apps/bandwidth.hpp"
#include "common.hpp"
#include "chaos/scenario.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"

namespace {

using namespace vnet;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchResult {
  std::string name;
  std::string unit;
  double rate = 0;       // items per wall second, best repeat
  double wall_s = 0;     // wall seconds of the best repeat
  std::uint64_t items = 0;
  // Value metric rather than a throughput: `rate` holds the value itself,
  // lower is better, and the gate must not normalize it by calib_spin
  // (it measures simulated work, not wall time).
  bool lower_is_better = false;
  // Higher-is-better value metric exempt from calib_spin normalization
  // (e.g. a speedup ratio measured on one machine).
  bool raw = false;
  // Per-entry gate tolerance (fraction); < 0 means use the gate's default.
  double tolerance = -1;
  // Hard lower bound: the gate fails if the value drops below this,
  // regardless of the baseline. < 0 means no bound.
  double min_value = -1;
  // The hard bound only applies on machines with at least this many
  // hardware threads (a 4-shard speedup needs 4 cores to exist).
  int min_cores = 0;
};

struct Bench {
  std::string name;
  std::string unit;
  // Runs one batch and returns the number of items processed.
  std::function<std::uint64_t()> batch;
};

// Runs `b.batch` repeatedly until at least `min_secs` elapsed, `repeats`
// times; keeps the fastest repeat (least-noise estimator).
BenchResult run_bench(const Bench& b, int repeats, double min_secs) {
  BenchResult best;
  best.name = b.name;
  best.unit = b.unit;
  for (int r = 0; r < repeats; ++r) {
    std::uint64_t items = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
      items += b.batch();
      elapsed = seconds_since(t0);
    } while (elapsed < min_secs);
    const double rate = static_cast<double>(items) / elapsed;
    if (rate > best.rate) {
      best.rate = rate;
      best.wall_s = elapsed;
      best.items = items;
    }
  }
  return best;
}

// --------------------------------------------------------- microbenchmarks

// Fixed ALU workload for machine-speed normalization (no memory traffic).
// The volatile seed/sink stop the compiler from folding the whole loop.
volatile std::uint64_t g_spin_seed = 88172645463325252ull;
volatile std::uint64_t g_spin_sink;

std::uint64_t calib_spin() {
  std::uint64_t x = g_spin_seed;
  for (int i = 0; i < 1 << 22; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  g_spin_sink = x;
  return 1u << 22;
}

// Shallow schedule/fire churn: the queue stays ~64 deep, the common case
// for a small cluster.
std::uint64_t schedule_fire() {
  sim::EventQueue q;
  sim::Time t = 0;
  const int rounds = 4096;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < 64; ++i) q.push(t + (i * 37) % 101, [] {});
    while (!q.empty()) q.pop();
    t += 101;
  }
  return static_cast<std::uint64_t>(rounds) * 64;
}

// Deep steady-state: 100k pending events, one push per pop. Exercises the
// calendar front-end where a global binary heap pays log2(100k) ~ 17 levels
// per operation.
std::uint64_t schedule_fire_deep() {
  static constexpr int kDepth = 100'000;
  sim::EventQueue q;
  sim::Time t = 0;
  for (int i = 0; i < kDepth; ++i) q.push(t + 1 + (i * 7919) % 100'000, [] {});
  const int rounds = 200'000;
  for (int i = 0; i < rounds; ++i) {
    auto [when, fn] = q.pop();
    t = when;
    q.push(t + 1 + (i * 7919) % 100'000, [] {});
  }
  while (!q.empty()) q.pop();
  return static_cast<std::uint64_t>(rounds) + kDepth;
}

// The O(n)-cancel killer: schedule+cancel against 100k pending events.
// The seed implementation scanned the whole heap per cancel (~400 us); the
// handle-based queue does it in O(1).
std::uint64_t schedule_cancel_100k() {
  static constexpr int kDepth = 100'000;
  sim::EventQueue q;
  for (int i = 0; i < kDepth; ++i) q.push(1000 + i, [] {});
  const int rounds = 500'000;
  for (int i = 0; i < rounds; ++i) {
    auto h = q.push(500'000 + i, [] {});
    q.cancel(h);
  }
  while (!q.empty()) q.pop();
  return static_cast<std::uint64_t>(rounds);
}

// Retransmit-timer lifecycle: a working set of armed timers where most are
// cancelled (acked) before firing, as in the NIC's data channels and
// CondVar::wait_for.
std::uint64_t timer_churn() {
  sim::Engine eng;
  static constexpr int kTimers = 1024;
  std::vector<sim::EventHandle> armed(kTimers);
  std::uint64_t fired = 0;
  for (int i = 0; i < kTimers; ++i) {
    armed[i] = eng.after(200 * sim::us + i, [&fired] { ++fired; });
  }
  const int rounds = 400'000;
  for (int i = 0; i < rounds; ++i) {
    const int k = i % kTimers;
    eng.cancel(armed[k]);  // ack: 7 of 8 timers never fire
    if (i % 8 == 0) eng.step();
    armed[k] = eng.after(200 * sim::us + (i % 977), [&fired] { ++fired; });
  }
  eng.run();
  return static_cast<std::uint64_t>(rounds);
}

// Chained after() callbacks, one event in flight: pure engine dispatch.
std::uint64_t timer_cascade() {
  sim::Engine eng;
  int remaining = 100'000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) eng.after(10, [&] { tick(); });
  };
  eng.after(10, [&] { tick(); });
  eng.run();
  return 100'000;
}

std::uint64_t coroutine_delay_loop() {
  sim::Engine eng;
  for (int p = 0; p < 8; ++p) {
    eng.spawn([](sim::Engine& e) -> sim::Process {
      for (int i = 0; i < 4'000; ++i) co_await e.delay(100);
    }(eng));
  }
  eng.run();
  return 8 * 4'000;
}

// End-to-end: complete AM request/replies through the full simulated stack
// (each is dozens of events through host, NIC firmware, and fabric).
struct FullStackCounts {
  std::uint64_t msgs = 0;
  std::uint64_t events = 0;  // engine events processed for the whole pass
};

FullStackCounts full_stack_pass(std::uint32_t span_interval = 0) {
  cluster::Cluster cl(cluster::NowConfig(2));
  cl.engine().spans().set_sample_interval(span_interval);
  am::Name server;
  std::uint64_t got = 0;
  bool stop = false;
  cl.spawn_thread(1, "s", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 1);
    ep->set_handler(1, [&](am::Endpoint&, const am::Message& m) {
      ++got;
      m.reply(2, {m.arg(0)});
    });
    server = ep->name();
    while (!stop) {
      if (co_await ep->wait_events_for(t, am::kEventArrivals, 1 * sim::ms)) {
        co_await ep->poll(t, 32);
      }
    }
  });
  cl.spawn_thread(0, "c", [&](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 2);
    while (!server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, server);
    for (int i = 0; i < 2'000; ++i) co_await ep->request(t, 0, 1, 1);
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
    stop = true;
  });
  cl.run_to_completion();
  return {got, cl.engine().events_processed()};
}

std::uint64_t full_stack_message_rate() { return full_stack_pass().msgs; }

// 1000-host fat-tree request/reply pass for the parallel-simulation
// entries: 500 client/server pairs spread across the tree, each client
// firing pipelined requests at a server on a distant leaf, so every shard
// of a sharded run has live traffic and most links cross shards. The
// workload keeps all state thread-local to its host coroutines (peers are
// found via map_raw's static rendezvous — the first endpoint on every host
// is EpId 1) and is therefore safe on threaded shards. Returns wall
// seconds of run_to_completion only; cluster construction is excluded.
double sharded_1k_pass_secs(int shards, bool threads, bool force_windows,
                            std::uint64_t* msgs_out = nullptr) {
  cluster::ClusterConfig cfg = cluster::NowConfig(1000);
  cfg.topology = cluster::ClusterConfig::Topology::kFatTree;
  cfg.hosts_per_leaf = 8;
  cfg.spines = 4;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  cfg.shard_force_windows = force_windows;
  cluster::Cluster cl(cfg);

  constexpr int kPairs = 500;
  constexpr int kRequests = 20;
  constexpr std::uint64_t kKey = 0x51000;
  for (int p = 0; p < kPairs; ++p) {
    const int server_node = p;        // leaves 0..62
    const int client_node = 999 - p;  // leaves 124..62 (distant leaf)
    cl.spawn_thread(server_node, "s", [=](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, kKey + server_node);
      int got = 0;
      ep->set_handler(1, [&got](am::Endpoint&, const am::Message& m) {
        ++got;
        m.reply(2, {m.arg(0)});
      });
      while (got < kRequests) {
        if (co_await ep->wait_events_for(t, am::kEventArrivals, 1 * sim::ms)) {
          co_await ep->poll(t, 32);
        }
      }
      while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
    });
    cl.spawn_thread(client_node, "c", [=](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 2 * kKey + client_node);
      ep->map_raw(0, server_node, /*ep=*/1, kKey + server_node);
      for (int i = 0; i < kRequests; ++i) co_await ep->request(t, 0, 1, 1);
      while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
    });
  }
  const auto t0 = Clock::now();
  cl.run_to_completion();
  const double secs = seconds_since(t0);
  if (msgs_out != nullptr) {
    *msgs_out = static_cast<std::uint64_t>(kPairs) * kRequests;
  }
  return secs;
}

// Wall-clock pass over a reduced Fig 4 bandwidth sweep (same code path as
// bench_fig4_bandwidth). Items = simulated events, so the rate reads as
// engine events/sec on a real workload.
std::uint64_t fig4_bandwidth_pass() {
  (void)apps::measure_bandwidth(cluster::NowConfig(2), {16, 256, 4096, 16384},
                                /*stream_messages=*/120, /*pingpongs=*/20);
  return 1;
}

// Wall-clock pass over every standard chaos scenario at one seed (same code
// path as bench_chaos_matrix --seeds 1).
std::uint64_t chaos_matrix_pass() {
  std::uint64_t scenarios = 0;
  for (const std::string& name : chaos::standard_scenario_names()) {
    (void)chaos::run_scenario(chaos::standard_scenario(name, 1));
    ++scenarios;
  }
  return scenarios;
}

// ----------------------------------------------------------------- driver

void write_json(const std::string& path,
                const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": 2,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", \"rate\": %.6g, "
                 "\"wall_s\": %.4g, \"items\": %llu",
                 r.name.c_str(), r.unit.c_str(), r.rate, r.wall_s,
                 static_cast<unsigned long long>(r.items));
    if (r.lower_is_better) std::fprintf(f, ", \"direction\": \"lower\"");
    if (r.lower_is_better || r.raw) std::fprintf(f, ", \"raw\": true");
    if (r.tolerance >= 0) std::fprintf(f, ", \"tolerance\": %g", r.tolerance);
    if (r.min_value >= 0) {
      std::fprintf(f, ", \"min\": %g", r.min_value);
      if (r.min_cores > 0) std::fprintf(f, ", \"min_cores\": %d", r.min_cores);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  std::string out = "BENCH_engine.json";
  int repeats = 3;
  double min_secs = 0.4;
  bool quick = false;
  bench::Args args("Engine microbenchmark suite; diffed by scripts/bench_gate.sh.");
  args.option("--json", &out, "PATH", "machine-readable results file")
      .option("--out", &out, "PATH", "legacy alias for --json")
      .option("--repeats", &repeats, "N", "repeats per benchmark (keep best)")
      .option("--min-secs", &min_secs, "S", "minimum wall time per repeat")
      .flag("--quick", &quick, "smoke run: 1 repeat, 0.05s per benchmark");
  if (!args.parse(argc, argv)) return 2;
  if (quick) {
    repeats = 1;
    min_secs = 0.05;
  }

  const std::vector<Bench> benches = {
      {"calib_spin", "iters/s", calib_spin},
      {"schedule_fire", "events/s", schedule_fire},
      {"schedule_fire_deep", "events/s", schedule_fire_deep},
      {"schedule_cancel_100k", "cancels/s", schedule_cancel_100k},
      {"timer_churn", "timers/s", timer_churn},
      {"timer_cascade", "events/s", timer_cascade},
      {"coroutine_delay_loop", "resumes/s", coroutine_delay_loop},
      {"full_stack_message_rate", "msgs/s", full_stack_message_rate},
      {"fig4_bandwidth_pass", "passes/s", fig4_bandwidth_pass},
      {"chaos_matrix_pass", "scenarios/s", chaos_matrix_pass},
  };

  std::printf("%-26s %14s %-12s %10s\n", "benchmark", "rate", "unit",
              "wall_s");
  std::vector<BenchResult> results;
  for (const auto& b : benches) {
    BenchResult r = run_bench(b, repeats, min_secs);
    std::printf("%-26s %14.0f %-12s %10.3f\n", r.name.c_str(), r.rate,
                r.unit.c_str(), r.wall_s);
    results.push_back(std::move(r));
  }

  // Batching-efficiency metric: engine events per completed request/reply
  // cycle on the full stack. The value is a property of the simulated
  // schedule, not the machine — deterministic across runs, exempt from
  // calib_spin normalization, and lower is better. The gate fails if the
  // batched datapath regresses even on hardware fast enough to hide it.
  {
    const FullStackCounts fs = full_stack_pass();
    BenchResult r;
    r.name = "events_per_message";
    r.unit = "events/msg";
    r.rate = static_cast<double>(fs.events) / static_cast<double>(fs.msgs);
    r.items = fs.msgs;
    r.lower_is_better = true;
    std::printf("%-26s %14.2f %-12s %10s\n", r.name.c_str(), r.rate,
                r.unit.c_str(), "-");
    results.push_back(std::move(r));
  }
  // Span-capture overhead: wall-clock cost of the causal span recorder
  // (obs/span.hpp) on the same full-stack pass, reported as the ratio of
  // the uninstrumented message rate to the instrumented one (1.0 = free).
  // A ratio of rates on the same machine needs no calib_spin normalization
  // (raw), lower is better, and each entry carries the tight per-entry
  // tolerance from the ISSUE acceptance: 1-in-64 sampling must stay within
  // ~2% of free, full sampling within ~10% (the checked-in baselines pin
  // the ideal 1.0, so the gate enforces those bounds absolutely).
  {
    // Measuring each config in its own block would fold machine-speed
    // drift between blocks into the ratio; instead every round times one
    // pass per config back to back, and the ratio is taken over per-config
    // minima. A pass is ~10ms, so scheduler preemption and frequency dips
    // add noise comparable to the ~2% signal; that noise is strictly
    // additive, which makes min-of-rounds (not the median) the estimator
    // that converges on the uncontaminated pass time for each config.
    const auto time_pass = [](std::uint32_t interval) {
      const auto t0 = Clock::now();
      (void)full_stack_pass(interval);
      return seconds_since(t0);
    };
    const int rounds =
        std::max(5, static_cast<int>(repeats * min_secs / 0.03));
    std::vector<double> off, in64, full;
    (void)time_pass(0);  // warm caches/allocator before the first round
    for (int i = 0; i < rounds; ++i) {
      off.push_back(time_pass(0));
      in64.push_back(time_pass(64));
      full.push_back(time_pass(1));
    }
    const auto best = [](const std::vector<double>& v) {
      return *std::min_element(v.begin(), v.end());
    };
    const double base = best(off);
    const struct {
      const char* name;
      double secs;
      double tolerance;
    } cfgs[] = {
        {"span_capture_overhead_1in64", best(in64), 0.02},
        {"span_capture_overhead_full", best(full), 0.09},
    };
    for (const auto& c : cfgs) {
      BenchResult r;
      r.name = c.name;
      r.unit = "x";
      r.rate = base > 0 ? c.secs / base : 0.0;
      r.lower_is_better = true;
      r.tolerance = c.tolerance;
      std::printf("%-26s %14.3f %-12s %10s\n", r.name.c_str(), r.rate,
                  r.unit.c_str(), "-");
      results.push_back(std::move(r));
    }
  }
  // Parallel simulation (sim/shard.hpp): the same 1000-host fat-tree
  // request/reply workload timed on the serial engine, on the windowed
  // scheduler at 1 shard (pure synchronization overhead, no parallelism),
  // and on 4 threaded shards (the speedup the sharding exists to buy).
  // Configs are interleaved per round and each takes its min (same
  // rationale as the span-overhead block above).
  {
    const int rounds = quick ? 1 : 2;
    std::uint64_t msgs = 0;
    std::vector<double> serial_s, windowed_s, threaded_s;
    for (int i = 0; i < rounds; ++i) {
      serial_s.push_back(sharded_1k_pass_secs(1, false, false, &msgs));
      windowed_s.push_back(sharded_1k_pass_secs(1, false, true));
      threaded_s.push_back(sharded_1k_pass_secs(4, true, false));
    }
    const auto best = [](const std::vector<double>& v) {
      return *std::min_element(v.begin(), v.end());
    };
    const double serial = best(serial_s);
    const double windowed = best(windowed_s);
    const double threaded = best(threaded_s);

    // Serial message rate at 1000 hosts: the scaling denominator, single-
    // threaded and therefore calib_spin-normalizable like any other rate.
    {
      BenchResult r;
      r.name = "sharded_1k_message_rate";
      r.unit = "msgs/s";
      r.rate = serial > 0 ? static_cast<double>(msgs) / serial : 0.0;
      r.wall_s = serial;
      r.items = msgs;
      std::printf("%-26s %14.0f %-12s %10.3f\n", r.name.c_str(), r.rate,
                  r.unit.c_str(), r.wall_s);
      results.push_back(std::move(r));
    }
    // 4-shard speedup over serial on the same workload. Raw (a ratio of
    // wall times on one machine needs no normalization) and gated by a
    // hard lower bound of 2.0x wherever >= 4 hardware threads exist; on
    // smaller machines the bound is waived (the threads would time-slice
    // one core) and only the baseline comparison applies. The wide
    // tolerance absorbs the cross-machine variance of a parallelism
    // measurement; the min is the real gate.
    {
      BenchResult r;
      r.name = "parallel_speedup_4shard";
      r.unit = "x";
      r.rate = threaded > 0 ? serial / threaded : 0.0;
      r.raw = true;
      r.tolerance = 0.9;
      r.min_value = 2.0;
      r.min_cores = 4;
      std::printf("%-26s %14.3f %-12s %10s\n", r.name.c_str(), r.rate,
                  r.unit.c_str(), "-");
      results.push_back(std::move(r));
    }
    // Windowed-scheduler tax at shards=1: window bookkeeping and router
    // drains with zero parallelism to pay for them. Lower is better,
    // 1.0 = free.
    {
      BenchResult r;
      r.name = "shard_sync_overhead";
      r.unit = "x";
      r.rate = serial > 0 ? windowed / serial : 0.0;
      r.lower_is_better = true;
      r.tolerance = 0.25;
      std::printf("%-26s %14.3f %-12s %10s\n", r.name.c_str(), r.rate,
                  r.unit.c_str(), "-");
      results.push_back(std::move(r));
    }
  }
  write_json(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
