// Infrastructure microbenchmarks (google-benchmark): raw throughput of the
// discrete-event engine, the coroutine machinery, and the full simulated
// stack (wall-clock events/sec and messages/sec). These bound how large a
// cluster/workload the repository can simulate per second of real time.

#include <benchmark/benchmark.h>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "myrinet/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace {

using namespace vnet;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.push(t + (i * 37) % 101, [] {});
    while (!q.empty()) q.pop();
    t += 101;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EngineTimerCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int remaining = 10'000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) eng.after(10, [&] { tick(); });
    };
    eng.after(10, [&] { tick(); });
    eng.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineTimerCascade);

void BM_CoroutineDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int p = 0; p < 8; ++p) {
      eng.spawn([](sim::Engine& e) -> sim::Process {
        for (int i = 0; i < 1'000; ++i) co_await e.delay(100);
      }(eng));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 8'000);
}
BENCHMARK(BM_CoroutineDelayLoop);

void BM_FabricPacketHop(benchmark::State& state) {
  sim::Engine eng;
  auto fabric = myrinet::Fabric::fat_tree(eng, 20, 5, 3);
  std::uint64_t received = 0;
  for (int h = 0; h < 20; ++h) {
    fabric->station(h).on_receive = [&](myrinet::Packet) { ++received; };
  }
  int src = 0;
  for (auto _ : state) {
    myrinet::Packet p;
    p.src = src;
    p.dst = (src + 7) % 20;
    p.route = fabric->routes(p.src, p.dst)[0];
    p.wire_bytes = 64;
    fabric->station(src).inject(std::move(p));
    eng.run();
    src = (src + 1) % 20;
  }
  state.SetItemsProcessed(static_cast<int64_t>(received));
}
BENCHMARK(BM_FabricPacketHop);

void BM_FullStackMessageRate(benchmark::State& state) {
  // End-to-end: how many complete AM request/replies the simulator
  // executes per wall second (each is dozens of sim events).
  for (auto _ : state) {
    cluster::Cluster cl(cluster::NowConfig(2));
    am::Name server;
    std::uint64_t got = 0;
    bool stop = false;
    cl.spawn_thread(1, "s", [&](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 1);
      ep->set_handler(1, [&](am::Endpoint&, const am::Message& m) {
        ++got;
        m.reply(2, {m.arg(0)});
      });
      server = ep->name();
      while (!stop) {
        if (co_await ep->wait_for(t, 1 * sim::ms)) co_await ep->poll(t, 32);
      }
    });
    cl.spawn_thread(0, "c", [&](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 2);
      while (!server.valid()) co_await t.sleep(10 * sim::us);
      ep->map(0, server);
      for (int i = 0; i < 2'000; ++i) co_await ep->request(t, 0, 1, 1);
      while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
      stop = true;
    });
    cl.run_to_completion();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_FullStackMessageRate);

}  // namespace

BENCHMARK_MAIN();
