// Figure 5: NAS Parallel Benchmark (Class A) speedups through 32
// processors on the NOW, with IBM SP-2 and SGI Origin 2000 machine models
// for comparison.
//
// Paper (PPoPP'99 §6.2): all but FT and IS show linear speedups through 32
// processors on the NOW (improved cache behaviour compensates for
// communication); FT and IS are limited by bisection bandwidth; NOW
// scalability is significantly better than the SP-2, and execution times
// are within 2x of the faster Origin 2000.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/npb.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  const bool quick = std::getenv("VNET_QUICK") != nullptr;

  const std::vector<int> now_procs =
      quick ? std::vector<int>{1, 8, 32} : std::vector<int>{1, 2, 4, 8, 16, 32};
  const std::vector<int> other_procs =
      quick ? std::vector<int>{1, 32} : std::vector<int>{1, 8, 32};
  const std::vector<apps::NpbKernel> now_kernels =
      quick ? std::vector<apps::NpbKernel>{apps::NpbKernel::kBT,
                                           apps::NpbKernel::kLU,
                                           apps::NpbKernel::kFT,
                                           apps::NpbKernel::kIS}
            : apps::all_npb_kernels();
  const std::vector<apps::NpbKernel> other_kernels = {
      apps::NpbKernel::kBT, apps::NpbKernel::kLU, apps::NpbKernel::kFT,
      apps::NpbKernel::kIS};

  struct Machine {
    const char* name;
    cluster::ClusterConfig cfg;
    const std::vector<apps::NpbKernel>* kernels;
    const std::vector<int>* procs;
  };
  const Machine machines[] = {
      {"Berkeley NOW", cluster::NowConfig(40), &now_kernels, &now_procs},
      {"IBM SP-2", cluster::Sp2Config(40), &other_kernels, &other_procs},
      {"Origin 2000", cluster::OriginConfig(40), &other_kernels,
       &other_procs},
  };

  std::printf("Figure 5: NPB 2.2 Class A speedups (truncated iterations)\n");
  for (const Machine& m : machines) {
    std::printf("\n--- %s ---\n%-4s", m.name, "p=");
    for (int p : *m.procs) std::printf(" %7d", p);
    std::printf("\n");
    for (apps::NpbKernel k : *m.kernels) {
      const auto pts = apps::npb_speedups(m.cfg, k, *m.procs);
      std::printf("%-4s", apps::to_string(k));
      for (const auto& pt : pts) std::printf(" %7.2f", pt.speedup);
      std::printf("   (T1=%.1fs)\n", pts[0].seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper reference: on the NOW all but FT/IS are linear "
              "through 32 procs; FT/IS are bisection-limited; NOW scales "
              "better than the SP-2 and within 2x of the Origin's times.\n");
  return 0;
}
