// Section 6.2: massively-parallel Linpack on the 100-node cluster.
//
// Paper: using ScaLAPACK + Sun Performance Library BLAS + MPICH over
// Active Messages, the 100-node cluster sustained 10.14 GFLOPS on the
// massively-parallel Linpack benchmark — the first cluster on the Top500.

#include <cstdio>

#include "apps/linpack.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  apps::LinpackParams lp;
  const auto cfg = cluster::NowConfig(lp.nodes);
  const auto r = apps::run_linpack(cfg, lp);
  std::printf("Section 6.2: Linpack, N=%d NB=%d on %d nodes (%dx%d grid)\n",
              lp.n, lp.nb, lp.nodes, lp.grid_p, lp.grid_q);
  std::printf("  sustained %.2f GFLOPS in %.2fs (%.0f%% of peak)\n",
              r.gflops, r.seconds, 100 * r.peak_fraction);
  std::printf("  paper: 10.14 GFLOPS (#315 on the June 1997 Top500)\n");
  return 0;
}
