// Figure 7: 8 KB bulk-transfer throughput under contention.
//
// Paper (PPoPP'99 §6.4): OneVN delivers each client its proportional share
// of the server's ~42.8 MB/s (SBUS-bound) maximum. ST is sensitive to the
// number of server frames: with 8 frames performance drops at 9 clients
// and then degrades slowly; with 96 frames no re-mapping occurs and ST/MT
// *surpass* OneVN because one-to-one endpoints eliminate receive-queue
// overruns. MT behaves like ST here.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/workloads.hpp"

int main() {
  using namespace vnet;
  using apps::ContentionParams;

  const bool quick = std::getenv("VNET_QUICK") != nullptr;
  const bool full = std::getenv("VNET_FULL") != nullptr;
  std::vector<int> clients =
      quick ? std::vector<int>{1, 4, 9, 16}
            : (full ? std::vector<int>{1, 2, 4, 8, 9, 12, 16, 24, 32}
                    : std::vector<int>{1, 2, 4, 8, 9, 12});

  struct Config {
    const char* name;
    ContentionParams::Mode mode;
    int frames;
  };
  const Config configs[] = {
      {"OneVN", ContentionParams::Mode::kOneVN, 8},
      {"ST-8", ContentionParams::Mode::kSingleThread, 8},
      {"ST-96", ContentionParams::Mode::kSingleThread, 96},
      {"MT-8", ContentionParams::Mode::kMultiThread, 8},
      {"MT-96", ContentionParams::Mode::kMultiThread, 96},
  };

  std::printf("Figure 7: 8KB bulk throughput under contention (window %s)\n",
              quick ? "50ms" : "100ms");
  std::printf("%-7s %8s | %10s %12s %12s | %9s %7s %7s\n", "config",
              "clients", "agg MB/s", "min MB/s", "max MB/s", "remaps/s",
              "qfull", "notres");

  for (const Config& c : configs) {
    for (int k : clients) {
      ContentionParams p;
      p.mode = c.mode;
      p.server_frames = c.frames;
      p.clients = k;
      p.request_bytes = 8192;
      p.warmup = 20 * sim::ms + k * 3 * sim::ms;  // cover initial binding
      p.window = (quick ? 50 : 100) * sim::ms;
      const auto r = apps::run_contention(p);
      const double scale = 8192.0 / (1024 * 1024);
      std::printf("%-7s %8d | %10.1f %12.2f %12.2f | %9.0f %7llu %7llu\n",
                  c.name, k, r.aggregate_mb_per_sec,
                  r.min_client_per_sec() * scale,
                  r.max_client_per_sec() * scale, r.remaps_per_sec,
                  static_cast<unsigned long long>(r.queue_full_nacks),
                  static_cast<unsigned long long>(r.not_resident_nacks));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("paper reference: OneVN ~42.8 MB/s aggregate; ST-8 drops at 9 "
              "clients then degrades slowly; ST/MT-96 surpass OneVN (no "
              "overruns with one-to-one endpoints).\n");
  return 0;
}
