// Ablation A (§6.4.1): the on-host r/w endpoint state.
//
// Paper: the asynchronous on-host r/w state was not in the original
// design. Without it, a write fault blocks the faulting thread for the
// full duration of the endpoint upload, and single-threaded servers "fell
// off sharply as soon as endpoint re-mapping began with the 9th client",
// delivering only a few percent of the hardware performance — while the
// multi-threaded server still performed well, because blocked threads
// didn't stop runnable ones.

#include <cstdio>
#include <vector>

#include "apps/workloads.hpp"

int main() {
  using namespace vnet;
  using apps::ContentionParams;

  std::printf("Ablation A: removing the on-host r/w state "
              "(synchronous write faults)\n");
  std::printf("%-22s %8s | %12s | %9s\n", "config", "clients", "agg msg/s",
              "remaps/s");

  for (int k : {8, 12, 16}) {
    for (bool async_faults : {true, false}) {
      for (auto mode : {ContentionParams::Mode::kSingleThread,
                        ContentionParams::Mode::kMultiThread}) {
        ContentionParams p;
        p.mode = mode;
        p.clients = k;
        p.server_frames = 8;
        p.warmup = 20 * sim::ms + k * 3 * sim::ms;
        p.window = 80 * sim::ms;
        p.collect_rtt = false;
        p.base.host.async_write_faults = async_faults;
        // Bursty clients (compute/communicate phases) so receive queues
        // back up and evictions strand unprocessed entries.
        p.burst_size = 24;
        p.burst_gap = 2 * sim::ms;
        // The service does real work per request, so receive queues back
        // up and evictions strand unprocessed entries — the §6.4.1 case.
        p.server_work = 25 * sim::us;
        const auto r = apps::run_contention(p);
        std::printf("%-2s %-19s %8d | %12.0f | %9.0f\n",
                    to_string(mode),
                    async_faults ? "(async faults)" : "(SYNC faults)", k,
                    r.aggregate_per_sec, r.remaps_per_sec);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  std::printf("paper reference: without the state, ST collapses to a few "
              "percent once re-mapping begins; MT remains robust.\n");
  return 0;
}
