// §8 extensions ("additional processing power would ... enable more
// sophisticated algorithms, e.g. round-trip time estimation for scheduling
// retransmissions, or piggybacking acknowledgments to reduce network
// occupancy"): measure what each buys on top of the published system.

#include <cstdio>

#include "apps/bandwidth.hpp"
#include "apps/logp.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  struct Case {
    const char* name;
    bool piggyback;
    bool adaptive;
  };
  const Case cases[] = {
      {"baseline (paper)", false, false},
      {"+piggyback acks", true, false},
      {"+adaptive RTO", false, true},
      {"+both", true, true},
  };
  std::printf("S8 extensions: piggybacked acks and adaptive retransmission\n");
  std::printf("%-18s %10s %12s %14s\n", "config", "gap (us)", "RTT (us)",
              "8KB BW (MB/s)");
  for (const Case& c : cases) {
    auto cfg = cluster::NowConfig(2);
    cfg.nic.piggyback_acks = c.piggyback;
    cfg.nic.adaptive_timeout = c.adaptive;
    const auto logp = apps::measure_logp(cfg, 150, 2000);
    const auto bw = apps::measure_bandwidth(cfg, {8192}, 120, 8);
    std::printf("%-18s %10.2f %12.2f %14.1f\n", c.name, logp.g_us,
                logp.rtt_us, bw.points[0].mbps);
    std::fflush(stdout);
  }
  std::printf("(piggybacking removes standalone ack packets from the\n"
              " firmware's per-message budget; adaptive RTO mainly removes\n"
              " spurious retransmissions under receive-side queueing)\n");
  return 0;
}
