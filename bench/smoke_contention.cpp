// Interactive probe for the S6.4 contention workloads: one line of
// aggregate/per-client statistics for a single configuration.
// Usage: smoke_contention [clients] [mode 0=OneVN 1=ST 2=MT] [frames]
//        [bytes] [warmup_ms] [window_ms]   (env: VNET_TRACE, VNET_SYNC_FAULTS)
#include <cstdio>
#include "apps/workloads.hpp"
int main(int argc, char** argv) {
  using namespace vnet::apps;
  ContentionParams p;
  p.clients = argc > 1 ? atoi(argv[1]) : 2;
  p.mode = argc > 2 ? static_cast<ContentionParams::Mode>(atoi(argv[2])) : ContentionParams::Mode::kOneVN;
  p.server_frames = argc > 3 ? atoi(argv[3]) : 8;
  p.request_bytes = argc > 4 ? static_cast<std::uint32_t>(atoi(argv[4])) : 0;
  p.warmup = argc > 5 ? atoi(argv[5]) * vnet::sim::ms : 20 * vnet::sim::ms;
  p.window = argc > 6 ? atoi(argv[6]) * vnet::sim::ms : 100 * vnet::sim::ms;
  p.debug_trace = getenv("VNET_TRACE") != nullptr;
  if (getenv("VNET_SYNC_FAULTS")) p.base.host.async_write_faults = false;
  auto r = run_contention(p);
  std::printf("clients=%d mode=%s frames=%d bytes=%u -> agg=%.0f/s (%.2f MB/s) min=%.0f max=%.0f remaps/s=%.0f qfull=%llu notres=%llu retrans=%llu modes=%zu p50=%.0f p99=%.0f\n",
    p.clients, to_string(p.mode), p.server_frames, p.request_bytes,
    r.aggregate_per_sec, r.aggregate_mb_per_sec, r.min_client_per_sec(), r.max_client_per_sec(),
    r.remaps_per_sec, (unsigned long long)r.queue_full_nacks, (unsigned long long)r.not_resident_nacks,
    (unsigned long long)r.retransmissions, r.rtt_us.mode_count(), r.rtt_us.quantile(0.5), r.rtt_us.quantile(0.99));
  std::printf("  write_faults=%llu proxy_faults=%llu\n", (unsigned long long)r.server_write_faults, (unsigned long long)r.server_proxy_faults);
  return 0;
}
