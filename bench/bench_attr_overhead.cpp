// Attribution overhead: wall-clock cost of the per-message flight recorder
// (obs/attr.hpp) at sampling intervals 0 (off), 64 (1 in 64 messages), and
// 1 (every message), over an identical ping-pong + stream workload.
// Simulated results are identical across rates (stamping takes no simulated
// time); only the simulator's real elapsed time changes. Numbers go into
// EXPERIMENTS.md.
//
// Usage: bench_attr_overhead [--reps N] [--pingpongs N] [--stream N] [--quick]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common.hpp"
#include "obs/attr.hpp"

namespace {

using namespace vnet;

struct Shared {
  am::Name server;
  std::uint64_t pongs = 0;
  std::uint64_t handled = 0;
};

// One fixed workload: `pingpongs` request/reply round trips with a single
// outstanding message, then a `stream`-message one-way burst.
void run_workload(unsigned attr_interval, int pingpongs, int stream) {
  cluster::Cluster cl(cluster::NowConfig(2));
  cl.engine().attr().set_sample_interval(attr_interval);
  auto sh = std::make_shared<Shared>();

  cl.spawn_thread(1, "server", [sh, pingpongs,
                                stream](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0x5e11);
    ep->set_handler(1, [sh](am::Endpoint&, const am::Message& m) {
      ++sh->handled;
      m.reply(2, {m.arg(0)});
    });
    ep->set_handler(3, [sh](am::Endpoint&, const am::Message&) {
      ++sh->handled;
    });
    sh->server = ep->name();
    const auto expected = static_cast<std::uint64_t>(pingpongs + stream);
    while (sh->handled < expected) {
      if (co_await ep->poll(t, 16) == 0) co_await t.compute(100);
    }
    co_await t.sleep(2 * sim::ms);
    co_await ep->destroy(t);
  });

  cl.spawn_thread(0, "client", [sh, pingpongs,
                                stream](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0xc11e);
    ep->set_handler(2, [sh](am::Endpoint&, const am::Message&) {
      ++sh->pongs;
    });
    while (!sh->server.valid()) co_await t.sleep(10 * sim::us);
    ep->map(0, sh->server);
    for (int i = 0; i < pingpongs; ++i) {
      co_await ep->request(t, 0, 1, 1);
      const std::uint64_t want = static_cast<std::uint64_t>(i) + 1;
      while (sh->pongs < want) co_await ep->poll(t, 4);
    }
    for (int i = 0; i < stream; ++i) {
      co_await ep->request(t, 0, 3, static_cast<std::uint64_t>(i));
    }
    while (ep->credits_in_use() > 0) co_await ep->poll(t, 16);
    co_await ep->destroy(t);
  });

  cl.run_to_completion();
}

double best_of(unsigned interval, int reps, int pingpongs, int stream) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run_workload(interval, pingpongs, stream);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3, pingpongs = 300, stream = 5000;
  bool quick = false;
  vnet::bench::Args args(
      "Wall-clock overhead of the per-message flight recorder.");
  args.option("--reps", &reps, "N", "repetitions (keep best)")
      .option("--pingpongs", &pingpongs, "N", "ping-pong round trips")
      .option("--stream", &stream, "N", "streamed messages")
      .flag("--quick", &quick, "smoke run: 1 rep, small workload");
  if (!args.parse(argc, argv)) return 2;
  if (quick) {
    reps = 1;
    pingpongs = 50;
    stream = 500;
  }

  std::printf("attribution overhead: %d ping-pongs + %d stream msgs, "
              "best of %d reps\n",
              pingpongs, stream, reps);
  const double off = best_of(0, reps, pingpongs, stream);
  const double sparse = best_of(64, reps, pingpongs, stream);
  const double all = best_of(1, reps, pingpongs, stream);
  std::printf("%-22s %10s %8s\n", "sample interval", "wall (ms)", "vs off");
  std::printf("%-22s %10.1f %8s\n", "0 (disabled)", off, "1.00x");
  std::printf("%-22s %10.1f %7.2fx\n", "64 (1 in 64)", sparse,
              off > 0 ? sparse / off : 0.0);
  std::printf("%-22s %10.1f %7.2fx\n", "1 (every message)", all,
              off > 0 ? all / off : 0.0);
  return 0;
}
