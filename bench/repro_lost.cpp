// Regression reproducer: three event-driven services on one node, three
// clients on distinct nodes, explicit replies. Used to chase a reply-loss
// bug seen in examples/multi_service_node.
//
// Modes:
//   repro_lost [total] [seed]      one in-process run (the original CLI)
//   repro_lost --sweep N [--jobs J] [--total T]
//       sweep seeds 1..N, each in a fork()ed child off the warmed-up parent
//       image (chaos fork-server style): children report their per-client
//       counts over a pipe, the parent aggregates and exits nonzero if any
//       seed lost a reply. Falls back to sequential in-process runs where
//       fork() is unavailable.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "am/endpoint.hpp"
#include "chaos/forkserver.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace vnet;

namespace {

struct ReproResult {
  std::uint64_t served[3] = {0, 0, 0};
  std::uint64_t replies[3] = {0, 0, 0};
  int expected[3] = {0, 0, 0};
  bool ok() const {
    for (int c = 0; c < 3; ++c) {
      if (replies[c] != static_cast<std::uint64_t>(expected[c])) return false;
    }
    return true;
  }
};

ReproResult run_repro(int total, std::uint64_t seed) {
  auto cfg = cluster::NowConfig(4);
  cfg.seed = seed;
  cluster::Cluster cl(cfg);

  ReproResult r;
  am::Name sname[3];
  bool stop = false;
  int done = 0;

  for (int sidx = 0; sidx < 3; ++sidx) {
    cl.spawn_thread(0, "svc", [&, sidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 7 + sidx);
      ep->set_handler(1, [&, sidx](am::Endpoint&, const am::Message& m) {
        ++r.served[sidx];
        m.reply(2, {m.arg(0)});
      });
      sname[sidx] = ep->name();
      while (!stop) {
        if (co_await ep->wait_events_for(t, am::kEventReceive, 2 * sim::ms)) {
          while (co_await ep->poll(t, 16) > 0) {
          }
        }
      }
    });
  }
  for (int cidx = 0; cidx < 3; ++cidx) {
    cl.spawn_thread(1 + cidx, "cli",
                    [&, cidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 90 + cidx);
      ep->set_handler(2, [&, cidx](am::Endpoint&, const am::Message&) {
        ++r.replies[cidx];
      });
      while (!sname[0].valid() || !sname[1].valid() || !sname[2].valid()) {
        co_await t.sleep(20 * sim::us);
      }
      ep->map(0, sname[cidx]);
      const int my_total =
          std::max(0, total - cidx * 100);  // 400/300/200 like the example
      r.expected[cidx] = my_total;
      for (int i = 0; i < my_total; ++i) {
        co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
      }
      const sim::Time deadline = t.engine().now() + 300 * sim::ms;
      while (r.replies[cidx] < static_cast<std::uint64_t>(my_total) &&
             t.engine().now() < deadline) {
        co_await ep->poll(t, 16);
        co_await t.compute(1000);
      }
      co_await ep->destroy(t);
      if (++done == 3) stop = true;
    });
  }
  cl.run_to_completion();
  return r;
}

void print_result(std::uint64_t seed, const ReproResult& r) {
  for (int cidx = 0; cidx < 3; ++cidx) {
    std::printf("seed=%llu cli=%d served=%llu replies=%llu credits=%d %s\n",
                static_cast<unsigned long long>(seed), cidx,
                static_cast<unsigned long long>(r.served[cidx]),
                static_cast<unsigned long long>(r.replies[cidx]), 0,
                r.replies[cidx] == static_cast<std::uint64_t>(r.expected[cidx])
                    ? "OK"
                    : "LOST");
  }
}

// Seed sweep, fork-server style: one child per seed forked off the parent
// image (the binary's static initialization is the shared warm prefix), up
// to `jobs` in flight. Each child writes "seed replies0,1,2 ok" on the
// pipe; a child that crashes counts as a lost seed, never a wedged sweep.
int sweep(int total, int nseeds, int jobs) {
  int lost = 0;
#if defined(__unix__) || defined(__APPLE__)
  if (chaos::fork_available()) {
    struct Pending {
      std::uint64_t seed;
      pid_t pid;
      int fd;
    };
    std::vector<Pending> inflight;
    auto drain_one = [&] {
      Pending p = inflight.front();
      inflight.erase(inflight.begin());
      std::string line;
      char buf[256];
      for (;;) {
        const ssize_t n = ::read(p.fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        line.append(buf, static_cast<std::size_t>(n));
      }
      ::close(p.fd);
      int status = 0;
      while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
      }
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (!clean || line.find(" ok") == std::string::npos) {
        ++lost;
        std::printf("seed=%llu %s\n",
                    static_cast<unsigned long long>(p.seed),
                    clean ? "LOST" : "CRASHED");
      }
    };
    for (int s = 1; s <= nseeds; ++s) {
      int fds[2];
      if (::pipe(fds) != 0) {
        std::perror("pipe");
        return 2;
      }
      std::fflush(stdout);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::close(fds[0]);
        const ReproResult r = run_repro(total, static_cast<std::uint64_t>(s));
        char out[128];
        const int len = std::snprintf(
            out, sizeof out, "%d %llu,%llu,%llu%s\n", s,
            static_cast<unsigned long long>(r.replies[0]),
            static_cast<unsigned long long>(r.replies[1]),
            static_cast<unsigned long long>(r.replies[2]),
            r.ok() ? " ok" : " lost");
        ssize_t written = 0;
        while (written < len) {
          const ssize_t n = ::write(fds[1], out + written,
                                    static_cast<std::size_t>(len - written));
          if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
          }
          written += n;
        }
        ::close(fds[1]);
        ::_exit(0);
      }
      ::close(fds[1]);
      if (pid < 0) {
        ::close(fds[0]);
        std::perror("fork");
        return 2;
      }
      inflight.push_back({static_cast<std::uint64_t>(s), pid, fds[0]});
      while (static_cast<int>(inflight.size()) >= jobs) drain_one();
    }
    while (!inflight.empty()) drain_one();
  } else
#endif
  {
    // No fork(): the original sequential path, one seed at a time.
    for (int s = 1; s <= nseeds; ++s) {
      const ReproResult r = run_repro(total, static_cast<std::uint64_t>(s));
      if (!r.ok()) {
        ++lost;
        print_result(static_cast<std::uint64_t>(s), r);
      }
    }
  }
  std::printf("sweep: %d seed(s), %d lost\n", nseeds, lost);
  return lost == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  int total = 200;
  int nsweep = 0;
  int jobs = 4;
  std::uint64_t seed = 1;
  std::vector<std::string> positional;
  bench::Args args("Reply-loss reproducer (single run or forked seed sweep).");
  args.option("--sweep", &nsweep, "N", "sweep seeds 1..N in forked children")
      .option("--jobs", &jobs, "J", "parallel sweep children")
      .option("--total", &total, "T", "requests per client")
      .positionals(&positional, "TOTAL SEED");
  if (!args.parse(argc, argv)) return 2;
  jobs = std::max(1, jobs);
  if (!positional.empty()) total = std::atoi(positional[0].c_str());
  if (positional.size() > 1) {
    seed = std::strtoull(positional[1].c_str(), nullptr, 10);
  }

  if (nsweep > 0) return sweep(total, nsweep, jobs);

  const ReproResult r = run_repro(total, seed);
  print_result(seed, r);
  return 0;
}
