// Regression reproducer: three event-driven services on one node, three
// clients on distinct nodes, explicit replies. Used to chase a reply-loss
// bug seen in examples/multi_service_node.

#include <cstdio>
#include <cstdlib>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"

using namespace vnet;

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  const int total = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1;
  auto cfg = cluster::NowConfig(4);
  cfg.seed = seed;
  cluster::Cluster cl(cfg);

  am::Name sname[3];
  bool stop = false;
  int done = 0;
  std::uint64_t served[3] = {0, 0, 0}, replies[3] = {0, 0, 0};

  for (int sidx = 0; sidx < 3; ++sidx) {
    cl.spawn_thread(0, "svc", [&, sidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 7 + sidx);
      ep->set_handler(1, [&, sidx](am::Endpoint&, const am::Message& m) {
        ++served[sidx];
        m.reply(2, {m.arg(0)});
      });
      ep->set_event_mask(am::kEventReceive);
      sname[sidx] = ep->name();
      while (!stop) {
        if (co_await ep->wait_for(t, 2 * sim::ms)) {
          while (co_await ep->poll(t, 16) > 0) {
          }
        }
      }
    });
  }
  for (int cidx = 0; cidx < 3; ++cidx) {
    cl.spawn_thread(1 + cidx, "cli",
                    [&, cidx](host::HostThread& t) -> sim::Task<> {
      auto ep = co_await am::Endpoint::create(t, 90 + cidx);
      ep->set_handler(2, [&, cidx](am::Endpoint&, const am::Message&) {
        ++replies[cidx];
      });
      while (!sname[0].valid() || !sname[1].valid() || !sname[2].valid()) {
        co_await t.sleep(20 * sim::us);
      }
      ep->map(0, sname[cidx]);
      const int my_total = total - cidx * 100;  // 400/300/200 like the example
      for (int i = 0; i < my_total; ++i) {
        co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
      }
      const sim::Time deadline = t.engine().now() + 300 * sim::ms;
      while (replies[cidx] < static_cast<std::uint64_t>(my_total) &&
             t.engine().now() < deadline) {
        co_await ep->poll(t, 16);
        co_await t.compute(1000);
      }
      co_await ep->destroy(t);
      std::printf("seed=%llu cli=%d served=%llu replies=%llu credits=%d %s\n",
                  static_cast<unsigned long long>(seed), cidx,
                  static_cast<unsigned long long>(served[cidx]),
                  static_cast<unsigned long long>(replies[cidx]),
                  0,
                  replies[cidx] == static_cast<std::uint64_t>(my_total)
                      ? "OK"
                      : "LOST");
      if (++done == 3) stop = true;
    });
  }
  cl.run_to_completion();
  return 0;
}
