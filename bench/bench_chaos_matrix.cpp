// Chaos matrix report: runs every standard chaos scenario across a seed
// sweep and prints a per-scenario table of delivery accounting, transport
// work, and recovery time. Output is deterministic for a fixed seed base —
// two identical invocations must print identical bytes (no wall-clock, no
// pointers), which scripts/check.sh relies on.
//
// Usage: bench_chaos_matrix [--seeds N] [--seed-base S] [--scenario NAME]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/scenario.hpp"

using namespace vnet;

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  int seeds = 3;
  std::uint64_t seed_base = 1;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed-base") && i + 1 < argc) {
      seed_base = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--scenario") && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--seed-base S] [--scenario NAME]\n",
                   argv[0]);
      return 2;
    }
  }

  if (seeds < 1) {
    std::fprintf(stderr, "error: --seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }
  if (!only.empty()) {
    bool known = false;
    for (const std::string& name : chaos::standard_scenario_names()) {
      known = known || name == only;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown scenario '%s'; known:", only.c_str());
      for (const std::string& name : chaos::standard_scenario_names()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  std::printf("chaos matrix: %d seed(s) per scenario, base %llu\n\n", seeds,
              static_cast<unsigned long long>(seed_base));
  std::printf("%s\n", chaos::result_table_header().c_str());

  int total_violations = 0;
  std::vector<chaos::ScenarioResult> flagged;
  std::vector<chaos::ScenarioResult> stalled;
  for (const std::string& name : chaos::standard_scenario_names()) {
    if (!only.empty() && name != only) continue;
    for (int s = 0; s < seeds; ++s) {
      const auto spec =
          chaos::standard_scenario(name, seed_base + std::uint64_t(s));
      const auto res = chaos::run_scenario(spec);
      std::printf("%s\n", chaos::result_table_row(res).c_str());
      total_violations += static_cast<int>(res.violations.size());
      if (!res.violations.empty()) flagged.push_back(res);
      if (!res.watchdog_events.empty()) stalled.push_back(res);
    }
  }

  // Stalls are expected while a fault is in force (that is the point of the
  // watchdog: it names the quiet component); they are a report, not a
  // violation.
  for (const auto& res : stalled) {
    std::printf("\n%s seed %llu stall report:\n%s", res.name.c_str(),
                static_cast<unsigned long long>(res.seed),
                res.watchdog_summary.c_str());
  }

  for (const auto& res : flagged) {
    std::printf("\n%s seed %llu violations:\n", res.name.c_str(),
                static_cast<unsigned long long>(res.seed));
    for (const auto& v : res.violations) std::printf("  %s\n", v.c_str());
    std::printf("campaign log:\n");
    for (const auto& l : res.campaign_log) std::printf("  %s\n", l.c_str());
    std::printf("%s", res.link_stats.c_str());
  }

  std::printf("\n%s\n", total_violations == 0
                            ? "all invariants held"
                            : "INVARIANT VIOLATIONS DETECTED");
  return total_violations == 0 ? 0 : 1;
}
