// Chaos matrix report, multiplied through the fork server: each scenario
// cell is warmed fault-free in the parent to the checkpoint just before its
// first fault, then fork()ed — the child timeline applies the fault plan
// and reports a machine-readable JSON verdict over a pipe. Child crashes
// are contained (captured stderr + failed cell), invariant breaks can be
// bisected down to a minimal repro, and --verify-digest proves that a
// forked timeline is byte-identical to the straight-through run.
//
// Output is deterministic for fixed flags — two identical invocations must
// print identical bytes (no wall-clock, no pointers), which
// scripts/check.sh relies on.
//
// Usage: bench_chaos_matrix [--seeds N] [--seed-base S] [--scenario NAME]
//                           [--jobs J] [--serial] [--json-dir DIR]
//                           [--verify-digest] [--bisect] [--repro FILE]
//                           [--shards N]
//
// --shards runs every scenario on a sharded cluster (sim/shard.hpp) in
// force-windows mode on one OS thread: deterministic, fork-compatible, and
// safe for the scenarios' cross-host shared state. At --shards 1 the
// windowed scheduler must reproduce the serial engine byte-for-byte — CI
// diffs the two verdict-JSON trees as the determinism oracle.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/forkserver.hpp"
#include "chaos/scenario.hpp"
#include "common.hpp"

using namespace vnet;

namespace {

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::setbuf(stdout, nullptr);
  int seeds = 3;
  int jobs = 2;
  std::uint64_t seed_base = 1;
  std::string only;
  std::string json_dir;
  std::string repro_path;
  bool serial = false;
  bool verify_digest = false;
  bool bisect = false;
  int shards = 0;  // 0 = untouched (the plain serial engine)
  bench::Args args(
      "Chaos fault-injection matrix through the fork server; deterministic "
      "output for fixed flags.");
  args.option("--seeds", &seeds, "N", "seeds per scenario")
      .option("--seed-base", &seed_base, "S", "first seed value")
      .option("--scenario", &only, "NAME", "run only this scenario")
      .option("--jobs", &jobs, "J", "parallel fork-server children")
      .flag("--serial", &serial, "run in-process, no fork server")
      .option("--json-dir", &json_dir, "DIR", "write per-cell verdict JSON here")
      .flag("--verify-digest", &verify_digest,
            "prove forked timelines match straight-through replay digests")
      .flag("--bisect", &bisect, "bisect any invariant break to a minimal repro")
      .option("--repro", &repro_path, "FILE", "write bisected repro JSON here")
      .option("--shards", &shards, "N",
              "run on N engine shards (windowed scheduler; 1 = oracle)");
  if (!args.parse(argc, argv)) return 2;

  if (seeds < 1) {
    std::fprintf(stderr, "error: --seeds must be >= 1 (got %d)\n", seeds);
    return 2;
  }
  if (jobs < 1) jobs = 1;
  if (!only.empty()) {
    bool known = false;
    for (const std::string& name : chaos::standard_scenario_names()) {
      known = known || name == only;
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown scenario '%s'; known:",
                   only.c_str());
      for (const std::string& name : chaos::standard_scenario_names()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  std::vector<chaos::ScenarioSpec> specs;
  for (const std::string& name : chaos::standard_scenario_names()) {
    if (!only.empty() && name != only) continue;
    for (int s = 0; s < seeds; ++s) {
      specs.push_back(
          chaos::standard_scenario(name, seed_base + std::uint64_t(s)));
      if (shards >= 1) {
        // Layer the shard count onto the scenario's own config tweak.
        // Sequential force-windows mode: scenarios share plain memory
        // across host threads and must stay fork()-compatible, so the
        // windowed schedule runs on one OS thread.
        chaos::ScenarioSpec& spec = specs.back();
        auto base = spec.tweak;
        spec.tweak = [base, shards](cluster::ClusterConfig& cfg) {
          if (base) base(cfg);
          cfg.shards = shards;
          cfg.shard_force_windows = true;
          cfg.shard_threads = false;
        };
      }
    }
  }

  const bool forked = chaos::fork_available() && !serial;
  std::printf("chaos matrix: %d seed(s) per scenario, base %llu (%s)\n\n",
              seeds, static_cast<unsigned long long>(seed_base),
              forked ? "fork server" : "serial");
  std::printf("%s\n", chaos::result_table_header().c_str());

  std::vector<chaos::ForkOutcome> outcomes;
  if (!forked) {
    outcomes.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i].result = chaos::run_scenario(specs[i]);
    }
  } else if (verify_digest) {
    // Digest-verification mode: each cell forks a child AND runs the same
    // warm image straight through in the parent, then compares the replay
    // digests — fork() proven as a determinism-preserving snapshot.
    outcomes.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      chaos::ForkServer server(specs[i]);
      const chaos::FaultPlan plan = server.default_plan();
      outcomes[i] = server.run_child(plan);
      const chaos::ScenarioResult straight = server.run_inline(plan);
      if (outcomes[i].crashed) continue;
      if (outcomes[i].result.replay_digest != straight.replay_digest) {
        outcomes[i].result.violations.push_back(
            "replay digest mismatch: forked timeline diverged from "
            "straight-through run");
      }
    }
  } else {
    outcomes = chaos::run_matrix(specs, jobs);
  }

  int total_violations = 0;
  int crashes = 0;
  std::vector<chaos::ScenarioResult> flagged;
  std::vector<chaos::ScenarioResult> stalled;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const chaos::ScenarioResult& res = outcomes[i].result;
    std::printf("%s\n", chaos::result_table_row(res).c_str());
    total_violations += static_cast<int>(res.violations.size());
    crashes += outcomes[i].crashed ? 1 : 0;
    if (!res.violations.empty()) flagged.push_back(res);
    if (!res.watchdog_events.empty()) stalled.push_back(res);
    if (!json_dir.empty()) {
      const std::string path = json_dir + "/" + res.name + "_seed" +
                               std::to_string(res.seed) + ".json";
      const std::string bytes = !outcomes[i].raw_json.empty()
                                    ? outcomes[i].raw_json
                                    : chaos::verdict_json(res).dump();
      if (!write_file(path, bytes)) {
        std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      }
    }
  }

  if (verify_digest && crashes == 0 && total_violations == 0) {
    std::printf("\nreplay digests: all %zu forked timelines identical to "
                "straight-through\n",
                outcomes.size());
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].crashed) continue;
    std::printf("\n%s seed %llu child crashed: %s\n",
                outcomes[i].result.name.c_str(),
                static_cast<unsigned long long>(outcomes[i].result.seed),
                outcomes[i].detail.c_str());
    if (!outcomes[i].stderr_tail.empty()) {
      std::printf("--- captured child stderr ---\n%s\n",
                  outcomes[i].stderr_tail.c_str());
    }
  }

  // Stalls are expected while a fault is in force (that is the point of the
  // watchdog: it names the quiet component); they are a report, not a
  // violation.
  for (const auto& res : stalled) {
    std::printf("\n%s seed %llu stall report:\n%s", res.name.c_str(),
                static_cast<unsigned long long>(res.seed),
                res.watchdog_summary.c_str());
  }

  for (const auto& res : flagged) {
    std::printf("\n%s seed %llu violations:\n", res.name.c_str(),
                static_cast<unsigned long long>(res.seed));
    for (const auto& v : res.violations) std::printf("  %s\n", v.c_str());
    std::printf("campaign log:\n");
    for (const auto& l : res.campaign_log) std::printf("  %s\n", l.c_str());
    std::printf("%s", res.link_stats.c_str());
  }

  // Any invariant break: re-fork from the warm image at prefix midpoints
  // of the fault timeline until the first breaking action is isolated, and
  // emit the minimal repro.
  if (bisect && !flagged.empty()) {
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].result.violations.empty()) continue;
      const chaos::BisectReport report =
          chaos::bisect_invariant_break(specs[i]);
      std::printf("\n%s", chaos::render_repro(report).c_str());
      if (!repro_path.empty()) {
        const std::string path =
            outcomes.size() == 1 ? repro_path
                                 : repro_path + "." + specs[i].name +
                                       std::to_string(specs[i].seed);
        if (!write_file(path, chaos::repro_json(report).dump(2) + "\n")) {
          std::fprintf(stderr, "warning: could not write %s\n",
                       path.c_str());
        }
      }
    }
  }

  std::printf("\n%s\n", total_violations == 0
                            ? "all invariants held"
                            : "INVARIANT VIOLATIONS DETECTED");
  return total_violations == 0 ? 0 : 1;
}
