// Ablation B: endpoint replacement policy.
//
// The paper's system replaces a resident endpoint at random (§4.2). This
// ablation compares random against FIFO and LRU under the Fig-6 ST
// workload that overcommits the 8 endpoint frames. (With a uniformly hot
// working set larger than the frame pool, no policy can win big — which is
// itself the justification for the paper's simple choice.)

#include <cstdio>

#include "apps/workloads.hpp"

int main() {
  using namespace vnet;
  using apps::ContentionParams;

  std::printf("Ablation B: endpoint replacement policy (ST, 8 frames)\n");
  std::printf("%-8s %8s | %12s | %9s\n", "policy", "clients", "agg msg/s",
              "remaps/s");
  struct P {
    const char* name;
    host::SegmentDriver::Policy policy;
  };
  const P policies[] = {
      {"random", host::SegmentDriver::Policy::kRandom},
      {"fifo", host::SegmentDriver::Policy::kFifo},
      {"lru", host::SegmentDriver::Policy::kLru},
  };
  for (const P& pol : policies) {
    for (int k : {10, 12, 16}) {
      ContentionParams p;
      p.mode = ContentionParams::Mode::kSingleThread;
      p.clients = k;
      p.server_frames = 8;
      p.warmup = 20 * sim::ms + k * 3 * sim::ms;
      p.window = 80 * sim::ms;
      p.collect_rtt = false;
      p.replacement = pol.policy;
      const auto r = apps::run_contention(p);
      std::printf("%-8s %8d | %12.0f | %9.0f\n", pol.name, k,
                  r.aggregate_per_sec, r.remaps_per_sec);
      std::fflush(stdout);
    }
  }
  return 0;
}
