// Ablation E (§6.4): user-level credit flow control. Each endpoint may
// have up to 32 outstanding requests because the request receive queue is
// 32 entries deep; this lightweight mechanism prevents receive-queue
// overruns until the number of clients makes the combined windows exceed
// the queue. Turning credits off shifts all protection onto the
// transport's nack/retransmit machinery.

#include <cstdio>

#include "apps/workloads.hpp"

int main() {
  using namespace vnet;
  using apps::ContentionParams;
  std::printf("Ablation E: user-level credits (OneVN, small messages)\n");
  std::printf("%-10s %8s | %12s | %8s %10s\n", "credits", "clients",
              "agg msg/s", "qfull", "retrans");
  for (bool credits : {true, false}) {
    for (int k : {1, 2, 4, 8}) {
      ContentionParams p;
      p.mode = ContentionParams::Mode::kOneVN;
      p.clients = k;
      p.warmup = 20 * sim::ms;
      p.window = 80 * sim::ms;
      p.collect_rtt = false;
      p.flow_control = credits;
      const auto r = apps::run_contention(p);
      std::printf("%-10s %8d | %12.0f | %8llu %10llu\n",
                  credits ? "on (32)" : "off", k, r.aggregate_per_sec,
                  static_cast<unsigned long long>(r.queue_full_nacks),
                  static_cast<unsigned long long>(r.retransmissions));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
