// Figure 4: transfer bandwidth for 128-byte to 8-KB messages, with the
// SBUS DMA hardware limits as reference curves.
//
// Paper (PPoPP'99 §6.1): virtual networks deliver 43.9 MB/s at 8 KB — 93%
// of the 46.8 MB/s SBUS write-DMA limit; GAM delivered 38 MB/s; round-trip
// time fits RTT(n) = 0.1112 n + 61.02 us (R^2 = 0.99); N_1/2 ~ 540 B.

// With `--csv PATH` the AM run also drives the periodic registry sampler
// (obs/sampler.hpp) every 100us of simulated time and writes the
// time-series CSV to PATH; scripts/plot_timeseries.py regenerates the
// bandwidth-vs-size curve from it with no code changes.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/bandwidth.hpp"
#include "cluster/config.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace vnet;
  std::string csv_path;
  bench::Args args("Figure 4 bandwidth sweep with SBUS DMA reference curves.");
  args.option("--csv", &csv_path, "PATH",
              "write the 100us registry-sampler time series here");
  if (!args.parse(argc, argv)) return 2;

  const std::vector<std::uint32_t> sizes = {128,  256,  512,  1024,
                                            2048, 4096, 6144, 8192};
  std::printf("Figure 4: transfer bandwidth vs message size (2 nodes)\n");

  auto am_cfg = cluster::NowConfig(2);
  auto gam_cfg = cluster::GamConfig(2);
  const sim::Duration sample_period =
      csv_path.empty() ? 0 : 100 * sim::us;
  // Span capture rides along only when a CSV was requested, so the plain
  // figure run stays byte-identical to the golden output.
  const std::uint32_t span_interval = csv_path.empty() ? 0 : 1;
  const auto am = apps::measure_bandwidth(am_cfg, sizes, 160, 30,
                                          sample_period, span_interval);
  const auto gam = apps::measure_bandwidth(gam_cfg, sizes);

  // Hardware reference: pure SBUS DMA rate for the same block sizes.
  std::printf("%-8s %10s %10s %12s %12s %12s\n", "bytes", "AM(MB/s)",
              "GAM(MB/s)", "sbus-rd(MB/s)", "sbus-wr(MB/s)", "AM RTT(us)");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double n = sizes[i];
    const double rd =
        n / (2.0 + n * am_cfg.nic.sbus_read_ns_per_byte / 1000.0);  // us
    const double wr =
        n / (2.0 + n * am_cfg.nic.sbus_write_ns_per_byte / 1000.0);
    std::printf("%-8u %10.1f %10.1f %12.1f %12.1f %12.1f\n", sizes[i],
                am.points[i].mbps, gam.points[i].mbps, rd, wr,
                am.points[i].rtt_us);
  }
  const double sbus_wr_limit = 1000.0 / am_cfg.nic.sbus_write_ns_per_byte;
  std::printf("\nAM @8KB: %.1f MB/s = %.0f%% of %.1f MB/s SBUS write limit "
              "(paper: 43.9 MB/s = 93%%)\n",
              am.points.back().mbps,
              100.0 * am.points.back().mbps / sbus_wr_limit, sbus_wr_limit);
  std::printf("GAM @8KB: %.1f MB/s (paper: 38 MB/s)\n", gam.points.back().mbps);
  std::printf("AM RTT(n) = %.4f n + %.2f us, R^2=%.3f "
              "(paper: 0.1112 n + 61.02, R^2=0.99)\n",
              am.slope_us_per_byte, am.intercept_us, am.r_squared);
  std::printf("AM N_1/2 = %.0f bytes (paper: ~540)\n", am.n_half_bytes);

  if (!csv_path.empty()) {
    FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::fputs(am.timeseries_csv.c_str(), f);
    std::fclose(f);
    std::printf("time series: %s (plot with scripts/plot_timeseries.py)\n",
                csv_path.c_str());
    std::printf("\n%s", am.tail_report.c_str());
  }
  return 0;
}
