// Differential tail-latency profiler demo and self-check (obs/span.hpp,
// DESIGN.md §12).
//
// Workload: several clients hammer one server endpoint over a crossbar
// with every message span-sampled. The fan-in contention at the server —
// shared receive queue, one polling thread — produces a genuine latency
// tail, and the profiler's job is to name the stages that created it. The
// run then validates the two ISSUE acceptance bounds:
//
//   * reconciliation: each cohort's mean critical-path stage sum must match
//     its mean end-to-end latency within 5% (an identity by construction of
//     SpanTrace::critical_path(), recomputed here as a self-check);
//   * sketch accuracy: the sub-bucketed histogram sketch (obs/metrics.hpp)
//     fed the same e2e samples must agree with exact sorted-sample
//     quantiles within 5% relative error through p99.9 (judged against
//     the bracketing order statistics — see the check for why).
//
// The closing "top p99 culprits:" line is greppable — CI's perf-gate job
// lifts it into the step summary.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "am/endpoint.hpp"
#include "cluster/cluster.hpp"
#include "cluster/config.hpp"
#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace vnet;

struct Shared {
  am::Name server;
  std::uint64_t served = 0;
  std::uint64_t expected = 0;
  int clients_done = 0;
  int clients = 0;
};

// Exact quantile over a sorted sample set, fractional-rank interpolated —
// the ground truth the sketch is judged against.
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int clients = 3;
  int requests = 400;
  bench::Args args(
      "Differential tail profile of a fan-in contention workload, with "
      "reconciliation and sketch-accuracy self-checks.");
  args.flag("--quick", &quick, "shrink the run for smoke-testing");
  args.option("--clients", &clients, "N", "client nodes hammering the server");
  args.option("--requests", &requests, "N", "requests per client");
  if (!args.parse(argc, argv)) return 2;
  if (quick) {
    clients = 2;
    requests = 80;
  }

  cluster::ClusterConfig cfg = cluster::NowConfig(
      static_cast<myrinet::NodeId>(clients + 1));
  cluster::Cluster cl(cfg);
  cl.engine().spans().set_sample_interval(1);
  cl.engine().spans().set_ring_capacity(
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(requests) +
      256);

  auto sh = std::make_shared<Shared>();
  sh->clients = clients;
  sh->expected = static_cast<std::uint64_t>(clients) *
                 static_cast<std::uint64_t>(requests);

  cl.spawn_thread(0, "tail-server", [sh](host::HostThread& t) -> sim::Task<> {
    auto ep = co_await am::Endpoint::create(t, 0x7a11);
    ep->set_handler(1, [sh](am::Endpoint&, const am::Message& m) {
      ++sh->served;
      m.reply(2, {m.arg(0)});
    });
    sh->server = ep->name();
    while (sh->served < sh->expected) {
      co_await ep->wait_events(t, am::kEventArrivals);
      co_await ep->poll(t);
    }
    while (sh->clients_done < sh->clients) co_await t.sleep(100 * sim::us);
    co_await t.sleep(1 * sim::ms);
    co_await ep->destroy(t);
  });

  for (int c = 0; c < clients; ++c) {
    cl.spawn_thread(
        static_cast<myrinet::NodeId>(c + 1), "tail-client",
        [sh, requests, c](host::HostThread& t) -> sim::Task<> {
          auto ep = co_await am::Endpoint::create(
              t, static_cast<std::uint32_t>(0xc0 + c));
          std::uint64_t replies = 0;
          ep->set_handler(2, [&replies](am::Endpoint&, const am::Message&) {
            ++replies;
          });
          while (!sh->server.valid()) co_await t.sleep(10 * sim::us);
          ep->map(0, sh->server);
          // Burst as hard as the credit window allows: the fan-in at the
          // server is what manufactures the tail.
          for (int i = 0; i < requests; ++i) {
            co_await ep->request(t, 0, 1, static_cast<std::uint64_t>(i));
            co_await ep->poll(t, 4);
          }
          while (replies < static_cast<std::uint64_t>(requests)) {
            co_await ep->poll(t);
          }
          ++sh->clients_done;
          co_await ep->destroy(t);
        });
  }

  cl.run_to_completion();

  const std::vector<obs::SpanTrace> traces = cl.engine().spans().collect();
  const obs::TailReport report = obs::tail_report(traces);
  if (report.total == 0) {
    std::fprintf(stderr, "no complete spans captured\n");
    return 1;
  }
  std::printf("tail profile: %d clients x %d requests, fan-in on node 0, "
              "every message sampled\n\n%s",
              clients, requests, obs::render_tail_report(report).c_str());

  int failures = 0;

  // --- self-check 1: cohort reconciliation within 5% -------------------
  const double p50_err = report.p50_recon_err();
  const double tail_err = report.tail_recon_err();
  std::printf("\nreconciliation: p50 cohort %.3f%%, tail cohort %.3f%% "
              "(bound 5%%)\n",
              100.0 * p50_err, 100.0 * tail_err);
  if (p50_err > 0.05 || tail_err > 0.05) {
    std::printf("FAIL: critical-path stage sums do not reconcile with "
                "cohort e2e means\n");
    ++failures;
  }

  // --- self-check 2: sketch vs exact quantiles within 5% ---------------
  std::vector<double> e2e;
  obs::HistogramData sketch;
  for (const obs::SpanTrace& t : traces) {
    if (!t.complete || t.returned) continue;
    const auto ns = static_cast<double>(t.e2e_ns());
    e2e.push_back(ns);
    sketch.record(ns);
  }
  std::sort(e2e.begin(), e2e.end());
  std::printf("sketch accuracy over %zu e2e samples (bound 5%%):\n",
              e2e.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double want = exact_quantile(e2e, q);
    const double got = sketch.quantile(q);
    // Judge the sketch against the bracketing order statistics, not the
    // interpolated point: at sparse extreme ranks the fractional-rank
    // interpolation lands in a gap between two tail samples where no
    // estimator has data, so any value in [floor-rank, ceil-rank] sample
    // is an exact answer and error is distance beyond that interval.
    const double rank = q * static_cast<double>(e2e.size() - 1);
    const double lo = e2e[static_cast<std::size_t>(rank)];
    const double hi =
        e2e[std::min(static_cast<std::size_t>(rank) + 1, e2e.size() - 1)];
    double rel = 0.0;
    if (got < lo && lo > 0) rel = (lo - got) / lo;
    if (got > hi && hi > 0) rel = (got - hi) / hi;
    std::printf("  p%-5g exact %10.0fns  sketch %10.0fns  err %.2f%%\n",
                100.0 * q, want, got, 100.0 * rel);
    if (rel > 0.05) {
      std::printf("FAIL: sketch quantile p%g off by more than 5%%\n",
                  100.0 * q);
      ++failures;
    }
  }

  return failures == 0 ? 0 : 1;
}
