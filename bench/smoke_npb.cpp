// Interactive probe for one NPB kernel's speedup curve on the NOW model.
// Usage: smoke_npb [kernel name, default EP]
#include <cstdio>
#include <cstdlib>
#include "apps/npb.hpp"
#include "cluster/config.hpp"
int main(int argc, char** argv) {
  using namespace vnet;
  auto cfg = cluster::NowConfig(40);
  const char* name = argc > 1 ? argv[1] : "EP";
  for (auto k : apps::all_npb_kernels()) {
    if (std::string(apps::to_string(k)) != name) continue;
    auto pts = apps::npb_speedups(cfg, k, {1, 2, 4, 8, 16, 32});
    for (auto& p : pts)
      std::printf("%s p=%2d T=%8.2fs speedup=%.2f\n", name, p.procs, p.seconds, p.speedup);
  }
  return 0;
}
