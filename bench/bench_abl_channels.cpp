// Ablation C (§5.1): "multiple logical channels between all interfaces
// mask transmission and acknowledgment latencies" — sweep the number of
// stop-and-wait channels per peer and watch the small-message gap and the
// bulk bandwidth respond.

#include <cstdio>

#include "apps/bandwidth.hpp"
#include "apps/logp.hpp"
#include "cluster/config.hpp"

int main() {
  using namespace vnet;
  std::printf("Ablation C: logical channels per peer interface\n");
  std::printf("%-9s %10s %14s\n", "channels", "gap (us)", "8KB BW (MB/s)");
  for (int ch : {1, 2, 4, 8, 16, 32}) {
    auto cfg = cluster::NowConfig(2);
    cfg.nic.channels_per_peer = ch;
    const auto logp = apps::measure_logp(cfg, 100, 1500);
    const auto bw = apps::measure_bandwidth(cfg, {8192}, 120, 8);
    std::printf("%-9d %10.2f %14.1f\n", ch, logp.g_us, bw.points[0].mbps);
    std::fflush(stdout);
  }
  std::printf("(one channel serializes on the ack round trip; a few "
              "channels recover the pipelined rate)\n");
  return 0;
}
